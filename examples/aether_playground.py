#!/usr/bin/env python
"""Aether/Hemera playground: watch the dual-method framework decide.

Builds a synthetic application trace with hoistable rotation batches
and multiplications across the level range, prints the full Methods
Candidate Table for a few decision units, shows what STEP-1/2/3
select, and runs Hemera's key manager over the result.

Run:  python examples/aether_playground.py
"""

from collections import Counter

from repro.ckks.params import SET_I, SET_II
from repro.core.aether import Aether
from repro.core.hemera import EvkPool, Hemera
from repro.core.optrace import TraceBuilder
from repro.hw.config import FAST_CONFIG


def build_application():
    """A DFT-flavoured mini app: rotation batches + a mult chain."""
    tb = TraceBuilder("playground")
    for level in (34, 30, 26):
        ct = tb.fresh_ct()
        tb.rotations(ct, level, [1, 2, 4, 8, 16, 32], stage="Transform")
    for level in (24, 22, 20, 18, 16, 14):
        tb.hmult(tb.fresh_ct(), level, stage="Polynomial")
    for level in (12, 10):
        ct = tb.fresh_ct()
        tb.rotations(ct, level, [1, 2, 4], stage="Reduce")
    return tb.build()


def show_mct(aether, trace, max_units=4):
    print("-" * 72)
    print("Methods Candidate Table (first units)")
    print("-" * 72)
    header = (f"{'unit':>4} {'kind':6} {'lvl':>3} {'method':7} "
              f"{'h':>2} {'cost(M)':>9} {'delay(us)':>10} "
              f"{'key(MB)':>8} {'xfer(us)':>9}")
    print(header)
    for unit, cands in aether.build_mct(trace)[:max_units]:
        for e in cands:
            print(f"{e.unit_id:>4} {e.kind:6} {e.level:>3} "
                  f"{e.method:7} {e.hoisting:>2} "
                  f"{e.cost_modops / 1e6:>9.1f} "
                  f"{e.delay_s * 1e6:>10.2f} "
                  f"{e.key_bytes / 2**20:>8.1f} "
                  f"{e.transfer_s * 1e6:>9.2f}")


def show_decisions(config):
    print("-" * 72)
    print("Aether decisions (STEP-1 storage, STEP-2 transfer-hiding, "
          "STEP-3 min latency)")
    print("-" * 72)
    for uid, d in sorted(config.decisions.items()):
        print(f"unit {uid:>3}: {d.kind:6} level {d.level:>2} x{d.times} "
              f"-> {d.method:7} h={d.hoisting}  "
              f"delay {d.delay_s * 1e6:7.2f} us, "
              f"key {d.key_bytes / 2**20:6.1f} MB")
    mix = Counter(d.method for d in config.decisions.values())
    print(f"\nmethod mix: {dict(mix)}; "
          f"configuration file: {config.size_bytes()} bytes "
          f"(paper: ~1 KB)")


def show_hemera(aether, config, trace):
    print("-" * 72)
    print("Hemera online key management")
    print("-" * 72)
    pool = EvkPool(SET_I, SET_II)
    hemera = Hemera(config, pool, FAST_CONFIG.key_storage_bytes,
                    FAST_CONFIG.hbm_bandwidth_bytes)
    for attempt in (1, 2):
        report = hemera.manage(trace, aether)
        print(f"pass {attempt}: moved {report.total_bytes / 2**20:7.1f} MB "
              f"in {sum(e.batches for e in report.events):>6} batches, "
              f"stall {report.total_stall_s * 1e6:6.1f} us, "
              f"{report.hidden_fraction:6.1%} hidden, "
              f"cache {report.cache_hits} hits / "
              f"{report.cache_misses} misses")
    print(f"history recorder: {hemera.history.hits} hits, "
          f"{hemera.history.misses} misses (prefetch driver)")


def main():
    trace = build_application()
    aether = Aether(SET_I, SET_II,
                    key_storage_bytes=FAST_CONFIG.key_storage_bytes,
                    hbm_bandwidth=FAST_CONFIG.hbm_bandwidth_bytes,
                    modops_per_second=FAST_CONFIG
                    .effective_modops_per_second())
    print(f"application: {len(trace)} ops, "
          f"{len(trace.key_switch_ops())} key-switches, "
          f"{len(trace.hoist_groups())} hoisting candidates")
    show_mct(aether, trace)
    config = aether.run(trace)
    show_decisions(config)
    show_hemera(aether, config, trace)


if __name__ == "__main__":
    main()
