#!/usr/bin/env python
"""Encrypted logistic regression — a functional mini-HELR.

The paper's HELR benchmark (Sec. 6.2) trains a binary classifier on
encrypted data.  This example runs the *actual computation* at
scaled-down parameters: features stay encrypted end to end, gradients
are computed homomorphically with the paper's building blocks
(PMult + rotate-and-sum + polynomial sigmoid), and only the final
model is decrypted.

Run:  python examples/encrypted_logistic_regression.py
"""

import numpy as np

from repro.ckks import CkksContext, linalg, toy_params

FEATURES = 4
SAMPLES = 8
ITERATIONS = 10
LEARNING_RATE = 1.0


def make_dataset(rng):
    """Linearly separable toy data with labels in {0, 1}."""
    true_w = np.array([1.0, -2.0, 0.5, 1.5])
    x = rng.uniform(-1, 1, (SAMPLES, FEATURES))
    logits = x @ true_w
    y = (logits > 0).astype(float)
    return x, y, true_w


def train_encrypted(ctx, x, y):
    """One ciphertext per sample; weights stay in plaintext (server
    model update), features stay encrypted (client data)."""
    weights = np.zeros(FEATURES)
    slots = ctx.params.num_slots
    encrypted_rows = [ctx.encrypt(np.tile(row, slots // FEATURES))
                      for row in x]
    for it in range(ITERATIONS):
        gradient = np.zeros(FEATURES)
        for ct_row, label in zip(encrypted_rows, y):
            # score = <x, w> homomorphically (PMult + rotate-and-sum)
            score_ct = linalg.inner_product(ctx, ct_row, weights)
            # sigmoid via degree-3 polynomial (Sec. 2.2.2)
            prob_ct = linalg.apply_sigmoid(ctx, score_ct, degree=3)
            # error * x, still encrypted
            err_ct = ctx.add_scalar(prob_ct, -label)
            grad_ct = ctx.rescale(ctx.multiply(
                err_ct, ctx.level_down(ct_row, err_ct.level)))
            gradient += ctx.decrypt(grad_ct)[:FEATURES].real
        weights -= LEARNING_RATE * gradient / SAMPLES
        acc = accuracy(x, y, weights)
        print(f"iteration {it + 1}: accuracy {acc:.2f}, "
              f"w = {np.round(weights, 3)}")
    return weights


def accuracy(x, y, w):
    return float(np.mean(((x @ w) > 0).astype(float) == y))


def main():
    rng = np.random.default_rng(7)
    x, y, true_w = make_dataset(rng)
    # Deep-enough toy chain: inner product (1) + sigmoid (3) +
    # gradient (1) levels per iteration, bootstrapping replaced by
    # re-encryption at these parameters.
    # scale == prime size keeps the scale stable across the five
    # rescales each iteration performs (score + sigmoid + gradient).
    ctx = CkksContext(toy_params(ring_degree=64, max_level=6, alpha=2,
                                 prime_bits=28, scale_bits=28), seed=1)
    print(f"training on {SAMPLES} encrypted samples, "
          f"{FEATURES} features, {ITERATIONS} iterations")
    weights = train_encrypted(ctx, x, y)
    print(f"\nfinal accuracy: {accuracy(x, y, weights):.2f}")
    print(f"true weights (direction): {np.round(true_w, 3)}")
    cos = weights @ true_w / (np.linalg.norm(weights) *
                              np.linalg.norm(true_w))
    print(f"cosine(learned, true) = {cos:.3f}")


if __name__ == "__main__":
    main()
