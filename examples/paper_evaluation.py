#!/usr/bin/env python
"""Regenerate the paper's full evaluation in one run.

Walks every table and figure of FAST's Sec. 7 through the analysis
layer and prints measured-vs-paper values.  This is the script behind
EXPERIMENTS.md.

Run:  python examples/paper_evaluation.py
"""

import numpy as np

from repro.analysis import figures as F


def section(title):
    print("\n" + "=" * 70)
    print(title)
    print("=" * 70)


def main():
    section("Fig. 2 — key-switching cost crossover")
    rows = F.figure2a()
    low = np.mean([r["quantitative_line"] for r in rows
                   if 5 <= r["level"] <= 12])
    high = np.mean([r["quantitative_line"] for r in rows
                    if 25 <= r["level"] <= 35])
    print(F.format_rows([r for r in rows if r["level"] % 5 == 0]))
    print(f"hybrid advantage l in [5,12]:  {(1 - low):.1%} (paper 23.5%)")
    print(f"KLSS advantage l in [25,35]:   {(1 - 1 / high):.1%} "
          f"(paper 15.2%)")

    section("Fig. 3 — hoisting and working sets")
    print(F.format_rows([r for r in F.figure3a()
                         if r["level"] in (15, 25, 35)]))
    print(F.format_rows([r for r in F.figure3b()
                         if r["level"] in (15, 25, 35)], precision=1))

    section("Fig. 4 — ALU scaling")
    data = F.figure4()
    print(F.format_rows([{"bits": b, **data["modular_multiplier"][b]}
                         for b in sorted(data["modular_multiplier"])]))

    section("Tables 2-4 — configuration and hardware")
    print(F.format_rows(F.table2()))
    print()
    print(F.format_rows([{"component": k, **v}
                         for k, v in F.table3().items()], precision=2))
    print()
    print(F.format_rows(F.table4(), precision=1))

    section("Table 5 — workload execution time")
    t5 = F.table5()
    print(F.format_rows(
        [{"accelerator": n, **{k: v if v is not None else float("nan")
                               for k, v in row.items()}}
         for n, row in t5["published_ms"].items()]
        + [{"accelerator": "FAST (ours)", **t5["ours_ms"]}],
        precision=2))
    print("speedup vs SHARP:",
          {k: round(v, 2) for k, v in t5["speedup_vs_sharp"].items()},
          "(paper avg 1.85x)")

    section("Table 6 — T_mult,a/s")
    print(F.format_rows(F.table6()["rows"], precision=1))

    section("Table 7 — power / energy / EDP")
    print(F.format_rows([{"workload": k, **v}
                         for k, v in F.table7().items()], precision=4))

    section("Fig. 10 — policy breakdown")
    f10 = F.figure10()
    for label in ("OneKSW", "Hoisting", "Aether"):
        print(f"{label:10s} {f10[label]['total_ms']:7.3f} ms  "
              f"({f10[label]['speedup_vs_oneksw']:.2f}x)  "
              f"methods={f10[label]['method_ops']}")

    section("Fig. 11 — utilisation and op composition")
    f11a = F.figure11a()
    print("average utilisation:",
          {k: f"{v:.0%}" for k, v in f11a["average"].items()})
    print("paper:", {k: f"{v:.0%}"
                     for k, v in f11a["paper_average"].items()})
    f11b = F.figure11b()
    print(f"FAST vs hybrid-only total modops: "
          f"{f11b['fast_vs_hybrid_total']:.3f} "
          f"(paper {f11b['paper_fast_vs_hybrid']:.3f})")

    section("Fig. 12 — ablation")
    f12 = F.figure12()
    for label in ("FAST", "FAST-noTBM", "36bit-ALU"):
        print(f"{label:12s} {f12[label]['total_ms']:7.3f} ms  "
              f"{f12[label]['speedup_vs_36bit']:.2f}x vs 36-bit ALU")
    print("paper:", f12["paper"])

    section("Fig. 13 — sensitivity")
    print(F.format_rows(F.figure13a()))
    print()
    print(F.format_rows(F.figure13b()))


if __name__ == "__main__":
    main()
