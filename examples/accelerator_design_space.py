#!/usr/bin/env python
"""Design-space exploration of the FAST architecture.

Sweeps the axes the paper studies — cluster count, scratchpad size,
datapath (TBM / fixed 60-bit / 36-bit ALU) — plus two ablations the
paper's design relies on but does not isolate (the EKG's key halving
and ARK-style Min-KS key reuse), and reports latency, area and
performance-per-area for fully-packed bootstrapping.

Run:  python examples/accelerator_design_space.py
"""

from repro.analysis.figures import format_rows
from repro.hw import area as hw_area
from repro.hw.config import (FAST_CONFIG, FAST_36BIT_ALU,
                             FAST_WITHOUT_TBM, cluster_sweep,
                             fast_variant, memory_sweep)
from repro.sim.engine import Engine
from repro.workloads import bootstrap_trace


def run_point(config, policy="aether", trace=None):
    trace = trace or bootstrap_trace()
    result = Engine(config, policy_mode=policy).run(trace)
    area = hw_area.area_for(config)
    return {
        "design": config.name,
        "latency_ms": result.total_s * 1e3,
        "area_mm2": area,
        "perf_per_area_1_per_s_mm2": 1.0 / (result.total_s * area),
        "evk_MB": result.key_bytes / 1e6,
        "nttu_util": result.utilisation()["nttu"],
    }


def main():
    trace = bootstrap_trace()

    print("=== datapath ablation (Fig. 12 axis) ===")
    rows = [run_point(FAST_CONFIG, trace=trace),
            run_point(FAST_WITHOUT_TBM, trace=trace),
            run_point(FAST_36BIT_ALU, policy="hybrid-only", trace=trace)]
    print(format_rows(rows))

    print("\n=== cluster scaling (Fig. 13b axis) ===")
    rows = [run_point(c, trace=trace) for c in cluster_sweep([2, 4, 8])]
    print(format_rows(rows))

    print("\n=== scratchpad scaling (Fig. 13a axis) ===")
    rows = [run_point(c, trace=trace)
            for c in memory_sweep([128, 192, 245, 281, 384])]
    print(format_rows(rows))

    print("\n=== memory-system ablations (EKG, Min-KS) ===")
    rows = [run_point(FAST_CONFIG, trace=trace),
            run_point(fast_variant("FAST-noEKG", use_ekg=False),
                      trace=trace),
            run_point(fast_variant("FAST-noMinKS", use_minks=False),
                      trace=trace),
            run_point(fast_variant("FAST-noEKG-noMinKS", use_ekg=False,
                                   use_minks=False), trace=trace)]
    print(format_rows(rows))
    print("\n(the EKG halves key bytes; Min-KS reuses one compact key "
          "across levels — both are load-bearing for the 1 TB/s HBM)")


if __name__ == "__main__":
    main()
