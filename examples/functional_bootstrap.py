#!/usr/bin/env python
"""Functional CKKS bootstrapping, end to end, on real ciphertexts.

The other examples *simulate* bootstrapping on the FAST chip; this
one *executes* it: a ciphertext is driven down to level 0 (no
multiplications left), refreshed through
ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff, and then used for
further multiplications — the operation that makes FHE "fully"
homomorphic, and the workload FAST spends 87-95% of its time on.

Run:  python examples/functional_bootstrap.py
"""

import time

import numpy as np

from repro.ckks import CkksContext
from repro.ckks.bootstrap import Bootstrapper, bootstrappable_toy_params
from repro.ckks.rns import compose_crt


def main():
    t0 = time.time()
    params = bootstrappable_toy_params()
    ctx = CkksContext(params, seed=5)
    bs = Bootstrapper(ctx)
    print(f"ring N={params.ring_degree}, chain of {params.max_level + 1} "
          f"primes, q0={ctx.q_chain[0].bit_length()} bits, "
          f"scale 2^{params.scale_bits}")
    print(f"sine approximation: degree {len(bs.sine_cheb) - 1} Chebyshev "
          f"series, max fit error {bs.sine_fit_error:.1e}")

    msg = np.array([0.5, -0.25, 0.125, 0.375] * 4)
    ct = ctx.encrypt(msg, level=0)
    print(f"\ninput: level {ct.level} (exhausted — no multiplications "
          f"possible), message {msg[:4]}")

    raised = bs.mod_raise(ct)
    s = ctx.secret_key.as_rns(raised.moduli)
    lifted = np.array(compose_crt((raised.c0 + raised.c1 * s).to_coeff()),
                      dtype=float)
    print(f"ModRaise    -> level {raised.level}; plaintext now "
          f"Delta*m + q0*I with |I| <= "
          f"{np.max(np.abs(np.round(lifted / ctx.q_chain[0]))):.0f}")

    slots = bs.coeff_to_slot(raised)
    print(f"CoeffToSlot -> level {slots.level}; coefficients now sit "
          f"in slots")

    reduced = bs.eval_mod(slots)
    print(f"EvalMod     -> level {reduced.level}; q0*I removed by the "
          f"homomorphic sine")

    out = bs.slot_to_coeff(reduced)
    got = ctx.decrypt(out)[:16]
    err = np.max(np.abs(got - msg))
    print(f"SlotToCoeff -> level {out.level}")
    print(f"\nrefreshed message: {np.round(got[:4].real, 4)}")
    print(f"bootstrap error  : {err:.4f}")

    squared = ctx.rescale(ctx.multiply(out, out))
    sq_err = np.max(np.abs(ctx.decrypt(squared)[:16] - msg ** 2))
    print(f"post-refresh x*x : error {sq_err:.4f} at level "
          f"{squared.level} — the ciphertext multiplies again")
    print(f"\ntotal {time.time() - t0:.1f} s")


if __name__ == "__main__":
    main()
