#!/usr/bin/env python
"""Quickstart: encrypted compute + a FAST accelerator simulation.

Part 1 runs real RNS-CKKS computation (scaled-down ring) through both
of the paper's key-switching methods.  Part 2 simulates the paper's
headline experiment — fully-packed bootstrapping on the FAST chip —
and prints the latency, utilisation and method mix.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CkksContext, toy_params
from repro.sim.engine import Engine
from repro.workloads import bootstrap_trace


def encrypted_compute_demo():
    print("=" * 64)
    print("Part 1: functional RNS-CKKS (N=64 toy ring)")
    print("=" * 64)
    ctx = CkksContext(toy_params(ring_degree=64, max_level=6, alpha=2,
                                 prime_bits=28), seed=0)
    x = np.array([1.5, -2.0, 0.25, 3.0])
    y = np.array([0.5, 4.0, -1.0, 2.0])
    ct_x = ctx.encrypt(np.tile(x, 8))
    ct_y = ctx.encrypt(np.tile(y, 8))

    total = ctx.add(ct_x, ct_y)
    print("x + y       =", np.round(ctx.decrypt(total)[:4].real, 4))

    prod_hybrid = ctx.rescale(ctx.multiply(ct_x, ct_y, method="hybrid"))
    print("x * y (hybrid key-switching) =",
          np.round(ctx.decrypt(prod_hybrid)[:4].real, 4))

    prod_klss = ctx.rescale(ctx.multiply(ct_x, ct_y, method="klss"))
    print("x * y (KLSS key-switching)   =",
          np.round(ctx.decrypt(prod_klss)[:4].real, 4))

    rotated = ctx.rotate(ct_x, 1)
    print("rot(x, 1)   =", np.round(ctx.decrypt(rotated)[:4].real, 4))

    hoisted = ctx.hoisted_rotate(ct_x, [1, 2, 3])
    print("hoisted rotations (one decomposition, three automorphisms):")
    for steps, ct in zip([1, 2, 3], hoisted):
        print(f"  rot(x, {steps}) =",
              np.round(ctx.decrypt(ct)[:4].real, 4))


def accelerator_demo():
    print()
    print("=" * 64)
    print("Part 2: FAST simulating fully-packed bootstrapping")
    print("=" * 64)
    engine = Engine()  # the paper's FAST configuration
    trace = bootstrap_trace()
    result = engine.run(trace)
    config = engine.aether.run(trace)

    print(f"trace: {len(trace)} FHE ops, "
          f"{len(trace.key_switch_ops())} key-switches")
    print(f"bootstrap latency: {result.total_s * 1e3:.3f} ms "
          f"(paper: 1.38 ms)")
    print(f"Aether decisions : {config.method_histogram()} "
          f"(config file: {config.size_bytes()} bytes)")
    print(f"evk traffic      : {result.key_bytes / 1e6:.0f} MB, "
          f"stalls {result.key_stall_s * 1e6:.0f} us")
    print("unit utilisation :",
          {k: f"{v:.0%}" for k, v in result.utilisation().items()})


if __name__ == "__main__":
    encrypted_compute_demo()
    accelerator_demo()
