"""The benchmark harness behind ``python -m repro bench``.

Each workload is simulated ``--repeats`` times with tracing disabled
(best wall time is reported, so one-off interpreter hiccups don't
pollute the baseline); the simulated results themselves are
deterministic and asserted identical across repeats.  ``--quick``
slices the ResNet-20 trace to its opening ops, which keeps CI runs
fast while still exercising every workload generator and both
key-switching methods.

``--chrome-trace``/``--obs-json`` rerun each workload once with the
observability layer enabled *after* timing, so exported timelines
never contaminate the wall-time numbers.

Heavy imports stay inside functions so ``python -m repro --help``
stays instant.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

BENCH_SCHEMA = "repro-bench/v10"
DEFAULT_OUT = "BENCH_sim.json"
DEFAULT_PARAMS_MODE = "full"
QUICK_RESNET_OPS = 1500
# Simulated latency is deterministic; any drift beyond numeric noise
# is a real model change.  Wall time is host-dependent, so the bar is
# deliberately loose and only catches order-of-magnitude slumps.
DEFAULT_SIM_TOLERANCE = 0.01
DEFAULT_WALL_TOLERANCE = 1.0


def _slice_trace(trace, max_ops: int):
    from repro.core.optrace import OpTrace
    if len(trace) <= max_ops:
        return trace
    return OpTrace(list(trace)[:max_ops],
                   name=f"{trace.name}[:{max_ops}]")


def build_workloads(quick: bool = False) -> dict:
    """Name -> OpTrace for the Table 5 workloads."""
    from repro.workloads import bootstrap_trace, helr_trace, resnet20_trace
    traces = {
        "Bootstrap": bootstrap_trace(),
        "HELR256": helr_trace(batch=256),
        "HELR1024": helr_trace(batch=1024),
        "ResNet-20": resnet20_trace(),
    }
    if quick:
        traces["ResNet-20"] = _slice_trace(traces["ResNet-20"],
                                           QUICK_RESNET_OPS)
    return traces


def _measure(engine, trace, repeats: int) -> dict:
    """Simulate one workload; returns its BENCH record."""
    walls = []
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run = engine.run(trace)
        walls.append(time.perf_counter() - start)
        if result is not None and run.total_s != result.total_s:
            raise AssertionError(
                f"simulation of {trace.name!r} is not deterministic")
        result = run
    return {
        "wall_s": min(walls),
        "wall_s_all": walls,
        "sim_s": result.total_s,
        "sim_ms": result.total_s * 1e3,
        "num_trace_ops": len(trace),
        "num_ops": result.num_ops,
        "num_key_switches": result.num_key_switches,
        "utilisation": {u: round(v, 6)
                        for u, v in result.utilisation().items()},
        "key_cache_hit_rate": result.key_cache_hit_rate,
        "key_cache_hits": result.key_cache_hits,
        "key_cache_misses": result.key_cache_misses,
        "key_stall_s": result.key_stall_s,
        "hbm_bytes": result.hbm_bytes,
        "key_bytes": result.key_bytes,
        "plaintext_bytes": result.plaintext_bytes,
        "method_ops": dict(result.method_ops),
        "stage_s": {k: v for k, v in sorted(result.stage_s.items())},
    }


def run_benchmarks(config=None, quick: bool = False,
                   repeats: int = 3,
                   params_mode: str = DEFAULT_PARAMS_MODE,
                   clusters=None, backends=None) -> dict:
    """Run every workload; returns the full report dict."""
    from repro import __version__, obs
    from repro.bench import (backend as backend_bench, dataflow,
                             keyswitch, micro, ntt_fused, sched, serving)
    from repro.hw.config import FAST_CONFIG
    from repro.sim.engine import Engine

    config = config or FAST_CONFIG
    clusters = tuple(clusters or sched.DEFAULT_CLUSTERS)
    was_enabled = obs.enabled()
    obs.configure(enabled=False)  # timing runs are never traced
    try:
        workloads = {}
        for name, trace in build_workloads(quick).items():
            # Fresh engine per workload: cold evk-cache, cold Aether —
            # the regression numbers must not depend on run order.
            workloads[name] = _measure(Engine(config), trace, repeats)
        micro_report = micro.run_micro(params_mode=params_mode, quick=quick)
        ntt_fused_report = ntt_fused.run_ntt_fused(quick=quick)
        keyswitch_report = keyswitch.run_keyswitch(quick=quick)
        sched_report = sched.run_sched(quick=quick, clusters=clusters)
        throughput_report = sched.run_throughput(quick=quick,
                                                 clusters=clusters)
        dataflow_report = dataflow.run_dataflow(quick=quick)
        serving_report = serving.run_serving(quick=quick)
        backend_report = backend_bench.run_backend(quick=quick,
                                                   backends=backends)
    finally:
        obs.configure(enabled=was_enabled)
    return {
        "schema": BENCH_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repro_version": __version__,
        "quick": quick,
        "repeats": repeats,
        "params_mode": params_mode,
        "config": {
            "name": config.name,
            "clusters": config.clusters,
            "hbm_bandwidth_bytes": config.hbm_bandwidth_bytes,
            "key_storage_bytes": config.key_storage_bytes,
            "onchip_memory_bytes": config.onchip_memory_bytes,
        },
        "host": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "workloads": workloads,
        "micro": micro_report,
        "ntt_fused": ntt_fused_report,
        "keyswitch": keyswitch_report,
        "sched": sched_report,
        "throughput": throughput_report,
        "dataflow": dataflow_report,
        "serving": serving_report,
        "backend": backend_report,
    }


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1, sort_keys=False)
        fh.write("\n")


def compare_reports(current: dict, baseline: dict,
                    sim_tolerance: float = DEFAULT_SIM_TOLERANCE,
                    wall_tolerance: float = DEFAULT_WALL_TOLERANCE
                    ) -> list[str]:
    """Regressions of ``current`` against ``baseline`` (worse only)."""
    regressions: list[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, record in current.get("workloads", {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        for key, tolerance in (("sim_s", sim_tolerance),
                               ("wall_s", wall_tolerance)):
            now, ref = record.get(key), base.get(key)
            if not ref or now is None:
                continue
            ratio = now / ref
            if ratio > 1.0 + tolerance:
                regressions.append(
                    f"{name}: {key} {now:.6g} vs baseline {ref:.6g} "
                    f"(+{(ratio - 1) * 100:.1f}%, "
                    f"tolerance {tolerance * 100:.0f}%)")
    regressions.extend(_compare_micro(current.get("micro") or {},
                                      baseline.get("micro") or {},
                                      wall_tolerance))
    regressions.extend(_compare_ntt_fused(current.get("ntt_fused") or {},
                                          baseline.get("ntt_fused") or {},
                                          wall_tolerance))
    regressions.extend(_compare_keyswitch(current.get("keyswitch") or {},
                                          baseline.get("keyswitch") or {},
                                          wall_tolerance))
    regressions.extend(_compare_sched(current.get("sched") or {},
                                      baseline.get("sched") or {},
                                      sim_tolerance))
    regressions.extend(_compare_throughput(
        current.get("throughput") or {},
        baseline.get("throughput") or {}, sim_tolerance))
    regressions.extend(_compare_dataflow(current.get("dataflow") or {},
                                         baseline.get("dataflow") or {},
                                         wall_tolerance))
    regressions.extend(_compare_serving(current.get("serving") or {},
                                        baseline.get("serving") or {},
                                        wall_tolerance))
    regressions.extend(_compare_backend(current.get("backend") or {},
                                        baseline.get("backend") or {},
                                        wall_tolerance))
    return regressions


def _compare_backend(current: dict, baseline: dict,
                     wall_tolerance: float) -> list[str]:
    """Backend-section regressions against a baseline report.

    Only the numpy baseline path is wall-compared (accelerator entries
    depend on which devices the host happens to have), and only when
    the NTT ring degree matches (quick runs time a smaller transform).
    Bit-exactness going False on a backend the baseline had exact is
    always a regression.  Pre-v9 baselines lack the section and are
    skipped.
    """
    if not current or not baseline:
        return []
    regressions = []
    cur_entries = current.get("backends", {})
    base_entries = baseline.get("backends", {})
    for name, base in base_entries.items():
        entry = cur_entries.get(name)
        if entry is None:
            continue
        if base.get("bit_exact") and not entry.get("bit_exact"):
            regressions.append(
                f"backend.{name}: bit_exact regressed to False "
                "(baseline was exact)")
    now_entry = cur_entries.get("numpy", {})
    ref_entry = base_entries.get("numpy", {})
    if now_entry.get("ntt_ring_degree") != ref_entry.get("ntt_ring_degree"):
        return regressions
    for label in ("modmul_best_s", "ntt_best_s", "bconv_best_s",
                  "kmu_best_s"):
        now = now_entry.get("micro", {}).get(label)
        ref = ref_entry.get("micro", {}).get(label)
        if not ref or now is None:
            continue
        ratio = now / ref
        if ratio > 1.0 + wall_tolerance:
            regressions.append(
                f"backend.numpy.{label}: {now:.6g} vs baseline "
                f"{ref:.6g} (+{(ratio - 1) * 100:.1f}%, "
                f"tolerance {wall_tolerance * 100:.0f}%)")
    return regressions


def _compare_serving(current: dict, baseline: dict,
                     wall_tolerance: float) -> list[str]:
    """Serving-layer regressions against a baseline report.

    Loadgen rps is wall-clock on a live server, so only the loose
    host tolerance applies (to the *speedup ratio*, which divides out
    most host variance); the evk-admission miss counts are exact
    deterministic integers.  Pre-v8 baselines lack the section and
    are skipped.
    """
    if not current or not baseline:
        return []
    regressions = []
    now = (current.get("loadgen") or {}).get("speedup")
    ref = (baseline.get("loadgen") or {}).get("speedup")
    if ref and now is not None and now < ref / (1.0 + wall_tolerance):
        regressions.append(
            f"serving.loadgen: speedup {now:.2f}x vs baseline "
            f"{ref:.2f}x (-{(1 - now / ref) * 100:.0f}%, tolerance "
            f"{wall_tolerance * 100:.0f}%)")
    now = (current.get("evk_admission") or {}).get("aware", {}) \
        .get("misses")
    ref = (baseline.get("evk_admission") or {}).get("aware", {}) \
        .get("misses")
    if ref is not None and now is not None and now > ref:
        regressions.append(
            f"serving.evk_admission: aware-order misses {now} vs "
            f"baseline {ref} (admission policy lost locality)")
    return regressions


def _compare_dataflow(current: dict, baseline: dict,
                      wall_tolerance: float) -> list[str]:
    """Dataflow-optimiser regressions against a baseline report.

    The NTT limb counts are exact integers over fixed workload traces,
    so *any* growth is a real optimiser regression; the fused-kernel
    wall gets the loose host-dependent tolerance.  Pre-v7 baselines
    lack the section and are skipped.
    """
    if not current or not baseline:
        return []
    regressions = []
    base_workloads = baseline.get("workloads", {})
    for name, record in current.get("workloads", {}).items():
        ref = base_workloads.get(name, {}).get("ntt_limb_calls_after")
        now = record.get("ntt_limb_calls_after")
        if ref is None or now is None:
            continue
        if now > ref:
            regressions.append(
                f"dataflow.{name}: ntt_limb_calls_after {now} vs "
                f"baseline {ref} (optimiser lost rewrites)")
    now = current.get("fused_rescale", {}).get("fused_best_s")
    ref = baseline.get("fused_rescale", {}).get("fused_best_s")
    if ref and now is not None and now / ref > 1.0 + wall_tolerance:
        regressions.append(
            f"dataflow.fused_rescale: fused_best_s {now:.6g} vs "
            f"baseline {ref:.6g} (+{(now / ref - 1) * 100:.1f}%, "
            f"tolerance {wall_tolerance * 100:.0f}%)")
    return regressions


def _compare_throughput(current: dict, baseline: dict,
                        sim_tolerance: float) -> list[str]:
    """Amortized-latency regressions per (clusters, streams) point.

    Deterministic simulated numbers; pre-v6 baselines lack the
    section and are skipped.
    """
    if not current or not baseline:
        return []
    base_points = {(p.get("clusters"), p.get("streams")): p
                   for p in baseline.get("points", [])}
    regressions = []
    for point in current.get("points", []):
        key = (point.get("clusters"), point.get("streams"))
        ref = base_points.get(key, {}).get("amortized_s")
        now = point.get("amortized_s")
        if not ref or now is None:
            continue
        ratio = now / ref
        if ratio > 1.0 + sim_tolerance:
            regressions.append(
                f"throughput@{key[0]}C/{key[1]}S: amortized_s "
                f"{now:.6g} vs baseline {ref:.6g} "
                f"(+{(ratio - 1) * 100:.1f}%, "
                f"tolerance {sim_tolerance * 100:.0f}%)")
    return regressions


def _compare_ntt_fused(current: dict, baseline: dict,
                       wall_tolerance: float) -> list[str]:
    """Fused-NTT regressions against a baseline report.

    Fused-tier walls per case get the loose host tolerance; the
    speedup over the radix-2 oracle divides out most host variance so
    shrinking below the baseline by the same factor is flagged too.
    Steady-state allocation increments are exact integers: any growth
    over a zero baseline is a workspace-pooling regression.  Pre-v10
    baselines lack the section and are skipped.
    """
    if not current or not baseline:
        return []
    regressions = []
    base_cases = baseline.get("cases", {})
    for name, case in current.get("cases", {}).items():
        base = base_cases.get(name, {})
        if case.get("ring_degree") != base.get("ring_degree"):
            continue
        now_fused, ref_fused = case.get("radix4_best_s"), \
            base.get("radix4_best_s")
        if ref_fused and now_fused is not None \
                and now_fused / ref_fused > 1.0 + wall_tolerance:
            regressions.append(
                f"ntt_fused.{name}: radix4_best_s {now_fused:.6g} vs "
                f"baseline {ref_fused:.6g} "
                f"(+{(now_fused / ref_fused - 1) * 100:.1f}%, "
                f"tolerance {wall_tolerance * 100:.0f}%)")
        now, ref = case.get("speedup"), base.get("speedup")
        if ref and now is not None and now < ref / (1.0 + wall_tolerance):
            regressions.append(
                f"ntt_fused.{name}: speedup {now:.2f}x vs baseline "
                f"{ref:.2f}x (-{(1 - now / ref) * 100:.0f}%, tolerance "
                f"{wall_tolerance * 100:.0f}%)")
    base_inc = (baseline.get("functional_alloc") or {}) \
        .get("steady_alloc_increments", {})
    cur_inc = (current.get("functional_alloc") or {}) \
        .get("steady_alloc_increments", {})
    for domain, ref in base_inc.items():
        now = cur_inc.get(domain)
        if now is not None and now > ref:
            regressions.append(
                f"ntt_fused.functional_alloc.{domain}: steady-state "
                f"allocations {now} vs baseline {ref} (a warmed kernel "
                "started allocating)")
    return regressions


def _compare_keyswitch(current: dict, baseline: dict,
                       wall_tolerance: float) -> list[str]:
    """Wall-time regressions in the keyswitch section.

    The section's shapes (ring degree, rotation count, Set-II-mini
    basis) are fixed constants, so the new-pipeline walls are
    comparable across runs; pre-v5 baselines simply lack the section
    and are skipped.
    """
    if not current or not baseline:
        return []
    pairs = [
        ("keyswitch.auto.gather_best_s",
         current.get("auto", {}).get("gather_best_s"),
         baseline.get("auto", {}).get("gather_best_s")),
        ("keyswitch.kmu.fused_best_s",
         current.get("kmu", {}).get("fused_best_s"),
         baseline.get("kmu", {}).get("fused_best_s")),
        ("keyswitch.hoisted.pipeline_new_s",
         current.get("hoisted", {}).get("pipeline_new_s"),
         baseline.get("hoisted", {}).get("pipeline_new_s")),
        ("keyswitch.hoisted.stage_new_s",
         current.get("hoisted", {}).get("stage_new_s"),
         baseline.get("hoisted", {}).get("stage_new_s")),
    ]
    regressions = []
    for label, now, ref in pairs:
        if not ref or now is None:
            continue
        ratio = now / ref
        if ratio > 1.0 + wall_tolerance:
            regressions.append(
                f"{label}: {now:.6g} vs baseline {ref:.6g} "
                f"(+{(ratio - 1) * 100:.1f}%, "
                f"tolerance {wall_tolerance * 100:.0f}%)")
    return regressions


def _compare_sched(current: dict, baseline: dict,
                   sim_tolerance: float) -> list[str]:
    """Scheduled-latency regressions per (workload, cluster count).

    Simulated numbers only — deterministic, so growth past the
    tolerance is a real scheduler/model change.
    """
    if not current or not baseline:
        return []
    regressions = []
    base_workloads = baseline.get("workloads", {})
    for name, record in current.get("workloads", {}).items():
        base_points = {p.get("clusters"): p
                       for p in base_workloads.get(name, {})
                       .get("points", [])}
        for point in record.get("points", []):
            ref = base_points.get(point.get("clusters"), {}).get("sim_s")
            now = point.get("sim_s")
            if not ref or now is None:
                continue
            ratio = now / ref
            if ratio > 1.0 + sim_tolerance:
                regressions.append(
                    f"sched.{name}@{point['clusters']}C: sim_s "
                    f"{now:.6g} vs baseline {ref:.6g} "
                    f"(+{(ratio - 1) * 100:.1f}%, "
                    f"tolerance {sim_tolerance * 100:.0f}%)")
    return regressions


def _compare_micro(current: dict, baseline: dict,
                   wall_tolerance: float) -> list[str]:
    """Wall-time regressions in the microbenchmark section.

    Only wall metrics measured at an identical configuration are
    compared: the NTT sizes are fixed constants, while the functional
    step is only comparable when ring degree and parameter mode match
    (quick runs use a smaller functional ring).
    """
    if not current or not baseline:
        return []
    pairs = [("micro.ntt.wide_best_s",
              current.get("ntt", {}).get("wide_best_s"),
              baseline.get("ntt", {}).get("wide_best_s"))]
    base_bconv = baseline.get("bconv", {}).get("cases", {})
    for name, case in current.get("bconv", {}).get("cases", {}).items():
        # The bconv ring degree and shapes are fixed constants, so the
        # matrix-kernel wall is comparable across runs (v3 baselines
        # simply lack the section and are skipped).
        pairs.append((f"micro.bconv.{name}.matrix_best_s",
                      case.get("matrix_best_s"),
                      base_bconv.get(name, {}).get("matrix_best_s")))
    cur_f = current.get("functional", {})
    base_f = baseline.get("functional", {})
    if (cur_f.get("ring_degree") == base_f.get("ring_degree")
            and cur_f.get("params_mode") == base_f.get("params_mode")):
        pairs.append(("micro.functional.keygen_wall_s",
                      cur_f.get("keygen_wall_s"),
                      base_f.get("keygen_wall_s")))
        pairs.append(("micro.functional.step_wall_s",
                      cur_f.get("step_wall_s"), base_f.get("step_wall_s")))
    regressions = []
    for label, now, ref in pairs:
        if not ref or now is None:
            continue
        ratio = now / ref
        if ratio > 1.0 + wall_tolerance:
            regressions.append(
                f"{label}: {now:.6g} vs baseline {ref:.6g} "
                f"(+{(ratio - 1) * 100:.1f}%, "
                f"tolerance {wall_tolerance * 100:.0f}%)")
    return regressions


def _export_traces(quick: bool, chrome_path: str | None,
                   json_path: str | None) -> None:
    """Post-timing traced rerun feeding the exporters."""
    from repro import obs
    from repro.sim.engine import Engine
    obs.configure(enabled=True, reset=True)
    try:
        for name, trace in build_workloads(quick).items():
            Engine().run(trace, name=name)
        if chrome_path:
            obs.dump_chrome_trace(chrome_path)
        if json_path:
            obs.dump_json(json_path)
    finally:
        obs.configure(enabled=False, reset=True)


def _format_table(report: dict) -> str:
    header = (f"{'workload':<12} {'wall ms':>9} {'sim ms':>9} "
              f"{'ops':>7} {'nttu%':>6} {'hbm%':>6} {'evk hit%':>8}")
    lines = [header, "-" * len(header)]
    for name, r in report["workloads"].items():
        util = r["utilisation"]
        lines.append(
            f"{name:<12} {r['wall_s'] * 1e3:>9.1f} {r['sim_ms']:>9.3f} "
            f"{r['num_ops']:>7d} {util.get('nttu', 0):>6.0%} "
            f"{util.get('hbm', 0):>6.0%} "
            f"{r['key_cache_hit_rate']:>8.0%}")
    micro = report.get("micro")
    if micro:
        ntt = micro["ntt"]
        functional = micro["functional"]
        paths = functional["width_paths"]
        by_width = {w: sum(v for k, v in paths.items()
                           if k.endswith("." + w))
                    for w in ("narrow", "wide", "object")}
        lines.append("")
        lines.append(
            f"micro: NTT N={ntt['ring_degree']} "
            f"q{ntt['modulus_bits']} wide {ntt['wide_best_s'] * 1e3:.2f} ms"
            f" vs object {ntt['object_best_s'] * 1e3:.2f} ms "
            f"({ntt['speedup_wide36_vs_object']:.1f}x, "
            f"bar {ntt['min_required_speedup']:.0f}x)")
        bconv = micro.get("bconv")
        if bconv:
            per_case = " ".join(
                f"{name}({case['k_in']}->{case['k_out']})="
                f"{case['speedup']:.1f}x"
                for name, case in bconv["cases"].items())
            lines.append(
                f"micro: BConv N={bconv['ring_degree']} matrix vs loop "
                f"{bconv['speedup_aggregate']:.1f}x aggregate "
                f"(bar {bconv['min_required_speedup']:.0f}x, "
                f"bit_exact={bconv['bit_exact']}) {per_case}")
        lines.append(
            f"micro: {functional['workload']} @ {functional['params']}: "
            f"keygen {functional['keygen_wall_s'] * 1e3:.0f} ms, "
            f"step {functional['step_wall_s'] * 1e3:.0f} ms, "
            f"err {functional['max_slot_error']:.2e}, width paths "
            f"narrow={by_width['narrow']} wide={by_width['wide']} "
            f"object={by_width['object']}, bconv "
            f"matrix={functional.get('bconv', {}).get('matrix', 0)} "
            f"fallback="
            f"{functional.get('bconv', {}).get('object_fallback', 0)}")
    fused = report.get("ntt_fused")
    if fused:
        lines.append("")
        for name, case in fused["cases"].items():
            lines.append(
                f"ntt_fused: {name} N={case['ring_degree']} "
                f"k={case['num_limbs']} radix4 "
                f"{case['radix4_best_s'] * 1e3:.2f} ms vs radix2 "
                f"{case['radix2_best_s'] * 1e3:.2f} ms "
                f"({case['speedup']:.2f}x, "
                f"bar {fused['min_required_speedup']:.1f}x, "
                f"bit_exact={case['bit_exact']})")
        alloc = fused["functional_alloc"]
        warm = alloc["warmup_allocs"]
        steady = alloc["steady_alloc_increments"]
        lines.append(
            f"ntt_fused: warmed {alloc['workload']} "
            f"N={alloc['ring_degree']} step "
            f"{alloc['steady_wall_s'] * 1e3:.0f} ms, kernel allocs "
            + " ".join(f"{d}={warm.get(d, 0)}->{steady.get(d, 0)}"
                       for d in sorted(warm))
            + " (warmup->steady)")
    keyswitch = report.get("keyswitch")
    if keyswitch:
        auto = keyswitch["auto"]
        kmu = keyswitch["kmu"]
        hoisted = keyswitch["hoisted"]
        lines.append("")
        lines.append(
            f"keyswitch: AutoU gather N={auto['ring_degree']} "
            f"k={auto['num_limbs']} {auto['gather_best_s'] * 1e6:.0f} us vs "
            f"roundtrip {auto['roundtrip_best_s'] * 1e3:.2f} ms "
            f"({auto['speedup']:.0f}x, bar {auto['min_required_speedup']:.0f}x,"
            f" bit_exact={auto['bit_exact']})")
        lines.append(
            f"keyswitch: KMU fused d={kmu['num_digits']} tier={kmu['tier']} "
            f"{kmu['fused_best_s'] * 1e3:.2f} ms vs loop "
            f"{kmu['reference_best_s'] * 1e3:.2f} ms ({kmu['speedup']:.1f}x, "
            f"bar {kmu['min_required_speedup']:.1f}x, "
            f"bit_exact={kmu['bit_exact']})")
        lines.append(
            f"keyswitch: hoisted {hoisted['rotations']} rot @ "
            f"{hoisted['params']}: stage {hoisted['stage_speedup']:.1f}x "
            f"(bar {hoisted['min_required_stage_speedup']:.0f}x), pipeline "
            f"{hoisted['pipeline_speedup']:.1f}x "
            f"(bar {hoisted['min_required_pipeline_speedup']:.1f}x), "
            f"loop_ntt_calls={hoisted['loop_ntt_calls']}, "
            f"bit_exact={hoisted['bit_exact']}")
        sweep = keyswitch.get("bsgs_sweep", {}).get("points", {})
        if sweep:
            lines.append("keyswitch: bsgs sweep " + " ".join(
                f"{p['rotations']}rot={p['speedup']:.2f}x"
                for p in sweep.values()))
    sched = report.get("sched")
    if sched:
        lines.append("")
        for name, record in sched["workloads"].items():
            speedups = " ".join(
                f"{p['clusters']}C={p['speedup']:.2f}x"
                for p in record["points"])
            lines.append(f"sched: {name:<10} {speedups}")
        executor = sched["executor"]
        lines.append(
            f"sched: executor {executor['trace']} "
            f"({executor['num_ops']} ops, {executor['workers']} workers)"
            f" bit_exact={executor['bit_exact']}"
            f" parallel={executor['parallel']}")
    throughput = report.get("throughput")
    if throughput:
        lines.append("")
        for count in throughput["clusters_axis"]:
            cells = " ".join(
                f"{p['streams']}S={p['amortized_speedup']:.2f}x"
                for p in throughput["points"]
                if p["clusters"] == count)
            lines.append(
                f"throughput: {throughput['workload']} {count}C {cells}")
        executor = throughput["executor"]
        lines.append(
            f"throughput: executor {executor['trace']} x"
            f"{executor['streams']} streams ({executor['num_ops']} ops)"
            f" bit_exact={executor['bit_exact']}"
            f" parallel={executor['parallel']}")
    dataflow = report.get("dataflow")
    if dataflow:
        lines.append("")
        for name, record in dataflow["workloads"].items():
            passes = " ".join(
                f"{entry['name']}={entry['rewrites']}"
                for entry in record.get("passes", []))
            lines.append(
                f"dataflow: {name:<10} NTT "
                f"{record['ntt_limb_calls_before']} -> "
                f"{record['ntt_limb_calls_after']} "
                f"(-{record['reduction_pct']:.1f}%) {passes}")
        fused = dataflow["fused_rescale"]
        lines.append(
            f"dataflow: fused rescale @ {fused['params']}: "
            f"{fused['fused_best_s'] * 1e3:.2f} ms vs sequential "
            f"{fused['sequential_best_s'] * 1e3:.2f} ms "
            f"({fused['speedup']:.2f}x, err {fused['fused_max_error']:.2e}, "
            f"kernel calls {fused['fused_kernel_calls']})")
        executor = dataflow["executor"]
        lines.append(
            f"dataflow: executor {executor['trace']} optimised "
            f"(-{executor['ntt_limb_calls_removed']} NTT limbs) "
            f"bit_exact={executor['bit_exact']} "
            f"evictions={dataflow['plan_cache_evictions']}")
    serving = report.get("serving")
    if serving:
        loadgen = serving["loadgen"]
        lines.append("")
        lines.append(
            f"serving: {loadgen['shape']} {loadgen['tenants']} tenants"
            f" x{loadgen['concurrency']} closed-loop: "
            f"{loadgen['requests']} req @ {loadgen['rps']:.0f} rps, "
            f"p50 {loadgen['p50_ms']:.0f} ms p99 "
            f"{loadgen['p99_ms']:.0f} ms, batch {loadgen['mean_batch']:.1f}"
            f" ({loadgen['batch_occupancy']:.0%} full)")
        lines.append(
            f"serving: speedup {loadgen['speedup']:.2f}x vs serial "
            f"(bar {serving['min_speedup']:.0f}x) "
            f"bit_exact={loadgen['bit_exact']} "
            f"errors={loadgen['errors']} "
            f"pin_violations={loadgen['pin_violations']}")
        admission = serving["evk_admission"]
        lines.append(
            f"serving: evk admission misses "
            f"{admission['naive']['misses']} -> "
            f"{admission['aware']['misses']} "
            f"(-{admission['miss_reduction']}) on the key-disjoint "
            f"pair")
    backend = report.get("backend")
    if backend:
        lines.append("")
        for name, entry in backend["backends"].items():
            micro_b = entry["micro"]
            cells = " ".join(
                f"{label.split('_', 1)[0]}="
                f"{micro_b[label] * 1e3:.2f}ms"
                for label in ("modmul_best_s", "ntt_best_s",
                              "bconv_best_s", "kmu_best_s"))
            status = "" if entry["available"] else \
                f" (fell back to {entry['resolved']})"
            lines.append(
                f"backend: {name:<6} [{entry['device']}]{status} {cells} "
                f"step {entry['functional']['step_wall_s'] * 1e3:.0f} ms "
                f"bit_exact={entry['bit_exact']} "
                f"fallbacks={entry['fallbacks']}")
    return "\n".join(lines)


def _format_profile(report: dict) -> str:
    """The ``--profile`` table: kernel.alloc.* warmup vs steady state."""
    alloc = (report.get("ntt_fused") or {}).get("functional_alloc", {})
    warm = alloc.get("warmup_allocs", {})
    steady = alloc.get("steady_alloc_increments", {})
    header = f"{'kernel domain':<16} {'warmup allocs':>14} {'steady':>8}"
    lines = [f"workspace ledger ({alloc.get('workload', '?')} "
             f"N={alloc.get('ring_degree', '?')}):",
             header, "-" * len(header)]
    for domain in sorted(set(warm) | set(steady)):
        lines.append(f"kernel.alloc.{domain:<4} {warm.get(domain, 0):>13d} "
                     f"{steady.get(domain, 0):>8d}")
    lines.append(f"{'total':<16} {sum(warm.values()):>14d} "
                 f"{sum(steady.values()):>8d}")
    return "\n".join(lines)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Bench CLI flags (shared by ``repro bench`` and the wrapper)."""
    parser.add_argument("--quick", action="store_true",
                        help="slice ResNet-20 for a fast CI-sized run")
    parser.add_argument("--params", choices=("full", "toy"),
                        default=DEFAULT_PARAMS_MODE,
                        help="functional microbenchmark parameters: "
                             "Set-II-shaped 36/60-bit wide-word primes "
                             "(full) or narrow int64 toy primes (toy)")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"report path (default {DEFAULT_OUT})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per workload (best wins)")
    parser.add_argument("--clusters", default="1,2,4,8",
                        help="comma-separated cluster counts for the "
                             "scheduler scaling curve")
    parser.add_argument("--backends", default=None,
                        help="comma-separated array backends to bench "
                             "(default: numpy, fake, plus any available "
                             "accelerator)")
    parser.add_argument("--profile", action="store_true",
                        help="print the kernel workspace-allocation "
                             "ledger (kernel.alloc.* warmup vs steady "
                             "state) after the results table")
    parser.add_argument("--baseline", default=None,
                        help="previous BENCH_*.json to regress against")
    parser.add_argument("--sim-tolerance", type=float,
                        default=DEFAULT_SIM_TOLERANCE,
                        help="allowed relative simulated-latency growth")
    parser.add_argument("--wall-tolerance", type=float,
                        default=DEFAULT_WALL_TOLERANCE,
                        help="allowed relative wall-time growth")
    parser.add_argument("--chrome-trace", default=None, metavar="PATH",
                        help="also write a chrome://tracing timeline")
    parser.add_argument("--obs-json", default=None, metavar="PATH",
                        help="also write the raw obs snapshot")
    parser.add_argument("--calibrate", action="store_true",
                        help="measure per-modop kernel unit costs and "
                             "the re-pinned Fig. 2 crossover; writes "
                             "CALIBRATION.json and skips the benchmarks")
    parser.add_argument("--calibration-out", default=None, metavar="PATH",
                        help="calibration report path "
                             "(default CALIBRATION.json)")


def run_cli(args: argparse.Namespace) -> int:
    from repro.bench.backend import validate_backend
    from repro.bench.dataflow import validate_dataflow
    from repro.bench.keyswitch import validate_keyswitch
    from repro.bench.micro import validate_micro
    from repro.bench.ntt_fused import validate_ntt_fused
    from repro.bench.sched import validate_sched, validate_throughput
    from repro.bench.serving import validate_serving
    if getattr(args, "calibrate", False):
        return _run_calibration(args)
    clusters = tuple(int(c) for c in str(args.clusters).split(",") if c)
    backends = None
    if getattr(args, "backends", None):
        backends = [b.strip() for b in str(args.backends).split(",")
                    if b.strip()]
    report = run_benchmarks(quick=args.quick, repeats=args.repeats,
                            params_mode=args.params, clusters=clusters,
                            backends=backends)
    write_report(report, args.out)
    print(_format_table(report))
    if getattr(args, "profile", False):
        print()
        print(_format_profile(report))
    print(f"\nwrote {args.out}"
          + (" (quick mode)" if args.quick else ""))
    violations = validate_micro(report["micro"]) \
        + validate_ntt_fused(report["ntt_fused"]) \
        + validate_keyswitch(report["keyswitch"]) \
        + validate_sched(report["sched"]) \
        + validate_throughput(report["throughput"]) \
        + validate_dataflow(report["dataflow"]) \
        + validate_serving(report["serving"]) \
        + validate_backend(report["backend"])
    if violations:
        print("\nACCEPTANCE VIOLATIONS:")
        for line in violations:
            print(f"  {line}")
        return 1
    if args.chrome_trace or args.obs_json:
        _export_traces(args.quick, args.chrome_trace, args.obs_json)
        for path in (args.chrome_trace, args.obs_json):
            if path:
                print(f"wrote {path}")
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        regressions = compare_reports(
            report, baseline, sim_tolerance=args.sim_tolerance,
            wall_tolerance=args.wall_tolerance)
        if regressions:
            print(f"\nREGRESSIONS vs {args.baseline}:")
            for line in regressions:
                print(f"  {line}")
            return 1
        print(f"\nno regressions vs {args.baseline}")
    return 0


def _run_calibration(args: argparse.Namespace) -> int:
    """``bench --calibrate``: measured unit costs -> CALIBRATION.json."""
    from repro.bench import calibrate
    report = calibrate.calibration_report()
    path = getattr(args, "calibration_out", None) or calibrate.DEFAULT_OUT
    calibrate.write_calibration(report, path)
    costs = report["kernel_costs"]
    print("measured kernel unit costs (s/modop):")
    for name in ("ntt", "bconv", "keymult", "elementwise"):
        print(f"  {name:<12} {costs[name]:.3e}")
    crossover = report["crossover"]
    analytic = crossover["analytic_level"]
    measured = crossover["measured_level"]
    print(f"Fig. 2 crossover (hybrid loses to KLSS above): "
          f"analytic level {analytic}, measured "
          f"{'level ' + str(measured) if measured is not None else 'never'}")
    for level, ratios in crossover["levels"].items():
        print(f"  level {level:>2}: analytic ratio "
              f"{ratios['analytic_ratio']:.2f}, measured "
              f"{ratios['measured_ratio']:.2f}")
    print(f"\nwrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="FAST simulator perf-regression benchmarks")
    add_arguments(parser)
    return run_cli(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
