"""Fused-NTT benchmarks: radix-4 lazy tier vs the radix-2 oracle.

The ``ntt_fused`` section of the bench report backs three acceptance
bars:

* **wall**: the fused batch NTT must beat the radix-2 oracle by
  :data:`MIN_FUSED_SPEEDUP` at Set-II-mini shapes (and is also timed
  at N=16384, the largest shape the software model runs routinely);
* **bit-exactness**: fused forward+inverse must match the oracle
  across the 26..62-bit width grid, including all-``q-1`` worst-case
  inputs;
* **allocations**: a warmed HELR-mini functional step must not bump
  any ``kernel.alloc.*`` ledger counter — the zero-steady-state-
  allocation claim is counter-asserted, never assumed.
"""

from __future__ import annotations

import time

import numpy as np

import repro.backend as backend_mod

#: the fused tier has to earn its complexity: >=1.3x over the radix-2
#: oracle at Set-II-mini batch shapes (measured ~2x in this model).
MIN_FUSED_SPEEDUP = 1.3

#: width grid for the bit-exactness differential (narrow + wide edges;
#: 62 bits is the 4q < 2^64 lazy-domain headroom boundary).
GRID_WIDTHS = (26, 28, 31, 36, 60, 62)
GRID_RING_DEGREE = 256

SET_II_RING_DEGREE = 4096
LARGE_RING_DEGREE = 16384
LARGE_LIMBS = 7


def _set_ii_basis(n: int) -> tuple[int, ...]:
    """Set-II-mini's Q-chain plus specials — the ModUp/ModDown basis."""
    from repro.ckks import primes
    from repro.ckks.params import set_ii_mini

    params = set_ii_mini(ring_degree=n)
    used: set[int] = set()
    first = primes.ntt_primes(1, params.first_prime_bits, n, exclude=used)
    used.update(first)
    scale = primes.ntt_primes(params.max_level, params.prime_bits, n,
                              exclude=used)
    used.update(scale)
    specials = primes.ntt_primes(params.num_special_primes,
                                 params.prime_bits, n, exclude=used)
    return tuple(first + scale + specials)


def _wall_case(n: int, moduli: tuple[int, ...], reps: int) -> dict:
    from repro.ckks.ntt import RADIX_FUSED, RADIX_ORACLE, get_batch_plan

    fused = get_batch_plan(n, moduli, radix=RADIX_FUSED)
    oracle = get_batch_plan(n, moduli, radix=RADIX_ORACLE)
    rng = np.random.default_rng(n)
    limbs = [rng.integers(0, q, size=n, dtype=np.uint64) for q in moduli]
    # Bit-exactness of this exact shape rides along with the timing.
    fwd_fused = fused.forward(limbs)
    fwd_oracle = oracle.forward(limbs)
    exact = all(
        np.array_equal(np.asarray(backend_mod.to_host(a), dtype=np.uint64),
                       np.asarray(backend_mod.to_host(b), dtype=np.uint64))
        for a, b in zip(fwd_fused, fwd_oracle))
    inv = fused.inverse(fwd_fused)
    exact = exact and all(
        np.array_equal(np.asarray(backend_mod.to_host(a), dtype=np.uint64),
                       x)
        for a, x in zip(inv, limbs))
    # Warmed, *paired* roundtrips: the tiers alternate inside one rep
    # loop so allocator and cache state is identical for both (the
    # radix-2 tier allocates per stage, and its wall is sensitive to
    # how warm the heap is — timing it in its own loop skews the
    # ratio either way depending on process history).
    for _ in range(3):
        fused.inverse(fused.forward(limbs))
        oracle.inverse(oracle.forward(limbs))
    fused_best = oracle_best = float("inf")
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fused.inverse(fused.forward(limbs))
        fused_best = min(fused_best, time.perf_counter() - start)
        start = time.perf_counter()
        oracle.inverse(oracle.forward(limbs))
        oracle_best = min(oracle_best, time.perf_counter() - start)
    return {
        "ring_degree": n,
        "num_limbs": len(moduli),
        "limb_bits": sorted({q.bit_length() for q in moduli}),
        "radix4_best_s": fused_best,
        "radix2_best_s": oracle_best,
        "speedup": oracle_best / fused_best,
        "bit_exact": exact,
    }


def _bit_exact_grid() -> dict:
    """Fused vs oracle scalar plans across the width grid."""
    from repro.ckks import primes
    from repro.ckks.rns import get_plan
    from repro.ckks.ntt import RADIX_FUSED, RADIX_ORACLE

    n = GRID_RING_DEGREE
    grid = {}
    for bits in GRID_WIDTHS:
        q = primes.ntt_primes(1, bits, n)[0]
        fused = get_plan(n, q, radix=RADIX_FUSED)
        oracle = get_plan(n, q, radix=RADIX_ORACLE)
        rng = np.random.default_rng(bits)
        ok = True
        for x in (rng.integers(0, q, size=n, dtype=np.uint64),
                  np.full(n, q - 1, dtype=np.uint64)):     # worst case
            ff = np.asarray(backend_mod.to_host(fused.forward(x.copy())),
                            dtype=np.uint64)
            fo = np.asarray(backend_mod.to_host(oracle.forward(x.copy())),
                            dtype=np.uint64)
            ok = ok and np.array_equal(ff, fo)
            inv_f = np.asarray(backend_mod.to_host(fused.inverse(ff)),
                               dtype=np.uint64)
            inv_o = np.asarray(backend_mod.to_host(oracle.inverse(fo)),
                               dtype=np.uint64)
            ok = ok and np.array_equal(inv_f, inv_o)
            ok = ok and np.array_equal(inv_f, x)
        grid[str(bits)] = bool(ok)
    return grid


def _functional_alloc_section(quick: bool) -> dict:
    """Warmed HELR-mini step: ``kernel.alloc.*`` must stay flat.

    One warmup step converges every workspace arena and BConv pool;
    the second identical step is the steady state, and any ledger
    increment in it is an allocation leak in a hot kernel.
    """
    from repro import obs
    from repro.backend.arena import DOMAINS
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID, KLSS
    from repro.ckks.params import set_ii_mini

    params = set_ii_mini(ring_degree=1024 if quick else 4096)
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        ctx = CkksContext(params, seed=11)
        top = params.max_level
        ctx.evaluation_key(HYBRID, top, "mult")
        ctx.evaluation_key(KLSS, top - 2, "mult")
        ctx.rotation_key(HYBRID, top - 3, 1)
        base = np.array([0.75, -1.25, 0.5, 1.5], dtype=np.complex128)
        message = np.tile(base, params.num_slots // 4)
        weights = np.full(params.num_slots, 0.5)

        def step():
            ct = ctx.encrypt(message)
            ct = ctx.multiply_rescale(ct, ct, method=HYBRID)
            ct = ctx.rescale(
                ctx.multiply_plain(ct, ctx.plain_for(ct, weights)))
            ct = ctx.multiply_rescale(ct, ct, method=KLSS)
            return ctx.rotate(ct, 1, method=HYBRID)

        step()                                   # warmup: arenas fill
        warm = dict(backend_mod.ledger_counters())
        start = time.perf_counter()
        step()                                   # steady state
        steady_wall = time.perf_counter() - start
        after = dict(backend_mod.ledger_counters())
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    # Every arena domain is reported even at zero: earlier bench
    # sections may have warmed the globally cached plans already, and
    # the gate's "steady state allocates nothing" claim must still
    # cover all of them.
    names = sorted({f"kernel.alloc.{d}" for d in DOMAINS}
                   | set(warm) | set(after))
    return {
        "workload": "HELR-mini step",
        "params": params.name,
        "ring_degree": params.ring_degree,
        "steady_wall_s": steady_wall,
        "warmup_allocs": {name.rsplit(".", 1)[-1]: int(warm.get(name, 0))
                          for name in names},
        "steady_alloc_increments": {
            name.rsplit(".", 1)[-1]:
                int(after.get(name, 0) - warm.get(name, 0))
            for name in names},
    }


def run_ntt_fused(quick: bool = False) -> dict:
    """The full ``ntt_fused`` block for the bench report."""
    reps = 5 if quick else 9
    set_ii = _wall_case(SET_II_RING_DEGREE,
                        _set_ii_basis(SET_II_RING_DEGREE), reps)
    from repro.ckks import primes
    large_moduli = tuple(
        primes.ntt_primes(1, 44, LARGE_RING_DEGREE)
        + primes.ntt_primes(LARGE_LIMBS - 1, 36, LARGE_RING_DEGREE))
    large = _wall_case(LARGE_RING_DEGREE, large_moduli,
                       max(1, reps // 2))
    grid = _bit_exact_grid()
    return {
        "cases": {
            "set_ii_mini": set_ii,
            "n16384": large,
        },
        "speedup_set_ii_mini": set_ii["speedup"],
        "min_required_speedup": MIN_FUSED_SPEEDUP,
        "bit_exact_grid": grid,
        "bit_exact": bool(set_ii["bit_exact"] and large["bit_exact"]
                          and all(grid.values())),
        "functional_alloc": _functional_alloc_section(quick),
    }


def validate_ntt_fused(section: dict) -> list[str]:
    """Acceptance-bar violations in an ``ntt_fused`` block (empty = pass)."""
    violations: list[str] = []
    speedup = section.get("speedup_set_ii_mini", 0.0)
    if speedup < MIN_FUSED_SPEEDUP:
        violations.append(
            f"ntt_fused: Set-II-mini speedup {speedup:.2f}x is below "
            f"the {MIN_FUSED_SPEEDUP:.1f}x bar")
    if not section.get("bit_exact", False):
        grid = section.get("bit_exact_grid", {})
        bad = [bits for bits, ok in grid.items() if not ok]
        violations.append(
            "ntt_fused: fused tier disagrees with the radix-2 oracle"
            + (f" at widths {bad}" if bad else ""))
    increments = (section.get("functional_alloc", {})
                  .get("steady_alloc_increments", {}))
    leaks = {name: count for name, count in increments.items() if count}
    if leaks:
        violations.append(
            f"ntt_fused: warmed functional step allocated workspaces "
            f"{leaks} (steady state must be zero)")
    return violations
