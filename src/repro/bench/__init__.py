"""``repro.bench`` — the perf-regression benchmark harness.

Runs the Table 5 workloads (bootstrap, HELR training iterations,
ResNet-20 trace slices) through the cycle simulator and writes
``BENCH_sim.json`` (schema ``repro-bench/v2``): per-workload host
wall-time, simulated latency, per-unit utilisation, Hemera cache-hit
rate and HBM traffic, plus a ``micro`` section with modmul/NTT
kernel microbenchmarks and a functional HELR-style step at toy or
Set-II-shaped wide-word parameters (``--params toy|full``), including
the width-path occupancy counters.  That file is the regression
baseline every perf-oriented PR is judged against — rerun with
``--baseline`` to compare a fresh run to a committed baseline.

Entry points: ``python -m repro bench`` or
``python benchmarks/harness.py``.
"""

from repro.bench.harness import (BENCH_SCHEMA, compare_reports,
                                 run_benchmarks, write_report)
from repro.bench.micro import run_micro, validate_micro

__all__ = ["BENCH_SCHEMA", "compare_reports", "run_benchmarks",
           "run_micro", "validate_micro", "write_report"]
