"""``repro.bench`` — the perf-regression benchmark harness.

Runs the Table 5 workloads (bootstrap, HELR training iterations,
ResNet-20 trace slices) through the cycle simulator and writes
``BENCH_sim.json`` (schema ``repro-bench/v10``): per-workload host
wall-time, simulated latency, per-unit utilisation, Hemera cache-hit
rate and HBM traffic; a ``micro`` section with modmul/NTT kernel
microbenchmarks, the matrix-form base-conversion kernel against the
per-pair scalar loop at Set-II-mini key-switch shapes (``bconv``),
and a functional HELR-style step at toy or Set-II-shaped wide-word
parameters (``--params toy|full``), including the width-path and
conversion-path occupancy counters; an ``ntt_fused`` section
timing the fused radix-4 lazy-reduction NTT tier against the
radix-2 oracle at Set-II-mini shapes, with a width-grid
bit-exactness differential and a warmed functional step whose
``kernel.alloc.*`` workspace ledger must stay flat;
a ``keyswitch`` section timing
the eval-domain AutoPlan gather, the fused KeyMultPlan and hoisted
rotations against their pre-plan reference pipelines (with a traced
zero-NTT check on the hoisting loop); a ``sched`` section with
the cluster-scaling speedup curve (``--clusters`` axis) of the
dataflow scheduler plus a multiprocess executor bit-exactness check;
and a ``throughput`` section with the Table-6-style
clusters x streams amortized-speedup grid of the software-pipelined
multi-stream scheduler plus a merged multi-stream executor
bit-exactness check; and a ``backend`` section with per-array-backend
kernel timings and a bit-exact parity + zero-fallback gate
(``--backends`` axis).
That file is the regression baseline every perf-oriented PR is
judged against — rerun with ``--baseline`` to compare a fresh run to
a committed baseline.

Entry points: ``python -m repro bench`` or
``python benchmarks/harness.py``.
"""

from repro.bench.harness import (BENCH_SCHEMA, compare_reports,
                                 run_benchmarks, write_report)
from repro.bench.keyswitch import run_keyswitch, validate_keyswitch
from repro.bench.micro import run_micro, validate_micro
from repro.bench.ntt_fused import run_ntt_fused, validate_ntt_fused
from repro.bench.sched import run_sched, scaling_curve, validate_sched

__all__ = ["BENCH_SCHEMA", "compare_reports", "run_benchmarks",
           "run_keyswitch", "run_micro", "run_ntt_fused", "run_sched",
           "scaling_curve", "validate_keyswitch", "validate_micro",
           "validate_ntt_fused", "validate_sched",
           "write_report"]
