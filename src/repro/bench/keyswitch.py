"""Key-switching benchmarks: AutoU, KMU and hoisted rotations.

Four sections feed the ``keyswitch`` block of BENCH_sim.json, all at
Set-II-mini shapes (the paper's real 36-bit word length on the wide
uint64 path) with ring degree 1024:

* ``auto`` — the eval-domain automorphism (one AutoPlan point gather,
  zero NTTs) against the coefficient-domain oracle pipeline
  (iNTT -> index/negate scatter -> NTT) on a full key basis.  The
  gather is bit-exactness-checked against the oracle before timing.
* ``kmu`` — the fused lazy-reduction :class:`~repro.ckks.keyswitch.
  hybrid.KeyMultPlan` (stack + accumulate, one reduction per limb)
  against the per-digit reference loop, on a real hybrid evaluation
  key.
* ``hoisted`` — the headline: ``hoisted_rotations`` vs the pre-plan
  ``hoisted_rotations_reference`` pipeline for a 4-rotation batch.
  Two speedups are recorded: the *pipeline* speedup (whole batch,
  decompose + per-rotation work + batched ModDown) and the *stage*
  speedup (the per-rotation AutoU + KeyMult stage, which the AutoPlan
  gather turns from O(digits x NTT) into O(digits x gather +
  KeyMult)).  The stage carries the 5x acceptance bar; the remaining
  pipeline cost is ModDown's inherent ``2k`` limb transforms per
  rotation, which no automorphism strategy can remove, so the
  pipeline carries its own lower bar.  A separate traced pass pins
  down that the post-decomposition hoisting loop increments **zero**
  ``ntt.*`` counters.
* ``bsgs_sweep`` — hoisted vs per-rotation key-switching for growing
  batch sizes (the baby-step pattern of BSGS linear transforms),
  recording how the hoisting advantage scales with batch size.

Wall times are best-of-``reps``; every timed pair is bit-exactness-
checked first so a reported speedup can never come from a wrong
answer.
"""

from __future__ import annotations

import time

import numpy as np

# Acceptance bar: the per-rotation AutoU + KMU stage of a hoisted
# batch must beat the reference stage (digit NTT round-trips + per-
# digit KeyMult) by at least this factor.
MIN_HOISTED_STAGE_SPEEDUP = 5.0
# The full hoisted batch still pays ModDown's 2k limb transforms per
# rotation (inherent to the algorithm, untouched by AutoU), so the
# end-to-end bar is lower.
MIN_HOISTED_PIPELINE_SPEEDUP = 2.0
# The eval-domain gather vs the coeff-domain round-trip oracle.
MIN_AUTO_SPEEDUP = 10.0
# The fused KeyMultPlan vs the per-digit reference loop.
MIN_KMU_SPEEDUP = 1.5

KEYSWITCH_RING_DEGREE = 1024
HOISTED_ROTATIONS = 4
BSGS_SWEEP = (2, 4, 8)


def _best(fn, reps: int) -> float:
    walls = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _poly_equal(a, b) -> bool:
    if a.moduli != b.moduli or a.form != b.form:
        return False
    return all(np.array_equal(x, y) for x, y in zip(a.limbs, b.limbs))


def _ct_equal(a, b) -> bool:
    return _poly_equal(a.c0, b.c0) and _poly_equal(a.c1, b.c1)


def _setup(quick: bool):
    """One Set-II-mini context with rotation keys for the batch."""
    from repro.ckks import encoding
    from repro.ckks.context import CkksContext
    from repro.ckks.params import set_ii_mini

    params = set_ii_mini(ring_degree=KEYSWITCH_RING_DEGREE)
    ctx = CkksContext(params, seed=11)
    level = params.max_level
    steps = list(range(1, max(HOISTED_ROTATIONS, max(BSGS_SWEEP)) + 1))
    galois = [encoding.rotation_galois_element(params.ring_degree, s)
              for s in steps]
    keys = {g: ctx.evaluation_key("hybrid", level, ("galois", g))
            for g in galois}
    message = np.arange(params.num_slots) / params.num_slots
    ct = ctx.encrypt(message, level=level)
    return ctx, ct, galois, keys


def _auto_section(ctx, quick: bool) -> dict:
    from repro.ckks import rns

    reps = 5 if quick else 15
    inner = 8 if quick else 16
    level = ctx.params.max_level
    key = ctx.evaluation_key("hybrid", level, "mult")
    rng = np.random.default_rng(33)
    coeffs = [int(v) for v in rng.integers(-10**6, 10**6,
                                           size=ctx.params.ring_degree)]
    poly = rns.from_big_ints(coeffs, key.moduli, ctx.params.ring_degree)
    ev = poly.to_eval()
    g = 5
    gather = ev.automorphism(g)
    oracle = poly.automorphism(g).to_eval()
    bit_exact = _poly_equal(gather, oracle)

    def gather_run():
        for _ in range(inner):
            ev.automorphism(g)

    def roundtrip_run():
        for _ in range(inner):
            ev.to_coeff().automorphism(g).to_eval()

    gather_best = _best(gather_run, reps) / inner
    roundtrip_best = _best(roundtrip_run, reps) / inner
    return {
        "ring_degree": ctx.params.ring_degree,
        "num_limbs": len(key.moduli),
        "galois": g,
        "bit_exact": bit_exact,
        "gather_best_s": gather_best,
        "roundtrip_best_s": roundtrip_best,
        "speedup": roundtrip_best / gather_best,
        "min_required_speedup": MIN_AUTO_SPEEDUP,
    }


def _kmu_section(ctx, quick: bool) -> dict:
    from repro.ckks import rns
    from repro.ckks.keyswitch.hybrid import (get_key_mult_plan,
                                             hybrid_decompose,
                                             key_mult_accumulate_reference)

    reps = 5 if quick else 15
    inner = 4 if quick else 8
    level = ctx.params.max_level
    key = ctx.evaluation_key("hybrid", level, "mult")
    plan = get_key_mult_plan(key)       # plan build is out of timing
    rng = np.random.default_rng(44)
    coeffs = [int(v) for v in rng.integers(-10**6, 10**6,
                                           size=ctx.params.ring_degree)]
    poly = rns.from_big_ints(coeffs, ctx.moduli_at(level),
                             ctx.params.ring_degree)
    digits = hybrid_decompose(poly, key, ctx.params.alpha)
    got0, got1 = plan.accumulate(plan.stack(digits))
    ref0, ref1 = key_mult_accumulate_reference(digits, key)
    bit_exact = _poly_equal(got0, ref0) and _poly_equal(got1, ref1)

    def fused_run():
        for _ in range(inner):
            plan.accumulate(plan.stack(digits))

    def reference_run():
        for _ in range(inner):
            key_mult_accumulate_reference(digits, key)

    fused_best = _best(fused_run, reps) / inner
    reference_best = _best(reference_run, reps) / inner
    return {
        "ring_degree": ctx.params.ring_degree,
        "num_limbs": len(key.moduli),
        "num_digits": key.num_digits,
        "tier": plan.tier,
        "bit_exact": bit_exact,
        "fused_best_s": fused_best,
        "reference_best_s": reference_best,
        "speedup": reference_best / fused_best,
        "min_required_speedup": MIN_KMU_SPEEDUP,
    }


def _hoisted_stage_reference(decomposed, key):
    """The pre-plan per-rotation stage: digit round-trips + loop KMU."""
    from repro.ckks.keyswitch.hybrid import key_mult_accumulate_reference

    def run(g):
        rotated = [d.to_coeff().automorphism(g).to_eval()
                   for d in decomposed]
        return key_mult_accumulate_reference(rotated, key)

    return run


def _hoisted_section(ctx, ct, galois, keys, quick: bool) -> dict:
    from repro import obs
    from repro.ckks.keyswitch.hoisting import (hoisted_rotations,
                                               hoisted_rotations_reference,
                                               permute_and_accumulate)
    from repro.ckks.keyswitch.hybrid import (get_key_mult_plan,
                                             hybrid_decompose)

    reps = 3 if quick else 7
    alpha = ctx.params.alpha
    batch = galois[:HOISTED_ROTATIONS]
    new = hoisted_rotations(ct, batch, keys, alpha)
    ref = hoisted_rotations_reference(ct, batch, keys, alpha)
    bit_exact = all(_ct_equal(a, b) for a, b in zip(new, ref))

    pipeline_new = _best(
        lambda: hoisted_rotations(ct, batch, keys, alpha), reps)
    pipeline_ref = _best(
        lambda: hoisted_rotations_reference(ct, batch, keys, alpha), reps)

    # Per-rotation stage: AutoU gather + fused KMU vs digit NTT
    # round-trips + per-digit KMU, on the same shared decomposition.
    reference_key = keys[batch[0]]
    decomposed = hybrid_decompose(ct.c1.to_coeff(), reference_key, alpha)
    plan = get_key_mult_plan(reference_key)
    stacked = plan.stack(decomposed)
    stage_ref_run = _hoisted_stage_reference(decomposed, reference_key)

    def stage_new():
        for g in batch:
            permute_and_accumulate(stacked, get_key_mult_plan(keys[g]), g)

    def stage_ref():
        for g in batch:
            stage_ref_run(g)

    stage_new_best = _best(stage_new, reps) / len(batch)
    stage_ref_best = _best(stage_ref, reps) / len(batch)

    # Traced pass: the post-decomposition hoisting loop must run zero
    # NTTs (kept out of the timing loops above).
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        for g in batch:
            permute_and_accumulate(stacked, get_key_mult_plan(keys[g]), g)
        counters = obs.get_tracer().metrics.counters()
        loop_ntt_calls = int(sum(v for k, v in counters.items()
                                 if k.startswith("ntt.")))
        loop_counters = {k: int(v) for k, v in counters.items()
                         if k.startswith(("rns.auto.", "keyswitch."))}
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    return {
        "ring_degree": ctx.params.ring_degree,
        "params": ctx.params.name,
        "rotations": len(batch),
        "num_digits": reference_key.num_digits,
        "num_limbs": len(reference_key.moduli),
        "bit_exact": bit_exact,
        "pipeline_new_s": pipeline_new,
        "pipeline_reference_s": pipeline_ref,
        "pipeline_speedup": pipeline_ref / pipeline_new,
        "min_required_pipeline_speedup": MIN_HOISTED_PIPELINE_SPEEDUP,
        "stage_new_s": stage_new_best,
        "stage_reference_s": stage_ref_best,
        "stage_speedup": stage_ref_best / stage_new_best,
        "min_required_stage_speedup": MIN_HOISTED_STAGE_SPEEDUP,
        "loop_ntt_calls": loop_ntt_calls,
        "loop_counters": loop_counters,
    }


def _bsgs_section(ctx, ct, galois, keys, quick: bool) -> dict:
    from repro.ckks.keyswitch.hoisting import (hoisted_rotations,
                                               hoisted_rotations_reference)

    reps = 2 if quick else 5
    alpha = ctx.params.alpha
    points = {}
    for r in BSGS_SWEEP:
        batch = galois[:r]
        hoisted = _best(
            lambda b=batch: hoisted_rotations(ct, b, keys, alpha), reps)
        reference = _best(
            lambda b=batch: hoisted_rotations_reference(ct, b, keys, alpha),
            reps)
        points[str(r)] = {
            "rotations": r,
            "hoisted_s": hoisted,
            "reference_s": reference,
            "speedup": reference / hoisted,
        }
    return {"points": points}


def run_keyswitch(quick: bool = False) -> dict:
    """The full ``keyswitch`` block for the bench report."""
    ctx, ct, galois, keys = _setup(quick)
    return {
        "auto": _auto_section(ctx, quick),
        "kmu": _kmu_section(ctx, quick),
        "hoisted": _hoisted_section(ctx, ct, galois, keys, quick),
        "bsgs_sweep": _bsgs_section(ctx, ct, galois, keys, quick),
    }


def validate_keyswitch(section: dict) -> list[str]:
    """Acceptance-bar violations in a ``keyswitch`` block (empty = pass)."""
    violations: list[str] = []
    auto = section.get("auto", {})
    if not auto.get("bit_exact", False):
        violations.append(
            "auto: eval-domain gather disagrees with the coeff oracle")
    speedup = auto.get("speedup", 0.0)
    if speedup < MIN_AUTO_SPEEDUP:
        violations.append(
            f"auto: gather speedup {speedup:.1f}x is below the "
            f"{MIN_AUTO_SPEEDUP:.0f}x bar")
    kmu = section.get("kmu", {})
    if not kmu.get("bit_exact", False):
        violations.append(
            "kmu: fused KeyMultPlan disagrees with the reference loop")
    speedup = kmu.get("speedup", 0.0)
    if speedup < MIN_KMU_SPEEDUP:
        violations.append(
            f"kmu: fused speedup {speedup:.1f}x is below the "
            f"{MIN_KMU_SPEEDUP:.1f}x bar")
    hoisted = section.get("hoisted", {})
    if not hoisted.get("bit_exact", False):
        violations.append(
            "hoisted: new pipeline disagrees with the reference pipeline")
    speedup = hoisted.get("stage_speedup", 0.0)
    if speedup < MIN_HOISTED_STAGE_SPEEDUP:
        violations.append(
            f"hoisted: per-rotation stage speedup {speedup:.1f}x is below "
            f"the {MIN_HOISTED_STAGE_SPEEDUP:.0f}x bar")
    speedup = hoisted.get("pipeline_speedup", 0.0)
    if speedup < MIN_HOISTED_PIPELINE_SPEEDUP:
        violations.append(
            f"hoisted: pipeline speedup {speedup:.1f}x is below the "
            f"{MIN_HOISTED_PIPELINE_SPEEDUP:.1f}x bar")
    if hoisted.get("loop_ntt_calls", -1) != 0:
        violations.append(
            f"hoisted: {hoisted.get('loop_ntt_calls')} NTT calls inside "
            "the post-decomposition hoisting loop (must be zero)")
    return violations
