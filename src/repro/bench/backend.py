"""Per-backend kernel benchmarks for ``python -m repro bench``.

The ``backend`` block of BENCH_sim.json answers three questions per
registered array backend (numpy baseline, the fake counting device,
and whichever accelerators import):

* **parity** — the four hot kernels (modmul, NTT, BConv, KMU
  accumulate) produce bit-identical residues to the numpy baseline on
  the same inputs, plus one functional HELR-mini step whose decrypt
  error must equal numpy's exactly;
* **dispatch** — a traced pass records ``backend.dispatch.*`` /
  ``backend.fallback*`` counters, so an explicitly requested backend
  that silently degraded to numpy is visible (and gated);
* **throughput** — best-of-``reps`` walls for each kernel at
  Set-II-mini shapes, giving the numpy-relative speedup axis the
  ``--backends`` flag sweeps.

Timing passes run untraced (counter bumps would distort the hot
loops); parity and counter capture happen in a separate traced pass,
mirroring ``repro.bench.micro``.
"""

from __future__ import annotations

import time

import numpy as np

#: kernels must agree with numpy bit-for-bit — no tolerance.
NTT_RING_DEGREE = 4096
QUICK_NTT_RING_DEGREE = 1024
MODMUL_SIZE = 4096
KMU_RING_DEGREE = 256


def _best(fn, reps: int) -> float:
    walls = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def default_backends() -> list[str]:
    """numpy + fake always; accelerators only when actually available."""
    import repro.backend as backend_mod

    names = ["numpy", "fake"]
    report = backend_mod.available_backends()
    for name in ("cupy", "torch"):
        if report.get(name, {}).get("available"):
            names.append(name)
    return names


def _kmu_fixture(quick: bool):
    """One Set-II-mini key + decomposed digits, shared by all backends."""
    from repro.ckks import CkksContext, rns
    from repro.ckks.keys import HYBRID
    from repro.ckks.keyswitch.hybrid import hybrid_decompose
    from repro.ckks.params import set_ii_mini

    ctx = CkksContext(set_ii_mini(ring_degree=KMU_RING_DEGREE,
                                  max_level=3), seed=17)
    level = ctx.params.max_level
    key = ctx.evaluation_key(HYBRID, level, "mult")
    rng = np.random.default_rng(18)
    coeffs = [int(v) for v in rng.integers(-10**6, 10**6,
                                           size=KMU_RING_DEGREE)]
    poly = rns.from_big_ints(coeffs, ctx.moduli_at(level),
                             KMU_RING_DEGREE)
    digits = hybrid_decompose(poly, key, ctx.params.alpha)
    return ctx, key, digits


def _bconv_fixture(n: int):
    """The ModDown shape of a Set-II-mini hybrid switch (P -> Q)."""
    from repro.bench.micro import _bconv_bases
    from repro.ckks import modmath, rns

    params, q_chain, specials = _bconv_bases(n)
    rng = np.random.default_rng(19)
    rows = [modmath.random_uniform(n, q, rng) for q in specials]
    return specials, q_chain, rows


def _functional_step(quick: bool) -> dict:
    """One HELR-mini step on the *current default* backend."""
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID
    from repro.ckks.params import set_ii_mini

    params = set_ii_mini(ring_degree=KMU_RING_DEGREE, max_level=4)
    start = time.perf_counter()
    ctx = CkksContext(params, seed=23)
    base = np.array([0.75, -1.25, 0.5, 1.5], dtype=np.complex128)
    message = np.tile(base, params.num_slots // 4)
    ct = ctx.encrypt(message)
    ct = ctx.multiply_rescale(ct, ct, method=HYBRID)
    ct = ctx.rotate(ct, 1, method=HYBRID)
    expected = np.roll(message ** 2, -1)
    error = float(np.max(np.abs(ctx.decrypt(ct) - expected)))
    wall = time.perf_counter() - start
    return {"workload": "HELR-mini step", "params": params.name,
            "step_wall_s": wall, "max_slot_error": error}


def _backend_counters() -> dict:
    from repro.obs.tracer import get_tracer
    counters = get_tracer().metrics.counters()
    prefix = "backend."
    return {name[len(prefix):]: int(value)
            for name, value in counters.items()
            if name.startswith(prefix)}


def _run_one(name: str, quick: bool, fixtures: dict,
             reference: dict | None) -> dict:
    """Benchmark one backend; ``reference`` is numpy's entry (or None)."""
    import repro.backend as backend_mod
    from repro import obs
    from repro.ckks import modmath
    from repro.ckks.keyswitch.hybrid import get_key_mult_plan
    from repro.ckks.rns import get_bconv_plan, get_plan

    reps = 3 if quick else 10
    n_ntt = QUICK_NTT_RING_DEGREE if quick else NTT_RING_DEGREE
    be = backend_mod.get_backend(name)

    q36, a36, b36 = fixtures["modmul"]
    qntt, xntt = fixtures["ntt"][n_ntt]
    src, dst, bconv_rows = fixtures["bconv"]
    _, key, digits = fixtures["kmu"]

    # -- traced pass: dispatch/fallback counters + parity results -----
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        backend_mod.get_backend(name)       # counts unavailable fallback
        kernel = modmath.get_kernel(q36, backend=name)
        plan = get_plan(n_ntt, qntt, backend=name)
        bplan = get_bconv_plan(src, dst, backend=name)
        kplan = get_key_mult_plan(key, backend=name)
        results = {
            "modmul": kernel.mul(kernel.asresidues(a36),
                                 kernel.asresidues(b36)),
            "ntt": plan.forward(xntt),
            "bconv": np.stack([np.asarray(backend_mod.to_host(r))
                               for r in bplan.convert(bconv_rows)]),
        }
        acc0, acc1 = kplan.accumulate(kplan.stack(digits))
        results["kmu"] = np.stack(
            [np.asarray(backend_mod.to_host(l), dtype=np.uint64)
             for l in list(acc0.limbs) + list(acc1.limbs)])
        counters = _backend_counters()
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    host = {
        label: np.asarray(backend_mod.to_host(value), dtype=np.uint64)
        if label in ("modmul", "ntt") else value
        for label, value in results.items()
    }

    bit_exact = True
    if reference is not None:
        bit_exact = all(
            np.array_equal(host[label], reference["_arrays"][label])
            for label in host)

    # -- untraced pass: best-of-reps walls -----------------------------
    stacked = kplan.stack(digits)
    micro = {
        "modmul_best_s": _best(
            lambda: kernel.mul(kernel.asresidues(a36),
                               kernel.asresidues(b36)), reps),
        "ntt_best_s": _best(lambda: plan.forward(xntt), reps),
        "bconv_best_s": _best(lambda: bplan.convert(bconv_rows), reps),
        "kmu_best_s": _best(lambda: kplan.accumulate(stacked), reps),
    }

    # -- functional step under select(name), default restored after ---
    previous = backend_mod._default
    try:
        backend_mod.select(name)
        functional = _functional_step(quick)
    finally:
        backend_mod._default = previous
    if reference is not None:
        bit_exact = bit_exact and (
            functional["max_slot_error"]
            == reference["functional"]["max_slot_error"])

    entry = {
        "requested": name,
        "resolved": be.name,
        "device": be.device,
        "available": be.name == name,
        "capabilities": be.capability_flags(),
        "micro": micro,
        "ntt_ring_degree": n_ntt,
        "functional": functional,
        "bit_exact": bool(bit_exact),
        "dispatch": {k.split(".", 1)[1]: v for k, v in counters.items()
                     if k.startswith("dispatch.")},
        "fallbacks": int(counters.get("fallback", 0)),
        "_arrays": host,
    }
    if reference is not None:
        entry["speedup_vs_numpy"] = {
            label: reference["micro"][label] / micro[label]
            if micro[label] else None
            for label in micro}
    return entry


def run_backend(quick: bool = False, backends=None) -> dict:
    """The full ``backend`` block for the bench report."""
    from repro.ckks import primes

    names = list(backends) if backends else default_backends()
    if "numpy" not in names:
        names.insert(0, "numpy")

    n_ntt = QUICK_NTT_RING_DEGREE if quick else NTT_RING_DEGREE
    rng = np.random.default_rng(29)
    q36 = primes.ntt_primes(1, 36, MODMUL_SIZE)[0]
    qntt = primes.ntt_primes(1, 36, n_ntt)[0]
    fixtures = {
        "modmul": (q36,
                   rng.integers(0, q36, size=MODMUL_SIZE,
                                dtype=np.uint64),
                   rng.integers(0, q36, size=MODMUL_SIZE,
                                dtype=np.uint64)),
        "ntt": {n_ntt: (qntt, rng.integers(0, qntt, size=n_ntt,
                                           dtype=np.uint64))},
        "bconv": _bconv_fixture(QUICK_NTT_RING_DEGREE),
        "kmu": _kmu_fixture(quick),
    }

    entries = {"numpy": _run_one("numpy", quick, fixtures, None)}
    for name in names:
        if name != "numpy":
            entries[name] = _run_one(name, quick, fixtures,
                                     entries["numpy"])
    for entry in entries.values():      # host arrays never hit the JSON
        entry.pop("_arrays", None)
    return {
        "baseline": "numpy",
        "requested": names,
        "backends": entries,
    }


def validate_backend(section: dict) -> list[str]:
    """Acceptance-bar violations in a ``backend`` block (empty = pass)."""
    violations: list[str] = []
    entries = section.get("backends", {})
    if "numpy" not in entries:
        return ["backend: numpy baseline entry is missing"]
    for name, entry in entries.items():
        if name == "numpy":
            continue
        if not entry.get("bit_exact", False):
            violations.append(
                f"backend.{name}: kernels are not bit-exact vs numpy")
        if entry.get("available") and entry.get("fallbacks"):
            violations.append(
                f"backend.{name}: {entry['fallbacks']} fallbacks while "
                "the backend was explicitly requested and available")
        if entry.get("available"):
            dispatched = entry.get("dispatch", {}).get(name, 0)
            if not dispatched:
                violations.append(
                    f"backend.{name}: requested backend never "
                    "dispatched a kernel")
    functional = entries["numpy"].get("functional", {})
    error = functional.get("max_slot_error")
    if error is None or error > 1e-2:
        violations.append(
            f"backend: numpy functional step error {error} exceeds 1e-2")
    return violations
