"""The ``serving`` benchmark section: closed-loop loadgen acceptance.

Two records:

* ``loadgen`` — a closed-loop run against a live :class:`FheServer`
  (8 tenants x 8 requests at concurrency 2 = 64 requests, the
  HELR-mini step shape, 4-cluster sim pricing): requests/sec, p50 and
  p99 latency, batch occupancy, peak queue depth, per-tenant evk hit
  rates — and the acceptance pair: the batched server must sustain
  >= ``MIN_SERVING_SPEEDUP`` x the serial per-request oracle's
  request rate with every response digest bit-exact against it.
* ``evk_admission`` — the cross-stream admission policy on a
  key-disjoint workload pair: interleaved working sets against a
  capacity-limited key store vs the same queue reordered by
  :func:`~repro.serve.batcher.evk_aware_order`; the aware order must
  strictly reduce evk fetch misses.

The loadgen numbers are wall-clock on a live asyncio server, so the
speedup bar (not latency deltas) is the regression signal; the
admission record is deterministic cache arithmetic.
"""

from __future__ import annotations

MIN_SERVING_SPEEDUP = 3.0
GATE_TENANTS = 8
GATE_REQUESTS = 64
GATE_CONCURRENCY = 2
GATE_CLUSTERS = 4
SERVING_SHAPE = "helr-mini-step"


def _loadgen_record() -> dict:
    from repro.serve.loadgen import run_loadgen
    from repro.serve.server import ServerConfig
    config = ServerConfig(clusters=GATE_CLUSTERS)
    per_tenant = GATE_REQUESTS // GATE_TENANTS
    report = run_loadgen(config=config, shape=SERVING_SHAPE,
                         tenants=GATE_TENANTS,
                         requests_per_tenant=per_tenant,
                         concurrency=GATE_CONCURRENCY,
                         compare_serial=True)
    record = report.to_dict()
    record["clusters"] = GATE_CLUSTERS
    record["window_ms"] = config.window_s * 1e3
    record["max_batch"] = config.max_batch
    record["backend"] = config.backend
    record["tenant_evk_hit_rates"] = record.pop("per_tenant")
    record["optimiser"] = report.server_stats.get("optimiser", {})
    record["pricing"] = report.server_stats.get("pricing", {})
    return record


def _evk_admission_record() -> dict:
    """Key-disjoint pair: interleaved vs evk-aware admission order."""
    from repro.ckks.params import SET_I, SET_II
    from repro.core.hemera import EvkPool
    from repro.core.optrace import TraceBuilder
    from repro.hw.memory import PartitionedKeyCache
    from repro.serve.batcher import evk_aware_order, evk_working_set
    from repro.serve.tenants import TenantKeyManager

    def rotations_trace(name, amounts):
        builder = TraceBuilder(name)
        ct = builder.fresh_ct()
        for amount in amounts:
            builder.hrot(ct, 20, rotation=amount)
        return builder.build()

    set_a = evk_working_set(rotations_trace("wsA", range(1, 7)))
    set_b = evk_working_set(rotations_trace("wsB", range(101, 107)))
    pool = EvkPool(SET_I, SET_II)
    set_bytes = sum(pool.lookup(key).size_bytes for key in set_a)
    # Capacity holds one working set (plus slack), never both: the
    # interleaved order must re-fetch on every alternation.
    capacity = set_bytes * 1.3
    queue = [set_a, set_b] * 4

    def drain(order) -> dict:
        manager = TenantKeyManager(EvkPool(SET_I, SET_II),
                                   PartitionedKeyCache(capacity))
        for position in order:
            lease = manager.acquire(f"tenant-{position % 4}",
                                    queue[position])
            manager.release(lease)
        totals = manager.totals()
        return {"misses": totals.evk_misses, "hits": totals.evk_hits}

    naive = drain(range(len(queue)))
    aware_order = evk_aware_order(queue)
    aware = drain(aware_order)
    return {
        "queue_len": len(queue),
        "keys_per_set": len(set_a),
        "capacity_bytes": capacity,
        "naive": naive,
        "aware": aware,
        "aware_order": list(aware_order),
        "miss_reduction": naive["misses"] - aware["misses"],
    }


def run_serving(quick: bool = False) -> dict:
    """The full ``serving`` section (same scale in quick mode: the
    gate workload is already CI-sized at 64 requests)."""
    return {
        "shape": SERVING_SHAPE,
        "min_speedup": MIN_SERVING_SPEEDUP,
        "loadgen": _loadgen_record(),
        "evk_admission": _evk_admission_record(),
    }


def validate_serving(section: dict) -> list[str]:
    """Acceptance violations of one ``serving`` section."""
    violations: list[str] = []
    loadgen = section.get("loadgen", {})
    speedup = loadgen.get("speedup") or 0.0
    if speedup < MIN_SERVING_SPEEDUP:
        violations.append(
            f"serving.loadgen: {speedup:.2f}x requests/sec over the "
            f"serial oracle, below the {MIN_SERVING_SPEEDUP:.0f}x "
            f"acceptance bar")
    if not loadgen.get("bit_exact"):
        violations.append(
            "serving.loadgen: served responses are not bit-exact "
            "against the serial per-request oracle")
    if loadgen.get("errors"):
        violations.append(
            f"serving.loadgen: {loadgen['errors']} failed requests")
    if loadgen.get("requests", 0) < GATE_REQUESTS:
        violations.append(
            f"serving.loadgen: only {loadgen.get('requests', 0)} "
            f"requests (gate needs >= {GATE_REQUESTS})")
    if loadgen.get("tenants", 0) < 4:
        violations.append(
            f"serving.loadgen: only {loadgen.get('tenants', 0)} "
            f"tenants (gate needs >= 4)")
    if loadgen.get("pin_violations"):
        violations.append(
            f"serving.loadgen: {loadgen['pin_violations']} evk pin "
            f"violations (a pinned in-flight key was evicted)")
    if not (loadgen.get("p99_ms") or 0.0) > 0.0:
        violations.append("serving.loadgen: p99 latency not reported")
    admission = section.get("evk_admission", {})
    if admission and admission.get("miss_reduction", 0) <= 0:
        violations.append(
            "serving.evk_admission: evk-aware order did not reduce "
            "fetch misses on the key-disjoint pair")
    return violations


def serving_stats(section: dict) -> dict:
    """Compact view of a ``serving`` section (the CI artifact)."""
    loadgen = section.get("loadgen", {})
    return {
        "shape": section.get("shape"),
        "requests": loadgen.get("requests"),
        "tenants": loadgen.get("tenants"),
        "rps": loadgen.get("rps"),
        "p50_ms": loadgen.get("p50_ms"),
        "p99_ms": loadgen.get("p99_ms"),
        "mean_batch": loadgen.get("mean_batch"),
        "batch_occupancy": loadgen.get("batch_occupancy"),
        "max_queue_depth": loadgen.get("max_queue_depth"),
        "speedup": loadgen.get("speedup"),
        "bit_exact": loadgen.get("bit_exact"),
        "pin_violations": loadgen.get("pin_violations"),
        "tenant_evk_hit_rates": loadgen.get("tenant_evk_hit_rates"),
        "evk_admission": section.get("evk_admission"),
    }
