"""Dataflow-optimiser benchmarks: NTT deltas, bit-exactness, fusion.

``run_dataflow`` produces the ``dataflow`` section of
``BENCH_sim.json`` (schema v7):

* per-workload (HELR256, Bootstrap) optimiser statistics — NTT limb
  transforms before/after, per-pass rewrite counts, fused key-switch
  nodes — together with the 4-cluster scheduled latency of the
  optimised trace against the unoptimised one;
* one functional-executor bit-exactness check on an *optimised*
  trace (the op list is provably identical, and the parallel
  execution must match serial on real residues);
* a fused-vs-sequential ``multiply_rescale`` comparison at
  Set-II-mini shapes: the fused ModDown+Rescale kernel against the
  classic ModDown-then-exact-rescale pipeline, with slot errors and
  wall times for both paths;
* plan-cache eviction counters after the whole section ran — the
  fused kernel's conversion bases are canonicalised like the
  sequential path's, so the bounded plan caches must not thrash.

``validate_dataflow`` is the CI acceptance gate: a *strict* NTT drop
on every measured workload, bit-exact parallel execution, the
optimised schedule no slower than the baseline schedule, fused-path
slot error within :data:`MAX_FUSED_ERROR`, the fused kernel actually
engaged, and zero plan-cache evictions.
"""

from __future__ import annotations

import time

# The simulated latency is deterministic; the optimised trace may
# legitimately tie the baseline (HELR's cancelled conversions live on
# rescale ops the hardware model already executes in the evaluation
# domain) but must never exceed it.
SIM_SLACK = 1e-9
GATE_CLUSTERS = 4
EXECUTOR_WORKERS = 2
# Matches MAX_FUNCTIONAL_ERROR in bench.micro: the fused kernel's
# rounding slack differs from sequential by < 1 ulp per limb, far
# inside the CKKS noise floor.
MAX_FUSED_ERROR = 1e-2
FUSED_REPS = 3


def _optimiser_record(trace) -> dict:
    """Optimise one workload trace; stats + sim-latency comparison."""
    from repro.ckks.params import SET_II
    from repro.hw.config import FAST_CONFIG
    from repro.opt import optimise_trace
    from repro.sched import ScheduledEngine

    opt = optimise_trace(trace, SET_II)
    config = FAST_CONFIG.with_(name=f"FAST-{GATE_CLUSTERS}C",
                               clusters=GATE_CLUSTERS)
    base_sim = ScheduledEngine(config).run(trace).total_s
    opt_sim = ScheduledEngine(config).run(opt).total_s
    non_unity = sum(1 for pair in opt.ntt_factors.values()
                    if pair[1] > 0 and pair[0] != pair[1])
    record = opt.stats.as_dict()
    record.update({
        "ops_identical": list(opt.ops) == list(trace.ops),
        "base_sim_s": base_sim,
        "opt_sim_s": opt_sim,
        "scaled_schedules": non_unity,
    })
    return record


def _executor_record() -> dict:
    """Bit-exactness of the parallel execution of an optimised trace."""
    from repro.ckks.params import SET_II
    from repro.opt import optimise_trace
    from repro.sched import FunctionalExecutor
    from repro.workloads import helr

    trace = optimise_trace(helr.helr_iteration(), SET_II)
    check = FunctionalExecutor().verify(trace, workers=EXECUTOR_WORKERS)
    return {
        "trace": trace.name,
        "optimised": bool(getattr(trace, "optimised", False)),
        "ntt_limb_calls_removed": trace.stats.ntt_removed,
        "bit_exact": check.bit_exact,
        "parallel": check.parallel,
        "workers": check.workers,
        "num_cts": check.num_cts,
        "num_ops": check.num_ops,
        "num_nodes": check.num_nodes,
    }


def _fused_rescale_record(quick: bool) -> dict:
    """Fused vs sequential ``multiply * rescale`` at Set-II-mini."""
    import numpy as np

    from repro import obs
    from repro.obs.tracer import get_tracer
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID
    from repro.ckks.params import set_ii_mini

    del quick  # the 1024-ring mini basis is CI-sized already
    params = set_ii_mini(ring_degree=1024)
    ctx = CkksContext(params, seed=11)
    base = np.array([0.75, -1.25, 0.5, 1.5], dtype=np.complex128)
    message = np.tile(base, params.num_slots // 4)
    expected = message ** 2
    ct = ctx.encrypt(message)
    ctx.evaluation_key(HYBRID, params.max_level, "mult")  # warm keygen

    def _best(fn):
        walls, out = [], None
        for _ in range(FUSED_REPS):
            start = time.perf_counter()
            out = fn()
            walls.append(time.perf_counter() - start)
        return min(walls), out

    seq_wall, seq_ct = _best(
        lambda: ctx.rescale(ctx.multiply(ct, ct, method=HYBRID)))
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        fused_wall, fused_ct = _best(
            lambda: ctx.multiply_rescale(ct, ct, method=HYBRID))
        counters = get_tracer().metrics.counters()
        fused_calls = int(counters.get(
            "keyswitch.moddown.fused_rescale", 0))
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    seq_err = float(np.max(np.abs(ctx.decrypt(seq_ct) - expected)))
    fused_err = float(np.max(np.abs(ctx.decrypt(fused_ct) - expected)))
    return {
        "params": params.name,
        "ring_degree": params.ring_degree,
        "level_before": ct.level,
        "level_after": fused_ct.level,
        "levels_match": fused_ct.level == seq_ct.level,
        "scales_match": abs(fused_ct.scale / seq_ct.scale - 1.0) < 1e-12,
        "sequential_best_s": seq_wall,
        "fused_best_s": fused_wall,
        "speedup": seq_wall / fused_wall if fused_wall else 0.0,
        "sequential_max_error": seq_err,
        "fused_max_error": fused_err,
        "fused_kernel_calls": fused_calls,
    }


def run_dataflow(quick: bool = False) -> dict:
    """The ``dataflow`` benchmark section."""
    from repro.ckks import rns
    from repro.workloads import bootstrap_trace, helr_trace

    workloads = {
        "HELR256": helr_trace(batch=256),
        "Bootstrap": bootstrap_trace(),
    }
    section = {
        "gate_clusters": GATE_CLUSTERS,
        "workloads": {name: _optimiser_record(trace)
                      for name, trace in workloads.items()},
        "executor": _executor_record(),
        "fused_rescale": _fused_rescale_record(quick),
        "plan_cache_evictions": rns.plan_cache_evictions(),
    }
    return section


def validate_dataflow(section: dict) -> list[str]:
    """Acceptance violations of one ``dataflow`` section (empty = pass)."""
    violations: list[str] = []
    for name, record in section.get("workloads", {}).items():
        before = record.get("ntt_limb_calls_before", 0)
        after = record.get("ntt_limb_calls_after", before)
        if after >= before:
            violations.append(
                f"dataflow.{name}: NTT limb transforms did not strictly "
                f"drop ({before} -> {after})")
        if not record.get("ops_identical", False):
            violations.append(
                f"dataflow.{name}: optimised trace changed the op list")
        base_sim = record.get("base_sim_s")
        opt_sim = record.get("opt_sim_s")
        if base_sim is not None and opt_sim is not None and \
                opt_sim > base_sim + SIM_SLACK:
            violations.append(
                f"dataflow.{name}: optimised schedule slower than "
                f"baseline ({opt_sim:.6g}s vs {base_sim:.6g}s)")
    executor = section.get("executor")
    if executor is not None:
        if not executor.get("bit_exact"):
            violations.append(
                "dataflow.executor: parallel execution of the optimised "
                "trace is not bit-exact with serial")
        if not executor.get("optimised"):
            violations.append(
                "dataflow.executor: check did not run on an optimised "
                "trace")
    fused = section.get("fused_rescale")
    if fused is not None:
        for key in ("sequential_max_error", "fused_max_error"):
            error = fused.get(key, float("inf"))
            if error > MAX_FUSED_ERROR:
                violations.append(
                    f"dataflow.fused_rescale: {key} {error:.2e} exceeds "
                    f"the {MAX_FUSED_ERROR:.0e} bound")
        if not fused.get("fused_kernel_calls"):
            violations.append(
                "dataflow.fused_rescale: fused ModDown+Rescale kernel "
                "never engaged (fell back to the sequential path)")
        if not fused.get("levels_match") or not fused.get("scales_match"):
            violations.append(
                "dataflow.fused_rescale: fused path disagrees with the "
                "sequential path on level/scale bookkeeping")
    for cache, evictions in (section.get("plan_cache_evictions")
                             or {}).items():
        if evictions:
            violations.append(
                f"dataflow.plan_cache: {evictions} evictions in the "
                f"{cache} plan cache (working set must stay resident)")
    return violations


def dataflow_stats(section: dict) -> dict:
    """Compact per-workload view (the artifact CI uploads)."""
    return {
        name: {
            "ntt_before": record.get("ntt_limb_calls_before"),
            "ntt_after": record.get("ntt_limb_calls_after"),
            "reduction_pct": round(record.get("reduction_pct", 0.0), 2),
            "fused_nodes": record.get("fused_nodes"),
            "passes": {entry["name"]: entry["rewrites"]
                       for entry in record.get("passes", [])},
        }
        for name, record in section.get("workloads", {}).items()
    }
