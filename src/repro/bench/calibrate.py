"""Kernel-cost calibration: measured seconds per modular operation.

``python -m repro bench --calibrate`` times the *actual* software
kernels — the stage-vectorised batched NTT, the matrix-form BConv, the
fused KeyMult plan and raw element-wise modmuls — at Set-II-mini
shapes, divides each wall time by the analytic modular-operation count
the cost model assigns to that exact shape, and writes the resulting
:class:`~repro.ckks.keyswitch.cost.MeasuredKernelCosts` to
``CALIBRATION.json`` together with the re-pinned Fig. 2
hybrid-vs-KLSS crossover.

The unit costs differ between kernels (the NTT's strided butterflies
run slower per modmul than BLAS-backed BConv MACs), which is exactly
why the measured crossover can sit at a different level than the
count-based one.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.ckks.keyswitch import cost
from repro.ckks.keyswitch.cost import MeasuredKernelCosts

CALIBRATION_SCHEMA = "repro-calibration/v1"
DEFAULT_OUT = "CALIBRATION.json"
CALIBRATE_RING_DEGREE = 1024


def _best(fn, reps: int) -> float:
    walls = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _calibration_setup(n: int):
    """Set-II-mini context pieces reused across the kernel timings."""
    from repro.bench.micro import _bconv_bases
    params, q_chain, specials = _bconv_bases(n)
    return params, q_chain, specials


def calibrate_kernel_costs(ring_degree: int = CALIBRATE_RING_DEGREE,
                           reps: int = 5,
                           inner: int = 4) -> MeasuredKernelCosts:
    """Time each kernel class; return seconds-per-modop unit costs."""
    from repro.ckks import modmath, rns
    from repro.ckks.ntt import transform_limbs

    n = ring_degree
    params, q_chain, specials = _calibration_setup(n)
    rng = np.random.default_rng(7)
    k = len(q_chain)

    # NTT: one batched forward pass over the full Q chain.
    limbs = [modmath.random_uniform(n, q, rng) for q in q_chain]
    ntt_wall = _best(
        lambda: [transform_limbs(limbs, q_chain, n) for _ in range(inner)],
        reps) / inner
    ntt_unit = ntt_wall / (k * cost.ntt_ops(n))

    # BConv: the ModDown shape (specials -> Q) on the matrix path.
    src = specials
    poly = rns.RnsPoly([modmath.random_uniform(n, q, rng) for q in src],
                       src, rns.COEFF)
    plan = rns.get_bconv_plan(src, q_chain)
    bconv_wall = _best(
        lambda: [plan.convert(poly.limbs) for _ in range(inner)],
        reps) / inner
    bconv_unit = bconv_wall / cost.bconv_ops(n, len(src), len(q_chain))

    # KeyMult: the fused plan at the top-level hybrid shape.
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID
    from repro.ckks.keyswitch.hybrid import get_key_mult_plan
    ctx = CkksContext(params, seed=13)
    level = params.max_level
    key = ctx.evaluation_key(HYBRID, level, "mult")
    kmu_plan = get_key_mult_plan(key)
    shape = cost.HybridShape.at_level(params, level)
    stacked = rng.integers(
        0, 2 ** 30, size=(key.num_digits, len(key.moduli), n),
        dtype=np.uint64)
    if kmu_plan is not None:
        kmu_wall = _best(
            lambda: [kmu_plan.accumulate(stacked) for _ in range(inner)],
            reps) / inner
    else:  # pragma: no cover - mini params always fit the fused budgets
        kmu_wall = bconv_wall
    kmu_unit = kmu_wall / (2.0 * shape.beta * (shape.k + shape.p) * n)

    # Element-wise: one full-width modular multiply per limb.
    q = q_chain[0]
    kernel = modmath.get_kernel(q)
    a = modmath.random_uniform(n, q, rng)
    b = modmath.random_uniform(n, q, rng)
    ew_wall = _best(
        lambda: [kernel.mul(a, b) for _ in range(inner)], reps) / inner
    ew_unit = ew_wall / n

    return MeasuredKernelCosts(
        ntt=ntt_unit, bconv=bconv_unit, keymult=kmu_unit,
        elementwise=ew_unit,
        meta=(("ring_degree", n), ("params", params.name),
              ("reps", reps)))


def calibration_report(ring_degree: int = CALIBRATE_RING_DEGREE,
                       reps: int = 5) -> dict:
    """Measured unit costs plus the re-pinned Fig. 2 crossover."""
    from repro.ckks.params import SET_I, SET_II

    costs = calibrate_kernel_costs(ring_degree=ring_degree, reps=reps)
    analytic = cost.crossover_level(SET_I, SET_II)
    measured = cost.crossover_level(SET_I, SET_II, costs=costs)
    levels = {}
    for level in (5, 15, 25, 35):
        levels[str(level)] = {
            "analytic_ratio": cost.quantitative_line(SET_I, SET_II, level),
            "measured_ratio": cost.measured_quantitative_line(
                SET_I, SET_II, level, costs),
        }
    return {
        "schema": CALIBRATION_SCHEMA,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "kernel_costs": costs.as_dict(),
        "crossover": {
            "analytic_level": analytic,
            "measured_level": measured,
            "levels": levels,
        },
    }


def load_calibration(path: str) -> MeasuredKernelCosts:
    """Read a ``CALIBRATION.json`` back into injectable unit costs."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    return MeasuredKernelCosts.from_dict(data["kernel_costs"])


def write_calibration(report: dict, path: str = DEFAULT_OUT) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=1)
        fh.write("\n")
