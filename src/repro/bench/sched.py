"""Scheduler benchmarks: the cluster-scaling curve and its gate.

``run_sched`` produces the ``sched`` section of ``BENCH_sim.json``
(schema v3): for HELR256 and full bootstrapping, the scheduled
latency at each cluster count on the ``--clusters`` axis, against the
serial one-pipeline reference — the Fig. 13(b)-shaped speedup curve —
plus one multiprocess functional-executor bit-exactness check.

``validate_sched`` is the CI acceptance gate:

* ≥ :data:`MIN_SPEEDUP_4C` simulated speedup at 4 clusters on every
  measured workload (the paper's scalable-parallelism claim);
* zero dependency violations at every point;
* the 1-cluster schedule within :data:`ONE_CLUSTER_TOLERANCE` of the
  serial engine (the timing model agrees with the reference);
* the parallel functional execution bit-exact with serial.
"""

from __future__ import annotations

MIN_SPEEDUP_4C = 2.0
ONE_CLUSTER_TOLERANCE = 0.01
DEFAULT_CLUSTERS = (1, 2, 4, 8)
# The executor proves ordering on real residues; one iteration's ops
# are plenty (every op kind, dozens of ciphertext chains).
EXECUTOR_WORKERS = 2


def _scaling_record(trace, clusters) -> dict:
    from repro.sched import DataflowGraph, cluster_scaling
    curve = cluster_scaling(trace, counts=tuple(clusters))
    graph = DataflowGraph.from_trace(trace)
    return {
        "num_trace_ops": len(trace),
        "serial_s": curve["serial_s"],
        "graph": graph.stats(),
        "points": curve["points"],
    }


def _executor_record() -> dict:
    from repro.sched import FunctionalExecutor
    from repro.workloads import helr
    trace = helr.helr_iteration()
    check = FunctionalExecutor().verify(trace,
                                        workers=EXECUTOR_WORKERS)
    return {
        "trace": trace.name,
        "bit_exact": check.bit_exact,
        "parallel": check.parallel,
        "workers": check.workers,
        "num_cts": check.num_cts,
        "num_ops": check.num_ops,
        "num_nodes": check.num_nodes,
    }


def run_sched(quick: bool = False,
              clusters=DEFAULT_CLUSTERS) -> dict:
    """The ``sched`` benchmark section (same shape in quick mode —
    both workload traces are CI-sized already)."""
    from repro.workloads import bootstrap_trace, helr_trace
    del quick  # traces are small; the section is identical either way
    workloads = {
        "HELR256": helr_trace(batch=256),
        "Bootstrap": bootstrap_trace(),
    }
    return {
        "clusters_axis": list(clusters),
        "workloads": {name: _scaling_record(trace, clusters)
                      for name, trace in workloads.items()},
        "executor": _executor_record(),
    }


def validate_sched(section: dict) -> list[str]:
    """Acceptance violations of one ``sched`` section (empty = pass)."""
    violations: list[str] = []
    for name, record in section.get("workloads", {}).items():
        for point in record.get("points", []):
            count = point.get("clusters")
            speedup = point.get("speedup") or 0.0
            if point.get("dependency_violations"):
                violations.append(
                    f"sched.{name}@{count}C: "
                    f"{point['dependency_violations']} dependency "
                    f"violations in the schedule")
            if count == 4 and speedup < MIN_SPEEDUP_4C:
                violations.append(
                    f"sched.{name}@4C: speedup {speedup:.2f}x below "
                    f"the {MIN_SPEEDUP_4C:.0f}x acceptance bar")
            if count == 1 and \
                    abs(speedup - 1.0) > ONE_CLUSTER_TOLERANCE:
                violations.append(
                    f"sched.{name}@1C: schedule deviates "
                    f"{abs(speedup - 1.0):.1%} from the serial engine "
                    f"(tolerance {ONE_CLUSTER_TOLERANCE:.0%})")
    executor = section.get("executor")
    if executor is not None and not executor.get("bit_exact"):
        violations.append(
            "sched.executor: parallel functional execution is not "
            "bit-exact with serial")
    return violations


def scaling_curve(section: dict) -> dict:
    """Compact ``{workload: {clusters: speedup}}`` view of a section
    (the artifact CI uploads)."""
    return {
        name: {point["clusters"]: point["speedup"]
               for point in record.get("points", [])}
        for name, record in section.get("workloads", {}).items()
    }
