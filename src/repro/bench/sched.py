"""Scheduler benchmarks: cluster scaling, streaming throughput, gates.

``run_sched`` produces the ``sched`` section of ``BENCH_sim.json``:
for HELR256 and full bootstrapping, the scheduled latency at each
cluster count on the ``--clusters`` axis, against the serial
one-pipeline reference — the Fig. 13(b)-shaped speedup curve — plus
one multiprocess functional-executor bit-exactness check.

``run_throughput`` (schema v6) produces the ``throughput`` section:
the Table-6-style clusters x streams grid of the software-pipelined
multi-stream scheduler on HELR256 — amortized per-stream time,
utilisation and the stall taxonomy at every point (so throughput
mode's deltas against latency mode stay visible) — plus one merged
multi-stream executor bit-exactness check.

``validate_sched`` / ``validate_throughput`` are the CI acceptance
gates:

* ≥ :data:`MIN_SPEEDUP_4C` simulated speedup at 4 clusters on every
  measured workload (the paper's scalable-parallelism claim);
* ≥ :data:`MIN_AMORTIZED` amortized speedup at the 4-cluster /
  8-stream HELR256 point, with structural stalls under
  :data:`MAX_STRUCTURAL_FRACTION` of cluster-time;
* zero dependency violations at every point of both grids;
* the 1-cluster latency schedule within
  :data:`ONE_CLUSTER_TOLERANCE` of the serial engine;
* the parallel (and merged multi-stream) functional executions
  bit-exact with their serial references.
"""

from __future__ import annotations

MIN_SPEEDUP_4C = 2.0
ONE_CLUSTER_TOLERANCE = 0.01
DEFAULT_CLUSTERS = (1, 2, 4, 8)
# The executor proves ordering on real residues; one iteration's ops
# are plenty (every op kind, dozens of ciphertext chains).
EXECUTOR_WORKERS = 2

# Throughput-mode gates (the Table-6-style grid): at the flagship
# 4-cluster / 8-stream HELR256 point the amortized per-stream speedup
# must clear MIN_AMORTIZED (vs 3.90x in latency mode — streaming must
# buy what one program's dataflow cannot), with the structural stall
# share of cluster-time under MAX_STRUCTURAL_FRACTION.
MIN_AMORTIZED = 6.0
MAX_STRUCTURAL_FRACTION = 0.05
DEFAULT_STREAMS = (1, 2, 4, 8)
GATE_CLUSTERS = 4
GATE_STREAMS = 8
EXECUTOR_STREAMS = 4


def _scaling_record(trace, clusters) -> dict:
    from repro.sched import DataflowGraph, cluster_scaling
    curve = cluster_scaling(trace, counts=tuple(clusters))
    graph = DataflowGraph.from_trace(trace)
    return {
        "num_trace_ops": len(trace),
        "serial_s": curve["serial_s"],
        "graph": graph.stats(),
        "points": curve["points"],
    }


def _executor_record() -> dict:
    from repro.sched import FunctionalExecutor
    from repro.workloads import helr
    trace = helr.helr_iteration()
    check = FunctionalExecutor().verify(trace,
                                        workers=EXECUTOR_WORKERS)
    return {
        "trace": trace.name,
        "bit_exact": check.bit_exact,
        "parallel": check.parallel,
        "workers": check.workers,
        "num_cts": check.num_cts,
        "num_ops": check.num_ops,
        "num_nodes": check.num_nodes,
    }


def run_sched(quick: bool = False,
              clusters=DEFAULT_CLUSTERS) -> dict:
    """The ``sched`` benchmark section (same shape in quick mode —
    both workload traces are CI-sized already)."""
    from repro.workloads import bootstrap_trace, helr_trace
    del quick  # traces are small; the section is identical either way
    workloads = {
        "HELR256": helr_trace(batch=256),
        "Bootstrap": bootstrap_trace(),
    }
    return {
        "clusters_axis": list(clusters),
        "workloads": {name: _scaling_record(trace, clusters)
                      for name, trace in workloads.items()},
        "executor": _executor_record(),
    }


def _stream_executor_record() -> dict:
    from repro.sched import FunctionalExecutor
    from repro.workloads import helr
    trace = helr.helr_iteration()
    check = FunctionalExecutor().verify_streams(
        [trace] * EXECUTOR_STREAMS, workers=EXECUTOR_WORKERS)
    return {
        "trace": trace.name,
        "streams": check.streams,
        "bit_exact": check.bit_exact,
        "parallel": check.parallel,
        "workers": check.workers,
        "num_cts": check.num_cts,
        "num_ops": check.num_ops,
        "num_nodes": check.num_nodes,
    }


def run_throughput(quick: bool = False,
                   clusters=DEFAULT_CLUSTERS,
                   streams=DEFAULT_STREAMS) -> dict:
    """The ``throughput`` benchmark section: the clusters x streams
    amortized-speedup grid on HELR256 plus one merged multi-stream
    executor bit-exactness check.  Quick mode keeps only the corners
    (the 1C/1S sanity point and the gated 4C/8S flagship point)."""
    from repro.sched import throughput_scaling
    from repro.workloads import helr_trace
    if quick:
        clusters = tuple(c for c in clusters if c in (1, GATE_CLUSTERS))
        streams = tuple(s for s in streams if s in (1, GATE_STREAMS))
    trace = helr_trace(batch=256)
    grid = throughput_scaling(trace, cluster_counts=tuple(clusters),
                              stream_counts=tuple(streams))
    for point in grid["points"]:
        denominator = point["sim_s"] * point["clusters"]
        point["structural_fraction"] = (
            point["stalls"]["structural_s"] / denominator
            if denominator else 0.0)
    return {
        "workload": "HELR256",
        "clusters_axis": list(clusters),
        "streams_axis": list(streams),
        "serial_s": grid["serial_s"],
        "points": grid["points"],
        "executor": _stream_executor_record(),
    }


def validate_throughput(section: dict) -> list[str]:
    """Acceptance violations of one ``throughput`` section."""
    violations: list[str] = []
    gated = False
    for point in section.get("points", []):
        count, streams = point.get("clusters"), point.get("streams")
        label = f"throughput.{section.get('workload')}@{count}C/{streams}S"
        if point.get("dependency_violations"):
            violations.append(
                f"{label}: {point['dependency_violations']} dependency "
                f"violations in the schedule")
        if count == GATE_CLUSTERS and streams == GATE_STREAMS:
            gated = True
            amortized = point.get("amortized_speedup") or 0.0
            if amortized < MIN_AMORTIZED:
                violations.append(
                    f"{label}: amortized speedup {amortized:.2f}x below "
                    f"the {MIN_AMORTIZED:.0f}x acceptance bar")
            fraction = point.get("structural_fraction") or 0.0
            if fraction >= MAX_STRUCTURAL_FRACTION:
                violations.append(
                    f"{label}: structural stalls {fraction:.1%} of "
                    f"cluster-time (bar {MAX_STRUCTURAL_FRACTION:.0%})")
    if not gated:
        violations.append(
            f"throughput: grid lacks the gated "
            f"{GATE_CLUSTERS}C/{GATE_STREAMS}S point")
    executor = section.get("executor")
    if executor is not None and not executor.get("bit_exact"):
        violations.append(
            "throughput.executor: merged multi-stream execution is not "
            "bit-exact with the independent serial runs")
    return violations


def throughput_grid(section: dict) -> dict:
    """Compact ``{clusters: {streams: amortized_speedup}}`` view."""
    grid: dict = {}
    for point in section.get("points", []):
        grid.setdefault(point["clusters"], {})[point["streams"]] = \
            point["amortized_speedup"]
    return grid


def validate_sched(section: dict) -> list[str]:
    """Acceptance violations of one ``sched`` section (empty = pass)."""
    violations: list[str] = []
    for name, record in section.get("workloads", {}).items():
        for point in record.get("points", []):
            count = point.get("clusters")
            speedup = point.get("speedup") or 0.0
            if point.get("dependency_violations"):
                violations.append(
                    f"sched.{name}@{count}C: "
                    f"{point['dependency_violations']} dependency "
                    f"violations in the schedule")
            if count == 4 and speedup < MIN_SPEEDUP_4C:
                violations.append(
                    f"sched.{name}@4C: speedup {speedup:.2f}x below "
                    f"the {MIN_SPEEDUP_4C:.0f}x acceptance bar")
            if count == 1 and \
                    abs(speedup - 1.0) > ONE_CLUSTER_TOLERANCE:
                violations.append(
                    f"sched.{name}@1C: schedule deviates "
                    f"{abs(speedup - 1.0):.1%} from the serial engine "
                    f"(tolerance {ONE_CLUSTER_TOLERANCE:.0%})")
    executor = section.get("executor")
    if executor is not None and not executor.get("bit_exact"):
        violations.append(
            "sched.executor: parallel functional execution is not "
            "bit-exact with serial")
    return violations


def scaling_curve(section: dict) -> dict:
    """Compact ``{workload: {clusters: speedup}}`` view of a section
    (the artifact CI uploads)."""
    return {
        name: {point["clusters"]: point["speedup"]
               for point in record.get("points", [])}
        for name, record in section.get("workloads", {}).items()
    }
