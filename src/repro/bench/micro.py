"""Arithmetic-kernel microbenchmarks for ``python -m repro bench``.

Three sections feed the ``micro`` block of BENCH_sim.json:

* ``modmul`` — element-wise modular multiplication at each width path
  (narrow int64 / wide uint64 Barrett at 36, 60 and near-2^62 bits /
  forced-object oracle), the software analogue of timing the TBM's
  36-bit and 60-bit modes in isolation.
* ``ntt`` — the N=4096 negacyclic NTT at a 36-bit prime on the wide
  path versus the forced-object oracle (the configuration the
  acceptance bar of ISSUE 2 names), plus the 60-bit wide transform.
  The wide result is cross-checked element-wise against the oracle
  before timing, so the reported speedup can never come from a
  wrong answer.
* ``bconv`` — the matrix-form base-conversion kernel (the software
  BConvU) against the per-pair scalar loop it replaced, at the three
  conversion shapes one Set-II-mini hybrid key-switch actually runs:
  ModUp digit 0 (alpha limbs incl. the 44-bit first prime onto the
  complement), ModUp digit 1 (the short tail digit onto the widest
  target), and ModDown (specials back onto Q).  Results are
  bit-exactness-checked against the oracle before timing, and the
  plan-cache hit/miss counters are recorded from a separate traced
  pass.
* ``functional`` — one HELR-style step (encrypt, PMult + rescale,
  HMult/hybrid + rescale, HMult/KLSS + rescale, HRot, decrypt) at
  either toy (``--params toy``) or Set-II-shaped wide-word parameters
  (``--params full``).  It runs with the obs layer enabled and
  records the width-path counter deltas — TBM mode occupancy,
  Fig. 12 — which CI uses to assert that full-size parameters never
  fall back onto the object path, plus the ``rns.bconv.*`` deltas
  which must show zero object-path conversion fallbacks.

Wall times are best-of-``reps`` to shrug off interpreter hiccups.
"""

from __future__ import annotations

import time

import numpy as np

# Acceptance bar: wide-path N=4096 NTT at a 36-bit prime must beat the
# object-path oracle by at least this factor.
MIN_NTT_SPEEDUP = 10.0
# Acceptance bar: the matrix-form BConv kernel must beat the per-pair
# scalar loop by at least this factor, aggregated over the Set-II-mini
# key-switch shapes.
MIN_BCONV_SPEEDUP = 5.0
# The functional step decrypt must land this close to the clear-text
# result, or the kernels are fast but wrong.
MAX_FUNCTIONAL_ERROR = 1e-2

NTT_RING_DEGREE = 4096
MODMUL_SIZE = 4096
BCONV_RING_DEGREE = 1024


def _best(fn, reps: int) -> float:
    walls = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _modmul_section(quick: bool) -> dict:
    from repro.ckks import modmath, primes

    reps = 3 if quick else 10
    n = MODMUL_SIZE
    rng = np.random.default_rng(2024)
    cases = {}
    q36 = primes.ntt_primes(1, 36, n)[0]
    specs = [
        ("narrow28", primes.ntt_primes(1, 28, n)[0], None),
        ("wide36", q36, None),
        ("wide60", primes.ntt_primes(1, 60, n)[0], None),
        ("wide62", primes.ntt_primes(1, 62, n)[0], None),
        ("object36", q36, modmath.OBJECT),
    ]
    for label, q, path in specs:
        kernel = modmath.get_kernel(q, path)
        a = kernel.asresidues(rng.integers(0, q, size=n).tolist())
        b = kernel.asresidues(rng.integers(0, q, size=n).tolist())
        best = _best(lambda: kernel.mul(a, b), reps)
        cases[label] = {
            "modulus_bits": q.bit_length(),
            "path": kernel.path,
            "n": n,
            "best_s": best,
            "ns_per_element": best / n * 1e9,
        }
    return {
        "cases": cases,
        "speedup_wide36_vs_object": (cases["object36"]["best_s"]
                                     / cases["wide36"]["best_s"]),
    }


def _ntt_section(quick: bool) -> dict:
    from repro.ckks import modmath, primes
    from repro.ckks.ntt import NttPlan

    n = NTT_RING_DEGREE
    wide_reps = 5 if quick else 20
    object_reps = 2 if quick else 3
    rng = np.random.default_rng(4096)
    q36 = primes.ntt_primes(1, 36, n)[0]
    q60 = primes.ntt_primes(1, 60, n)[0]
    wide_plan = NttPlan(n, q36)
    oracle_plan = NttPlan(n, q36, path=modmath.OBJECT)
    x = rng.integers(0, q36, size=n, dtype=np.uint64)
    fw = wide_plan.forward(x)
    fo = oracle_plan.forward(np.array(x.tolist(), dtype=object))
    matches = all(int(a) == int(b) for a, b in zip(fw, fo))
    wide_best = _best(lambda: wide_plan.forward(x), wide_reps)
    object_best = _best(
        lambda: oracle_plan.forward(np.array(x.tolist(), dtype=object)),
        object_reps)
    wide60_plan = NttPlan(n, q60)
    x60 = rng.integers(0, q60, size=n, dtype=np.uint64)
    wide60_best = _best(lambda: wide60_plan.forward(x60), wide_reps)
    return {
        "ring_degree": n,
        "modulus_bits": q36.bit_length(),
        "wide_matches_oracle": matches,
        "wide_best_s": wide_best,
        "object_best_s": object_best,
        "wide60_best_s": wide60_best,
        "speedup_wide36_vs_object": object_best / wide_best,
        "min_required_speedup": MIN_NTT_SPEEDUP,
    }


def _bconv_bases(n: int):
    """Set-II-mini prime chains, built exactly as the context builds them."""
    from repro.ckks import primes
    from repro.ckks.params import set_ii_mini

    params = set_ii_mini(ring_degree=n)
    used: set[int] = set()
    first = primes.ntt_primes(1, params.first_prime_bits, n, exclude=used)
    used.update(first)
    scale = primes.ntt_primes(params.max_level, params.prime_bits, n,
                              exclude=used)
    used.update(scale)
    specials = primes.ntt_primes(params.num_special_primes, params.prime_bits,
                                 n, exclude=used)
    return params, tuple(first + scale), tuple(specials)


def _bconv_section(quick: bool) -> dict:
    from repro import obs
    from repro.ckks import modmath, rns

    n = BCONV_RING_DEGREE
    reps = 5 if quick else 15
    inner = 4 if quick else 8
    params, q_chain, specials = _bconv_bases(n)
    alpha = params.alpha
    # The three conversions a top-level hybrid key-switch actually runs.
    shapes = {
        "modup_digit0": (q_chain[:alpha], q_chain[alpha:] + specials),
        "modup_digit1": (q_chain[alpha:], q_chain[:alpha] + specials),
        "moddown": (specials, q_chain),
    }
    rng = np.random.default_rng(1024)
    cases = {}
    bit_exact = True
    matrix_total = loop_total = 0.0
    polys = {}
    for label, (src, dst) in shapes.items():
        poly = rns.RnsPoly([modmath.random_uniform(n, q, rng) for q in src],
                           src, rns.COEFF)
        polys[label] = poly
        plan = rns.get_bconv_plan(src, dst)  # plan build is out of timing
        got = plan.convert(poly.limbs)
        want = rns.base_convert_reference(poly, dst)
        exact = all(all(int(a) == int(b) for a, b in zip(x, y))
                    for x, y in zip(got, want.limbs))
        bit_exact = bit_exact and exact

        def matrix_run(plan=plan, limbs=poly.limbs):
            for _ in range(inner):
                plan.convert(limbs)

        def loop_run(poly=poly, dst=dst):
            for _ in range(inner):
                rns.base_convert_reference(poly, dst)

        matrix_best = _best(matrix_run, reps) / inner
        loop_best = _best(loop_run, reps) / inner
        matrix_total += matrix_best
        loop_total += loop_best
        cases[label] = {
            "k_in": len(src),
            "k_out": len(dst),
            "src_bits": sorted({q.bit_length() for q in src}),
            "dst_bits": sorted({q.bit_length() for q in dst}),
            "matrix_best_s": matrix_best,
            "loop_best_s": loop_best,
            "speedup": loop_best / matrix_best,
            "bit_exact": exact,
        }
    # Plan-cache counters from a short traced pass (never mixed into
    # the timing above: counter bumps would distort the matrix side).
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        rns.clear_bconv_plan_cache()
        for label, (src, dst) in shapes.items():
            rns.base_convert(polys[label], dst)
            rns.base_convert(polys[label], dst)
        counters = _bconv_counters()
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    return {
        "ring_degree": n,
        "params": params.name,
        "cases": cases,
        "bit_exact": bit_exact,
        "speedup_aggregate": loop_total / matrix_total,
        "min_required_speedup": MIN_BCONV_SPEEDUP,
        "plan_counters": counters,
    }


def _functional_params(params_mode: str, quick: bool):
    from repro.ckks.params import set_ii_mini, toy_params

    if params_mode == "toy":
        return toy_params(ring_degree=256, name="toy (narrow path)")
    return set_ii_mini(ring_degree=1024 if quick else 4096)


def _path_counters() -> dict:
    from repro.obs.tracer import get_tracer
    counters = get_tracer().metrics.counters()
    return {name: int(value) for name, value in counters.items()
            if name.startswith(("modmath.path.", "ntt.path."))}


def _bconv_counters() -> dict:
    """``rns.bconv.*`` counter values, with the prefix stripped."""
    from repro.obs.tracer import get_tracer
    counters = get_tracer().metrics.counters()
    prefix = "rns.bconv."
    return {name[len(prefix):]: int(value)
            for name, value in counters.items() if name.startswith(prefix)}


def _functional_section(params_mode: str, quick: bool) -> dict:
    """One HELR-style step at real word widths, with path accounting."""
    from repro import obs
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID, KLSS

    params = _functional_params(params_mode, quick)
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        before = _path_counters()
        bconv_before = _bconv_counters()
        start = time.perf_counter()
        ctx = CkksContext(params, seed=11)
        top = params.max_level
        ctx.evaluation_key(HYBRID, top, "mult")
        ctx.evaluation_key(KLSS, top - 2, "mult")
        ctx.rotation_key(HYBRID, top - 3, 1)
        keygen_wall = time.perf_counter() - start

        base = np.array([0.75, -1.25, 0.5, 1.5], dtype=np.complex128)
        message = np.tile(base, params.num_slots // 4)
        weights = np.full(params.num_slots, 0.5)
        start = time.perf_counter()
        ct = ctx.encrypt(message)
        # multiply_rescale takes the fused ModDown+Rescale kernel on
        # the HYBRID path (one batched conversion instead of ModDown
        # followed by an exact rescale); KLSS falls back internally to
        # the sequential pipeline.
        ct = ctx.multiply_rescale(ct, ct, method=HYBRID)
        ct = ctx.rescale(ctx.multiply_plain(ct, ctx.plain_for(ct, weights)))
        ct = ctx.multiply_rescale(ct, ct, method=KLSS)
        ct = ctx.rotate(ct, 1, method=HYBRID)
        expected = np.roll((message ** 2 * weights) ** 2, -1)
        error = float(np.max(np.abs(ctx.decrypt(ct) - expected)))
        step_wall = time.perf_counter() - start
        after = _path_counters()
        bconv_after = _bconv_counters()
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    width_paths = {name: after.get(name, 0) - before.get(name, 0)
                   for name in after}
    bconv = {name: bconv_after.get(name, 0) - bconv_before.get(name, 0)
             for name in bconv_after}
    return {
        "workload": "HELR-mini step",
        "params": params.name,
        "params_mode": params_mode,
        "ring_degree": params.ring_degree,
        "prime_bits": params.prime_bits,
        "klss_word_bits": params.klss_word_bits,
        "keygen_wall_s": keygen_wall,
        "step_wall_s": step_wall,
        "max_slot_error": error,
        "width_paths": width_paths,
        "bconv": bconv,
    }


def run_micro(params_mode: str = "full", quick: bool = False) -> dict:
    """The full ``micro`` block for the bench report."""
    return {
        "params_mode": params_mode,
        "modmul": _modmul_section(quick),
        "ntt": _ntt_section(quick),
        "bconv": _bconv_section(quick),
        "functional": _functional_section(params_mode, quick),
    }


def validate_micro(micro: dict) -> list[str]:
    """Acceptance-bar violations in a ``micro`` block (empty = pass)."""
    violations: list[str] = []
    ntt = micro.get("ntt", {})
    if not ntt.get("wide_matches_oracle", False):
        violations.append("ntt: wide path disagrees with the object oracle")
    speedup = ntt.get("speedup_wide36_vs_object", 0.0)
    if speedup < MIN_NTT_SPEEDUP:
        violations.append(
            f"ntt: wide36 speedup {speedup:.1f}x is below the "
            f"{MIN_NTT_SPEEDUP:.0f}x bar")
    bconv = micro.get("bconv", {})
    if not bconv.get("bit_exact", False):
        violations.append(
            "bconv: matrix kernel disagrees with the object-path oracle")
    bconv_speedup = bconv.get("speedup_aggregate", 0.0)
    if bconv_speedup < MIN_BCONV_SPEEDUP:
        violations.append(
            f"bconv: aggregate speedup {bconv_speedup:.1f}x over the "
            f"per-pair loop is below the {MIN_BCONV_SPEEDUP:.0f}x bar")
    if bconv.get("plan_counters", {}).get("object_fallback"):
        violations.append(
            "bconv: conversions fell back onto the object path at "
            "Set-II-mini shapes")
    functional = micro.get("functional", {})
    error = functional.get("max_slot_error")
    if error is None or error > MAX_FUNCTIONAL_ERROR:
        violations.append(
            f"functional: slot error {error} exceeds {MAX_FUNCTIONAL_ERROR}")
    if functional.get("params_mode") == "full":
        paths = functional.get("width_paths", {})
        object_hits = sum(v for k, v in paths.items()
                          if k.endswith(".object"))
        wide_hits = sum(v for k, v in paths.items() if k.endswith(".wide"))
        if object_hits:
            violations.append(
                f"functional: {object_hits} kernel invocations fell back "
                "onto the object path at full-size parameters")
        if not wide_hits:
            violations.append(
                "functional: no kernel invocation took the wide path at "
                "full-size parameters")
        conversions = functional.get("bconv", {})
        if conversions.get("object_fallback"):
            violations.append(
                f"functional: {conversions['object_fallback']} base "
                "conversions fell back onto the object path")
        if not conversions.get("matrix"):
            violations.append(
                "functional: no base conversion took the matrix path")
    return violations
