"""Arithmetic-kernel microbenchmarks for ``python -m repro bench``.

Three sections feed the ``micro`` block of BENCH_sim.json:

* ``modmul`` — element-wise modular multiplication at each width path
  (narrow int64 / wide uint64 Barrett at 36, 60 and near-2^62 bits /
  forced-object oracle), the software analogue of timing the TBM's
  36-bit and 60-bit modes in isolation.
* ``ntt`` — the N=4096 negacyclic NTT at a 36-bit prime on the wide
  path versus the forced-object oracle (the configuration the
  acceptance bar of ISSUE 2 names), plus the 60-bit wide transform.
  The wide result is cross-checked element-wise against the oracle
  before timing, so the reported speedup can never come from a
  wrong answer.
* ``functional`` — one HELR-style step (encrypt, PMult + rescale,
  HMult/hybrid + rescale, HMult/KLSS + rescale, HRot, decrypt) at
  either toy (``--params toy``) or Set-II-shaped wide-word parameters
  (``--params full``).  It runs with the obs layer enabled and
  records the width-path counter deltas — TBM mode occupancy,
  Fig. 12 — which CI uses to assert that full-size parameters never
  fall back onto the object path.

Wall times are best-of-``reps`` to shrug off interpreter hiccups.
"""

from __future__ import annotations

import time

import numpy as np

# Acceptance bar: wide-path N=4096 NTT at a 36-bit prime must beat the
# object-path oracle by at least this factor.
MIN_NTT_SPEEDUP = 10.0
# The functional step decrypt must land this close to the clear-text
# result, or the kernels are fast but wrong.
MAX_FUNCTIONAL_ERROR = 1e-2

NTT_RING_DEGREE = 4096
MODMUL_SIZE = 4096


def _best(fn, reps: int) -> float:
    walls = []
    for _ in range(max(1, reps)):
        start = time.perf_counter()
        fn()
        walls.append(time.perf_counter() - start)
    return min(walls)


def _modmul_section(quick: bool) -> dict:
    from repro.ckks import modmath, primes

    reps = 3 if quick else 10
    n = MODMUL_SIZE
    rng = np.random.default_rng(2024)
    cases = {}
    q36 = primes.ntt_primes(1, 36, n)[0]
    specs = [
        ("narrow28", primes.ntt_primes(1, 28, n)[0], None),
        ("wide36", q36, None),
        ("wide60", primes.ntt_primes(1, 60, n)[0], None),
        ("wide62", primes.ntt_primes(1, 62, n)[0], None),
        ("object36", q36, modmath.OBJECT),
    ]
    for label, q, path in specs:
        kernel = modmath.get_kernel(q, path)
        a = kernel.asresidues(rng.integers(0, q, size=n).tolist())
        b = kernel.asresidues(rng.integers(0, q, size=n).tolist())
        best = _best(lambda: kernel.mul(a, b), reps)
        cases[label] = {
            "modulus_bits": q.bit_length(),
            "path": kernel.path,
            "n": n,
            "best_s": best,
            "ns_per_element": best / n * 1e9,
        }
    return {
        "cases": cases,
        "speedup_wide36_vs_object": (cases["object36"]["best_s"]
                                     / cases["wide36"]["best_s"]),
    }


def _ntt_section(quick: bool) -> dict:
    from repro.ckks import modmath, primes
    from repro.ckks.ntt import NttPlan

    n = NTT_RING_DEGREE
    wide_reps = 5 if quick else 20
    object_reps = 2 if quick else 3
    rng = np.random.default_rng(4096)
    q36 = primes.ntt_primes(1, 36, n)[0]
    q60 = primes.ntt_primes(1, 60, n)[0]
    wide_plan = NttPlan(n, q36)
    oracle_plan = NttPlan(n, q36, path=modmath.OBJECT)
    x = rng.integers(0, q36, size=n, dtype=np.uint64)
    fw = wide_plan.forward(x)
    fo = oracle_plan.forward(np.array(x.tolist(), dtype=object))
    matches = all(int(a) == int(b) for a, b in zip(fw, fo))
    wide_best = _best(lambda: wide_plan.forward(x), wide_reps)
    object_best = _best(
        lambda: oracle_plan.forward(np.array(x.tolist(), dtype=object)),
        object_reps)
    wide60_plan = NttPlan(n, q60)
    x60 = rng.integers(0, q60, size=n, dtype=np.uint64)
    wide60_best = _best(lambda: wide60_plan.forward(x60), wide_reps)
    return {
        "ring_degree": n,
        "modulus_bits": q36.bit_length(),
        "wide_matches_oracle": matches,
        "wide_best_s": wide_best,
        "object_best_s": object_best,
        "wide60_best_s": wide60_best,
        "speedup_wide36_vs_object": object_best / wide_best,
        "min_required_speedup": MIN_NTT_SPEEDUP,
    }


def _functional_params(params_mode: str, quick: bool):
    from repro.ckks.params import set_ii_mini, toy_params

    if params_mode == "toy":
        return toy_params(ring_degree=256, name="toy (narrow path)")
    return set_ii_mini(ring_degree=1024 if quick else 4096)


def _path_counters() -> dict:
    from repro.obs.tracer import get_tracer
    counters = get_tracer().metrics.counters()
    return {name: int(value) for name, value in counters.items()
            if name.startswith(("modmath.path.", "ntt.path."))}


def _functional_section(params_mode: str, quick: bool) -> dict:
    """One HELR-style step at real word widths, with path accounting."""
    from repro import obs
    from repro.ckks.context import CkksContext
    from repro.ckks.keys import HYBRID, KLSS

    params = _functional_params(params_mode, quick)
    was_enabled = obs.enabled()
    obs.configure(enabled=True, reset=True)
    try:
        before = _path_counters()
        start = time.perf_counter()
        ctx = CkksContext(params, seed=11)
        top = params.max_level
        ctx.evaluation_key(HYBRID, top, "mult")
        ctx.evaluation_key(KLSS, top - 2, "mult")
        ctx.rotation_key(HYBRID, top - 3, 1)
        keygen_wall = time.perf_counter() - start

        base = np.array([0.75, -1.25, 0.5, 1.5], dtype=np.complex128)
        message = np.tile(base, params.num_slots // 4)
        weights = np.full(params.num_slots, 0.5)
        start = time.perf_counter()
        ct = ctx.encrypt(message)
        ct = ctx.rescale(ctx.multiply(ct, ct, method=HYBRID))
        ct = ctx.rescale(ctx.multiply_plain(ct, ctx.plain_for(ct, weights)))
        ct = ctx.rescale(ctx.multiply(ct, ct, method=KLSS))
        ct = ctx.rotate(ct, 1, method=HYBRID)
        expected = np.roll((message ** 2 * weights) ** 2, -1)
        error = float(np.max(np.abs(ctx.decrypt(ct) - expected)))
        step_wall = time.perf_counter() - start
        after = _path_counters()
    finally:
        obs.configure(enabled=was_enabled, reset=True)
    width_paths = {name: after.get(name, 0) - before.get(name, 0)
                   for name in after}
    return {
        "workload": "HELR-mini step",
        "params": params.name,
        "params_mode": params_mode,
        "ring_degree": params.ring_degree,
        "prime_bits": params.prime_bits,
        "klss_word_bits": params.klss_word_bits,
        "keygen_wall_s": keygen_wall,
        "step_wall_s": step_wall,
        "max_slot_error": error,
        "width_paths": width_paths,
    }


def run_micro(params_mode: str = "full", quick: bool = False) -> dict:
    """The full ``micro`` block for the bench report."""
    return {
        "params_mode": params_mode,
        "modmul": _modmul_section(quick),
        "ntt": _ntt_section(quick),
        "functional": _functional_section(params_mode, quick),
    }


def validate_micro(micro: dict) -> list[str]:
    """Acceptance-bar violations in a ``micro`` block (empty = pass)."""
    violations: list[str] = []
    ntt = micro.get("ntt", {})
    if not ntt.get("wide_matches_oracle", False):
        violations.append("ntt: wide path disagrees with the object oracle")
    speedup = ntt.get("speedup_wide36_vs_object", 0.0)
    if speedup < MIN_NTT_SPEEDUP:
        violations.append(
            f"ntt: wide36 speedup {speedup:.1f}x is below the "
            f"{MIN_NTT_SPEEDUP:.0f}x bar")
    functional = micro.get("functional", {})
    error = functional.get("max_slot_error")
    if error is None or error > MAX_FUNCTIONAL_ERROR:
        violations.append(
            f"functional: slot error {error} exceeds {MAX_FUNCTIONAL_ERROR}")
    if functional.get("params_mode") == "full":
        paths = functional.get("width_paths", {})
        object_hits = sum(v for k, v in paths.items()
                          if k.endswith(".object"))
        wide_hits = sum(v for k, v in paths.items() if k.endswith(".wide"))
        if object_hits:
            violations.append(
                f"functional: {object_hits} kernel invocations fell back "
                "onto the object path at full-size parameters")
        if not wide_hits:
            violations.append(
                "functional: no kernel invocation took the wide path at "
                "full-size parameters")
    return violations
