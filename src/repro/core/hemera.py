"""Hemera: online evaluation-key management (Sec. 4.1.2).

Hemera sits between HBM and the accelerator at run time.  Its parts,
mirroring Fig. 5(b):

* **Evk Pool** — HBM-resident evaluation keys indexed by level, one
  group per level holding the rotation keys (per Galois element and
  method) and the multiply key;
* **Monitor** — walks the upcoming operation flow, pairs each
  key-switch with its Aether decision and resolves the HBM addresses
  of the keys it needs;
* **Batch-wised Transfer** — moves keys in 256-element batches (the
  minimum processing granularity of one computing unit), modelling
  the HBM burst behaviour;
* **History Recorder** — remembers ``(kind, level) -> decision``
  patterns so recurring workflows (training iterations, repeated
  bootstraps) prefetch their keys before the Monitor even reaches
  them.

The outcome of a run is a :class:`HemeraReport`: bytes moved, stall
time that could not be hidden behind compute, prefetch hit statistics
and the final on-chip residency set.  The cycle simulator consumes
these numbers directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.ckks.keys import HYBRID
from repro.ckks.keyswitch import cost
from repro.ckks.params import CkksParams
from repro.core import optrace
from repro.core.aether import AetherConfig, Aether
from repro.core.optrace import OpTrace

BATCH_ELEMENTS = 256  # paper: minimum granularity of one computing unit


@dataclass(frozen=True)
class KeyId:
    """Identity of one evaluation key in the pool."""

    method: str
    level: int
    kind: str          # "mult" or "rot"
    rotation: int = 0  # distinguishes rotation keys


@dataclass
class KeyRecord:
    """One pool entry: where the key lives in HBM and how big it is."""

    key_id: KeyId
    size_bytes: float
    hbm_address: int


class EvkPool:
    """HBM address book for evaluation keys, indexed by level.

    The pool lazily assigns addresses on first reference — the paper's
    pool is pre-populated by key generation; what matters functionally
    is the (level, kind) -> address/size mapping the Monitor queries.
    """

    def __init__(self, hybrid_params: CkksParams, klss_params: CkksParams):
        self.hybrid_params = hybrid_params
        self.klss_params = klss_params
        self._records: dict[KeyId, KeyRecord] = {}
        self._next_address = 0

    def lookup(self, key_id: KeyId) -> KeyRecord:
        if key_id not in self._records:
            params = (self.hybrid_params if key_id.method == HYBRID
                      else self.klss_params)
            size = cost.evk_bytes(key_id.method, params, key_id.level)
            record = KeyRecord(key_id, size, self._next_address)
            self._next_address += int(size)
            self._records[key_id] = record
        return self._records[key_id]

    def level_group(self, level: int, method: str,
                    rotations: list[int]) -> list[KeyRecord]:
        """A level's key group: the multiply key plus rotation keys."""
        records = [self.lookup(KeyId(method, level, "mult"))]
        records += [self.lookup(KeyId(method, level, "rot", r))
                    for r in rotations]
        return records

    def __len__(self) -> int:
        return len(self._records)


class HistoryRecorder:
    """Tracks key-switching patterns across levels (Fig. 5b).

    Maps ``(kind, level)`` to the decision last used there, enabling
    proactive prefetch when the same context recurs.
    """

    def __init__(self):
        self._patterns: dict[tuple[str, int], tuple[str, int]] = {}
        self.hits = 0
        self.misses = 0

    def record(self, kind: str, level: int, method: str,
               hoisting: int) -> None:
        self._patterns[(kind, level)] = (method, hoisting)

    def predict(self, kind: str, level: int) -> tuple[str, int] | None:
        prediction = self._patterns.get((kind, level))
        if prediction is None:
            self.misses += 1
        else:
            self.hits += 1
        return prediction


@dataclass
class TransferEvent:
    """One batched key transfer issued by Hemera."""

    unit_id: int
    key_ids: tuple[KeyId, ...]
    bytes_moved: float
    batches: int
    transfer_s: float
    window_s: float
    stall_s: float
    prefetched: bool


@dataclass
class HemeraReport:
    """Aggregate outcome of managing one trace's keys."""

    events: list[TransferEvent] = field(default_factory=list)
    total_bytes: float = 0.0
    total_transfer_s: float = 0.0
    total_stall_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def hidden_fraction(self) -> float:
        """Share of transfer time overlapped with compute."""
        if self.total_transfer_s == 0:
            return 1.0
        return 1.0 - self.total_stall_s / self.total_transfer_s


class KeyCache:
    """On-chip key storage with LRU eviction (capacity in bytes).

    Tracks its own ``hits`` / ``misses`` / ``evictions`` tallies (one
    ``contains`` probe is one lookup), which the simulator surfaces as
    the Hemera cache-hit rate.

    Keys may be *pinned* (ref-counted): pinned entries are skipped by
    the eviction scan.  The throughput scheduler pins the keys of
    in-flight and prefetched-but-unconsumed operations so a prefetch
    under pressure can never evict a key a running node still needs;
    an insert that cannot make room without touching pinned entries
    is dropped (the later demand fetch re-charges the transfer).
    """

    def __init__(self, capacity_bytes: float):
        self.capacity = capacity_bytes
        self._resident: OrderedDict[KeyId, float] = OrderedDict()
        self._pins: dict[KeyId, int] = {}
        self.used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def contains(self, key_id: KeyId) -> bool:
        if key_id in self._resident:
            self._resident.move_to_end(key_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def resident(self, key_id: KeyId) -> bool:
        """Non-counting residency probe (no LRU touch, no tallies) —
        for prefetch planning, which must not skew the hit-rate
        statistics the demand path reports."""
        return key_id in self._resident

    def pin(self, key_id: KeyId) -> None:
        """Protect a key from eviction (ref-counted)."""
        self._pins[key_id] = self._pins.get(key_id, 0) + 1

    def unpin(self, key_id: KeyId) -> None:
        count = self._pins.get(key_id, 0)
        if count <= 1:
            self._pins.pop(key_id, None)
        else:
            self._pins[key_id] = count - 1

    def pinned(self, key_id: KeyId) -> bool:
        return key_id in self._pins

    def insert(self, key_id: KeyId, size: float) -> None:
        if key_id in self._resident:
            self._resident.move_to_end(key_id)
            return
        while self.used + size > self.capacity:
            victim = next((k for k in self._resident
                           if k not in self._pins), None)
            if victim is None:
                break  # everything resident is pinned: drop the insert
            self.used -= self._resident.pop(victim)
            self.evictions += 1
        if self.used + size <= self.capacity:
            self._resident[key_id] = size
            self.used += size

    def resident_bytes(self) -> float:
        return self.used


class Hemera:
    """The runtime manager: Monitor + pool + cache + history.

    Parameters
    ----------
    config:
        The Aether configuration file guiding method/hoisting choice.
    pool:
        The HBM evk pool.
    key_storage_bytes:
        On-chip capacity reserved for keys.
    hbm_bandwidth:
        Bytes per second for key transfers.
    word_bytes:
        Bytes per transferred element (for batch counting).
    """

    def __init__(self, config: AetherConfig, pool: EvkPool,
                 key_storage_bytes: float, hbm_bandwidth: float,
                 word_bytes: float = cost.NARROW_WORD_BYTES,
                 use_ekg: bool = True):
        self.config = config
        self.pool = pool
        self.cache = KeyCache(key_storage_bytes)
        self.hbm_bandwidth = hbm_bandwidth
        self.word_bytes = word_bytes
        self.history = HistoryRecorder()
        # Sec. 5.7.2: with the EKG only half of each key pair moves.
        self.key_size_factor = 0.5 if use_ekg else 1.0

    def _keys_for_decision(self, decision, unit_ops) -> list[KeyRecord]:
        level = decision.level
        method = decision.method
        if decision.kind == optrace.HMULT:
            return [self.pool.lookup(KeyId(method, level, "mult"))]
        rotations = [op.rotation for op in unit_ops]
        return [self.pool.lookup(KeyId(method, level, "rot", r))
                for r in rotations]

    def manage(self, trace: OpTrace, aether: Aether) -> HemeraReport:
        """Run the Monitor over a trace; returns the transfer report.

        ``aether`` supplies the decision-unit segmentation (the same
        one used to produce the configuration file) and the compute
        windows against which transfers are overlapped.
        """
        tracer = obs.get_tracer()
        tracing = tracer.enabled
        evictions_before = self.cache.evictions
        report = HemeraReport()
        window = float("inf")  # first transfer overlaps program load
        for unit in aether.decision_units(trace):
            decision = self.config.decisions.get(unit.unit_id)
            if decision is None:
                continue
            predicted = self.history.predict(decision.kind, decision.level)
            prefetched = predicted == (decision.method, decision.hoisting)
            records = self._keys_for_decision(decision, unit.ops)
            missing = [r for r in records
                       if not self.cache.contains(r.key_id)]
            bytes_moved = self.key_size_factor * \
                sum(r.size_bytes for r in missing)
            batches = sum(self._batches(r.size_bytes) for r in missing)
            transfer_s = bytes_moved / self.hbm_bandwidth
            effective_window = window * (2.0 if prefetched else 1.0)
            stall_s = max(0.0, transfer_s - effective_window)
            for r in missing:
                self.cache.insert(r.key_id,
                                  self.key_size_factor * r.size_bytes)
                report.cache_misses += 1
            report.cache_hits += len(records) - len(missing)
            report.events.append(TransferEvent(
                unit_id=unit.unit_id,
                key_ids=tuple(r.key_id for r in records),
                bytes_moved=bytes_moved, batches=batches,
                transfer_s=transfer_s, window_s=window,
                stall_s=stall_s, prefetched=prefetched))
            report.total_bytes += bytes_moved
            report.total_transfer_s += transfer_s
            report.total_stall_s += stall_s
            if tracing:
                tracer.count("hemera.cache_hits",
                             len(records) - len(missing))
                tracer.count("hemera.cache_misses", len(missing))
                if prefetched:
                    tracer.count("hemera.prefetch_hits")
                if stall_s > 0:
                    tracer.observe("hemera.stall_s", stall_s)
                if transfer_s > 0:
                    tracer.observe("hemera.transfer_s", transfer_s)
                # Prefetch lead: slack between the hiding window and
                # the transfer it must hide (inf window = program load).
                if effective_window != float("inf"):
                    tracer.observe("hemera.prefetch_lead_s",
                                   effective_window - transfer_s)
            self.history.record(decision.kind, decision.level,
                                decision.method, decision.hoisting)
            window = decision.delay_s
        if tracing:
            tracer.count("hemera.evictions",
                         self.cache.evictions - evictions_before)
            tracer.observe("hemera.hidden_fraction",
                           report.hidden_fraction)
        return report

    def _batches(self, size_bytes: float) -> int:
        elements = size_bytes / self.word_bytes
        return max(1, int(-(-elements // BATCH_ELEMENTS)))
