"""Operation-flow IR: what applications emit and Aether consumes.

The paper's toolchain is trace-driven: each FHE application is first
lowered to a *cryptographically structured operation trace* preserving
execution order and dependencies (Sec. 6.1), which Aether analyses
offline and the cycle simulator executes.  :class:`FheOp` is one
operation of that trace; :class:`OpTrace` is the ordered program.

Rotations that act on the same ciphertext at the same level may share
a ``hoist_group`` id: these are the hoisting candidates (Sec. 2.2.3).
Whether a group is actually executed hoisted — and under which
key-switching method — is Aether's decision, not the workload's.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

# Operation kinds.  KEY_SWITCH_KINDS require an evaluation key.
HMULT = "HMult"
HROT = "HRot"
CONJ = "Conj"
PMULT = "PMult"
PADD = "PAdd"
HADD = "HAdd"
CMULT = "CMult"
CADD = "CAdd"
RESCALE = "Rescale"
MOD_RAISE = "ModRaise"

ALL_KINDS = (HMULT, HROT, CONJ, PMULT, PADD, HADD, CMULT, CADD,
             RESCALE, MOD_RAISE)
KEY_SWITCH_KINDS = (HMULT, HROT, CONJ)


class TraceValidationError(ValueError):
    """A trace violated the single-writer versioning contract.

    Raised by :meth:`OpTrace.check` — a named error (rather than a
    bare ``ValueError``) so downstream lowering can distinguish
    malformed *input* from bugs in the lowering itself.  Subclasses
    ``ValueError`` for backward compatibility.
    """


@dataclass(frozen=True)
class FheOp:
    """One operation of the trace.

    Attributes
    ----------
    kind:
        One of :data:`ALL_KINDS`.
    level:
        Remaining multiplicative level ``l`` of the operand.
    ct_id:
        Identifier of the (primary) input ciphertext.
    rotation:
        Rotation amount for HRot (0 otherwise).
    hoist_group:
        Shared id for rotations of one ciphertext that may be hoisted
        together; ``None`` when not a hoisting candidate.
    stage:
        Optional label for breakdowns (e.g. ``"CoeffToSlot"``).
    """

    kind: str
    level: int
    ct_id: int = 0
    rotation: int = 0
    hoist_group: int | None = None
    stage: str = ""

    def __post_init__(self):
        if self.kind not in ALL_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.level < 0:
            raise ValueError("level must be non-negative")

    @property
    def needs_key_switch(self) -> bool:
        return self.kind in KEY_SWITCH_KINDS

    def with_(self, **changes) -> "FheOp":
        return replace(self, **changes)


class OpTrace:
    """An ordered FHE operation flow with query helpers.

    ``declared_cts`` optionally records the ciphertext ids the
    producing :class:`TraceBuilder` allocated; when present,
    :meth:`validate` treats any other id as a read-before-write.
    Hand-assembled traces leave it ``None`` (first use defines).
    """

    def __init__(self, ops: Iterable[FheOp] = (), name: str = "trace",
                 declared_cts: set[int] | None = None):
        self.ops: list[FheOp] = list(ops)
        self.name = name
        self.declared_cts = declared_cts

    def append(self, op: FheOp) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[FheOp]) -> None:
        self.ops.extend(ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[FheOp]:
        return iter(self.ops)

    def __getitem__(self, idx):
        return self.ops[idx]

    def key_switch_ops(self) -> list[FheOp]:
        """Operations that require an evaluation key (HMult/HRot/Conj)."""
        return [op for op in self.ops if op.needs_key_switch]

    def hoist_groups(self) -> dict[int, list[FheOp]]:
        """Hoisting candidates: group id -> its rotations, in order."""
        groups: dict[int, list[FheOp]] = defaultdict(list)
        for op in self.ops:
            if op.hoist_group is not None and op.kind in (HROT, CONJ):
                groups[op.hoist_group].append(op)
        return dict(groups)

    def kind_histogram(self) -> Counter:
        return Counter(op.kind for op in self.ops)

    def level_histogram(self) -> Counter:
        """Levels at which key-switching operations occur."""
        return Counter(op.level for op in self.key_switch_ops())

    def stages(self) -> list[str]:
        """Distinct stage labels in first-appearance order."""
        seen: list[str] = []
        for op in self.ops:
            if op.stage and op.stage not in seen:
                seen.append(op.stage)
        return seen

    def slice_stage(self, stage: str) -> "OpTrace":
        return OpTrace([op for op in self.ops if op.stage == stage],
                       name=f"{self.name}:{stage}")

    def _ct_stride(self) -> int:
        """One past the largest ciphertext id this trace references."""
        used = [op.ct_id for op in self.ops]
        if self.declared_cts:
            used.extend(self.declared_cts)
        return (max(used) + 1) if used else 0

    def concat(self, other: "OpTrace", name: str | None = None) -> "OpTrace":
        """Concatenate traces; hoist-group ids *and ciphertext ids* of
        ``other`` are re-based so groups never merge across the seam
        and ciphertexts of the two halves never alias (aliasing would
        fabricate def-use dependencies — and level jumps — between
        unrelated operations)."""
        own_groups = [op.hoist_group for op in self.ops
                      if op.hoist_group is not None]
        offset = (max(own_groups) + 1) if own_groups else 0
        ct_offset = self._ct_stride()
        rebased = [op.with_(ct_id=op.ct_id + ct_offset)
                   if op.hoist_group is None
                   else op.with_(ct_id=op.ct_id + ct_offset,
                                 hoist_group=op.hoist_group + offset)
                   for op in other.ops]
        declared = None
        if self.declared_cts is not None or other.declared_cts is not None:
            own = (self.declared_cts
                   if self.declared_cts is not None
                   else {op.ct_id for op in self.ops})
            theirs = (other.declared_cts
                      if other.declared_cts is not None
                      else {op.ct_id for op in other.ops})
            declared = set(own) | {ct + ct_offset for ct in theirs}
        return OpTrace(self.ops + rebased,
                       name=name or f"{self.name}+{other.name}",
                       declared_cts=declared)

    def repeated(self, times: int, name: str | None = None) -> "OpTrace":
        """The trace repeated ``times`` times (training iterations).

        Hoist-group and ciphertext ids are re-based per repetition so
        groups never merge and each iteration's ciphertexts stay
        distinct (each iteration consumes freshly bootstrapped
        ciphertexts), and fresh op objects are created.
        """
        if times < 1:
            raise ValueError("times must be positive")
        group_ids = [op.hoist_group for op in self.ops
                     if op.hoist_group is not None]
        stride = (max(group_ids) + 1) if group_ids else 0
        ct_stride = self._ct_stride()
        ops: list[FheOp] = []
        for rep in range(times):
            for op in self.ops:
                changes = {"ct_id": op.ct_id + rep * ct_stride}
                if op.hoist_group is not None:
                    changes["hoist_group"] = op.hoist_group + rep * stride
                ops.append(op.with_(**changes))
        declared = None
        if self.declared_cts is not None:
            declared = {ct + rep * ct_stride
                        for rep in range(times)
                        for ct in self.declared_cts}
        return OpTrace(ops, name=name or f"{self.name}x{times}",
                       declared_cts=declared)

    # -- integrity ---------------------------------------------------------
    def validate(self) -> list[str]:
        """Integrity violations of the trace (empty list = clean).

        Checks, per the single-writer ciphertext-versioning convention
        (every op reads and rewrites its primary ``ct_id``):

        * ciphertext ids are non-negative, and — when the trace
          declares its allocated ids — never read before allocation;
        * per-ciphertext levels are monotonically non-increasing,
          except across a ModRaise (the only level-raising op);
        * hoist groups are well-formed: rotation/conjugation members
          only, one shared ciphertext and level, and no interleaved
          op on the same ciphertext inside the group's index span
          (fusing the group must not reorder same-ct dependencies).
        """
        violations: list[str] = []
        last_level: dict[int, int] = {}
        groups: dict[int, list[int]] = defaultdict(list)
        for index, op in enumerate(self.ops):
            if op.ct_id < 0:
                violations.append(
                    f"op {index} ({op.kind}): negative ct_id {op.ct_id}")
                continue
            if (self.declared_cts is not None
                    and op.ct_id not in self.declared_cts):
                violations.append(
                    f"op {index} ({op.kind}): unknown ct_id {op.ct_id} "
                    f"read before any allocation")
            prev = last_level.get(op.ct_id)
            if prev is not None and op.level > prev \
                    and op.kind != MOD_RAISE:
                violations.append(
                    f"op {index} ({op.kind}): level rises {prev} -> "
                    f"{op.level} on ct {op.ct_id} without ModRaise")
            last_level[op.ct_id] = op.level
            if op.hoist_group is not None:
                groups[op.hoist_group].append(index)
        for group_id, indices in groups.items():
            members = [self.ops[i] for i in indices]
            first = members[0]
            if any(m.kind not in (HROT, CONJ) for m in members):
                violations.append(
                    f"hoist group {group_id}: non-rotation member")
            if any(m.ct_id != first.ct_id for m in members):
                violations.append(
                    f"hoist group {group_id}: members span several "
                    f"ciphertexts")
            if any(m.level != first.level for m in members):
                violations.append(
                    f"hoist group {group_id}: members span several levels")
            member_set = set(indices)
            for i in range(indices[0], indices[-1] + 1):
                if i not in member_set \
                        and self.ops[i].ct_id == first.ct_id:
                    violations.append(
                        f"hoist group {group_id}: op {i} "
                        f"({self.ops[i].kind}) on ct {first.ct_id} "
                        f"interleaves the group")
                    break
        return violations

    def check(self) -> "OpTrace":
        """Raise :class:`TraceValidationError` on the first integrity
        violation; returns the trace for chaining."""
        violations = self.validate()
        if violations:
            preview = "; ".join(violations[:5])
            more = len(violations) - 5
            if more > 0:
                preview += f"; ... {more} more"
            raise TraceValidationError(
                f"trace {self.name!r} failed validation: {preview}")
        return self


class TraceBuilder:
    """Incremental construction helper used by the workload generators.

    Tracks ciphertext ids and hoist-group ids so generators read like
    the computation they describe::

        tb = TraceBuilder("my-app")
        ct = tb.fresh_ct()
        with tb.hoisted(ct, level=12) as rot:
            rot(1); rot(2); rot(4)
        tb.hmult(ct, level=12)
    """

    def __init__(self, name: str = "trace"):
        self.trace = OpTrace(name=name, declared_cts=set())
        self._next_ct = 0
        self._next_group = 0

    def fresh_ct(self) -> int:
        ct_id = self._next_ct
        self._next_ct += 1
        self.trace.declared_cts.add(ct_id)
        return ct_id

    def add(self, kind: str, level: int, ct_id: int | None = None,
            **kwargs) -> FheOp:
        if ct_id is None:
            ct_id = self.fresh_ct()
        op = FheOp(kind=kind, level=level, ct_id=ct_id, **kwargs)
        self.trace.append(op)
        return op

    def hmult(self, ct_id: int, level: int, stage: str = "") -> FheOp:
        return self.add(HMULT, level, ct_id, stage=stage)

    def pmult(self, ct_id: int, level: int, stage: str = "") -> FheOp:
        return self.add(PMULT, level, ct_id, stage=stage)

    def rescale(self, ct_id: int, level: int, stage: str = "") -> FheOp:
        return self.add(RESCALE, level, ct_id, stage=stage)

    def hrot(self, ct_id: int, level: int, rotation: int,
             hoist_group: int | None = None, stage: str = "") -> FheOp:
        return self.add(HROT, level, ct_id, rotation=rotation,
                        hoist_group=hoist_group, stage=stage)

    def rotations(self, ct_id: int, level: int, amounts: Iterable[int],
                  hoisted: bool = True, stage: str = "") -> list[FheOp]:
        """Emit a batch of rotations, optionally as one hoist group."""
        group = None
        if hoisted:
            group = self._next_group
            self._next_group += 1
        return [self.hrot(ct_id, level, r, hoist_group=group, stage=stage)
                for r in amounts]

    def build(self) -> OpTrace:
        return self.trace
