"""The paper's primary contribution.

* :mod:`repro.core.optrace` — the FHE operation-flow IR that
  applications emit and Aether/the simulator consume.
* :mod:`repro.core.tbm` — the Tunable-Bit Multiplier (Sec. 4.2): a
  bit-exact functional model of the 3-base-multiplier datapath that
  runs either two 36-bit multiplies or one 60-bit multiply.
* :mod:`repro.core.aether` — the offline key-switching analysis and
  decision tool (Sec. 4.1.1): MCT construction and STEP-1/2/3
  selection into an Aether configuration file.
* :mod:`repro.core.hemera` — the online evaluation-key manager
  (Sec. 4.1.2): evk pool, monitor, history recorder, batch-wise HBM
  transfer and prefetching.
"""

from repro.core.optrace import FheOp, OpTrace
from repro.core.tbm import TunableBitMultiplier
from repro.core.aether import Aether, AetherConfig, MctEntry
from repro.core.hemera import Hemera

__all__ = ["FheOp", "OpTrace", "TunableBitMultiplier",
           "Aether", "AetherConfig", "MctEntry", "Hemera"]
