"""Aether: offline key-switching method analysis and decision (Sec. 4.1.1).

Aether runs server-side before execution.  It walks the application's
operation flow, builds the **Methods Candidate Table** (MCT) — one
record per key-switching decision unit holding, for every candidate
``(method, hoisting)`` configuration, the modular-operation cost, the
estimated compute delay, the evaluation-key footprint and its HBM
transfer time — then filters and selects per the paper's three steps:

* **STEP-1** drop candidates whose key footprint exceeds the chip's
  reserved key storage;
* **STEP-2** drop candidates whose key transfer cannot be hidden
  behind the preceding operation's key-switch execution (the paper
  words this as "transmission time shorter than the execution time of
  the preceding ciphertext's key-switching"; we read it as the
  prefetch-hiding condition, keeping candidates whose transfer fits
  the available window);
* **STEP-3** among survivors pick minimal execution time, preferring
  the smaller key when latencies are within a tolerance.

The result is the *Aether configuration file* (~1 KB of JSON): per
key-switch decision unit, the chosen method and hoisting number.
Hemera reads it online.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro import obs
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch import cost
from repro.ckks.params import CkksParams
from repro.core import optrace
from repro.core.optrace import FheOp, OpTrace

# Latency tolerance within which two candidates count as "similar"
# and the smaller key wins (STEP-3 tie rule).
LATENCY_TIE_TOLERANCE = 0.05

# STEP-2 prefetch window: Hemera keeps several upcoming keys in
# flight (bounded by the key-storage reserve), so a transfer hides
# behind the execution of the last few key-switches (and the plain
# operations between them), not only the immediately preceding one.
PREFETCH_DEPTH = 6

# Keys for the first operations ride along with the program upload;
# this seeds the aggregate transfer budget (STEP-2's slack term).
PROGRAM_PRELOAD_S = 100e-6


@dataclass
class MctEntry:
    """One candidate configuration for one decision unit.

    Mirrors the MCT record format in Fig. 5(a): hoisting identifier
    ``h``, repetition count ``times``, computational ``cost``,
    relative ``delay``, key ``size`` and ``transfer`` time, recorded
    per method.
    """

    unit_id: int
    ct_id: int
    kind: str
    level: int
    method: str
    hoisting: int          # the paper's `h`
    times: int             # rotations covered by this unit
    cost_modops: float     # `Cost`
    delay_s: float         # `Delay`
    key_bytes: float       # `Size`
    transfer_s: float      # `Transfer Time`


@dataclass
class Decision:
    """Aether's choice for one decision unit."""

    unit_id: int
    ct_id: int
    kind: str
    level: int
    method: str
    hoisting: int
    times: int
    delay_s: float
    key_bytes: float
    transfer_s: float


@dataclass
class AetherConfig:
    """The Aether configuration file: decisions indexed by unit.

    Serialises to ~1 KB of JSON for realistic workloads, matching the
    paper's figure for the file size.
    """

    decisions: dict[int, Decision] = field(default_factory=dict)

    def method_for(self, unit_id: int) -> str:
        return self.decisions[unit_id].method

    def hoisting_for(self, unit_id: int) -> int:
        return self.decisions[unit_id].hoisting

    def method_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {HYBRID: 0, KLSS: 0}
        for decision in self.decisions.values():
            histogram[decision.method] += decision.times
        return histogram

    def level_method_map(self) -> dict[tuple[str, int], str]:
        """Majority method per (op kind, level) — the selector for
        functional execution via CkksContext."""
        votes: dict[tuple[str, int], dict[str, int]] = {}
        for decision in self.decisions.values():
            key = (decision.kind, decision.level)
            per = votes.setdefault(key, {HYBRID: 0, KLSS: 0})
            per[decision.method] += decision.times
        return {key: max(per, key=per.get) for key, per in votes.items()}

    def selector(self):
        """A ``MethodSelector`` for :class:`repro.ckks.CkksContext`."""
        mapping = self.level_method_map()

        def select(op: str, level: int, hoisting: int) -> str:
            kind = optrace.HMULT if op == "HMult" else optrace.HROT
            return mapping.get((kind, level), HYBRID)

        return select

    def to_json(self) -> str:
        """Compact serialisation: what Hemera needs at run time is the
        ciphertext/unit index, level, method and hoisting number (plus
        the delay used for prefetch pacing), keeping real application
        files in the paper's ~1 KB regime."""
        payload = {}
        for uid, d in self.decisions.items():
            payload[str(uid)] = [d.ct_id, d.kind, d.level, d.method,
                                 d.hoisting, d.times,
                                 round(d.delay_s * 1e9),
                                 round(d.key_bytes),
                                 round(d.transfer_s * 1e9)]
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "AetherConfig":
        payload = json.loads(text)
        decisions = {}
        for uid, rec in payload.items():
            ct_id, kind, level, method, hoisting, times, delay_ns, \
                key_bytes, transfer_ns = rec
            decisions[int(uid)] = Decision(
                unit_id=int(uid), ct_id=ct_id, kind=kind, level=level,
                method=method, hoisting=hoisting, times=times,
                delay_s=delay_ns / 1e9, key_bytes=float(key_bytes),
                transfer_s=transfer_ns / 1e9)
        return cls(decisions)

    def size_bytes(self) -> int:
        return len(self.to_json().encode())


@dataclass
class DecisionUnit:
    """A key-switching decision point: one op or one hoist group."""

    unit_id: int
    ops: list[FheOp]
    indices: list[int]

    @property
    def first(self) -> FheOp:
        return self.ops[0]

    @property
    def times(self) -> int:
        return len(self.ops)


class Aether:
    """The offline analysis and decision tool.

    Parameters
    ----------
    hybrid_params / klss_params:
        Parameter sets used when costing each method (the paper uses
        Set-I for hybrid and Set-II for KLSS).
    key_storage_bytes:
        On-chip capacity reserved for evaluation keys (STEP-1 budget).
    hbm_bandwidth:
        Off-chip bandwidth in bytes/second (transfer-time estimates).
    modops_per_second:
        Aggregate modular-operation throughput of the target
        accelerator, converting op counts into delays.
    delay_model:
        Optional callable ``(KernelOps, method) -> seconds`` giving a
        per-kernel-aware delay (the simulator provides one built from
        the accelerator's unit throughputs); falls back to
        ``total / modops_per_second``.
    """

    def __init__(self, hybrid_params: CkksParams, klss_params: CkksParams,
                 key_storage_bytes: float, hbm_bandwidth: float,
                 modops_per_second: float, use_ekg: bool = True,
                 use_minks: bool = True, delay_model=None):
        self.hybrid_params = hybrid_params
        self.klss_params = klss_params
        self.key_storage_bytes = key_storage_bytes
        self.hbm_bandwidth = hbm_bandwidth
        self.modops_per_second = modops_per_second
        self.delay_model = delay_model
        # ARK Min-KS: hybrid keys move in compact base form and are
        # regenerated on chip; KLSS gadget keys always move whole.
        self.use_minks = use_minks
        # Sec. 5.7.2: the Evaluation Key Generator regenerates one half
        # of every RLWE key pair from a PRNG seed, halving both the
        # stored and the transferred key bytes.
        self.key_size_factor = 0.5 if use_ekg else 1.0

    # -- analysis workflow (Fig. 5a) --------------------------------------
    def decision_units(self, trace: OpTrace) -> list[DecisionUnit]:
        """Locate HRot/HMult/Conj ops; fuse hoist groups into units."""
        units: list[DecisionUnit] = []
        open_groups: dict[int, DecisionUnit] = {}
        next_id = 0
        for index, op in enumerate(trace):
            if not op.needs_key_switch:
                continue
            if op.hoist_group is not None:
                unit = open_groups.get(op.hoist_group)
                if unit is None:
                    unit = DecisionUnit(next_id, [], [])
                    next_id += 1
                    open_groups[op.hoist_group] = unit
                    units.append(unit)
                unit.ops.append(op)
                unit.indices.append(index)
            else:
                units.append(DecisionUnit(next_id, [op], [index]))
                next_id += 1
        return units

    def _params_for(self, method: str) -> CkksParams:
        return self.hybrid_params if method == HYBRID else self.klss_params

    def candidates(self, unit: DecisionUnit) -> list[MctEntry]:
        """All (method, hoisting) configurations for one unit."""
        level = unit.first.level
        kind = unit.first.kind
        h_max = unit.times
        entries: list[MctEntry] = []
        hoist_options = sorted({1, h_max} | (
            {h_max // 2} if h_max >= 4 else set()))
        for method in (HYBRID, KLSS):
            params = self._params_for(method)
            for h in hoist_options:
                if h > 1 and kind == optrace.HMULT:
                    continue  # hoisting applies to rotations only
                # `h`-way hoisting executes ceil(times/h) fused batches.
                batches = -(-unit.times // h)
                kernel_ops = cost.keyswitch_ops(method, params, level,
                                                hoisting=h).scaled(batches)
                ops_count = kernel_ops.total
                if self.delay_model is not None:
                    delay = self.delay_model(kernel_ops, method)
                else:
                    delay = ops_count / self.modops_per_second
                key_bytes = self.key_size_factor * \
                    self.stored_key_bytes(method, params, level) * \
                    max(1, h)
                entries.append(MctEntry(
                    unit_id=unit.unit_id, ct_id=unit.first.ct_id,
                    kind=kind, level=level, method=method, hoisting=h,
                    times=unit.times, cost_modops=ops_count,
                    delay_s=delay,
                    key_bytes=key_bytes,
                    transfer_s=key_bytes / self.hbm_bandwidth))
        return entries

    def build_mct(self, trace: OpTrace) -> list[tuple]:
        """The full MCT: (decision unit, candidate entries) pairs in
        execution order."""
        tracer = obs.get_tracer()
        with tracer.span("aether.build_mct", trace=trace.name) as span:
            mct = [(u, self.candidates(u))
                   for u in self.decision_units(trace)]
        if tracer.enabled:
            candidates = sum(len(entries) for _, entries in mct)
            span.set(units=len(mct), candidates=candidates)
            tracer.count("aether.units", len(mct))
            tracer.count("aether.candidates", candidates)
        return mct

    # -- selection (STEP-1/2/3) --------------------------------------------
    def _key_names(self, unit: DecisionUnit, method: str) -> list[tuple]:
        """Key identities a unit needs (Min-KS: level-independent)."""
        first = unit.first
        if first.kind == optrace.HMULT:
            return [(method, "mult")]
        if first.kind == optrace.CONJ:
            return [(method, "conj")]
        return [(method, "rot", op.rotation) for op in unit.ops]

    def select(self, mct: list[tuple]) -> AetherConfig:
        tracer = obs.get_tracer()
        with tracer.span("aether.select", units=len(mct)):
            return self._select(mct, tracer)

    def _select(self, mct: list[tuple], tracer) -> AetherConfig:
        from collections import deque

        from repro.core.hemera import KeyCache
        tracing = tracer.enabled
        config = AetherConfig()
        recent = deque(maxlen=PREFETCH_DEPTH)
        prev_window = float("inf")  # first keys load with the program
        # Inter-operation key reuse is bounded by the on-chip key
        # reserve: Aether models the same LRU residency the hardware
        # will have, so it never banks on a key that must have been
        # evicted by the time it recurs.
        resident = KeyCache(self.key_storage_bytes)
        # Aggregate bandwidth budget: the prefetcher can only be ahead
        # while cumulative compute exceeds cumulative transfer; the
        # first keys ride along with the program upload.
        cum_compute = PROGRAM_PRELOAD_S
        cum_transfer = 0.0
        for unit, unit_candidates in mct:
            if not unit_candidates:
                continue
            survivors = [e for e in unit_candidates
                         if e.key_bytes <= self.key_storage_bytes]  # STEP-1
            if tracing:
                tracer.count("aether.step1_dropped",
                             len(unit_candidates) - len(survivors))
            if not survivors:
                survivors = [min(unit_candidates,
                                 key=lambda e: e.key_bytes)]
            # Effective transfer accounts for keys still on chip.
            effective: dict[int, float] = {}
            for e in survivors:
                names = self._key_names(unit, e.method)
                missing = sum(1 for n in names
                              if not resident.contains(n))
                fraction = missing / max(1, len(names))
                effective[id(e)] = e.transfer_s * fraction
            slack = max(0.0, cum_compute - cum_transfer)
            allowed = min(prev_window, slack)
            hidden = [e for e in survivors
                      if effective[id(e)] <= allowed]               # STEP-2
            if tracing:
                tracer.count("aether.step2_dropped",
                             len(survivors) - len(hidden) if hidden
                             else 0)
            if hidden:
                survivors = hidden
            best = self._pick(survivors)                            # STEP-3
            per_key = best.key_bytes / max(1, best.hoisting)
            for name in self._key_names(unit, best.method):
                resident.insert(name, per_key)
            cum_compute += best.delay_s
            cum_transfer += effective[id(best)]
            config.decisions[best.unit_id] = Decision(
                unit_id=best.unit_id, ct_id=best.ct_id, kind=best.kind,
                level=best.level, method=best.method,
                hoisting=best.hoisting, times=best.times,
                delay_s=best.delay_s, key_bytes=best.key_bytes,
                transfer_s=effective[id(best)])
            if tracing:
                tracer.count(f"aether.decision.{best.method}")
                tracer.observe("aether.decision_delay_s", best.delay_s)
            recent.append(best.delay_s)
            prev_window = sum(recent)
        return config

    @staticmethod
    def _pick(survivors: list[MctEntry]) -> MctEntry:
        fastest = min(survivors, key=lambda e: e.delay_s)
        similar = [e for e in survivors
                   if e.delay_s <= fastest.delay_s *
                   (1 + LATENCY_TIE_TOLERANCE)]
        return min(similar, key=lambda e: e.key_bytes)

    def stored_key_bytes(self, method: str, params: CkksParams,
                         level: int) -> float:
        """Bytes one key occupies in transfer/storage (pre-EKG)."""
        if method == HYBRID and self.use_minks:
            return cost.minks_key_bytes(params)
        return cost.evk_bytes(method, params, level, hoisting=1)

    def run(self, trace: OpTrace) -> AetherConfig:
        """The whole offline pass: validate, analyse, then select."""
        return self.select(self.build_mct(trace.check()))
