"""Tunable-Bit Multiplier (TBM): the paper's Sec. 4.2 datapath.

One TBM is built from **three** base multipliers (M-A, M-B, M-C) plus
combiner logic, and runs in two modes:

* **dual narrow** (36-bit): M-A and M-B each compute one independent
  36 x 36 product per cycle — 2x parallelism;
* **single wide** (60-bit): the operands split at the base width
  (``a = a1 * 2^36 + a0``) and one Karatsuba step produces the 120-bit
  product from three base products —
  ``a0*b0``, ``a1*b1`` and ``(a0+a1)*(b0+b1)`` — a 33% reduction over
  the conventional four-partial-product scheme, matching the paper.

The class is a *bit-exact functional model* with usage counters, used
by unit tests and by the NTTU/BConvU/KMU functional models; the
area/power side of the story lives in :mod:`repro.hw.multiplier`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Paper-quoted structural constants (Sec. 4.2).
BASE_MULTIPLIERS_PER_TBM = 3
CONVENTIONAL_PARTIAL_PRODUCTS = 4
MULT_REDUCTION = 1 - BASE_MULTIPLIERS_PER_TBM / CONVENTIONAL_PARTIAL_PRODUCTS
AREA_OVERHEAD_VS_60BIT = 0.28      # TBM vs a conventional 60-bit multiplier
CONTROL_LOGIC_OVERHEAD = 0.19      # additional control circuitry


@dataclass
class TbmStats:
    """Usage counters for utilisation accounting."""

    narrow_ops: int = 0        # 36-bit products computed
    wide_ops: int = 0          # 60-bit products computed
    base_mult_uses: int = 0    # base-multiplier activations
    cycles: int = 0            # issue cycles consumed

    def reset(self) -> None:
        self.narrow_ops = self.wide_ops = 0
        self.base_mult_uses = self.cycles = 0


class TunableBitMultiplier:
    """Functional model of one TBM instance.

    Parameters
    ----------
    narrow_bits:
        Base multiplier width (36 in the paper).
    wide_bits:
        Wide mode operand width (60 in the paper).  Must satisfy
        ``narrow_bits < wide_bits <= 2 * narrow_bits`` so the high
        segment zero-extends into one base multiplier.
    """

    def __init__(self, narrow_bits: int = 36, wide_bits: int = 60):
        if not narrow_bits < wide_bits <= 2 * narrow_bits:
            raise ValueError(
                "wide width must be in (narrow, 2*narrow] for the "
                "single-Karatsuba-step decomposition")
        self.narrow_bits = narrow_bits
        self.wide_bits = wide_bits
        self.stats = TbmStats()

    # -- mode 1: two independent narrow products ------------------------
    def mul_narrow_pair(self, a_pair: tuple[int, int],
                        b_pair: tuple[int, int]) -> tuple[int, int]:
        """Dual 36-bit mode: M-A and M-B fire in the same cycle."""
        limit = 1 << self.narrow_bits
        for v in (*a_pair, *b_pair):
            self._check_operand(v, limit, "narrow")
        p_hi = a_pair[0] * b_pair[0]      # M-A
        p_lo = a_pair[1] * b_pair[1]      # M-B
        self.stats.narrow_ops += 2
        self.stats.base_mult_uses += 2
        self.stats.cycles += 1
        return p_hi, p_lo

    def mul_narrow(self, a: int, b: int) -> int:
        """Single 36-bit product (half of the dual slot)."""
        limit = 1 << self.narrow_bits
        self._check_operand(a, limit, "narrow")
        self._check_operand(b, limit, "narrow")
        self.stats.narrow_ops += 1
        self.stats.base_mult_uses += 1
        self.stats.cycles += 1
        return a * b

    # -- mode 2: one wide product ---------------------------------------
    def mul_wide(self, a: int, b: int) -> int:
        """60-bit mode via one Karatsuba step on three base products.

        The low segment keeps full base precision; the high segment is
        the zero-extended top ``wide - narrow`` bits (24 for 60/36).
        M-C's operands ``a0 + a1`` may carry one extra bit; the
        physical design absorbs it in the combiner datapath, and this
        model checks only the *external* operand range.
        """
        limit = 1 << self.wide_bits
        self._check_operand(a, limit, "wide")
        self._check_operand(b, limit, "wide")
        shift = self.narrow_bits
        mask = (1 << shift) - 1
        a0, a1 = a & mask, a >> shift
        b0, b1 = b & mask, b >> shift
        p_low = a0 * b0                       # M-B
        p_high = a1 * b1                      # M-A
        p_cross = (a0 + a1) * (b0 + b1)       # M-C
        middle = p_cross - p_low - p_high     # combiner C-A/B/C
        result = p_low + (middle << shift) + (p_high << (2 * shift))
        self.stats.wide_ops += 1
        self.stats.base_mult_uses += 3
        self.stats.cycles += 1
        return result

    # -- modular helpers (what the NTTU/KMU wrap around the TBM) ---------
    def modmul_narrow_pair(self, a_pair, b_pair, moduli) -> tuple[int, int]:
        """Dual modular products (the Montgomery unit's reduction is
        modelled as exact reduction here)."""
        p0, p1 = self.mul_narrow_pair(a_pair, b_pair)
        return p0 % moduli[0], p1 % moduli[1]

    def modmul_wide(self, a: int, b: int, modulus: int) -> int:
        return self.mul_wide(a, b) % modulus

    # -- throughput accounting --------------------------------------------
    def products_per_cycle(self, wide: bool) -> int:
        """2 narrow products or 1 wide product per cycle (Sec. 4.2)."""
        return 1 if wide else 2

    @staticmethod
    def _check_operand(v: int, limit: int, mode: str) -> None:
        if not 0 <= v < limit:
            raise ValueError(f"{mode} operand {v} out of range [0, {limit})")

    def __repr__(self) -> str:
        return (f"TunableBitMultiplier({self.narrow_bits}/"
                f"{self.wide_bits}-bit, 3 base multipliers)")
