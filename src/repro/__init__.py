"""repro — a reproduction of FAST (ISCA 2025).

FAST is an FHE accelerator for RNS-CKKS that dynamically mixes the
hybrid and KLSS key-switching methods (chosen offline by *Aether*,
fed online by *Hemera*) and executes both 36-bit and 60-bit modular
arithmetic on one datapath via the *Tunable-Bit Multiplier*.

Package map:

* :mod:`repro.ckks` — the full RNS-CKKS scheme (the workload).
* :mod:`repro.core` — the paper's contribution: Aether, Hemera, TBM.
* :mod:`repro.hw` — area/power/throughput models of the FAST chip.
* :mod:`repro.sim` — the kernel-level cycle simulator and baselines.
* :mod:`repro.workloads` — Bootstrap / HELR / ResNet-20 traces.
* :mod:`repro.analysis` — regenerates every paper table and figure.
"""

__version__ = "1.0.0"

from repro.ckks import CkksContext, CkksParams, SET_I, SET_II, toy_params

__all__ = ["CkksContext", "CkksParams", "SET_I", "SET_II", "toy_params",
           "__version__"]
