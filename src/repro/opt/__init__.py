"""Whole-trace dataflow optimiser (CiFlow-style).

Lowers an :class:`~repro.core.optrace.OpTrace` to limb/domain-aware
micro-ops (each value tagged with its RNS basis size and NTT/coeff
domain), then runs a fixed-point rewrite pipeline that cancels
redundant NTT<->coeff crossings across operation boundaries, merges
rescales into the preceding ModDown, and fuses ModUp -> KeyMult ->
ModDown chains into single fused key-switch nodes.

The optimised trace (:class:`OptimisedTrace`) is a drop-in
:class:`OpTrace`: the scheduler lowers it unchanged, the functional
executor proves bit-exactness against the unoptimised trace, and the
per-op NTT-limb factors feed the simulator's ``--opt`` cost scaling.
"""

from repro.opt.ir import (
    COEFF,
    EVAL,
    MicroOp,
    MicroTrace,
    ValidationError,
)
from repro.opt.lower import lower_to_micro
from repro.opt.passes import (
    PASS_REGISTRY,
    cancel_conversions,
    fuse_keyswitch,
    merge_rescale,
    sink_conversions,
)
from repro.opt.pipeline import (
    OptimisedTrace,
    PassManager,
    optimise_trace,
)
from repro.opt.stats import OptimiserStats, stats_report

__all__ = [
    "COEFF",
    "EVAL",
    "MicroOp",
    "MicroTrace",
    "OptimisedTrace",
    "OptimiserStats",
    "PassManager",
    "PASS_REGISTRY",
    "ValidationError",
    "cancel_conversions",
    "fuse_keyswitch",
    "lower_to_micro",
    "merge_rescale",
    "optimise_trace",
    "sink_conversions",
    "stats_report",
]
