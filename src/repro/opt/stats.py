"""Optimiser statistics: per-pass rewrite counts and NTT deltas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class OptimiserStats:
    """What the pass pipeline did to one trace."""

    trace: str
    params: str
    trace_ops: int
    ntt_before: int
    ntt_after: int
    micro_ops_before: int
    micro_ops_after: int
    iterations: int
    passes: List[Dict[str, int]] = field(default_factory=list)
    kinds_before: Dict[str, int] = field(default_factory=dict)
    kinds_after: Dict[str, int] = field(default_factory=dict)

    @property
    def ntt_removed(self) -> int:
        return self.ntt_before - self.ntt_after

    @property
    def reduction_pct(self) -> float:
        if self.ntt_before == 0:
            return 0.0
        return 100.0 * self.ntt_removed / self.ntt_before

    @property
    def fused_nodes(self) -> int:
        return self.kinds_after.get("fused_keyswitch", 0)

    @property
    def merged_rescales(self) -> int:
        for entry in self.passes:
            if entry["name"] == "merge_rescale":
                return entry["rewrites"]
        return 0

    def as_dict(self) -> dict:
        return {
            "trace": self.trace,
            "params": self.params,
            "trace_ops": self.trace_ops,
            "ntt_limb_calls_before": self.ntt_before,
            "ntt_limb_calls_after": self.ntt_after,
            "ntt_limb_calls_removed": self.ntt_removed,
            "reduction_pct": self.reduction_pct,
            "micro_ops_before": self.micro_ops_before,
            "micro_ops_after": self.micro_ops_after,
            "iterations": self.iterations,
            "passes": list(self.passes),
            "fused_nodes": self.fused_nodes,
            "kinds_before": dict(self.kinds_before),
            "kinds_after": dict(self.kinds_after),
        }


def stats_report(stats: OptimiserStats) -> str:
    """Human-readable per-pass report for the ``repro opt`` CLI."""
    lines = [
        f"trace {stats.trace} ({stats.trace_ops} ops, "
        f"params {stats.params})",
        f"  micro ops: {stats.micro_ops_before} -> "
        f"{stats.micro_ops_after}",
        f"  NTT limb transforms: {stats.ntt_before} -> "
        f"{stats.ntt_after}  (-{stats.ntt_removed}, "
        f"{stats.reduction_pct:.1f}%)",
        f"  fixed point after {stats.iterations} iteration(s)",
    ]
    for entry in stats.passes:
        lines.append(
            f"  pass {entry['name']:<14} rewrites={entry['rewrites']:<5} "
            f"limbs_removed={entry['limbs_removed']}")
    return "\n".join(lines)
