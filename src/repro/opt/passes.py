"""Rewrite passes over the micro IR.

Each pass takes a :class:`~repro.opt.ir.MicroTrace`, rewrites it in
place and returns a :class:`PassResult` with the number of rewrites it
performed and the limb transforms it removed.  The pass manager
(:mod:`repro.opt.pipeline`) iterates ``sink -> cancel -> merge`` to a
fixed point — each pass strictly decreases a well-founded measure
(sink: total distance from each movable conversion to its blocking
use; cancel/merge: op count) so termination is guaranteed — and runs
``fuse`` once at the end (fusing is a grouping rewrite: it hides the
switch-internal conversions inside one node, so cancellation must see
them first).

Legality
--------
A conversion may move forward past an op iff that op does not touch
the conversion's value, or touches it only *transparently*
(elementwise add/scalar ops and automorphisms commute with the
per-limb NTT).  A ``to_eval``/``from_eval`` pair on the same value
with only transparent-or-untouching ops between them cancels: the
value legally stays in one domain across the span and every op in
between has an implementation in that domain at unchanged limb cost.
Pinned conversions (operation-internal: digit NTTs, ModDown aux INTTs
and conversion NTTs) never move or cancel — they are the structural
floor the optimiser cannot go below without changing the kernels
themselves (which ``merge_rescale`` then does, for the one chain
where a cheaper fused kernel exists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.opt import ir
from repro.opt.ir import (
    FROM_EVAL,
    FUSED_KEYSWITCH,
    KEY_MULT,
    MOD_DOWN,
    MOD_UP,
    RESCALE,
    TO_EVAL,
    COEFF,
    EVAL,
    MicroOp,
    MicroTrace,
    local_value,
)


@dataclass
class PassResult:
    name: str
    rewrites: int = 0
    limbs_removed: int = 0

    def merge(self, other: "PassResult") -> "PassResult":
        return PassResult(self.name, self.rewrites + other.rewrites,
                          self.limbs_removed + other.limbs_removed)


def _blocks(op: MicroOp, value) -> bool:
    """Whether ``op`` stops a conversion on ``value`` moving past it."""
    if not op.touches(value):
        return False
    if op.is_conversion and op.value == value:
        return True
    return not op.transparent


# -- pass 4 (run first): sink conversions past domain-agnostic ops ---

def sink_conversions(micro: MicroTrace) -> PassResult:
    """Move every movable conversion forward to its latest legal
    position: immediately before the next op that converts the same
    value or touches it sensitively.  Canonicalises the trace so that
    cancellable pairs become adjacent (modulo ops on other values).

    Implemented as one stable rebuild: movable conversions join a
    pending list and are flushed — in arrival order — right before
    the first op that blocks them (unblocked ones drift to the trace
    end, where the eval-form context invariant keeps them).  Stability
    makes the pass idempotent, so the fixed-point loop terminates.
    """
    result = PassResult("sink")
    ops = micro.ops
    old_pos = {id(op): i for i, op in enumerate(ops)}
    out: List[MicroOp] = []
    pending: List[MicroOp] = []
    for op in ops:
        if op.is_conversion and not op.pinned:
            pending.append(op)
            continue
        if pending:
            still: List[MicroOp] = []
            for conv in pending:
                if _blocks(op, conv.value):
                    out.append(conv)
                else:
                    still.append(conv)
            pending = still
        out.append(op)
    out.extend(pending)
    moved = sum(1 for i, op in enumerate(out)
                if op.is_conversion and not op.pinned
                and old_pos[id(op)] != i)
    # Movable conversions can block each other (an opposite conversion
    # on the same value is a barrier): within `pending` that ordering
    # is preserved by construction, but a pending conversion must not
    # drift past a *pending* barrier when flushed at different points.
    # Flush order handles it: a blocked conversion leaves pending only
    # at its barrier's flush point or earlier, never later.
    micro.ops[:] = out
    result.rewrites = moved
    return result


# -- pass 1: cancel to_eval/from_eval pairs --------------------------

def cancel_conversions(micro: MicroTrace) -> PassResult:
    """Delete opposite conversion pairs on one value separated only by
    transparent-or-untouching ops.  Works standalone (it scans over
    non-blocking ops), but :func:`sink_conversions` extends its reach
    across longer chains first.
    """
    result = PassResult("cancel")
    ops = micro.ops
    pos = 0
    while pos < len(ops):
        op = ops[pos]
        if not op.is_conversion or op.pinned:
            pos += 1
            continue
        partner = None
        probe = pos + 1
        while probe < len(ops):
            nxt = ops[probe]
            if _blocks(nxt, op.value):
                if (nxt.is_conversion and nxt.value == op.value
                        and not nxt.pinned and nxt.kind != op.kind
                        and nxt.limbs == op.limbs):
                    partner = probe
                break
            probe += 1
        if partner is not None:
            result.rewrites += 1
            result.limbs_removed += op.limbs + ops[partner].limbs
            del ops[partner]
            del ops[pos]
            # Deleting may expose a new pair ending at `pos`; rescan
            # from one step back so chains collapse in one sweep.
            pos = max(0, pos - 1)
            continue
        pos += 1
    return result


# -- pass 3: merge rescale into the preceding ModDown ----------------

def merge_rescale(micro: MicroTrace) -> PassResult:
    """Fold a ``Rescale`` into the ModDown that precedes it on the same
    ciphertext: one base conversion over the extended auxiliary basis
    ``P * q_last...`` divides by ``P * prod(dropped primes)`` in a
    single step (see ``mod_down_rescale_pair``).  Replaces
    ``2k (INTT) + 2k + 2(k-1) (NTT)`` of rescale-adjacent transforms
    with two extra aux INTT limbs: a ``4k - 2`` limb saving per merge.

    Only single-switch ModDowns qualify (``rots == 1``); a batched
    hoisted ModDown produces R rotation results and rescaling all of
    them would change semantics.  Repeated merges absorb back-to-back
    rescales (``drop`` grows; the ``double_rescale`` parameter sets
    emit exactly this pattern).
    """
    result = PassResult("merge_rescale")
    ops = micro.ops
    pos = 0
    while pos < len(ops):
        op = ops[pos]
        if op.kind not in (MOD_DOWN, FUSED_KEYSWITCH) \
                or op.meta.get("rots", 1) != 1:
            pos += 1
            continue
        halves = tuple(op.writes)
        if len(halves) != 2:
            pos += 1
            continue
        k = int(op.meta["k"])
        drop = int(op.meta.get("drop", 0))
        q_out = k - drop
        match = _match_rescale(ops, pos, halves, q_out)
        if match is None:
            pos += 1
            continue
        rescale_positions, rescale_indices = match
        aux_pos = _find_internal(ops, pos, op.index, "aux",
                                 before=True)
        conv_pos = _find_internal(ops, pos, op.index, "conv",
                                  before=False)
        if aux_pos is None or conv_pos is None:
            pos += 1
            continue
        cores = len(rescale_indices)
        before = (ops[aux_pos].limbs + ops[conv_pos].limbs
                  + sum(ops[i].limbs for i in rescale_positions))
        op.meta["drop"] = drop + cores
        op.meta["k_out"] = q_out - cores
        op.meta.setdefault("merged_rescales", []).extend(rescale_indices)
        ops[aux_pos].limbs += 2 * cores
        ops[conv_pos].limbs = 2 * (q_out - cores)
        after = ops[aux_pos].limbs + ops[conv_pos].limbs
        for i in sorted(rescale_positions, reverse=True):
            del ops[i]
        result.rewrites += 1
        result.limbs_removed += before - after
        # A further back-to-back rescale may now be mergeable into the
        # same node; re-examine this position.
    return result


def _match_rescale(ops: List[MicroOp], pos: int, halves,
                   q_out: int) -> Optional[Tuple[List[int], List[int]]]:
    """The rescale chain immediately following the ModDown at ``pos``
    on ``halves``: its 2 FROMs, one or more back-to-back cores (the
    cancel pass may already have glued a double rescale together,
    leaving consecutive cores at descending ``k``), and 2 TOs.
    Returns ``(positions, core_trace_indices)`` or None.

    Every op between the ModDown and the chain's last piece must
    leave the ciphertext halves untouched (other values may
    interleave freely) — the fused kernel applies the rescale to the
    ModDown output directly, so nothing may observe the intermediate.
    """
    froms: dict = {}
    tos: dict = {}
    cores: List[int] = []
    positions: List[int] = []
    for probe in range(pos + 1, len(ops)):
        nxt = ops[probe]
        if not (nxt.touches(halves[0]) or nxt.touches(halves[1])):
            continue
        if nxt.kind == FROM_EVAL and not nxt.pinned \
                and nxt.value in halves and nxt.value not in froms \
                and not cores and nxt.limbs == q_out:
            froms[nxt.value] = probe
            positions.append(probe)
            continue
        if nxt.kind == RESCALE and len(froms) == 2 and not tos \
                and int(nxt.meta.get("k", -1)) == q_out - len(cores):
            cores.append(probe)
            positions.append(probe)
            continue
        if nxt.kind == TO_EVAL and not nxt.pinned \
                and nxt.value in halves and nxt.value not in tos \
                and cores and nxt.limbs == q_out - len(cores):
            tos[nxt.value] = probe
            positions.append(probe)
            if len(tos) == 2:
                return positions, [ops[i].index for i in cores]
            continue
        return None
    return None


def _find_internal(ops: List[MicroOp], pos: int, index: int,
                   tag: str, before: bool) -> Optional[int]:
    """Position of the ModDown's pinned aux/conv conversion."""
    value = local_value(tag, index)
    rng = range(pos - 1, -1, -1) if before else range(pos + 1, len(ops))
    for probe in rng:
        if ops[probe].is_conversion and ops[probe].value == value:
            return probe
    return None


# -- pass 2 (final): fuse ModUp -> KeyMult -> ModDown chains ---------

def fuse_keyswitch(micro: MicroTrace) -> PassResult:
    """Group each single-switch ModUp -> KeyMult -> ModDown chain into
    one :data:`FUSED_KEYSWITCH` node carrying the summed limb counts
    of the conversions it absorbs.

    Runs once, after the fixed point: fusing earlier would hide the
    movable decompose-input conversion from the cancellation pass.
    The fused node is what the executor maps onto the existing
    ``BConvPlan``/``KeyMultPlan`` kernels in one dispatch, and what
    keeps the plan-cache keys stable (one (source, target) basis pair
    per fused node — see ``get_bconv_plan``).

    Hoisted groups are left as-is: their chain is already fused across
    rotations by the PR 5 batched kernels.
    """
    result = PassResult("fuse")
    ops = micro.ops
    pos = 0
    while pos < len(ops):
        op = ops[pos]
        if op.kind != MOD_UP or op.meta.get("hoisted"):
            pos += 1
            continue
        index = op.index
        member_positions = [pos]
        moddown = None
        for probe in range(pos + 1, len(ops)):
            nxt = ops[probe]
            if nxt.index != index:
                continue
            if nxt.is_conversion and isinstance(nxt.value, tuple) \
                    and nxt.value in (local_value("digits", index),
                                      local_value("aux", index),
                                      local_value("conv", index)):
                member_positions.append(probe)
            elif nxt.kind == KEY_MULT:
                member_positions.append(probe)
            elif nxt.kind == MOD_DOWN and nxt.meta.get("rots", 1) == 1:
                member_positions.append(probe)
                moddown = nxt
                break
        if moddown is None:
            pos += 1
            continue
        # Absorb the movable decompose-input INTT too, when it
        # survived cancellation (it sits just before the ModUp).
        input_value = op.uses[0]
        input_pos = None
        for probe in range(pos - 1, -1, -1):
            prev = ops[probe]
            if prev.is_conversion and prev.value == input_value \
                    and prev.index == index and prev.kind == FROM_EVAL:
                input_pos = probe
                break
            if prev.touches(input_value):
                break
        members = [ops[i] for i in member_positions]
        absorbed = ([ops[input_pos]] if input_pos is not None else []) \
            + members
        requires = ((input_value, EVAL),) if input_pos is not None \
            else ((input_value, COEFF),)
        fused = MicroOp(
            kind=FUSED_KEYSWITCH, index=index, level=op.level,
            value=None,
            limbs=sum(m.limbs for m in absorbed),
            uses=(input_value,) + tuple(moddown.writes),
            writes=tuple(moddown.writes),
            requires=requires + moddown.requires,
            produces=moddown.produces,
            meta={
                "k": op.meta["k"], "p": op.meta["p"],
                "digits": op.meta["digits"],
                "rots": moddown.meta.get("rots", 1),
                "drop": moddown.meta.get("drop", 0),
                "k_out": moddown.meta.get("k_out", op.meta["k"]),
                "merged_rescales": list(
                    moddown.meta.get("merged_rescales", [])),
                "members": [m.kind for m in absorbed],
                "input": input_value,
            })
        doomed = sorted(member_positions +
                        ([input_pos] if input_pos is not None else []))
        # The fused node lands at the *ModDown's* position: ops that
        # sank into the switch's span (e.g. a TO_EVAL waiting on the
        # ModDown's merge read) must stay ahead of it.  Absorbed
        # earlier members only move forward, which is always legal:
        # nothing between them and the ModDown touches their values.
        moddown_pos = member_positions[-1]
        insert_at = moddown_pos - sum(1 for i in doomed
                                      if i < moddown_pos)
        for i in reversed(doomed):
            del ops[i]
        ops.insert(insert_at, fused)
        result.rewrites += 1
        pos = insert_at + 1
    return result


PASS_REGISTRY = {
    "sink": sink_conversions,
    "cancel": cancel_conversions,
    "merge_rescale": merge_rescale,
    "fuse": fuse_keyswitch,
}
