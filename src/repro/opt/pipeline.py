"""Pass manager and the :class:`OptimisedTrace` façade.

The fixed-point loop runs ``sink -> cancel -> merge_rescale`` until an
iteration performs zero rewrites, then applies ``fuse`` once.  Each
iteration validates domain consistency and asserts the NTT limb count
never increased — the passes only ever delete conversion pairs or
replace a rescale's transforms with a strictly cheaper fused basis,
so monotonicity is structural, and the assert turns any future pass
bug into a loud failure instead of a silent mis-count.

:class:`OptimisedTrace` *is* an :class:`~repro.core.optrace.OpTrace`
over the identical op list: the rewrites change how operations lower
to kernels (tracked per trace index in :attr:`ntt_factors`), never
which operations run or in what order.  The scheduler therefore
lowers it unchanged and the functional executor's serial-vs-parallel
check doubles as the bit-exactness proof for the optimised trace.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.ckks.params import CkksParams
from repro.core.optrace import OpTrace
from repro.obs.tracer import get_tracer
from repro.opt.ir import MicroTrace
from repro.opt.lower import lower_to_micro
from repro.opt.passes import (
    PassResult,
    cancel_conversions,
    fuse_keyswitch,
    merge_rescale,
    sink_conversions,
)
from repro.opt.stats import OptimiserStats

# Order matters.  merge_rescale runs first: it pattern-matches the
# compact ModDown -> rescale shape of the pristine lowering, which
# sink would scatter; and it competes with cancel for a rescale's
# restore conversions — cancelling a rescale's TO_EVAL against a
# following rotation's decompose INTT saves 2(k-1) limbs, while
# merging the whole rescale into the preceding ModDown saves 4k-2
# (and removes the same TO_EVAL), so merge strictly dominates
# wherever both apply.  sink then canonicalises the survivors and
# cancel picks up every chain with no ModDown in front (plain-mult
# rescales, double rescales, ModRaise boundaries).
DEFAULT_PIPELINE: Tuple[Callable[[MicroTrace], PassResult], ...] = (
    merge_rescale,
    sink_conversions,
    cancel_conversions,
)
MAX_ITERATIONS = 64


class PassManager:
    """Runs a pass pipeline to fixed point, collecting statistics."""

    def __init__(self,
                 pipeline: Iterable[Callable] = DEFAULT_PIPELINE,
                 final: Iterable[Callable] = (fuse_keyswitch,),
                 max_iterations: int = MAX_ITERATIONS,
                 validate: bool = True):
        self.pipeline = tuple(pipeline)
        self.final = tuple(final)
        self.max_iterations = max_iterations
        self.validate = validate

    def run(self, micro: MicroTrace) -> Tuple[MicroTrace, OptimiserStats]:
        tracer = get_tracer()
        before_ntt = micro.ntt_limb_calls()
        before_ops = len(micro.ops)
        kinds_before = micro.counts_by_kind()
        totals: Dict[str, PassResult] = {}
        iterations = 0
        last_ntt = before_ntt
        for _ in range(self.max_iterations):
            iterations += 1
            changed = 0
            for pass_fn in self.pipeline:
                result = pass_fn(micro)
                key = result.name
                totals[key] = totals[key].merge(result) \
                    if key in totals else result
                changed += result.rewrites
            if self.validate:
                micro.validate()
            ntt = micro.ntt_limb_calls()
            if ntt > last_ntt:  # pragma: no cover - structural invariant
                raise AssertionError(
                    f"pass iteration increased NTT count "
                    f"{last_ntt} -> {ntt}")
            last_ntt = ntt
            if changed == 0:
                break
        else:  # pragma: no cover - passes strictly shrink the trace
            raise AssertionError(
                f"pass pipeline did not converge within "
                f"{self.max_iterations} iterations")
        for pass_fn in self.final:
            result = pass_fn(micro)
            totals[result.name] = totals[result.name].merge(result) \
                if result.name in totals else result
        if self.validate:
            micro.validate()
        after_ntt = micro.ntt_limb_calls()
        if after_ntt > before_ntt:  # pragma: no cover
            raise AssertionError(
                f"optimiser increased NTT count "
                f"{before_ntt} -> {after_ntt}")
        if tracer.enabled:
            tracer.count("opt.runs")
            tracer.count("opt.ntt_limbs_removed",
                         before_ntt - after_ntt)
        stats = OptimiserStats(
            trace=micro.name,
            params=str(micro.meta.get("params", "")),
            trace_ops=micro.trace_len,
            ntt_before=before_ntt,
            ntt_after=after_ntt,
            micro_ops_before=before_ops,
            micro_ops_after=len(micro.ops),
            iterations=iterations,
            passes=[{"name": r.name, "rewrites": r.rewrites,
                     "limbs_removed": r.limbs_removed}
                    for r in totals.values()],
            kinds_before=kinds_before,
            kinds_after=micro.counts_by_kind(),
        )
        return micro, stats


class OptimisedTrace(OpTrace):
    """An :class:`OpTrace` plus its optimised micro lowering.

    The op list is byte-identical to the source trace — downstream
    consumers (scheduler, executor, workload reports) need no changes.
    The optimisation is carried alongside:

    ``micro``
        the rewritten :class:`MicroTrace`;
    ``stats``
        per-pass rewrite counts and NTT deltas;
    ``ntt_factors``
        per-trace-index ``(optimised_limbs, baseline_limbs)`` pairs —
        the simulator scales each key-switch schedule's NTT kernel
        work by ``sum(opt)/sum(base)`` over the indices it covers.
    """

    def __init__(self, source: OpTrace, micro: MicroTrace,
                 stats: OptimiserStats,
                 ntt_factors: Dict[int, Tuple[int, int]]):
        super().__init__(source.ops, name=source.name,
                         declared_cts=source.declared_cts)
        self.micro = micro
        self.stats = stats
        self.ntt_factors = ntt_factors

    @property
    def optimised(self) -> bool:
        return True

    def factor_for(self, indices: Iterable[int]) -> float:
        """NTT-work scale factor for a schedule covering ``indices``."""
        opt = base = 0
        for i in indices:
            pair = self.ntt_factors.get(i)
            if pair is not None:
                opt += pair[0]
                base += pair[1]
        if base <= 0:
            return 1.0
        return opt / base


def optimise_trace(trace: OpTrace, params: CkksParams,
                   manager: Optional[PassManager] = None) -> OptimisedTrace:
    """Lower, rewrite and wrap ``trace``; the one-call public API."""
    if isinstance(trace, OptimisedTrace):
        return trace
    baseline = lower_to_micro(trace, params)
    base_by_index = baseline.ntt_by_index()
    micro = baseline.copy()
    manager = manager or PassManager()
    micro, stats = manager.run(micro)
    opt_by_index = micro.ntt_by_index()
    factors = {i: (opt_by_index.get(i, 0), base_by_index.get(i, 0))
               for i in range(len(trace.ops))}
    return OptimisedTrace(trace, micro, stats, factors)
