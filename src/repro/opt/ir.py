"""Limb/domain-aware micro-op IR for the whole-trace optimiser.

Every :class:`~repro.core.optrace.FheOp` expands into a short run of
micro-ops that make the NTT<->coeff domain crossings of the software
kernel pipeline *explicit*: each ``TO_EVAL`` / ``FROM_EVAL`` node
carries the number of limb transforms it performs, and every value it
touches is tagged with the RNS basis size and domain it lives in.

Values
------
Cross-operation values are the two ciphertext halves, keyed
``(ct_id, 0)`` and ``(ct_id, 1)``.  Operation-local values (the d2
tensor product, decomposed digit stacks, ModDown aux limbs, the
ModDown conversion output) are keyed ``(kind, trace_index)`` and never
escape their producing operation; conversions on them are *pinned* —
they represent structurally unavoidable transforms (e.g. the digit
NTTs feeding KeyMult) and are counted but never moved or cancelled.

Domains
-------
``EVAL`` (NTT/evaluation form — the resting state of every ciphertext
half between operations, matching the ``CkksContext`` invariant) and
``COEFF`` (coefficient form, required by base conversion and exact
rescale cores).  A conversion flips its value's domain; the validator
walks the trace checking that every conversion direction matches the
tracked domain and that every domain-sensitive core sees the domain it
requires.

Transparency
------------
Micro-ops are either *sensitive* (they pin their operands to a
specific domain: the eval tensor product, ModUp/ModDown/rescale
cores, KeyMult) or *transparent* (elementwise add/scalar ops and
eval-domain automorphisms, which commute with the per-limb NTT and
therefore let conversions move past them).  The rewrite passes only
move conversions across transparent ops, so every cancelled pair
corresponds to a value that legally stayed in one domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

COEFF = "coeff"
EVAL = "eval"

# -- micro-op kinds ---------------------------------------------------
TO_EVAL = "to_eval"
FROM_EVAL = "from_eval"
TENSOR = "tensor"            # eval-domain ciphertext tensor product
MOD_UP = "mod_up"            # digit decompose + base extend (coeff)
KEY_MULT = "key_mult"        # eval-domain digit x evk accumulate
MOD_DOWN = "mod_down"        # eval-batch ModDown core (aux INTT'd,
                             # conversion NTT'd internally)
RESCALE = "rescale"          # exact rescale core (coeff -> coeff)
MOD_RAISE = "mod_raise"      # bootstrap base extension core (coeff)
AUTO = "auto"                # automorphism (either domain, zero NTT)
EWISE = "ewise"              # elementwise add / scalar ops
FUSED_KEYSWITCH = "fused_keyswitch"  # grouped ModUp->KeyMult->ModDown

CONVERSIONS = frozenset({TO_EVAL, FROM_EVAL})
TRANSPARENT = frozenset({AUTO, EWISE})

Value = Tuple[object, object]


class ValidationError(ValueError):
    """A micro trace violates domain or structural invariants."""


@dataclass
class MicroOp:
    """One limb/domain-aware node.

    Parameters
    ----------
    kind:
        Micro-op kind constant.
    index:
        Source trace position this node was lowered from (NTT limb
        counts are attributed back to this index for the simulator's
        cost scaling).
    value:
        Primary value for conversions (the value whose domain flips).
    limbs:
        Limb-transform count for conversions; 0 for cores.
    uses / writes:
        Values read / written.  Transparent ops may be crossed by a
        conversion on a value they use; sensitive ops may not.
    pinned:
        Conversion is structural (operation-local) and must never be
        moved or cancelled.
    level:
        Ciphertext level of the source operation.
    meta:
        Free-form details (hybrid shape, fused drop count, members of
        a fused key-switch group, ...).
    """

    kind: str
    index: int
    value: Optional[Value] = None
    limbs: int = 0
    uses: Tuple[Value, ...] = ()
    writes: Tuple[Value, ...] = ()
    pinned: bool = False
    level: int = 0
    requires: Tuple[Tuple[Value, str], ...] = ()
    produces: Tuple[Tuple[Value, str], ...] = ()
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def is_conversion(self) -> bool:
        return self.kind in CONVERSIONS

    @property
    def transparent(self) -> bool:
        return self.kind in TRANSPARENT

    def touches(self, value: Value) -> bool:
        return value in self.uses or value in self.writes

    def clone(self) -> "MicroOp":
        return MicroOp(
            kind=self.kind,
            index=self.index,
            value=self.value,
            limbs=self.limbs,
            uses=self.uses,
            writes=self.writes,
            pinned=self.pinned,
            level=self.level,
            requires=self.requires,
            produces=self.produces,
            meta=dict(self.meta),
        )

    def describe(self) -> str:
        bits = [self.kind, f"@{self.index}"]
        if self.value is not None:
            bits.append(f"v={self.value}")
        if self.limbs:
            bits.append(f"limbs={self.limbs}")
        if self.pinned:
            bits.append("pinned")
        return " ".join(bits)


def conversion(
    kind: str,
    index: int,
    value: Value,
    limbs: int,
    *,
    level: int = 0,
    pinned: bool = False,
    meta: Optional[Dict[str, object]] = None,
) -> MicroOp:
    """Build a TO_EVAL / FROM_EVAL node on ``value``."""
    if kind not in CONVERSIONS:
        raise ValueError(f"not a conversion kind: {kind}")
    return MicroOp(
        kind=kind,
        index=index,
        value=value,
        limbs=int(limbs),
        uses=(value,),
        writes=(value,),
        pinned=pinned,
        level=level,
        meta=dict(meta or {}),
    )


@dataclass
class MicroTrace:
    """A lowered trace: an ordered list of micro-ops plus provenance."""

    name: str
    ops: List[MicroOp]
    trace_len: int
    meta: Dict[str, object] = field(default_factory=dict)

    def copy(self) -> "MicroTrace":
        return MicroTrace(
            name=self.name,
            ops=[op.clone() for op in self.ops],
            trace_len=self.trace_len,
            meta=dict(self.meta),
        )

    # -- accounting ---------------------------------------------------

    def ntt_limb_calls(self) -> int:
        """Total limb transforms (forward + inverse) in the trace.

        Conversions carry their own counts; fused key-switch nodes
        carry the sum of the conversions they absorbed.
        """
        return sum(op.limbs for op in self.ops)

    def ntt_by_index(self) -> Dict[int, int]:
        """Limb transforms attributed to each source trace position."""
        out: Dict[int, int] = {i: 0 for i in range(self.trace_len)}
        for op in self.ops:
            if op.limbs:
                out[op.index] = out.get(op.index, 0) + op.limbs
        return out

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0) + 1
        return out

    # -- validation ---------------------------------------------------

    def validate(self) -> None:
        """Check domain consistency along the trace.

        Ciphertext halves rest in EVAL form between operations (the
        ``CkksContext`` invariant); operation-local values are born in
        whatever domain their first touch implies.  Raises
        :class:`ValidationError` on the first inconsistency.
        """
        domains: Dict[Value, str] = {}

        def dom(value: Value, default: str) -> str:
            return domains.setdefault(value, default)

        for pos, op in enumerate(self.ops):
            if op.kind == TO_EVAL:
                current = dom(op.value, COEFF)
                if current != COEFF:
                    raise ValidationError(
                        f"op {pos} ({op.describe()}): to_eval on a "
                        f"value already in {current} form"
                    )
                domains[op.value] = EVAL
                continue
            if op.kind == FROM_EVAL:
                current = dom(op.value, EVAL)
                if current != EVAL:
                    raise ValidationError(
                        f"op {pos} ({op.describe()}): from_eval on a "
                        f"value already in {current} form"
                    )
                domains[op.value] = COEFF
                continue
            for value, required in op.requires:
                current = dom(value, required)
                if current != required:
                    raise ValidationError(
                        f"op {pos} ({op.describe()}): needs {value} "
                        f"in {required} form but it is in {current}"
                    )
            for value, produced in op.produces:
                domains[value] = produced

        for value, domain in domains.items():
            if _is_ct_half(value) and domain != EVAL:
                raise ValidationError(
                    f"trace ends with ciphertext half {value} in "
                    f"{domain} form (context invariant requires eval)"
                )

    def check(self) -> "MicroTrace":
        self.validate()
        return self


def _is_ct_half(value: Value) -> bool:
    return (
        isinstance(value, tuple)
        and len(value) == 2
        and isinstance(value[0], int)
        and value[1] in (0, 1)
    )


def ct_half(ct_id: int, half: int) -> Value:
    """Key for a cross-operation ciphertext-half value."""
    return (int(ct_id), int(half))


def local_value(kind: str, index: int) -> Value:
    """Key for an operation-local value (never escapes its op)."""
    return (kind, int(index))


def iter_conversions(ops: Iterable[MicroOp]) -> Iterable[MicroOp]:
    for op in ops:
        if op.is_conversion:
            yield op
