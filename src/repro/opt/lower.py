"""Lower an :class:`OpTrace` to the limb/domain-aware micro IR.

The expansion mirrors the *software kernel pipelines* (context.py,
keyswitch/hybrid.py, rns.py) limb for limb, so the micro trace's
conversion counts equal the number of limb transforms the functional
path actually dispatches:

``HMult`` (level l, k = l+1 limbs, hybrid shape d digits / p specials)
    eval tensor product (sensitive) -> ``FROM_EVAL(d2, k)`` ->
    ModUp core -> pinned ``TO_EVAL(digits, d*(k+p))`` -> KeyMult ->
    pinned ``FROM_EVAL(aux, 2p)`` -> eval-batch ModDown core with its
    pinned internal conversion ``TO_EVAL(conv, 2k)``; the delta merge
    into the ciphertext halves happens inside the core (both halves
    rest in eval form afterwards).

``HRot``/``Conj``
    automorphism (transparent, zero NTT via AutoPlan) ->
    ``FROM_EVAL(c1, k)`` (movable: cancels against a preceding
    rescale's restore) -> same ModUp/KeyMult/ModDown tail.  Hoisted
    groups share one decompose and one batched cross-rotation ModDown
    exactly like :func:`~repro.ckks.keyswitch.hybrid.mod_down_batch`.

``Rescale``
    ``FROM_EVAL(c0, k)`` + ``FROM_EVAL(c1, k)`` -> exact-rescale core
    (coeff) -> ``TO_EVAL(c0, k-1)`` + ``TO_EVAL(c1, k-1)``; all four
    conversions movable — this is where cross-operation cancellation
    pays.

``ModRaise``
    ``FROM_EVAL(2 k_in)`` -> base-extension core -> ``TO_EVAL(2 k_out)``.

``PMult``
    sensitive eval-domain elementwise product (plaintext is encoded in
    eval form); no conversions.

``HAdd``/``PAdd``/``CAdd``/``CMult``
    transparent elementwise ops: per-limb adds and scalar multiplies
    commute with the NTT, so conversions may sink past them.  (For the
    two-ciphertext ``HAdd`` the trace's single-writer convention folds
    the implicit second operand into the primary chain; the optimiser
    assumes it is co-located in the same domain, which the whole-trace
    rewrite can always arrange.)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ckks.keyswitch.cost import HybridShape
from repro.ckks.params import CkksParams
from repro.core import optrace as ot
from repro.opt import ir
from repro.opt.ir import (
    AUTO,
    EWISE,
    FROM_EVAL,
    KEY_MULT,
    MOD_DOWN,
    MOD_RAISE,
    MOD_UP,
    RESCALE,
    TENSOR,
    TO_EVAL,
    COEFF,
    EVAL,
    MicroOp,
    MicroTrace,
    conversion,
    ct_half,
    local_value,
)


def lower_to_micro(trace: ot.OpTrace, params: CkksParams) -> MicroTrace:
    """Expand ``trace`` into a validated :class:`MicroTrace`."""
    trace.check()
    groups = trace.hoist_groups()
    group_span: Dict[int, List[int]] = {}
    for gid, members in groups.items():
        indices = [i for i, op in enumerate(trace.ops)
                   if op.hoist_group == gid and op.kind in (ot.HROT, ot.CONJ)]
        group_span[gid] = indices

    ops: List[MicroOp] = []
    last_level: Dict[int, int] = {}
    pending_group: Dict[int, int] = {}  # gid -> members emitted so far

    for index, op in enumerate(trace.ops):
        level = op.level
        if op.kind == ot.RESCALE:
            # Builders label back-to-back rescales with the pre-drop
            # level (the drop is applied to the tracked level once per
            # rescale), so the effective input level of the second is
            # one below its label.  Track it per ciphertext.
            level = min(level, last_level.get(op.ct_id, level))
        k = level + 1
        c0 = ct_half(op.ct_id, 0)
        c1 = ct_half(op.ct_id, 1)

        if op.kind == ot.HMULT:
            shape = HybridShape.at_level(params, level)
            ops.append(MicroOp(
                kind=TENSOR, index=index, level=level,
                uses=(c0, c1), writes=(c0, c1, local_value("d2", index)),
                requires=((c0, EVAL), (c1, EVAL)),
                produces=((local_value("d2", index), EVAL),),
                meta={"op": op.kind}))
            ops.append(conversion(FROM_EVAL, index,
                                  local_value("d2", index), k, level=level))
            ops.extend(_keyswitch_tail(
                index, level, shape,
                input_value=local_value("d2", index),
                merge_halves=(c0, c1), requires_halves=(c0, c1),
                rots=1))
        elif op.kind in (ot.HROT, ot.CONJ):
            if op.hoist_group is not None:
                _lower_hoisted_member(
                    ops, trace, params, index, op,
                    group_span[op.hoist_group], pending_group)
            else:
                shape = HybridShape.at_level(params, level)
                ops.append(MicroOp(
                    kind=AUTO, index=index, level=level,
                    uses=(c0, c1), writes=(c0, c1),
                    meta={"op": op.kind, "rotation": op.rotation}))
                ops.append(conversion(FROM_EVAL, index, c1, k, level=level))
                ops.extend(_keyswitch_tail(
                    index, level, shape,
                    input_value=c1,
                    merge_halves=(c0, c1), requires_halves=(c0,),
                    rots=1))
        elif op.kind == ot.RESCALE:
            ops.append(conversion(FROM_EVAL, index, c0, k, level=level))
            ops.append(conversion(FROM_EVAL, index, c1, k, level=level))
            ops.append(MicroOp(
                kind=RESCALE, index=index, level=level,
                uses=(c0, c1), writes=(c0, c1),
                requires=((c0, COEFF), (c1, COEFF)),
                produces=((c0, COEFF), (c1, COEFF)),
                meta={"op": op.kind, "k": k}))
            ops.append(conversion(TO_EVAL, index, c0, k - 1, level=level))
            ops.append(conversion(TO_EVAL, index, c1, k - 1, level=level))
        elif op.kind == ot.MOD_RAISE:
            k_in = last_level.get(op.ct_id, 0) + 1
            ops.append(conversion(FROM_EVAL, index, c0, k_in, level=level))
            ops.append(conversion(FROM_EVAL, index, c1, k_in, level=level))
            ops.append(MicroOp(
                kind=MOD_RAISE, index=index, level=level,
                uses=(c0, c1), writes=(c0, c1),
                requires=((c0, COEFF), (c1, COEFF)),
                produces=((c0, COEFF), (c1, COEFF)),
                meta={"op": op.kind, "k_in": k_in, "k_out": k}))
            ops.append(conversion(TO_EVAL, index, c0, k, level=level))
            ops.append(conversion(TO_EVAL, index, c1, k, level=level))
        elif op.kind == ot.PMULT:
            ops.append(MicroOp(
                kind=TENSOR, index=index, level=level,
                uses=(c0, c1), writes=(c0, c1),
                requires=((c0, EVAL), (c1, EVAL)),
                meta={"op": op.kind}))
        elif op.kind in (ot.HADD, ot.PADD, ot.CADD, ot.CMULT):
            ops.append(MicroOp(
                kind=EWISE, index=index, level=level,
                uses=(c0, c1), writes=(c0, c1),
                meta={"op": op.kind}))
        else:  # pragma: no cover - ALL_KINDS is closed
            raise ValueError(f"cannot lower op kind {op.kind!r}")
        last_level[op.ct_id] = level - 1 if op.kind == ot.RESCALE \
            else level

    micro = MicroTrace(name=trace.name, ops=ops, trace_len=len(trace.ops),
                       meta={"params": params.name})
    return micro.check()


def _keyswitch_tail(index: int, level: int, shape: HybridShape,
                    input_value, merge_halves, requires_halves,
                    rots: int) -> List[MicroOp]:
    """ModUp -> KeyMult -> eval-batch ModDown for one switch."""
    k, p, d = shape.k, shape.p, shape.beta
    digits = local_value("digits", index)
    acc = local_value("acc", index)
    aux = local_value("aux", index)
    conv = local_value("conv", index)
    out: List[MicroOp] = []
    out.append(MicroOp(
        kind=MOD_UP, index=index, level=level,
        uses=(input_value,), writes=(digits,),
        requires=((input_value, COEFF),),
        produces=((digits, COEFF),),
        meta={"k": k, "p": p, "digits": d}))
    out.append(conversion(TO_EVAL, index, digits, d * (k + p),
                          level=level, pinned=True))
    out.append(MicroOp(
        kind=KEY_MULT, index=index, level=level,
        uses=(digits,), writes=(acc,),
        requires=((digits, EVAL),),
        produces=((acc, EVAL),),
        meta={"k": k, "p": p, "digits": d}))
    out.append(conversion(FROM_EVAL, index, aux, 2 * rots * p,
                          level=level, pinned=True))
    out.append(MicroOp(
        kind=MOD_DOWN, index=index, level=level,
        uses=(acc,) + tuple(merge_halves),
        writes=tuple(merge_halves),
        requires=tuple((h, EVAL) for h in requires_halves),
        produces=tuple((h, EVAL) for h in merge_halves),
        meta={"k": k, "p": p, "rots": rots, "drop": 0}))
    # The eval-batch ModDown forward-NTTs its conversion output
    # internally (Q limbs never leave eval form) — structural.
    out.append(conversion(TO_EVAL, index, conv, 2 * rots * k,
                          level=level, pinned=True))
    return out


def _lower_hoisted_member(ops: List[MicroOp], trace: ot.OpTrace,
                          params: CkksParams, index: int, op: ot.FheOp,
                          member_indices: List[int],
                          pending_group: Dict[int, int]) -> None:
    """Emit the micro-ops for one member of a hoist group.

    The first member carries the shared decompose (one input INTT +
    one batched digit NTT); every member contributes its AutoPlan
    gather + KeyMult; the last member carries the batched
    cross-rotation ModDown (aux INTT + conversion NTT scale with the
    rotation count R, per ``mod_down_batch``).
    """
    gid = op.hoist_group
    level = op.level
    shape = HybridShape.at_level(params, level)
    k, p, d = shape.k, shape.p, shape.beta
    rots = len(member_indices)
    first = member_indices[0]
    last = member_indices[-1]
    c0 = ct_half(op.ct_id, 0)
    c1 = ct_half(op.ct_id, 1)
    digits = local_value("digits", first)
    seen = pending_group.get(gid, 0)

    if index == first:
        ops.append(conversion(FROM_EVAL, index, c1, k, level=level))
        ops.append(MicroOp(
            kind=MOD_UP, index=index, level=level,
            uses=(c1,), writes=(digits,),
            requires=((c1, COEFF),),
            produces=((digits, COEFF),),
            meta={"k": k, "p": p, "digits": d, "hoisted": rots}))
        ops.append(conversion(TO_EVAL, index, digits, d * (k + p),
                              level=level, pinned=True))
    # Per-rotation: eval-domain digit gather (zero NTT) + KeyMult.
    acc = local_value("acc", index)
    ops.append(MicroOp(
        kind=AUTO, index=index, level=level,
        uses=(digits, c0), writes=(acc,),
        meta={"op": op.kind, "rotation": op.rotation, "hoisted": True}))
    ops.append(MicroOp(
        kind=KEY_MULT, index=index, level=level,
        uses=(digits,), writes=(acc,),
        requires=((digits, EVAL),),
        produces=((acc, EVAL),),
        meta={"k": k, "p": p, "digits": d}))
    pending_group[gid] = seen + 1

    if index == last:
        aux = local_value("aux", first)
        conv = local_value("conv", first)
        ops.append(conversion(FROM_EVAL, index, aux, 2 * rots * p,
                              level=level, pinned=True))
        ops.append(MicroOp(
            kind=MOD_DOWN, index=index, level=level,
            uses=(acc, c0, c1), writes=(c0, c1),
            requires=((c0, EVAL),),
            produces=((c0, EVAL), (c1, EVAL)),
            meta={"k": k, "p": p, "rots": rots, "drop": 0}))
        ops.append(conversion(TO_EVAL, index, conv, 2 * rots * k,
                              level=level, pinned=True))
