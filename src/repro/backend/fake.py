"""FakeBackend — numpy with host/device transfer bookkeeping.

A hardware-free stand-in that lets CI assert the *residency contract*:
plans move their precomputed tables across the host/device boundary
once, at build, and a plan's steady state performs **zero** implicit
host<->device copies.  Values are numpy-identical (the "device" is the
same address space); only the accounting differs.

Device-resident arrays are marked with the :class:`FakeDeviceArray`
ndarray subclass.  Ufuncs, ``astype``, fancy indexing, ``reshape`` and
``out=`` kernels all preserve the subclass, so data produced *from*
device arrays stays device-tagged through the kernel bodies; structural
numpy functions (``np.stack``/``np.concatenate``/``np.where``) drop it,
which is why transfers are counted only at the explicit backend API
boundary (``from_host`` / ``to_host`` / ``asarray``), never inferred
per-ufunc.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["FakeBackend", "FakeDeviceArray"]


class FakeDeviceArray(np.ndarray):
    """Marker subclass tagging arrays as fake-device resident.

    Ufuncs and methods preserve ndarray subclasses already; NEP-18
    functions (``np.where``, ``np.stack``, ``np.concatenate``, ...)
    return base ndarrays by default, which would silently strip the
    residency tag from values computed on "device".  The
    ``__array_function__`` override re-tags those results — on a real
    accelerator the library's own functions return device arrays, and
    the fake must model that, or steady-state kernels would appear to
    round-trip through the host when they do not.
    """

    def __array_function__(self, func, types, args, kwargs):
        result = super().__array_function__(func, types, args, kwargs)
        return _retag(result)


def _retag(result):
    if isinstance(result, np.ndarray):
        if result.dtype == object and not isinstance(result,
                                                     FakeDeviceArray):
            return result
        return result.view(FakeDeviceArray)
    if isinstance(result, (tuple, list)):
        return type(result)(_retag(item) for item in result)
    return result


class FakeBackend(ArrayBackend):
    """Numpy semantics + transfer counters (``h2d``/``d2h``/``alloc``)."""

    name = "fake"
    device = "fake0"
    supports_uint64 = True
    exact_float64_matmul = True
    numpy_dispatch = True

    def __init__(self) -> None:
        self._counters = {"h2d": 0, "d2h": 0, "alloc": 0}

    # -- bookkeeping -----------------------------------------------------

    def transfer_counts(self) -> dict:
        """Snapshot of the transfer/allocation counters."""
        return dict(self._counters)

    def reset_counters(self) -> None:
        for key in self._counters:
            self._counters[key] = 0

    def is_device_array(self, array) -> bool:
        return isinstance(array, FakeDeviceArray)

    # -- residency boundary ----------------------------------------------

    def from_host(self, array):
        if isinstance(array, FakeDeviceArray):
            return array
        self._counters["h2d"] += 1
        return np.asarray(array).view(FakeDeviceArray)

    def to_host(self, array) -> np.ndarray:
        if isinstance(array, FakeDeviceArray):
            self._counters["d2h"] += 1
            return array.view(np.ndarray)
        return np.asarray(array)

    def asarray(self, values, dtype=None, copy=False):
        if isinstance(values, FakeDeviceArray):
            if not copy and (dtype is None or values.dtype == dtype):
                return values
            return np.array(values, dtype=dtype).view(FakeDeviceArray)
        self._counters["h2d"] += 1
        if copy:
            return np.array(values, dtype=dtype).view(FakeDeviceArray)
        return np.asarray(values, dtype=dtype).view(FakeDeviceArray)

    # -- allocation ------------------------------------------------------

    def empty(self, shape, dtype):
        self._counters["alloc"] += 1
        return np.empty(shape, dtype=dtype).view(FakeDeviceArray)

    def zeros(self, shape, dtype):
        self._counters["alloc"] += 1
        return np.zeros(shape, dtype=dtype).view(FakeDeviceArray)

    # -- primitives ------------------------------------------------------

    def matmul(self, a, b, out=None):
        if out is not None:
            return np.matmul(a, b, out=out)
        return np.matmul(a, b)

    def device_info(self) -> dict:
        return {"device": self.device, "library": "numpy (fake device)",
                "version": np.__version__,
                "transfers": self.transfer_counts()}
