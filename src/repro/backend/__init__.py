"""``repro.backend`` — pluggable array backends behind the kernel layer.

Selection::

    from repro import backend
    backend.select("cupy")            # or "numpy" | "torch" | "fake" | "auto"
    REPRO_BACKEND=cupy python -m repro bench   # env var, read at first use

``select`` sets the process default that every plan cache and kernel
resolves when no explicit backend is passed; requesting an unavailable
accelerator falls back to numpy gracefully and bumps the
``backend.fallback`` counter (plus ``backend.fallback.unavailable``).
Kernels that dispatch to a backend count ``backend.dispatch.<name>``,
and capability negotiation (a backend whose flags cannot run a given
datapath bit-exactly) counts ``backend.fallback.capability``.

Backends are singletons; pass the instance (or its name) to
``get_kernel``/``get_plan``/``get_bconv_plan``/... to pin a specific
one, and use :func:`backend_of` / :func:`to_host` to bring results back
to the host at API boundaries.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from repro.backend.arena import WorkspaceArena, ledger_counters
from repro.backend.base import ArrayBackend, NumpyBackend
from repro.backend.fake import FakeBackend, FakeDeviceArray
from repro.obs.tracer import get_tracer

__all__ = [
    "ArrayBackend", "NumpyBackend", "FakeBackend", "FakeDeviceArray",
    "WorkspaceArena", "available_backends", "backend_of", "get_backend",
    "kernel_backend", "ledger_counters", "resolve", "select", "to_host",
]

_TRACER = get_tracer()

#: resolution order for ``select("auto")``: fastest available wins.
AUTO_ORDER = ("cupy", "torch", "numpy")

BACKEND_NAMES = ("numpy", "cupy", "torch", "fake")


def _make_cupy() -> ArrayBackend:
    from repro.backend.cupy_backend import CupyBackend

    return CupyBackend()


def _make_torch() -> ArrayBackend:
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend()


_FACTORIES = {
    "numpy": NumpyBackend,
    "fake": FakeBackend,
    "cupy": _make_cupy,
    "torch": _make_torch,
}

_instances: dict[str, ArrayBackend] = {}
_failures: dict[str, str] = {}
_warned: set[str] = set()
_default: ArrayBackend | None = None


def _instantiate(name: str) -> ArrayBackend | None:
    """Backend singleton for ``name``, or None if it cannot initialise."""
    if name in _instances:
        return _instances[name]
    if name in _failures:
        return None
    try:
        instance = _FACTORIES[name]()
    except Exception as exc:  # ImportError or device-probe failure
        _failures[name] = f"{type(exc).__name__}: {exc}"
        return None
    _instances[name] = instance
    return instance


def _auto_backend() -> ArrayBackend:
    for name in AUTO_ORDER:
        instance = _instantiate(name)
        if instance is not None:
            return instance
    return _instantiate("numpy")  # numpy always constructs


def get_backend(name: str | None = None) -> ArrayBackend:
    """The backend singleton for ``name`` (default: process default).

    Unknown names raise ``ValueError``; a known-but-unavailable
    accelerator ("cupy"/"torch" without the library or device) falls
    back to numpy with one warning and a ``backend.fallback`` counter.
    """
    if name is None:
        return _default_backend()
    if name == "auto":
        return _auto_backend()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; expected one of "
            f"{BACKEND_NAMES + ('auto',)}")
    instance = _instantiate(name)
    if instance is not None:
        return instance
    if _TRACER.enabled:
        _TRACER.count("backend.fallback")
        _TRACER.count("backend.fallback.unavailable")
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"backend {name!r} unavailable ({_failures[name]}); "
            "falling back to numpy", RuntimeWarning, stacklevel=2)
    return _instantiate("numpy")


def select(name: str) -> ArrayBackend:
    """Set the process-default backend and return it."""
    global _default
    _default = get_backend(name)
    return _default


def _default_backend() -> ArrayBackend:
    global _default
    if _default is None:
        _default = get_backend(os.environ.get("REPRO_BACKEND", "numpy"))
    return _default


def _reset_for_tests() -> None:
    """Forget the cached default so REPRO_BACKEND is re-read (tests)."""
    global _default
    _default = None
    _warned.clear()


def resolve(backend) -> ArrayBackend:
    """Normalise ``None`` / name / instance to a backend singleton."""
    if backend is None:
        return _default_backend()
    if isinstance(backend, ArrayBackend):
        return backend
    return get_backend(backend)


def kernel_backend(backend=None, *, need_uint64: bool = True,
                   need_matmul: bool = False) -> ArrayBackend:
    """Capability negotiation for the vectorised kernel datapaths.

    Resolves ``backend`` and checks the flags the requested datapath
    needs (numpy dispatch always; uint64 lazy arithmetic and exact
    float64 matmul on demand).  A backend that cannot run it bit-exactly
    is downgraded to numpy with ``backend.fallback`` counters; numpy
    itself always qualifies.
    """
    be = resolve(backend)
    capable = be.numpy_dispatch \
        and (be.supports_uint64 or not need_uint64) \
        and (be.exact_float64_matmul or not need_matmul)
    if capable:
        if _TRACER.enabled:
            _TRACER.count(f"backend.dispatch.{be.name}")
        return be
    if _TRACER.enabled:
        _TRACER.count("backend.fallback")
        _TRACER.count("backend.fallback.capability")
        _TRACER.count("backend.dispatch.numpy")
    return get_backend("numpy")


def backend_of(array) -> ArrayBackend:
    """The backend that owns ``array`` (host arrays map to numpy)."""
    if isinstance(array, FakeDeviceArray):
        return get_backend("fake")
    if isinstance(array, np.ndarray):
        return get_backend("numpy")
    for name in ("cupy", "torch"):
        instance = _instances.get(name)
        if instance is not None and instance.is_device_array(array):
            return instance
    return get_backend("numpy")


def to_host(array) -> np.ndarray:
    """Materialise any backend's array (or a scalar/list) on the host."""
    return backend_of(array).to_host(array)


def available_backends() -> dict:
    """Probe every registered backend; name -> status/info dict.

    Used by ``repro backend`` and the bench harness.  Probing caches
    singletons but does not change the process default.
    """
    report = {}
    default = _default_backend()
    for name in BACKEND_NAMES:
        instance = _instantiate(name)
        if instance is None:
            report[name] = {"available": False, "error": _failures[name]}
            continue
        report[name] = {
            "available": True,
            "device": instance.device,
            "default": instance is default,
            "capabilities": instance.capability_flags(),
            "info": instance.device_info(),
        }
    return report
