"""The array-backend protocol and the default numpy implementation.

An :class:`ArrayBackend` is the narrow waist between the CKKS hot
kernels (``ModulusKernel``, ``NttPlan``/``BatchNttPlan``, ``BConvPlan``,
``KeyMultPlan``, ``AutoPlan``, ``RowBatchNtt``) and whatever array
library executes them.  The protocol is deliberately small: the kernels
keep calling ``np.*`` ufuncs and operators on whatever arrays the
backend hands out — numpy's NEP-18/NEP-13 dispatch (or plain ndarray
subclassing) routes those calls to the device library — and the backend
only mediates the points where *residency* matters:

* ``from_host`` / ``to_host`` — explicit host<->device transfers.
  Precomputed plan tables (twiddles, Shoup pairs, 22-bit split
  matrices) cross this boundary exactly once, at plan build.
* ``empty`` / ``zeros`` — device allocation for pooled workspaces.
* ``gather`` / ``matmul`` / ``mulmod`` — the three primitives with
  backend-specific fast paths (AutoPlan point gathers, the BConv
  float64 GEMM, and modular multiply).

Capability flags drive negotiation: a kernel that needs the uint64
lazy-reduction datapath (every vectorised hot path in this repo)
checks ``supports_uint64`` and ``numpy_dispatch`` and falls back to
the numpy backend — with a ``backend.fallback`` counter — when the
selected backend cannot run it bit-exactly.  The object-dtype oracle
path is always pinned to numpy; it is the portable reference, not a
fallback.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayBackend", "NumpyBackend"]


class ArrayBackend:
    """Protocol base: residency boundary + primitive ops for one device.

    Subclasses are singletons per (library, device); plan caches key on
    :attr:`cache_token` so tables built for one backend are never served
    to another.  Instances are hashable by identity, which makes them
    valid ``lru_cache`` key components.
    """

    #: registry name ("numpy", "cupy", "torch", "fake").
    name = "abstract"
    #: device handle the backend allocates on ("cpu", "cuda:0", ...).
    device = "cpu"
    #: uint64 arrays with wraparound (lazy-reduction) arithmetic work.
    supports_uint64 = False
    #: float64 matmul is exactly rounded within the 2**53 window, so the
    #: BConv 22-bit split GEMM is bit-exact.
    exact_float64_matmul = False
    #: ``np.*`` ufuncs/functions dispatch to this backend's arrays
    #: (NEP-13/NEP-18 or ndarray subclassing), so the existing kernel
    #: bodies run unchanged on device-resident data.
    numpy_dispatch = False

    # -- residency boundary ----------------------------------------------

    def from_host(self, array):
        """Move a host ndarray onto the device (identity if resident)."""
        raise NotImplementedError

    def to_host(self, array) -> np.ndarray:
        """Materialise ``array`` as a host numpy ndarray."""
        raise NotImplementedError

    def asarray(self, values, dtype=None, copy=False):
        """Device array from arbitrary values (uploads host input)."""
        raise NotImplementedError

    # -- allocation ------------------------------------------------------

    def empty(self, shape, dtype):
        raise NotImplementedError

    def zeros(self, shape, dtype):
        raise NotImplementedError

    # -- primitives ------------------------------------------------------

    def gather(self, array, indices):
        """Fancy-index ``array`` with a device-resident index vector."""
        return array[indices]

    def matmul(self, a, b, out=None):
        raise NotImplementedError

    def mulmod(self, a, b, modulus):
        """Elementwise ``a * b mod modulus`` on this backend.

        Routed through the width-tiered :class:`ModulusKernel` so each
        backend gets the narrow/wide split-limb datapath it can run.
        """
        from repro.ckks import modmath

        kernel = modmath.get_kernel(int(modulus), backend=self)
        return kernel.mul(kernel.asresidues(a), kernel.asresidues(b))

    def is_device_array(self, array) -> bool:
        """True when ``array`` is resident on this backend's device."""
        return False

    # -- introspection ---------------------------------------------------

    def synchronize(self) -> None:
        """Block until queued device work completes (no-op on host)."""

    def device_info(self) -> dict:
        return {"device": self.device}

    @property
    def cache_token(self) -> str:
        """Stable identity string used in plan-cache keys."""
        return f"{self.name}:{self.device}"

    @property
    def full_datapath(self) -> bool:
        """True when every vectorised hot path runs natively here."""
        return bool(self.numpy_dispatch and self.supports_uint64
                    and self.exact_float64_matmul)

    def capability_flags(self) -> dict:
        return {"supports_uint64": bool(self.supports_uint64),
                "exact_float64_matmul": bool(self.exact_float64_matmul),
                "numpy_dispatch": bool(self.numpy_dispatch),
                "full_datapath": self.full_datapath}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.cache_token}>"


class NumpyBackend(ArrayBackend):
    """The default host backend: every method is a passthrough.

    Bit-identical to pre-backend behaviour by construction — arrays in
    are arrays out, no wrapping, no copies beyond what the caller asks
    for — so the numpy path carries zero dispatch overhead.
    """

    name = "numpy"
    device = "cpu"
    supports_uint64 = True
    exact_float64_matmul = True
    numpy_dispatch = True

    def from_host(self, array):
        return array

    def to_host(self, array) -> np.ndarray:
        if isinstance(array, np.ndarray):
            return array
        return np.asarray(array)

    def asarray(self, values, dtype=None, copy=False):
        if copy:
            return np.array(values, dtype=dtype)
        return np.asarray(values, dtype=dtype)

    def empty(self, shape, dtype):
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def matmul(self, a, b, out=None):
        if out is not None:
            return np.matmul(a, b, out=out)
        return np.matmul(a, b)

    def is_device_array(self, array) -> bool:
        return isinstance(array, np.ndarray)

    def device_info(self) -> dict:
        return {"device": "cpu", "library": "numpy",
                "version": np.__version__}
