"""CuPy backend — CUDA-resident arrays behind the numpy kernel bodies.

CuPy arrays implement ``__array_ufunc__``/``__array_function__``
(NEP-13/NEP-18), so the existing kernel bodies — uint64 lazy-reduction
butterflies, split-limb Barrett, ``np.where`` fixups, the BConv float64
GEMM — execute on the GPU without modification once their operand
tables are device-resident.  uint64 wraparound arithmetic and
correctly-rounded float64 matmul both hold on CUDA, so the backend
advertises the full datapath.

Import of :mod:`cupy` is deferred to construction; the registry treats
an ``ImportError`` (or a CUDA runtime failure while probing the device)
as "unavailable" and falls back to numpy with a ``backend.fallback``
counter.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["CupyBackend"]


class CupyBackend(ArrayBackend):

    name = "cupy"
    supports_uint64 = True
    exact_float64_matmul = True
    numpy_dispatch = True

    def __init__(self) -> None:
        import cupy  # raises ImportError when absent -> registry fallback

        # Probe the runtime: an importable cupy without a usable CUDA
        # device must be treated as unavailable, not half-working.
        device = cupy.cuda.Device()
        device.compute_capability  # touches the driver
        self._cp = cupy
        self._device = device
        self.device = f"cuda:{device.id}"

    def from_host(self, array):
        return self._cp.asarray(array)

    def to_host(self, array) -> np.ndarray:
        if isinstance(array, self._cp.ndarray):
            return self._cp.asnumpy(array)
        return np.asarray(array)

    def asarray(self, values, dtype=None, copy=False):
        if copy:
            return self._cp.array(values, dtype=dtype)
        return self._cp.asarray(values, dtype=dtype)

    def empty(self, shape, dtype):
        return self._cp.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype):
        return self._cp.zeros(shape, dtype=dtype)

    def gather(self, array, indices):
        return array[self._cp.asarray(indices)]

    def matmul(self, a, b, out=None):
        if out is not None:
            return self._cp.matmul(a, b, out=out)
        return self._cp.matmul(a, b)

    def is_device_array(self, array) -> bool:
        return isinstance(array, self._cp.ndarray)

    def synchronize(self) -> None:
        self._cp.cuda.get_current_stream().synchronize()

    def device_info(self) -> dict:
        props = self._cp.cuda.runtime.getDeviceProperties(self._device.id)
        name = props["name"]
        if isinstance(name, bytes):
            name = name.decode()
        free, total = self._device.mem_info
        return {"device": self.device, "library": "cupy",
                "version": self._cp.__version__, "gpu": name,
                "compute_capability": self._device.compute_capability,
                "mem_free_bytes": int(free), "mem_total_bytes": int(total)}
