"""Torch backend — protocol-complete, capability-limited.

Torch tensors do not speak numpy's dispatch protocols with the
semantics the kernels rely on, and torch's uint64 arithmetic is too
incomplete for the lazy-reduction datapath (no wraparound guarantees,
no ``np.where``-style fixups on unsigned words).  The backend therefore
advertises ``supports_uint64 = False`` / ``numpy_dispatch = False``:
capability negotiation at plan build downgrades every uint64 hot path
to the numpy backend (counted as ``backend.fallback``), while the
protocol surface — transfers, allocation, gather, exact float64
matmul — runs on torch (CUDA when available, else CPU).

This is deliberately the worked example of a *partial* backend for
DESIGN.md Sec. 18: a new backend only accelerates what its flags say
it can, and everything else keeps working through negotiation.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["TorchBackend"]

_UNSUPPORTED = "torch backend has no uint64/object support; " \
    "kernels negotiate down to numpy for this dtype"


class TorchBackend(ArrayBackend):

    name = "torch"
    supports_uint64 = False
    exact_float64_matmul = True
    numpy_dispatch = False

    def __init__(self) -> None:
        import torch  # raises ImportError when absent -> registry fallback

        self._torch = torch
        if torch.cuda.is_available():
            self._device = torch.device("cuda", torch.cuda.current_device())
        else:
            self._device = torch.device("cpu")
        self.device = str(self._device)

    def _check_dtype(self, dtype) -> None:
        if dtype is not None and np.dtype(dtype) in (np.dtype(np.uint64),
                                                     np.dtype(object)):
            raise TypeError(_UNSUPPORTED)

    def from_host(self, array):
        array = np.asarray(array)
        self._check_dtype(array.dtype)
        return self._torch.from_numpy(np.ascontiguousarray(array)) \
            .to(self._device)

    def to_host(self, array) -> np.ndarray:
        if isinstance(array, self._torch.Tensor):
            return array.detach().cpu().numpy()
        return np.asarray(array)

    def asarray(self, values, dtype=None, copy=False):
        self._check_dtype(dtype)
        if isinstance(values, self._torch.Tensor):
            tensor = values.to(self._device)
            if dtype is not None:
                tensor = tensor.to(self._torch.from_numpy(
                    np.empty(0, dtype=dtype)).dtype)
            return tensor.clone() if copy else tensor
        host = np.asarray(values, dtype=dtype)
        return self.from_host(host)

    def empty(self, shape, dtype):
        self._check_dtype(dtype)
        ref = self._torch.from_numpy(np.empty(0, dtype=dtype))
        return self._torch.empty(shape, dtype=ref.dtype, device=self._device)

    def zeros(self, shape, dtype):
        self._check_dtype(dtype)
        ref = self._torch.from_numpy(np.empty(0, dtype=dtype))
        return self._torch.zeros(shape, dtype=ref.dtype, device=self._device)

    def gather(self, array, indices):
        if not isinstance(indices, self._torch.Tensor):
            indices = self._torch.as_tensor(np.asarray(indices),
                                            device=self._device)
        return array[indices]

    def matmul(self, a, b, out=None):
        if out is not None:
            return self._torch.matmul(a, b, out=out)
        return self._torch.matmul(a, b)

    def is_device_array(self, array) -> bool:
        return isinstance(array, self._torch.Tensor)

    def synchronize(self) -> None:
        if self._device.type == "cuda":
            self._torch.cuda.synchronize(self._device)

    def device_info(self) -> dict:
        info = {"device": self.device, "library": "torch",
                "version": self._torch.__version__}
        if self._device.type == "cuda":
            info["gpu"] = self._torch.cuda.get_device_name(self._device)
        return info
