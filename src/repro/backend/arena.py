"""Per-plan workspace arenas with an obs allocation ledger.

Every hot kernel tier (fused NTT butterflies, BConv matrix stage,
fused KeyMult) runs on ``out=``-chained ufuncs writing into pooled
device buffers instead of letting each numpy expression allocate
3-4 temporaries per stage.  A :class:`WorkspaceArena` is the pool:
plans own one, keyed buffers are checked out with :meth:`take`, and
a *pool miss* — the only event that allocates — goes through
``backend.empty`` (so FakeBackend's device-allocation counter sees
it) **and** bumps an ``obs`` counter ``kernel.alloc.<domain>``.

That ledger is the allocation analogue of FakeBackend's
host<->device transfer pinning: "zero steady-state allocations" is
asserted by reading the counter across a warmed call, never assumed.
The counters are cheap enough to keep always-on locally
(:attr:`misses`/:attr:`hits` plain ints); the tracer counter only
records when observability is enabled.

Buffers are cached per ``(key, shape, dtype)`` and never freed while
the owning plan lives — the steady state of a workload touches a
fixed set of shapes per plan, so the pool converges after the first
call (warmup) and every later checkout is a hit.
"""

from __future__ import annotations

import numpy as np

from repro.obs.tracer import get_tracer

_TRACER = get_tracer()

#: ledger domains wired into the bench ``--profile`` table and the CI
#: ``ntt_fused`` gate.  Arbitrary strings are accepted; these are the
#: ones the kernel tiers use.
DOMAINS = ("ntt", "bconv", "kmu")


class WorkspaceArena:
    """Keyed pool of device work buffers for one kernel plan.

    Parameters
    ----------
    backend:
        :class:`~repro.backend.base.ArrayBackend` whose ``empty``
        performs the (counted) device allocation on a pool miss.
    domain:
        Ledger suffix: misses bump ``kernel.alloc.<domain>``.
    """

    __slots__ = ("backend", "domain", "_buffers", "hits", "misses")

    def __init__(self, backend, domain: str):
        self.backend = backend
        self.domain = str(domain)
        self._buffers: dict = {}
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (f"WorkspaceArena(domain={self.domain!r}, "
                f"buffers={len(self._buffers)}, hits={self.hits}, "
                f"misses={self.misses})")

    def take(self, key, shape, dtype=np.uint64):
        """Check out the pooled buffer for ``key``, allocating on miss.

        The returned array is owned by the arena: contents are
        unspecified on entry and the same buffer is returned for the
        same ``(key, shape, dtype)`` on every later call, so callers
        must finish with it before the next checkout of the same key.
        """
        if not isinstance(shape, tuple):
            shape = (int(shape),)
        pool_key = (key, shape, np.dtype(dtype))
        buf = self._buffers.get(pool_key)
        if buf is not None:
            self.hits += 1
            return buf
        self.misses += 1
        if _TRACER.enabled:
            _TRACER.count("kernel.alloc." + self.domain)
        buf = self.backend.empty(shape, dtype)
        self._buffers[pool_key] = buf
        return buf

    def take_many(self, key, count: int, shape, dtype=np.uint64) -> tuple:
        """``count`` distinct pooled buffers sharing one logical key."""
        return tuple(self.take((key, i), shape, dtype)
                     for i in range(count))

    def drop(self) -> None:
        """Release every pooled buffer (next takes are misses)."""
        self._buffers.clear()


def ledger_counters() -> dict[str, float]:
    """Current ``kernel.alloc.*`` counter values (obs must be enabled)."""
    return get_tracer().counters_with_prefix("kernel.alloc.")
