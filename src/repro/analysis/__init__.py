"""Regeneration of every table and figure in the paper's evaluation.

Each ``figureN`` / ``tableN`` function in :mod:`repro.analysis.figures`
returns the underlying data (rows/series) and there is a matching
pretty-printer; the ``benchmarks/`` directory wires each one into a
pytest-benchmark target so the whole evaluation regenerates from one
command.
"""

from repro.analysis import figures

__all__ = ["figures"]
