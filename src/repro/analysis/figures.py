"""One function per evaluation table/figure (see DESIGN.md Sec. 4).

Every function returns plain data structures (dicts / lists of rows)
so tests can assert on them and benchmarks can print them.  Paper
values are attached wherever the paper states them, making the
"paper vs measured" comparison mechanical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ckks.params import SET_I, SET_II, CkksParams
from repro.ckks.keyswitch import cost
from repro.hw import area as hw_area
from repro.hw import multiplier
from repro.hw.config import (FAST_CONFIG, FAST_WITHOUT_TBM, FAST_36BIT_ALU,
                             ChipConfig, cluster_sweep, memory_sweep)
from repro.sim import baselines, metrics
from repro.sim.engine import Engine, SimulationResult
from repro.workloads import bootstrap_trace, helr_trace, resnet20_trace

MS = 1e3
US = 1e6


# --------------------------------------------------------------------------
# Motivational study
# --------------------------------------------------------------------------

def figure2a(levels=range(1, 36)) -> list[dict]:
    """Modular-op counts for hybrid (Set-I) and KLSS (Set-II) per
    level, plus the quantitative line (hybrid/KLSS)."""
    rows = []
    for level in levels:
        hybrid = cost.hybrid_keyswitch_ops(SET_I, level).total
        klss = cost.klss_keyswitch_ops(SET_II, level).total
        rows.append({"level": level, "hybrid_mops": hybrid / 1e6,
                     "klss_mops": klss / 1e6,
                     "quantitative_line": hybrid / klss})
    return rows


def figure2b(levels=range(1, 36)) -> list[dict]:
    """Per-kernel quantitative lines: which kernel drives the shift."""
    rows = []
    for level in levels:
        hyb = cost.hybrid_keyswitch_ops(SET_I, level)
        kls = cost.klss_keyswitch_ops(SET_II, level)
        rows.append({
            "level": level,
            "ntt": hyb.ntt / max(kls.ntt, 1.0),
            "bconv": hyb.bconv / max(kls.bconv, 1.0),
            "keymult": hyb.keymult / max(kls.keymult, 1.0),
            "elementwise": hyb.elementwise / max(kls.elementwise, 1.0),
        })
    return rows


def figure3a(levels=range(1, 36), hoisting=(2, 4, 6)) -> list[dict]:
    """KLSS/hybrid execution-op ratio under hoisting h2/h4/h6.

    Values are KLSS totals normalised to the hybrid method at the
    same hoisting count, per the paper's Fig. 3(a)."""
    rows = []
    for level in levels:
        row = {"level": level}
        for h in hoisting:
            hyb = cost.hybrid_keyswitch_ops(SET_I, level, hoisting=h).total
            kls = cost.klss_keyswitch_ops(SET_II, level, hoisting=h).total
            row[f"h{h}"] = kls / hyb
        rows.append(row)
    return rows


def figure3b(levels=range(1, 36)) -> list[dict]:
    """Working-set sizes (MB) per level: evk for each method plus 4-
    and 8-ciphertext residency."""
    rows = []
    for level in levels:
        rows.append({
            "level": level,
            "ciphertext_mb": cost.ciphertext_bytes(SET_I, level) / cost.MB,
            "hybrid_evk_mb": cost.hybrid_evk_bytes(SET_I, level) / cost.MB,
            "klss_evk_mb": cost.klss_evk_bytes(SET_II, level) / cost.MB,
            "ws_4ct_hybrid_mb": cost.working_set_bytes(
                "hybrid", SET_I, level, 4) / cost.MB,
            "ws_8ct_hybrid_mb": cost.working_set_bytes(
                "hybrid", SET_I, level, 8) / cost.MB,
        })
    return rows


FIGURE3B_PAPER_ANCHORS = {
    "ciphertext_mb": 19.7, "hybrid_evk_mb": 79.3, "klss_evk_mb": 295.3,
}


def figure4(bit_widths=(24, 28, 32, 36, 48, 60, 64)) -> dict:
    """ALU area/power scaling relative to 36-bit (mult and modmult)."""
    return {
        "modular_multiplier": multiplier.relative_scaling(
            bit_widths, modular=True),
        "multiplier": multiplier.relative_scaling(
            bit_widths, modular=False),
        "paper_anchor_60bit": {"modmult_area": 2.9, "modmult_power": 2.8,
                               "mult_area": 2.8, "mult_power": 2.7},
    }


# --------------------------------------------------------------------------
# Configuration tables
# --------------------------------------------------------------------------

def table2() -> list[dict]:
    """The parameter sets (straight from repro.ckks.params)."""
    rows = []
    for params, ksw in ((SET_I, "Hybrid"), (SET_II, "Hybrid+KLSS")):
        rows.append({
            "set": params.name, "N": params.ring_degree,
            "n": params.num_slots, "L": params.max_level,
            "L_eff": params.effective_level, "alpha": params.alpha,
            "alpha_tilde": params.klss_alpha_tilde or None,
            "q_bits": params.prime_bits, "ksw": ksw,
        })
    return rows


def table3(config: ChipConfig = FAST_CONFIG) -> dict:
    """Component area/power roll-up vs the paper's Table 3."""
    ours = hw_area.table3(config)
    rows = {}
    for name, vals in ours.items():
        rows[name] = {
            "area_mm2": vals["area_mm2"],
            "power_w": vals["power_w"],
            "paper_area_mm2": hw_area.PAPER_TABLE3_AREA_MM2.get(name),
            "paper_power_w": hw_area.PAPER_TABLE3_POWER_W.get(name),
        }
    rows["Total"]["paper_area_mm2"] = hw_area.PAPER_TOTAL_AREA_MM2
    rows["Total"]["paper_power_w"] = hw_area.PAPER_TOTAL_POWER_W
    return rows


def table4() -> list[dict]:
    """Hardware comparison: published rows + our FAST model row."""
    rows = [{"name": b.name, "word_bits": b.word_bits, "lanes": b.lanes,
             "onchip_mb": b.onchip_mb, "area_mm2": b.area_mm2,
             "source": "published"}
            for b in baselines.ALL_PUBLISHED]
    rows.append({"name": "FAST (ours)", "word_bits": 60, "lanes": 1024,
                 "onchip_mb": FAST_CONFIG.onchip_memory_bytes / 2**20,
                 "area_mm2": hw_area.area_for(FAST_CONFIG),
                 "source": "modelled"})
    return rows


# --------------------------------------------------------------------------
# Workload performance
# --------------------------------------------------------------------------

def _workloads(params: CkksParams = SET_II) -> dict:
    return {
        "Bootstrap": bootstrap_trace(params),
        "HELR256": helr_trace(params, batch=256),
        "HELR1024": helr_trace(params, batch=1024),
        "ResNet-20": resnet20_trace(params),
    }


def run_workloads(config: ChipConfig = FAST_CONFIG,
                  policy_mode: str = "aether") -> dict[str, SimulationResult]:
    """Simulate every benchmark workload on one design point."""
    engine = Engine(config, policy_mode=policy_mode)
    return {name: engine.run(trace)
            for name, trace in _workloads().items()}


def table5() -> dict:
    """Execution times: our simulated FAST vs published baselines."""
    results = run_workloads()
    ours = {name: r.total_s * MS for name, r in results.items()}
    published = {}
    for b in baselines.ALL_PUBLISHED + (baselines.PAPER_FAST,):
        published[b.name] = {
            "Bootstrap": b.bootstrap_ms, "HELR256": b.helr256_ms,
            "HELR1024": b.helr1024_ms, "ResNet-20": b.resnet20_ms,
        }
    speedup_vs_sharp = {
        name: baselines.SHARP.__getattribute__(attr) / ours[name]
        for name, attr in (("Bootstrap", "bootstrap_ms"),
                           ("HELR256", "helr256_ms"),
                           ("HELR1024", "helr1024_ms"),
                           ("ResNet-20", "resnet20_ms"))
    }
    return {"ours_ms": ours, "published_ms": published,
            "speedup_vs_sharp": speedup_vs_sharp}


def table6() -> dict:
    """T_mult,a/s for FAST (measured) and published accelerators."""
    engine = Engine()
    boot = engine.run(bootstrap_trace())
    ours_ns = metrics.amortized_mult_time(
        boot.total_s, SET_II.num_slots, SET_II.effective_level) * 1e9
    rows = [{"name": b.name, "slots": b.slots, "t_as_ns": b.t_mult_ns,
             "source": "published"} for b in baselines.TABLE6_PUBLISHED]
    rows.append({"name": "FAST (ours)", "slots": SET_II.num_slots,
                 "t_as_ns": ours_ns, "source": "measured"})
    return {"rows": rows, "paper_fast_ns": baselines.PAPER_FAST.t_mult_ns}


def table7() -> dict:
    """Average power, energy and EDP per workload."""
    engine = Engine()
    out = {}
    for name, trace in _workloads().items():
        result = engine.run(trace)
        report = metrics.power_report(result, engine.accelerator)
        out[name] = {"latency_ms": result.total_s * MS,
                     "avg_power_w": report.average_w,
                     "energy_j": report.energy_j,
                     "edp_js": report.edp_js}
    return out


# --------------------------------------------------------------------------
# Breakdown / utilisation / workload-composition figures
# --------------------------------------------------------------------------

def figure10() -> dict:
    """Execution time under OneKSW / Hoisting / Aether policies."""
    trace = bootstrap_trace()
    out = {}
    for label, mode in (("OneKSW", "hybrid-only"),
                        ("Hoisting", "hoisting-only"),
                        ("Aether", "aether")):
        result = Engine(policy_mode=mode).run(trace)
        out[label] = {
            "total_ms": result.total_s * MS,
            "method_ops": dict(result.method_ops),
            "stage_ms": {k: v * MS for k, v in result.stage_s.items()},
        }
    base = out["OneKSW"]["total_ms"]
    for label in out:
        out[label]["speedup_vs_oneksw"] = base / out[label]["total_ms"]
    out["paper_aether_speedup"] = 1.24
    return out


def figure11a() -> dict:
    """Unit utilisation averaged over the four workloads."""
    results = run_workloads()
    units = ("nttu", "bconvu", "kmu", "autou", "dsu", "hbm")
    per_workload = {name: r.utilisation() for name, r in results.items()}
    average = {u: sum(per_workload[w][u] for w in per_workload) /
               len(per_workload) for u in units}
    return {"per_workload": per_workload, "average": average,
            "paper_average": {"nttu": 0.6647, "bconvu": 0.243,
                              "kmu": 0.257, "hbm": 0.443}}


def figure11b() -> dict:
    """Bootstrap modular-op totals: hybrid-only vs KLSS-only vs FAST."""
    trace = bootstrap_trace()
    out = {}
    for label, mode in (("Hybrid", "hybrid-only"), ("KLSS", "klss-only"),
                        ("FAST", "aether")):
        result = Engine(policy_mode=mode).run(trace)
        out[label] = {k: v / 1e9 for k, v in result.kernel_modops.items()}
        out[label]["total"] = sum(result.kernel_modops.values()) / 1e9
    hybrid_total = out["Hybrid"]["total"]
    out["fast_vs_hybrid_total"] = out["FAST"]["total"] / hybrid_total
    out["paper_fast_vs_hybrid"] = 1 - 0.173
    return out


def figure12() -> dict:
    """Efficiency ablation: FAST -> -TBM -> -Aether-Hemera (36b ALU)."""
    trace = bootstrap_trace()
    points = (
        ("FAST", FAST_CONFIG, "aether"),
        ("FAST-noTBM", FAST_WITHOUT_TBM, "aether"),
        ("36bit-ALU", FAST_36BIT_ALU, "hybrid-only"),
    )
    out = {}
    for label, config, mode in points:
        result = Engine(config, policy_mode=mode).run(trace)
        out[label] = {"total_ms": result.total_s * MS}
    base = out["36bit-ALU"]["total_ms"]
    for label in out:
        out[label]["speedup_vs_36bit"] = base / out[label]["total_ms"]
    out["paper"] = {"FAST-noTBM_vs_36bit": 1.3, "FAST_vs_36bit": 1.45}
    return out


def figure13a(sizes_mb=(128, 192, 245, 281, 384, 512)) -> list[dict]:
    """Bootstrap latency vs scratchpad capacity."""
    trace = bootstrap_trace()
    rows = []
    for config in memory_sweep(list(sizes_mb)):
        result = Engine(config).run(trace)
        rows.append({"memory_mb": config.onchip_memory_bytes / 2**20,
                     "latency_ms": result.total_s * MS,
                     "key_traffic_mb": result.key_bytes / 1e6})
    return rows


def figure13b(cluster_counts=(2, 4, 8)) -> list[dict]:
    """Bootstrap latency / area / perf-per-area vs cluster count."""
    trace = bootstrap_trace()
    rows = []
    reference = None
    for config in cluster_sweep(list(cluster_counts)):
        result = Engine(config).run(trace)
        area = hw_area.area_for(config)
        perf_area = metrics.performance_per_area(result.total_s, area)
        row = {"clusters": config.clusters,
               "latency_ms": result.total_s * MS,
               "area_mm2": area, "perf_per_area": perf_area}
        rows.append(row)
        if config.clusters == 4:
            reference = row
    for row in rows:
        row["speedup_vs_4c"] = reference["latency_ms"] / row["latency_ms"]
        row["area_vs_4c"] = row["area_mm2"] / reference["area_mm2"]
    return rows


# --------------------------------------------------------------------------
# Pretty-printing helpers (used by benchmarks/examples)
# --------------------------------------------------------------------------

def format_rows(rows: list[dict], columns: list[str] | None = None,
                precision: int = 3) -> str:
    """Plain-text table for a list of row dicts."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {c: max(len(c), 10) for c in columns}
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = []
        for c in columns:
            v = row.get(c)
            if isinstance(v, float):
                cells.append(f"{v:.{precision}f}".ljust(widths[c]))
            else:
                cells.append(str(v).ljust(widths[c]))
        lines.append("  ".join(cells))
    return "\n".join(lines)
