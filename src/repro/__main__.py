"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evaluate``    regenerate the paper's full evaluation report
``bootstrap``   simulate fully-packed bootstrapping on FAST
``table5``      workload latencies vs published baselines
``decide``      show Aether's decisions for the bootstrap trace
``security``    security report for the paper's parameter sets
``bench``       perf-regression benchmarks; seeds ``BENCH_sim.json``
``sched``       dataflow-scheduled multi-cluster run + scaling curve
``opt``         whole-trace dataflow optimiser report for one workload
``serve``       multi-tenant batching FHE server (JSON over TCP)
``loadgen``     drive a server and report rps / latency / bit-exactness
``backend``     detected array backends, devices and capability flags
"""

from __future__ import annotations

import argparse
import sys


def cmd_evaluate(_args) -> int:
    from examples import paper_evaluation  # noqa: F401 (script import)
    # examples/ is not a package; execute the module's main via path.
    import runpy
    runpy.run_path("examples/paper_evaluation.py", run_name="__main__")
    return 0


def cmd_bootstrap(args) -> int:
    from repro.hw.config import fast_variant, FAST_CONFIG
    from repro.sim.engine import Engine
    from repro.workloads import bootstrap_trace

    config = FAST_CONFIG
    if args.clusters != 4:
        config = fast_variant(f"FAST-{args.clusters}C",
                              clusters=args.clusters)
    engine = Engine(config, policy_mode=args.policy)
    result = engine.run(bootstrap_trace())
    print(f"{config.name} [{args.policy}] bootstrap: "
          f"{result.total_s * 1e3:.3f} ms")
    print("utilisation:", {k: f"{v:.0%}"
                           for k, v in result.utilisation().items()})
    print(f"key traffic: {result.key_bytes / 1e6:.0f} MB; "
          f"methods: {dict(result.method_ops)}")
    return 0


def cmd_table5(_args) -> int:
    from repro.analysis import figures
    data = figures.table5()
    rows = [{"accelerator": n, **{k: v if v is not None else "-"
                                  for k, v in r.items()}}
            for n, r in data["published_ms"].items()]
    rows.append({"accelerator": "FAST (ours)", **data["ours_ms"]})
    print(figures.format_rows(rows, precision=2))
    return 0


def cmd_decide(_args) -> int:
    from repro.sim.engine import Engine
    from repro.workloads import bootstrap_trace

    engine = Engine()
    config = engine.aether.run(bootstrap_trace())
    for uid, d in sorted(config.decisions.items()):
        print(f"unit {uid:>3}: {d.kind:6} level {d.level:>2} x{d.times}"
              f" -> {d.method:7} h={d.hoisting}")
    print(f"\nconfig file: {config.size_bytes()} bytes; "
          f"mix {config.method_histogram()}")
    return 0


def cmd_bench(args) -> int:
    from repro.bench import harness
    return harness.run_cli(args)


def cmd_sched(args) -> int:
    from repro.hw.config import FAST_CONFIG
    from repro.sched import (FunctionalExecutor, ScheduledEngine,
                             serial_reference)
    from repro.workloads import bootstrap_trace, helr_trace

    traces = {"helr256": lambda: helr_trace(batch=256),
              "helr1024": lambda: helr_trace(batch=1024),
              "bootstrap": bootstrap_trace}
    trace = traces[args.workload]()
    if args.opt:
        from repro.ckks.params import SET_II
        from repro.opt import optimise_trace
        trace = optimise_trace(trace, SET_II)
        stats = trace.stats
        print(f"dataflow optimiser: NTT limb transforms "
              f"{stats.ntt_before} -> {stats.ntt_after} "
              f"(-{stats.reduction_pct:.1f}%)")
    counts = [int(c) for c in str(args.clusters).split(",") if c]
    streams = args.streams
    serial = serial_reference(FAST_CONFIG).run(trace)
    print(f"{trace.name}: serial 1-pipeline {serial.total_s * 1e3:.3f} ms")
    for count in counts:
        config = FAST_CONFIG.with_(name=f"FAST-{count}C", clusters=count)
        depth_kwargs = {} if args.pipeline_depth is None else \
            {"pipeline_depth": args.pipeline_depth}
        engine = ScheduledEngine(config, **depth_kwargs)
        if streams > 1:
            result = engine.run_streams(trace, streams)
            result.serial_total_s = serial.total_s
            print(f"  {count} cluster(s) x {streams} streams: "
                  f"makespan {result.total_s * 1e3:.3f} ms  "
                  f"amortized {result.amortized_s * 1e3:.3f} ms/stream  "
                  f"({result.amortized_speedup:.2f}x)  "
                  f"violations {result.dependency_violations}")
            print(f"    prefetch: {result.prefetch_hits} hits / "
                  f"{result.prefetch_misses} demand misses; "
                  f"stolen ops {result.stolen_ops}")
        else:
            result = engine.run(trace)
            result.serial_total_s = serial.total_s
            print(f"  {count} cluster(s): {result.total_s * 1e3:.3f} ms  "
                  f"speedup {result.speedup:.2f}x  "
                  f"occupancy {result.mean_occupancy():.0%}  "
                  f"violations {result.dependency_violations}")
        stalls = result.stalls
        print(f"    stalls: dep {stalls['dependency_s'] * 1e6:.1f} us, "
              f"evk {stalls['evk_s'] * 1e6:.1f} us, "
              f"structural {stalls['structural_s'] * 1e6:.1f} us")
        if count == counts[-1] and streams == 1:
            stats = result.graph_stats
            print(f"    graph: {stats['nodes']} nodes, "
                  f"{stats['edges']} edges, depth {stats['depth']}, "
                  f"{stats['ciphertext_chains']} chains, "
                  f"avg parallelism {stats['avg_parallelism']:.1f}")
    if args.verify:
        executor = FunctionalExecutor()
        if streams > 1:
            check = executor.verify_streams([trace] * streams,
                                            workers=args.workers)
            mode = "multiprocess" if check.parallel else "inline fallback"
            print(f"  executor ({mode}, {check.workers} workers): "
                  f"{check.streams} streams, {check.num_ops} ops over "
                  f"{check.num_cts} ciphertexts -> "
                  f"bit_exact={check.bit_exact}")
        else:
            check = executor.verify(trace, workers=args.workers)
            mode = "multiprocess" if check.parallel else "inline fallback"
            print(f"  executor ({mode}, {check.workers} workers): "
                  f"{check.num_ops} ops over {check.num_cts} "
                  f"ciphertexts -> bit_exact={check.bit_exact}")
        if not check.bit_exact:
            return 1
    return 0


def cmd_opt(args) -> int:
    from repro.ckks.params import SET_II
    from repro.opt import optimise_trace
    from repro.opt.stats import stats_report
    from repro.workloads import bootstrap_trace, helr_trace

    traces = {"helr256": lambda: helr_trace(batch=256),
              "helr1024": lambda: helr_trace(batch=1024),
              "bootstrap": bootstrap_trace}
    trace = optimise_trace(traces[args.workload](), SET_II)
    stats = trace.stats
    if args.stats:
        print(stats_report(stats))
    else:
        print(f"{stats.trace}: NTT limb transforms "
              f"{stats.ntt_before} -> {stats.ntt_after} "
              f"(-{stats.ntt_removed}, {stats.reduction_pct:.1f}%), "
              f"{stats.fused_nodes} fused key-switches, "
              f"{stats.merged_rescales} merged rescales")
    return 0 if stats.ntt_after < stats.ntt_before else 1


def cmd_serve(args) -> int:
    import asyncio
    from repro.serve.server import FheServer, ServerConfig

    config = ServerConfig(window_s=args.window_ms / 1e3,
                          max_batch=args.max_batch,
                          clusters=args.clusters,
                          backend=args.backend,
                          workers=args.workers,
                          seed=args.seed)

    async def _run() -> None:
        server = FheServer(config)
        try:
            host, port = await server.start_tcp(args.host, args.port)
            print(f"repro serve: listening on {host}:{port} "
                  f"(backend {config.backend}, window "
                  f"{config.window_s * 1e3:.1f} ms, "
                  f"max batch {config.max_batch})", flush=True)
            while args.limit is None or \
                    server.stats()["responses"] < args.limit:
                await asyncio.sleep(0.05)
        finally:
            await server.close()
        stats = server.stats()
        print(f"served {stats['responses']} requests in "
              f"{stats['batches']} batches "
              f"(mean batch {stats['mean_batch']:.1f})")

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\ninterrupted")
    return 0


def cmd_loadgen(args) -> int:
    import json
    from repro.serve.loadgen import format_report, run_loadgen
    from repro.serve.server import ServerConfig

    config = ServerConfig(window_s=args.window_ms / 1e3,
                          max_batch=args.max_batch,
                          clusters=args.clusters,
                          backend=args.backend,
                          workers=args.workers)
    report = run_loadgen(config=config, shape=args.shape,
                         tenants=args.tenants,
                         requests_per_tenant=args.requests_per_tenant,
                         concurrency=args.concurrency,
                         mode=args.mode, rate_rps=args.rate,
                         compare_serial=not args.no_serial)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for line in format_report(report):
            print(line)
    return 1 if report.errors or report.bit_exact is False else 0


def cmd_backend(args) -> int:
    import json
    import repro.backend as backend_mod

    report = backend_mod.available_backends()
    if args.json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    for name, info in report.items():
        if not info.get("available"):
            print(f"{name:8} unavailable ({info.get('error', '?')})")
            continue
        caps = info["capabilities"]
        flags = " ".join(k for k, v in sorted(caps.items()) if v)
        marker = " *default*" if info.get("default") else ""
        print(f"{name:8} {info['device']:8} {flags}{marker}")
        for key, value in sorted(info.get("info", {}).items()):
            if key != "device":
                print(f"{'':8} {key}: {value}")
    return 0


def cmd_security(_args) -> int:
    from repro.ckks import security
    from repro.ckks.params import SET_I, SET_II

    for params in (SET_I, SET_II):
        report = security.security_report(params)
        print(f"{params.name}:")
        for key, value in report.items():
            print(f"  {key}: {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="FAST (ISCA 2025) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("evaluate", help="regenerate the full evaluation")
    boot = sub.add_parser("bootstrap", help="simulate bootstrapping")
    boot.add_argument("--clusters", type=int, default=4)
    boot.add_argument("--policy", default="aether",
                      choices=["aether", "hybrid-only", "hoisting-only",
                               "klss-only"])
    sub.add_parser("table5", help="workload latency table")
    sub.add_parser("decide", help="show Aether's decisions")
    sub.add_parser("security", help="parameter security report")
    bench = sub.add_parser(
        "bench", help="perf-regression benchmarks -> BENCH_sim.json")
    from repro.bench.harness import add_arguments  # stdlib-only import
    add_arguments(bench)
    sched = sub.add_parser(
        "sched", help="dataflow-scheduled multi-cluster simulation")
    sched.add_argument("--workload", default="helr256",
                       choices=["helr256", "helr1024", "bootstrap"])
    sched.add_argument("--clusters", default="1,2,4,8",
                       help="comma-separated cluster counts")
    sched.add_argument("--streams", type=int, default=1,
                       help="independent ciphertext streams; >1 runs "
                            "the software-pipelined throughput mode")
    sched.add_argument("--pipeline-depth", type=int, default=None,
                       help="throughput mode: max in-flight ops per "
                            "cluster front end")
    sched.add_argument("--verify", action="store_true",
                       help="also run the multiprocess functional "
                            "executor bit-exactness check")
    sched.add_argument("--workers", type=int, default=2,
                       help="process-pool size for --verify")
    sched.add_argument("--opt", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="run the whole-trace dataflow optimiser "
                            "before lowering (--no-opt disables)")
    opt = sub.add_parser(
        "opt", help="whole-trace dataflow optimiser report")
    opt.add_argument("--workload", default="helr256",
                     choices=["helr256", "helr1024", "bootstrap"])
    opt.add_argument("--stats", action="store_true",
                     help="print the per-pass rewrite breakdown")

    def server_arguments(cmd):
        cmd.add_argument("--window-ms", type=float, default=2.0,
                         help="batch admission window (milliseconds)")
        cmd.add_argument("--max-batch", type=int, default=16)
        cmd.add_argument("--clusters", type=int, default=4)
        cmd.add_argument("--backend", default="stacked",
                         choices=["stacked", "pool"])
        cmd.add_argument("--workers", type=int, default=4,
                         help="pool backend: compute processes")

    serve = sub.add_parser(
        "serve", help="multi-tenant batching FHE server (JSON/TCP)")
    server_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8473)
    serve.add_argument("--seed", type=int, default=20250806)
    serve.add_argument("--limit", type=int, default=None,
                       help="exit after serving N responses")
    loadgen = sub.add_parser(
        "loadgen", help="drive a server; report rps/latency/exactness")
    server_arguments(loadgen)
    loadgen.add_argument("--shape", default="helr-mini-step")
    loadgen.add_argument("--tenants", type=int, default=8)
    loadgen.add_argument("--requests-per-tenant", type=int, default=8)
    loadgen.add_argument("--concurrency", type=int, default=2)
    loadgen.add_argument("--mode", default="closed",
                         choices=["closed", "open"])
    loadgen.add_argument("--rate", type=float, default=200.0,
                         help="open loop: arrival rate (requests/sec)")
    loadgen.add_argument("--no-serial", action="store_true",
                         help="skip the serial oracle comparison")
    loadgen.add_argument("--json", action="store_true")
    backend = sub.add_parser(
        "backend", help="detected array backends and capability flags")
    backend.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    return {"evaluate": cmd_evaluate, "bootstrap": cmd_bootstrap,
            "table5": cmd_table5, "decide": cmd_decide,
            "security": cmd_security, "bench": cmd_bench,
            "sched": cmd_sched, "opt": cmd_opt,
            "serve": cmd_serve, "loadgen": cmd_loadgen,
            "backend": cmd_backend}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
