"""Lowering: FHE operations -> hardware kernel tasks.

Each trace operation becomes a :class:`OpSchedule` — an ordered list
of :class:`KernelTask` stages with dependency semantics (stage ``i``
starts after stage ``i-1``), the precision mode each stage runs at,
and the evaluation-key traffic it triggers.  The modular-operation
work per stage comes from the *same* closed-form cost models that
drive Fig. 2 and Aether, so the simulator and the motivational study
are mutually consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.ckks.keys import HYBRID, KLSS
from repro.ckks.keyswitch import cost
from repro.ckks.params import CkksParams
from repro.core import optrace
from repro.core.aether import AetherConfig, Aether
from repro.core.optrace import FheOp, OpTrace
from repro.hw.accelerator import (KERNEL_AUTOMORPH, KERNEL_BCONV,
                                  KERNEL_ELEMENTWISE, KERNEL_KEYMULT,
                                  KERNEL_NTT)

KERNEL_DSU = "dsu"  # double rescale rides the AEM, not the KMU


@dataclass
class KernelTask:
    """One unit's worth of work inside an operation stage."""

    kernel: str
    modops: float
    wide: bool
    label: str = ""


@dataclass
class OpSchedule:
    """The lowered form of one trace operation.

    ``stages`` execute in order; tasks *within* one stage are
    independent and may overlap on different units.  ``key_bytes`` is
    the evaluation-key traffic that must have arrived before the
    KeyMult stage (index ``keymult_stage``) starts.
    """

    op: FheOp
    method: str
    hoisting: int
    stages: list[list[KernelTask]] = field(default_factory=list)
    key_bytes: float = 0.0
    key_bytes_per_key: float = 0.0
    rotations: tuple = ()
    keymult_stage: int = 0
    stage_label: str = ""
    # Trace positions this schedule covers (one index, or a fused
    # hoist batch's members) — the dataflow graph aligns on these.
    indices: tuple = ()

    @property
    def total_modops(self) -> float:
        return sum(t.modops for stage in self.stages for t in stage)


def _ops_to_tasks(ops: cost.KernelOps, wide: bool,
                  label: str) -> list[KernelTask]:
    tasks = []
    if ops.ntt:
        tasks.append(KernelTask(KERNEL_NTT, ops.ntt, wide, label))
    if ops.bconv:
        tasks.append(KernelTask(KERNEL_BCONV, ops.bconv, wide, label))
    if ops.keymult:
        tasks.append(KernelTask(KERNEL_KEYMULT, ops.keymult, wide, label))
    if ops.elementwise:
        tasks.append(KernelTask(KERNEL_ELEMENTWISE, ops.elementwise,
                                wide, label))
    return tasks


def lower_key_switch(op: FheOp, method: str, hoisting: int,
                     params: CkksParams, key_size_factor: float,
                     batch_rotations: int = 1,
                     rotations: tuple = (),
                     stored_key_bytes: float | None = None,
                     minks_regen: bool = False) -> OpSchedule:
    """Lower one HMult/HRot/Conj (possibly a fused hoist batch).

    ``batch_rotations`` is the number of rotations fused under one
    decomposition (1 for HMult).  KLSS stages run wide (60-bit);
    hybrid stages run narrow and enjoy the TBM's doubled throughput.
    """
    wide = method == KLSS
    level = op.level
    n = params.ring_degree
    k = level + 1
    schedule = OpSchedule(op=op, method=method, hoisting=hoisting,
                          stage_label=op.stage)
    if method == HYBRID:
        first_stage = _ops_to_tasks(
            cost.hybrid_decompose_ops(params, level), False, "decompose")
        keymult_tasks = _ops_to_tasks(
            cost.hybrid_keymult_ops(params, level), False, "keymult")
        finish_tasks = _ops_to_tasks(
            cost.hybrid_moddown_ops(params, level), False, "moddown")
    else:
        # KLSS mixes precisions: the input INTT and the final ModDown
        # run narrow (TBM dual mode); the gadget stages run wide.
        dec_narrow, dec_wide = cost.klss_decompose_split(params, level)
        first_stage = _ops_to_tasks(dec_narrow, False, "decompose") + \
            _ops_to_tasks(dec_wide, True, "decompose")
        keymult_tasks = _ops_to_tasks(
            cost.klss_keymult_ops(params, level), True, "keymult")
        rec_narrow, rec_wide = cost.klss_recover_split(params, level)
        finish_tasks = _ops_to_tasks(rec_wide, True, "moddown") + \
            _ops_to_tasks(rec_narrow, False, "moddown")
    if minks_regen:
        # ARK Min-KS: expand the compact key's limbs on chip — NTTs
        # over the full (k + p) extended basis for both key halves,
        # once per key in the batch.
        shape = cost.HybridShape.at_level(params, level)
        regen = 2 * (shape.k + shape.p) * cost.ntt_ops(n) * batch_rotations
        first_stage.append(KernelTask(KERNEL_NTT, regen, wide, "key-regen"))
    schedule.stages.append(first_stage)
    per_rot_stages = []
    for _ in range(batch_rotations):
        stage = []
        if op.kind in (optrace.HROT, optrace.CONJ):
            # Automorphism of the decomposed digits + c0 (permutation).
            stage.append(KernelTask(KERNEL_AUTOMORPH, (k + 1) * n, wide,
                                    "automorph"))
        stage.extend(list(keymult_tasks))
        per_rot_stages.append(stage)
        per_rot_stages.append(list(finish_tasks))
    schedule.keymult_stage = 1
    schedule.stages.extend(per_rot_stages)
    if stored_key_bytes is None:
        stored_key_bytes = cost.evk_bytes(method, params, level, hoisting=1)
    schedule.key_bytes_per_key = key_size_factor * stored_key_bytes
    schedule.key_bytes = schedule.key_bytes_per_key * batch_rotations
    if not rotations:
        rotations = (op.rotation,) if op.kind != optrace.HMULT else ()
    schedule.rotations = tuple(rotations)
    return schedule


def lower_plain_op(op: FheOp, params: CkksParams) -> OpSchedule:
    """Lower PMult/PAdd/HAdd/CMult/CAdd/Rescale/ModRaise."""
    n = params.ring_degree
    k = op.level + 1
    schedule = OpSchedule(op=op, method=HYBRID, hoisting=1,
                          stage_label=op.stage)
    if op.kind == optrace.PMULT:
        # OF-Limb (ARK, adopted in Sec. 6.1): the plaintext is stored
        # at one limb and extended on chip (BConv 1->k + k NTTs), so
        # only N words stream from HBM instead of k*N.
        schedule.stages.append([
            KernelTask(KERNEL_NTT, (1 + k) * cost.ntt_ops(n), False,
                       "of-limb"),
            KernelTask(KERNEL_BCONV, cost.bconv_ops(n, 1, k), False,
                       "of-limb"),
        ])
        schedule.stages.append([KernelTask(
            KERNEL_ELEMENTWISE, 2.0 * k * n, False, "pmult")])
    elif op.kind in (optrace.PADD, optrace.HADD, optrace.CADD):
        # Additions are cheaper than muls; the KMU retires them at the
        # same element rate, so charge element counts.
        polys = 2.0 if op.kind == optrace.HADD else 1.0
        schedule.stages.append([KernelTask(
            KERNEL_ELEMENTWISE, polys * k * n, False, "add")])
    elif op.kind == optrace.CMULT:
        schedule.stages.append([KernelTask(
            KERNEL_ELEMENTWISE, 2.0 * k * n, False, "cmult")])
    elif op.kind == optrace.RESCALE:
        # Double-prime scaling on the DSU (both polys, all limbs).
        elements = 2.0 * k * n
        schedule.stages.append([KernelTask(KERNEL_DSU, elements, False,
                                           "rescale")])
    elif op.kind == optrace.MOD_RAISE:
        # Extend from q0 to the full chain: INTT(1) + BConv + NTT(k).
        full = params.max_level + 1
        ntt_work = 2 * (1 + full) * cost.ntt_ops(n)
        bconv_work = 2 * cost.bconv_ops(n, 1, full)
        schedule.stages.append([
            KernelTask(KERNEL_NTT, ntt_work, False, "modraise-ntt"),
            KernelTask(KERNEL_BCONV, bconv_work, False, "modraise-bconv"),
        ])
    else:
        raise ValueError(f"cannot lower op kind {op.kind!r}")
    return schedule


@dataclass
class Policy:
    """How key-switching decisions are made during lowering.

    ``mode`` is one of:

    * ``"aether"`` — follow an :class:`AetherConfig` (the FAST flow);
    * ``"hybrid-only"`` — the OneKSW baseline of Fig. 10 (no
      hoisting, hybrid everywhere);
    * ``"hoisting-only"`` — hoist every candidate group but stay
      hybrid (Fig. 10's middle bar);
    * ``"klss-only"`` — KLSS everywhere (Fig. 11b's comparison).
    """

    mode: str = "aether"
    config: AetherConfig | None = None

    def decide(self, unit) -> tuple[str, int]:
        if self.mode == "aether":
            if self.config is None:
                raise ValueError("aether policy requires a config")
            decision = self.config.decisions.get(unit.unit_id)
            if decision is None:
                return HYBRID, 1
            return decision.method, decision.hoisting
        if self.mode == "hybrid-only":
            return HYBRID, 1
        if self.mode == "hoisting-only":
            return HYBRID, unit.times
        if self.mode == "klss-only":
            return KLSS, 1
        raise ValueError(f"unknown policy mode {self.mode!r}")


def lower_trace(trace: OpTrace, aether: Aether,
                policy: Policy) -> list[OpSchedule]:
    """Lower a whole trace under a key-switching policy.

    Hoist groups whose decision says ``hoisting > 1`` are fused into
    batch schedules of that size; everything else lowers per-op.
    """
    tracer = obs.get_tracer()
    with tracer.span("sim.lower_trace", trace=trace.name,
                     mode=policy.mode):
        schedules = _lower_trace(trace, aether, policy)
        scaled = _apply_dataflow_factors(trace, schedules)
    if tracer.enabled:
        if scaled:
            tracer.count("lower.dataflow_scaled", scaled)
        tracer.count("lower.schedules", len(schedules))
        for schedule in schedules:
            if schedule.key_bytes > 0:
                tracer.count(f"lower.method.{schedule.method}")
                if schedule.hoisting > 1:
                    tracer.count("lower.hoisted_batches")
    return schedules


def _apply_dataflow_factors(trace: OpTrace,
                            schedules: list[OpSchedule]) -> int:
    """Scale NTT kernel work by the whole-trace optimiser's rewrites.

    An :class:`~repro.opt.pipeline.OptimisedTrace` carries per-index
    ``(optimised_limbs, baseline_limbs)`` transform counts; each
    schedule's NTT tasks shrink by the ratio over the indices it
    covers (cancelled conversions, fused ModDown+Rescale bases).
    Plain traces carry no ``ntt_factors`` and are returned untouched —
    the default lowering stays byte-identical.  Returns the number of
    schedules whose work changed.
    """
    factor_for = getattr(trace, "factor_for", None)
    if factor_for is None:
        return 0
    scaled = 0
    for schedule in schedules:
        factor = factor_for(schedule.indices)
        if factor == 1.0:
            continue
        changed = False
        for stage in schedule.stages:
            for task in stage:
                if task.kernel == KERNEL_NTT:
                    task.modops *= factor
                    changed = True
        scaled += changed
    return scaled


def _lower_trace(trace: OpTrace, aether: Aether,
                 policy: Policy) -> list[OpSchedule]:
    schedules: list[OpSchedule] = []
    unit_of_index: dict[int, object] = {}
    for unit in aether.decision_units(trace):
        for index in unit.indices:
            unit_of_index[index] = unit
    handled: set[int] = set()
    for index, op in enumerate(trace):
        if index in handled:
            continue
        if not op.needs_key_switch:
            plain = lower_plain_op(op, aether.hybrid_params)
            plain.indices = (index,)
            schedules.append(plain)
            continue
        unit = unit_of_index[index]
        method, hoisting = policy.decide(unit)
        params = (aether.hybrid_params if method == HYBRID
                  else aether.klss_params)
        stored = aether.stored_key_bytes(method, params, op.level)
        regen = method == HYBRID and aether.use_minks
        if hoisting > 1 and len(unit.ops) > 1:
            members = list(zip(unit.indices, unit.ops))
            for start in range(0, len(members), hoisting):
                batch = members[start:start + hoisting]
                fused = lower_key_switch(
                    batch[0][1], method, hoisting, params,
                    aether.key_size_factor, batch_rotations=len(batch),
                    rotations=tuple(m.rotation for _, m in batch),
                    stored_key_bytes=stored, minks_regen=regen)
                fused.indices = tuple(i for i, _ in batch)
                schedules.append(fused)
                handled.update(i for i, _ in batch)
        else:
            single = lower_key_switch(
                op, method, 1, params, aether.key_size_factor,
                stored_key_bytes=stored, minks_regen=regen)
            single.indices = (index,)
            schedules.append(single)
            handled.add(index)
    return schedules
