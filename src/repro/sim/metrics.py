"""Derived metrics: power, energy, EDP, and T_mult,a/s.

* **Average power** (Table 7): utilisation-weighted peak power per
  component with a switching activity factor, plus idle/leakage
  floors for the always-on structures (register files, NoC).
* **Energy / EDP** (Table 7): energy = avg power x latency;
  EDP = energy x latency.
* **T_mult,a/s** (Table 6): the amortised multiplication time per
  slot popularised by Jung et al. [19] — bootstrap latency divided by
  (slots x usable levels); it lets accelerators with different
  parameter choices be compared fairly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.accelerator import Accelerator
from repro.sim.engine import SimulationResult

# Switching-activity factor mapping busy-time x peak power to average
# dynamic power; calibrated so FAST's bootstrap lands at the paper's
# ~120 W (Table 7) given the Fig. 11a utilisations.
ACTIVITY_FACTOR = 0.7
# Fraction of peak drawn by idle (clocked but not switching) logic.
IDLE_FACTOR = 0.08

# Map simulator unit names onto Table 3 component labels.
_UNIT_COMPONENT = {
    "nttu": "NTTUs",
    "bconvu": "BConvUs",
    "kmu": "KMUs",
    "autou": "AUTOUs",
    "dsu": "AEM",
    "hbm": "HBM",
}


@dataclass
class PowerReport:
    """Average power breakdown for one simulated run."""

    average_w: float
    per_component_w: dict
    energy_j: float
    edp_js: float


def power_report(result: SimulationResult,
                 accelerator: Accelerator) -> PowerReport:
    """Utilisation-weighted average power, energy and EDP."""
    utilisation = result.utilisation()
    powers = accelerator.component_powers_w()
    per_component: dict[str, float] = {}
    clusters = accelerator.config.clusters
    for unit, label in _UNIT_COMPONENT.items():
        key = f"{clusters}x{label}" if label not in ("HBM",) else label
        peak = powers.get(key, 0.0)
        busy = utilisation.get(unit, 0.0)
        per_component[key] = peak * (ACTIVITY_FACTOR * busy
                                     + IDLE_FACTOR * (1 - busy))
    # Register files and NoC switch with overall activity.
    overall = max(utilisation.get("nttu", 0.0),
                  utilisation.get("kmu", 0.0))
    for key in ("Register Files", "NoC"):
        peak = powers.get(key, 0.0)
        per_component[key] = peak * (ACTIVITY_FACTOR * overall
                                     + IDLE_FACTOR * (1 - overall))
    average = sum(per_component.values())
    energy = average * result.total_s
    return PowerReport(average_w=average, per_component_w=per_component,
                       energy_j=energy, edp_js=energy * result.total_s)


def amortized_mult_time(bootstrap_s: float, slots: int,
                        effective_levels: int) -> float:
    """T_mult,a/s in seconds: bootstrap latency per slot-level."""
    if slots <= 0 or effective_levels <= 0:
        raise ValueError("slots and levels must be positive")
    return bootstrap_s / (slots * effective_levels)


def performance_per_area(latency_s: float, area_mm2: float) -> float:
    """1 / (latency x area) — the paper's perf/area figure of merit."""
    return 1.0 / (latency_s * area_mm2)
