"""The kernel-level cycle simulator (Sec. 6.1's methodology).

A trace is lowered to hardware kernels (:mod:`repro.sim.kernels`),
scheduled onto the accelerator's units with a queueing pipeline model
(:mod:`repro.sim.engine`), and summarised into latency, utilisation,
power/energy and EDP (:mod:`repro.sim.metrics`).  Baseline
accelerators for the comparison tables live in
:mod:`repro.sim.baselines`.

The parallel counterpart — the dataflow-scheduled multi-cluster
execution path — lives in :mod:`repro.sched`; its
:class:`~repro.sched.ScheduledEngine` and
:class:`~repro.sched.ScheduledResult` re-export here lazily (the
``sched`` package imports this one).
"""

from repro.sim.engine import Engine, SimulationResult
from repro.sim.kernels import lower_trace

__all__ = ["Engine", "ScheduledEngine", "ScheduledResult",
           "SimulationResult", "lower_trace"]

_SCHED_EXPORTS = ("ScheduledEngine", "ScheduledResult")


def __getattr__(name: str):
    if name in _SCHED_EXPORTS:
        from repro import sched
        return getattr(sched, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
