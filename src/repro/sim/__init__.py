"""The kernel-level cycle simulator (Sec. 6.1's methodology).

A trace is lowered to hardware kernels (:mod:`repro.sim.kernels`),
scheduled onto the accelerator's units with a queueing pipeline model
(:mod:`repro.sim.engine`), and summarised into latency, utilisation,
power/energy and EDP (:mod:`repro.sim.metrics`).  Baseline
accelerators for the comparison tables live in
:mod:`repro.sim.baselines`.
"""

from repro.sim.engine import Engine, SimulationResult
from repro.sim.kernels import lower_trace

__all__ = ["Engine", "SimulationResult", "lower_trace"]
