"""The queueing cycle simulator.

Operations lower to staged kernel tasks (:mod:`repro.sim.kernels`);
the engine then schedules every task onto its host unit with
availability-time queueing:

* tasks inside one stage may overlap on different units;
* stage ``i`` of an op starts only after stage ``i-1`` finishes
  (dataflow dependency);
* op ``n`` may enter the pipeline once op ``n-1`` has cleared the
  first (decompose) stage — the limb-level pipelining that keeps the
  NTTU busy;
* the KeyMult stage additionally waits for its evaluation key, which
  Hemera streams over the HBM channel (serialised, prefetched up to a
  storage-bounded lead, cached on chip with LRU eviction);
* PMult plaintext operands stream from HBM as well (the DFT matrices
  of bootstrapping are far too large to pin on chip) — this is what
  makes FHE memory-bound at 1 TB/s, as Sec. 7.4 observes.

The result carries total latency, per-unit busy time (utilisation),
per-stage-label latency breakdowns (Fig. 10), kernel op totals
(Fig. 11b) and HBM traffic, feeding every evaluation figure.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace

from repro import obs
from repro.ckks.keys import HYBRID
from repro.ckks.keyswitch import cost
from repro.ckks.params import CkksParams, SET_I, SET_II
from repro.core import optrace
from repro.core.aether import Aether, AetherConfig
from repro.core.hemera import KeyCache
from repro.hw.accelerator import Accelerator, KERNEL_UNITS
from repro.hw.config import ChipConfig, FAST_CONFIG
from repro.sim.kernels import KERNEL_DSU, OpSchedule, Policy, lower_trace

UNIT_NAMES = ("nttu", "bconvu", "kmu", "autou", "dsu", "hbm")

# Live ciphertexts a key-switch needs resident (operands, the
# decomposed digits' accumulators, BSGS partial sums) — Fig. 3b's
# working-set convention.
WORKING_SET_CIPHERTEXTS = 4


def key_identities(schedule: OpSchedule, use_minks: bool) -> list[tuple]:
    """One identity per evaluation key the op needs.

    With Min-KS (ARK key reuse) the level is not part of the identity,
    so a rotation key fetched once serves every level.  Shared by the
    serial engine and the cluster scheduler so both charge identical
    evk traffic for the same schedule.
    """
    op = schedule.op
    level_part = () if use_minks else (op.level,)
    if op.kind == optrace.HMULT:
        return [(schedule.method, "mult", *level_part)]
    if op.kind == optrace.CONJ:
        return [(schedule.method, "conj", *level_part)]
    rotations = schedule.rotations or (op.rotation,)
    return [(schedule.method, "rot", r, *level_part)
            for r in rotations]


@dataclass
class SimulationResult:
    """Everything one simulated run produces."""

    name: str
    total_s: float = 0.0
    unit_busy_s: dict = field(default_factory=lambda: defaultdict(float))
    stage_s: dict = field(default_factory=lambda: defaultdict(float))
    kernel_modops: dict = field(default_factory=lambda: defaultdict(float))
    method_ops: dict = field(default_factory=lambda: defaultdict(int))
    key_bytes: float = 0.0
    plaintext_bytes: float = 0.0
    key_stall_s: float = 0.0
    num_ops: int = 0
    num_key_switches: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0

    @property
    def key_cache_hit_rate(self) -> float:
        lookups = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / lookups if lookups else 0.0

    def utilisation(self, total_override: float | None = None) -> dict:
        total = total_override or self.total_s
        if total == 0:
            return {u: 0.0 for u in UNIT_NAMES}
        return {u: self.unit_busy_s[u] / total for u in UNIT_NAMES}

    @property
    def hbm_bytes(self) -> float:
        return self.key_bytes + self.plaintext_bytes


class Engine:
    """Simulates traces on one accelerator design point."""

    def __init__(self, config: ChipConfig = FAST_CONFIG,
                 hybrid_params: CkksParams = SET_I,
                 klss_params: CkksParams = SET_II,
                 policy_mode: str = "aether"):
        self.config = config
        self.accelerator = Accelerator(config,
                                       hybrid_params.ring_degree)
        self.hybrid_params = hybrid_params
        self.klss_params = klss_params
        self.policy_mode = policy_mode
        # Aether decides on the paper's own metric: modular-operation
        # counts (Fig. 2), converted to delay at the chip's effective
        # sustained rate.  The engine's width-aware queueing then
        # executes whatever Aether chose.
        self.aether = Aether(
            hybrid_params, klss_params,
            key_storage_bytes=config.key_storage_bytes,
            hbm_bandwidth=config.hbm_bandwidth_bytes,
            modops_per_second=config.effective_modops_per_second(),
            use_ekg=config.use_ekg,
            use_minks=config.use_minks)
        self.word_bytes = cost.NARROW_WORD_BYTES

    # -- Aether integration -------------------------------------------------
    def _delay_model(self, ops: cost.KernelOps, method: str) -> float:
        """Serial per-kernel delay on this chip (Aether's Delay field)."""
        wide = method == "klss"
        acc = self.accelerator
        cycles = (acc.kernel_cycles("ntt", ops.ntt, wide)
                  + acc.kernel_cycles("bconv", ops.bconv, wide)
                  + acc.kernel_cycles("keymult", ops.keymult, wide)
                  + acc.kernel_cycles("elementwise", ops.elementwise, wide))
        return acc.cycles_to_seconds(cycles)

    def make_policy(self, trace) -> Policy:
        if self.policy_mode == "aether":
            config = self.aether.run(trace)
            if not self.config.supports_klss or \
                    not self.config.supports_hoisting:
                config = self._constrain_config(config)
            return Policy("aether", config)
        return Policy(self.policy_mode)

    def _constrain_config(self, config: AetherConfig) -> AetherConfig:
        """Clamp decisions to what the chip variant supports.

        Returns a fresh config with copied decisions: the input may be
        shared (cached, or reused across engine variants), and clamping
        it in place would corrupt later runs on chips that *do*
        support KLSS/hoisting.
        """
        constrained = AetherConfig()
        for unit_id, decision in config.decisions.items():
            method = decision.method
            hoisting = decision.hoisting
            if not self.config.supports_klss and method != HYBRID:
                method = HYBRID
            if not self.config.supports_hoisting:
                hoisting = 1
            if (method, hoisting) != (decision.method, decision.hoisting):
                decision = replace(decision, method=method,
                                   hoisting=hoisting)
            constrained.decisions[unit_id] = decision
        return constrained

    # -- core loop ----------------------------------------------------------
    def run(self, trace, name: str | None = None) -> SimulationResult:
        tracer = obs.get_tracer()
        with tracer.span("engine.run", trace=trace.name, ops=len(trace)):
            policy = self.make_policy(trace)
            schedules = lower_trace(trace, self.aether, policy)
            return self.run_schedules(schedules, name or trace.name)

    def run_schedules(self, schedules: list[OpSchedule],
                      name: str) -> SimulationResult:
        acc = self.accelerator
        cfg = self.config
        tracer = obs.get_tracer()
        tracing = tracer.enabled  # hoisted: one branch per event below
        result = SimulationResult(name=name)
        unit_free: dict[str, float] = {u: 0.0 for u in UNIT_NAMES}
        hbm_free = 0.0
        key_cache = KeyCache(cfg.key_storage_bytes)
        pipeline_ready = 0.0
        finish = 0.0
        for schedule in schedules:
            result.num_ops += 1
            op = schedule.op
            op_start = pipeline_ready
            # -- evaluation-key traffic --------------------------------
            key_arrival = 0.0
            if schedule.key_bytes > 0:
                result.num_key_switches += max(1, schedule.hoisting)
                result.method_ops[schedule.method] += \
                    max(1, schedule.hoisting)
                identities = self._key_identities(schedule)
                missing = [k for k in identities
                           if not key_cache.contains(k)]
                result.key_cache_hits += len(identities) - len(missing)
                result.key_cache_misses += len(missing)
                if missing:
                    # Hemera's batch-wise prefetcher keeps the HBM
                    # channel as a work queue: the next key transfer
                    # starts the moment the channel frees up.
                    bytes_needed = schedule.key_bytes_per_key * len(missing)
                    duration = bytes_needed / cfg.hbm_bandwidth_bytes
                    hbm_free = hbm_free + duration
                    key_arrival = hbm_free
                    result.key_bytes += bytes_needed
                    result.unit_busy_s["hbm"] += duration
                    if tracing:
                        tracer.event("key-fetch", hbm_free - duration,
                                     duration, track="hbm", op=op.kind,
                                     keys=len(missing))
                    for k in missing:
                        key_cache.insert(k, schedule.key_bytes_per_key)
            # -- ciphertext working-set spills ---------------------------
            # When the data region (on-chip memory minus the key
            # reserve) cannot hold the level's working set, operands
            # spill to HBM and must stream back before the op's first
            # stage can start.
            operand_arrival = 0.0
            if schedule.key_bytes > 0:
                data_region = cfg.onchip_memory_bytes - \
                    cfg.key_storage_bytes
                ws = WORKING_SET_CIPHERTEXTS * cost.ciphertext_bytes(
                    self.hybrid_params, op.level)
                spill = max(0.0, ws - data_region)
                if spill > 0:
                    duration = spill / cfg.hbm_bandwidth_bytes
                    hbm_free = hbm_free + duration
                    operand_arrival = hbm_free
                    result.plaintext_bytes += spill
                    result.unit_busy_s["hbm"] += duration
                    if tracing:
                        tracer.event("spill-refill", hbm_free - duration,
                                     duration, track="hbm", op=op.kind)
            # -- plaintext streaming for PMult --------------------------
            if op.kind == optrace.PMULT:
                # OF-Limb: only the single stored limb streams in.
                pt_bytes = self.hybrid_params.ring_degree * self.word_bytes
                duration = pt_bytes / cfg.hbm_bandwidth_bytes
                hbm_free = hbm_free + duration
                key_arrival = max(key_arrival, hbm_free)
                result.plaintext_bytes += pt_bytes
                result.unit_busy_s["hbm"] += duration
                if tracing:
                    tracer.event("pt-stream", hbm_free - duration,
                                 duration, track="hbm", op=op.kind)
            # -- staged execution ---------------------------------------
            stage_ready = max(op_start, operand_arrival)
            first_stage_end = op_start
            for stage_idx, tasks in enumerate(schedule.stages):
                if stage_idx == schedule.keymult_stage and key_arrival:
                    if key_arrival > stage_ready:
                        stall = key_arrival - stage_ready
                        result.key_stall_s += stall
                        if tracing:
                            tracer.observe("engine.key_stall_s", stall)
                        stage_ready = key_arrival
                stage_end = stage_ready
                for task in tasks:
                    unit = KERNEL_UNITS.get(task.kernel, task.kernel)
                    if task.kernel == KERNEL_DSU:
                        unit = "dsu"
                        cycles = acc.aem.dsu.cycles_for_rescale(
                            1, int(task.modops))  # elements given directly
                    elif task.kernel == "automorph":
                        cycles = task.modops / acc.unit_throughput(
                            "automorph").at(task.wide)
                    else:
                        cycles = acc.kernel_cycles(task.kernel,
                                                   task.modops, task.wide)
                    seconds = acc.cycles_to_seconds(cycles)
                    begin = max(stage_ready, unit_free[unit])
                    end = begin + seconds
                    unit_free[unit] = end
                    result.unit_busy_s[unit] += seconds
                    result.kernel_modops[task.kernel] += task.modops
                    if tracing:
                        tracer.event(task.kernel, begin, seconds,
                                     track=unit, op=op.kind,
                                     stage=task.label or
                                     schedule.stage_label or "main",
                                     wide=task.wide, modops=task.modops)
                    stage_end = max(stage_end, end)
                if stage_idx == 0:
                    first_stage_end = stage_end
                stage_ready = stage_end
            op_end = stage_ready
            label = schedule.stage_label or "main"
            result.stage_s[label] += op_end - op_start
            if tracing:
                tracer.event(op.kind, op_start, op_end - op_start,
                             track="op", stage=label,
                             method=schedule.method, level=op.level,
                             hoisting=schedule.hoisting)
            pipeline_ready = first_stage_end
            finish = max(finish, op_end)
        result.total_s = finish
        if tracing:
            tracer.count("engine.runs")
            tracer.count("engine.ops", result.num_ops)
            tracer.count("engine.key_switches", result.num_key_switches)
            tracer.count("engine.key_cache_hits", result.key_cache_hits)
            tracer.count("engine.key_cache_misses",
                         result.key_cache_misses)
            tracer.observe("engine.sim_total_s", result.total_s)
        return result

    def _key_identities(self, schedule: OpSchedule) -> list[tuple]:
        return key_identities(schedule, self.config.use_minks)
