"""Baseline accelerators: configurations and published references.

Two kinds of baseline data coexist, exactly as in the paper:

* **Published numbers** (Tables 4/5/6 rows for BTS, CraterLake, ARK,
  F1 and the SHARP family) are quoted constants — the paper itself
  compares against the numbers those papers report, and so do we.
* **Simulatable configurations**: the SHARP-class points are close
  enough to FAST's architecture (same kernel set, 36-bit ALUs, no
  TBM/KLSS) that we also *run* them through our own engine for the
  ablation-style comparisons, using :func:`sharp_like_config`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.config import ChipConfig, FAST_CONFIG


@dataclass(frozen=True)
class PublishedAccelerator:
    """One prior-work row of Tables 4/5/6."""

    name: str
    word_bits: int
    lanes: int
    onchip_mb: float
    area_mm2: float
    bootstrap_ms: float | None = None
    helr256_ms: float | None = None
    helr1024_ms: float | None = None
    resnet20_ms: float | None = None
    t_mult_ns: float | None = None
    slots: int = 1 << 15


# Table 4 + Table 5 + Table 6 reference rows (quoted from the paper).
BTS = PublishedAccelerator(
    name="BTS", word_bits=64, lanes=2048, onchip_mb=512, area_mm2=373.6,
    bootstrap_ms=22.88, helr1024_ms=28.4, resnet20_ms=1910.0,
    t_mult_ns=45.7)
CRATERLAKE = PublishedAccelerator(
    name="CLake", word_bits=28, lanes=2048, onchip_mb=282, area_mm2=222.7,
    bootstrap_ms=6.32, helr256_ms=3.81, resnet20_ms=321.0, t_mult_ns=17.6)
ARK = PublishedAccelerator(
    name="ARK", word_bits=64, lanes=1024, onchip_mb=588, area_mm2=418.3,
    bootstrap_ms=3.52, helr1024_ms=7.42, resnet20_ms=125.0, t_mult_ns=14.3)
SHARP = PublishedAccelerator(
    name="SHARP", word_bits=36, lanes=1024, onchip_mb=198, area_mm2=178.8,
    bootstrap_ms=3.12, helr256_ms=1.82, helr1024_ms=2.53, resnet20_ms=99.0,
    t_mult_ns=12.8)
SHARP_LM = PublishedAccelerator(
    name="SHARP_LM", word_bits=36, lanes=1024, onchip_mb=281,
    area_mm2=215.0, bootstrap_ms=2.94, helr256_ms=1.72, helr1024_ms=2.44,
    resnet20_ms=93.88)
SHARP_8C = PublishedAccelerator(
    name="SHARP_8C", word_bits=36, lanes=2048, onchip_mb=198,
    area_mm2=250.0, bootstrap_ms=2.16, helr256_ms=1.33, helr1024_ms=1.89,
    resnet20_ms=72.34)
SHARP_LM_8C = PublishedAccelerator(
    name="SHARP_LM+8C", word_bits=36, lanes=2048, onchip_mb=281,
    area_mm2=290.0, bootstrap_ms=2.03, helr256_ms=1.26, helr1024_ms=1.83,
    resnet20_ms=68.59)
F1 = PublishedAccelerator(
    name="F1", word_bits=32, lanes=0, onchip_mb=64, area_mm2=151.4,
    t_mult_ns=470.0, slots=1)
SHARP_60 = PublishedAccelerator(
    name="SHARP_60", word_bits=60, lanes=1024, onchip_mb=198,
    area_mm2=225.0, t_mult_ns=11.7)

ALL_PUBLISHED = (BTS, CRATERLAKE, ARK, SHARP, SHARP_LM, SHARP_8C,
                 SHARP_LM_8C)
TABLE6_PUBLISHED = (F1, BTS, ARK, CRATERLAKE, SHARP, SHARP_60)

PAPER_FAST = PublishedAccelerator(
    name="FAST", word_bits=60, lanes=1024, onchip_mb=281, area_mm2=283.75,
    bootstrap_ms=1.38, helr256_ms=1.12, helr1024_ms=1.33,
    resnet20_ms=60.49, t_mult_ns=5.4)


def sharp_like_config(large_memory: bool = False,
                      eight_clusters: bool = False) -> ChipConfig:
    """A SHARP-family design point runnable on our engine.

    36-bit fixed ALUs (no TBM, no KLSS path), hybrid-only with no
    hoisting support, SHARP's memory capacities.
    """
    name = "SHARP"
    if large_memory:
        name += "-LM"
    if eight_clusters:
        name += "-8C"
    memory = (281 if large_memory else 198) * 2**20
    return FAST_CONFIG.with_(
        name=name,
        clusters=8 if eight_clusters else 4,
        has_tbm=False,
        supports_klss=False,
        supports_hoisting=large_memory,  # LM variants add hoisting
        wide_bits=36,
        onchip_memory_bytes=memory,
        key_storage_bytes=0.64 * memory)
