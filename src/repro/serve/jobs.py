"""Job vocabulary of the serving layer: kinds, shapes, requests.

A *job kind* names the client-visible operation (encode / encrypt /
eval / decrypt); a *shape* names the op trace the kind executes on
the functional substrate.  Two requests are batchable exactly when
they agree on ``(kind, shape)`` — same params, same level schedule,
same op sequence — which is what :class:`repro.serve.batcher.BatchKey`
captures.

Per-request data seeds reuse the stream-mix scheme of
:class:`repro.sched.executor.FunctionalExecutor`
(``seed ^ request_id * MIX`` with the golden-ratio odd constant), so
concurrent encrypts are reproducible and non-colliding: request ``r``
always produces the same bits, and distinct requests never share a
generator stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.optrace import OpTrace, TraceBuilder
from repro.sched.executor import _MIX

# -- job kinds -------------------------------------------------------------

ENCODE = "encode"
ENCRYPT = "encrypt"
EVAL = "eval"
DECRYPT = "decrypt"
JOB_KINDS = (ENCODE, ENCRYPT, EVAL, DECRYPT)

_SEED_MASK = 0xFFFFFFFFFFFFFFFF


def request_seed(base_seed: int, request_id: int) -> int:
    """Request ``r``'s data seed: the executor's stream-mix scheme
    keyed by the request id (request 0 keeps the base seed)."""
    return (base_seed ^ (request_id * _MIX)) & _SEED_MASK


# -- shapes ----------------------------------------------------------------

_SHAPE_LEVEL = 20  # nominal working level of the mini client shapes


def _encode_mini() -> OpTrace:
    tb = TraceBuilder("encode-mini")
    ct = tb.fresh_ct()
    tb.pmult(ct, _SHAPE_LEVEL, stage="Encode")
    tb.rescale(ct, _SHAPE_LEVEL, stage="Encode")
    return tb.build()


def _encrypt_mini() -> OpTrace:
    tb = TraceBuilder("encrypt-mini")
    ct = tb.fresh_ct()
    tb.pmult(ct, _SHAPE_LEVEL, stage="Encrypt")
    tb.pmult(ct, _SHAPE_LEVEL, stage="Encrypt")
    tb.rescale(ct, _SHAPE_LEVEL, stage="Encrypt")
    return tb.build()


def _decrypt_mini() -> OpTrace:
    tb = TraceBuilder("decrypt-mini")
    ct = tb.fresh_ct()
    tb.rescale(ct, _SHAPE_LEVEL, stage="Decrypt")
    tb.pmult(ct, _SHAPE_LEVEL, stage="Decrypt")
    return tb.build()


def _helr_mini_step() -> OpTrace:
    from repro.workloads.helr import helr_iteration
    return helr_iteration()


# Shape name -> trace factory.  ``helr-mini-step`` is the HELR
# training-iteration step (36 ops, 4 ciphertext chains, both
# key-switch flavours) — the serving acceptance workload.
SHAPES = {
    "encode-mini": _encode_mini,
    "encrypt-mini": _encrypt_mini,
    "decrypt-mini": _decrypt_mini,
    "helr-mini-step": _helr_mini_step,
}

_DEFAULT_SHAPES = {
    ENCODE: "encode-mini",
    ENCRYPT: "encrypt-mini",
    DECRYPT: "decrypt-mini",
    EVAL: "helr-mini-step",
}


def default_shape(kind: str) -> str:
    if kind not in _DEFAULT_SHAPES:
        raise ValueError(f"unknown job kind {kind!r}; "
                         f"expected one of {JOB_KINDS}")
    return _DEFAULT_SHAPES[kind]


@lru_cache(maxsize=None)
def get_shape(name: str) -> OpTrace:
    """The (immutable, shared) op trace of one shape name."""
    if name not in SHAPES:
        raise ValueError(f"unknown shape {name!r}; "
                         f"expected one of {sorted(SHAPES)}")
    return SHAPES[name]()


# -- requests and responses ------------------------------------------------

@dataclass
class ServeRequest:
    """One admitted job: who asked for what, and when."""

    tenant: str
    kind: str
    shape: str
    request_id: int
    submitted_s: float = 0.0
    payload: dict = field(default_factory=dict)


@dataclass
class ServeResponse:
    """What the server returns for one request."""

    request_id: int
    tenant: str
    kind: str
    shape: str
    digest: str = ""
    batch_size: int = 0
    latency_ms: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "shape": self.shape,
            "digest": self.digest,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_ms,
            "error": self.error,
        }
