"""Tenant management: one shared evk pool, per-tenant quotas.

Tenants share a single :class:`~repro.core.hemera.EvkPool` (the HBM
address book) and one physical on-chip key store
(:class:`~repro.hw.memory.PartitionedKeyCache`): a key any tenant
made resident serves every tenant's lookups — the economy of serving
many tenants on one accelerator — while *capacity* is charged to the
inserting tenant against its quota.

:class:`TenantKeyManager` is the serving-side policy on top:

* ``acquire`` resolves a batch's evk working set for one tenant,
  raising :class:`TenantQuotaError` *before any mutation* when the
  set alone exceeds the tenant's quota, pinning every key it touches
  for the duration of the batch (in-flight keys are never evicted);
  keys that cannot be made resident without evicting pinned entries
  are *streamed* (fetched but not cached) instead of forced in;
* ``release`` drops the batch's pins;
* every tenant keeps its own :class:`TenantStats` tally (requests,
  evk hits/misses, bytes fetched) mirrored into a global tally — the
  per-tenant counters provably sum to the global ones, which the
  tenant test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.hemera import EvkPool
from repro.hw.memory import PartitionedKeyCache


class TenantQuotaError(RuntimeError):
    """A tenant's evk working set exceeds its key quota."""


@dataclass
class TenantStats:
    """One tenant's running counters (also used for the global sum)."""

    requests: int = 0
    evk_hits: int = 0
    evk_misses: int = 0
    bytes_fetched: float = 0.0
    streamed_keys: int = 0
    quota_bytes: float = 0.0

    @property
    def evk_hit_rate(self) -> float:
        lookups = self.evk_hits + self.evk_misses
        return self.evk_hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "evk_hits": self.evk_hits,
            "evk_misses": self.evk_misses,
            "evk_hit_rate": self.evk_hit_rate,
            "bytes_fetched": self.bytes_fetched,
            "streamed_keys": self.streamed_keys,
            "quota_bytes": self.quota_bytes,
        }


@dataclass
class KeyLease:
    """One batch's hold on its tenant's working set."""

    tenant: str
    pinned: tuple = ()
    hits: int = 0
    misses: int = 0
    bytes_fetched: float = 0.0
    released: bool = False


class TenantKeyManager:
    """Shared-pool key admission with per-tenant quotas/counters."""

    def __init__(self, pool: EvkPool, cache: PartitionedKeyCache):
        self.pool = pool
        self.cache = cache
        self._stats: dict[str, TenantStats] = {}
        self._global = TenantStats()

    # -- registration ---------------------------------------------------
    def register(self, tenant: str,
                 quota_bytes: float | None = None) -> TenantStats:
        stats = self._stats.get(tenant)
        if stats is None:
            stats = self._stats[tenant] = TenantStats(
                quota_bytes=self.cache.quota(tenant))
        if quota_bytes is not None:
            self.cache.set_quota(tenant, quota_bytes)
            stats.quota_bytes = float(quota_bytes)
        return stats

    def tenants(self) -> list[str]:
        return sorted(self._stats)

    def count_request(self, tenant: str) -> None:
        self.register(tenant).requests += 1
        self._global.requests += 1

    # -- working-set admission ------------------------------------------
    def acquire(self, tenant: str, key_ids) -> KeyLease:
        """Pin one tenant's working set for a batch in flight.

        Raises :class:`TenantQuotaError` (and changes nothing) when
        the working set's total bytes exceed the tenant's quota.
        """
        stats = self.register(tenant)
        records = [self.pool.lookup(key) for key in key_ids]
        total = sum(record.size_bytes for record in records)
        quota = self.cache.quota(tenant)
        if total > quota:
            raise TenantQuotaError(
                f"tenant {tenant!r}: evk working set {total:.0f} B "
                f"exceeds the {quota:.0f} B key quota")
        lease = KeyLease(tenant=tenant)
        pinned = []
        for record in records:
            key = record.key_id
            if self.cache.resident(key):
                self.cache.touch(key)
                self.cache.pin(key)
                pinned.append(key)
                lease.hits += 1
                continue
            lease.misses += 1
            lease.bytes_fetched += record.size_bytes
            if self.cache.insert(key, record.size_bytes, tenant):
                self.cache.pin(key)
                pinned.append(key)
            else:
                # Everything evictable is pinned by in-flight batches:
                # the key streams through without residency.
                stats.streamed_keys += 1
                self._global.streamed_keys += 1
        lease.pinned = tuple(pinned)
        stats.evk_hits += lease.hits
        stats.evk_misses += lease.misses
        stats.bytes_fetched += lease.bytes_fetched
        self._global.evk_hits += lease.hits
        self._global.evk_misses += lease.misses
        self._global.bytes_fetched += lease.bytes_fetched
        tracer = obs.get_tracer()
        if tracer.enabled:
            # Serving-side continuation of Hemera's prefetch
            # accounting: an acquire hit means the batch's keys were
            # already on chip, a miss means an HBM fetch — the same
            # counters the throughput scheduler emits, so dashboards
            # aggregate offline and served key traffic in one place.
            tracer.count("hemera.prefetch.hit", lease.hits)
            tracer.count("hemera.prefetch.miss", lease.misses)
            tracer.count(f"serve.tenant.{tenant}.evk_hits", lease.hits)
            tracer.count(f"serve.tenant.{tenant}.evk_misses",
                         lease.misses)
        return lease

    def release(self, lease: KeyLease) -> None:
        """Drop a retired batch's pins (idempotent per lease)."""
        if lease.released:
            return
        lease.released = True
        for key in lease.pinned:
            self.cache.unpin(key)

    # -- reporting ------------------------------------------------------
    def stats(self, tenant: str) -> TenantStats:
        return self.register(tenant)

    def totals(self) -> TenantStats:
        return self._global

    @property
    def pin_violations(self) -> int:
        return self.cache.pin_violations

    def eviction_report(self) -> dict:
        return {
            "total": self.cache.evictions,
            "by_owner": dict(self.cache.evictions_by_owner),
            "dropped_inserts": self.cache.dropped_inserts,
        }

    def to_dict(self) -> dict:
        return {
            "tenants": {name: self._stats[name].to_dict()
                        for name in self.tenants()},
            "totals": self._global.to_dict(),
            "evictions": self.eviction_report(),
            "pin_violations": self.pin_violations,
        }
