"""``repro.serve`` — the async multi-tenant FHE serving layer.

The first layer that turns the repo from a trace replayer into a
server: an asyncio front-end (:mod:`repro.serve.server`) accepts
encode/encrypt/eval/decrypt jobs from named tenants (in-process async
API plus a JSON-over-TCP endpoint), a batching queue
(:mod:`repro.serve.batcher`) groups compatible requests within a
configurable admission window and stacks them into one
batch-vectorised execution (:mod:`repro.serve.engine` — the
whole-batch counterpart of the functional executor, built on the
batched NTT of :mod:`repro.ckks.ntt`), a tenant manager
(:mod:`repro.serve.tenants`) shares the Hemera evk pool across
tenants under per-tenant key quotas, and a load generator
(:mod:`repro.serve.loadgen`) drives open- and closed-loop arrivals
and reports requests/sec, p50/p99 latency, batch occupancy and queue
depth — the numbers behind the BENCH ``serving`` section.

Batching is *bit-transparent*: a request's response digest depends
only on its shape and its request-id-derived seed, never on which
batch it landed in, so every served response is bit-exact against a
serial per-request oracle run.
"""

from repro.serve.batcher import (BatchKey, BatchQueue, evk_aware_order,
                                 evk_working_set)
from repro.serve.engine import RowBatchNtt, ServeCheck, ServeExecutor
from repro.serve.jobs import (DECRYPT, ENCODE, ENCRYPT, EVAL, JOB_KINDS,
                              SHAPES, ServeRequest, ServeResponse,
                              default_shape, get_shape, request_seed)
from repro.serve.loadgen import LoadReport, run_loadgen
from repro.serve.server import FheServer, ServerConfig
from repro.serve.tenants import (TenantKeyManager, TenantQuotaError,
                                 TenantStats)

__all__ = [
    "BatchKey", "BatchQueue", "DECRYPT", "ENCODE", "ENCRYPT", "EVAL",
    "FheServer", "JOB_KINDS", "LoadReport", "RowBatchNtt", "SHAPES",
    "ServeCheck", "ServeExecutor", "ServeRequest", "ServeResponse",
    "ServerConfig", "TenantKeyManager", "TenantQuotaError",
    "TenantStats", "default_shape", "evk_aware_order",
    "evk_working_set", "get_shape", "request_seed", "run_loadgen",
]
