"""Admission batching and evk-aware stream ordering.

:class:`BatchQueue` is the pure bookkeeping behind the server's
admission window: requests group by :class:`BatchKey` — ``(kind,
shape)``, i.e. identical params, level schedule and op sequence, the
exact condition under which the stream machinery can stack them into
one batch-vectorised execution.  The queue holds no clock and no
timers; the asyncio server owns both and calls ``take`` when a
group's window expires or it reaches ``max_batch``.

:func:`evk_aware_order` is the cross-stream admission policy for
*mixed* queues headed to the throughput scheduler: streams are
grouped by evaluation-key working set (:func:`evk_working_set`) and
emitted so that same-working-set streams land on the same cluster
under the scheduler's ``stream % clusters`` affinity.  Key-disjoint
workloads then stop thrashing each other's on-chip key slots, which
shows up directly as fewer ``hemera.prefetch.miss`` events.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.ckks.keys import HYBRID
from repro.core import optrace
from repro.core.hemera import KeyId
from repro.core.optrace import OpTrace


# -- batching queue --------------------------------------------------------

@dataclass(frozen=True)
class BatchKey:
    """Batchability class of a request: same kind + same shape."""

    kind: str
    shape: str


@dataclass
class PendingBatch:
    """One open admission group waiting on its window."""

    key: BatchKey
    requests: list = field(default_factory=list)
    opened_s: float = 0.0


class BatchQueue:
    """Groups compatible requests until the server flushes them."""

    def __init__(self, max_batch: int = 16):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = max_batch
        self._pending: "OrderedDict[BatchKey, PendingBatch]" = OrderedDict()

    def add(self, request, now_s: float = 0.0):
        """Enqueue one request.

        Returns ``(key, opened, full)``: ``opened`` is True when this
        request opened a new admission group (the caller should arm
        its window timer), ``full`` when the group just reached
        ``max_batch`` (the caller should flush it immediately).
        """
        key = BatchKey(request.kind, request.shape)
        batch = self._pending.get(key)
        opened = batch is None
        if opened:
            batch = self._pending[key] = PendingBatch(key=key,
                                                      opened_s=now_s)
        batch.requests.append(request)
        return key, opened, len(batch.requests) >= self.max_batch

    def take(self, key: BatchKey) -> list:
        """Remove and return one group's requests (empty if gone)."""
        batch = self._pending.pop(key, None)
        return batch.requests if batch is not None else []

    def depth(self) -> int:
        """Requests currently queued across all open groups."""
        return sum(len(b.requests) for b in self._pending.values())

    def pending_keys(self) -> list[BatchKey]:
        return list(self._pending)

    def __len__(self) -> int:
        return len(self._pending)


# -- evk-aware admission ---------------------------------------------------

def evk_working_set(trace: OpTrace,
                    method: str = HYBRID) -> frozenset[KeyId]:
    """The evaluation keys a trace's key-switch ops will touch.

    Mirrors Hemera's decision->keys mapping: HMult uses the level's
    multiply key, rotations and conjugations use per-rotation keys.
    """
    keys = set()
    for op in trace:
        if not op.needs_key_switch:
            continue
        if op.kind == optrace.HMULT:
            keys.add(KeyId(method, op.level, "mult"))
        else:
            keys.add(KeyId(method, op.level, "rot", op.rotation))
    return frozenset(keys)


def evk_aware_order(items, clusters: int = 1) -> list[int]:
    """Order queued streams so shared-key streams run back to back.

    ``items`` is a sequence of op traces (or precomputed working-set
    frozensets).  Streams are bucketed by working set; with the
    default ``clusters=1`` buckets are emitted contiguously, largest
    first — the policy for a shared on-chip key store, where temporal
    adjacency is what turns the second same-set stream's fetches into
    hits.  With ``clusters>1`` the buckets are assigned to clusters
    (largest-first onto the lightest) and positions emitted
    round-robin, so that emission position ``p`` — which the
    throughput scheduler maps to cluster ``p % clusters`` — lands
    each stream on its bucket's home cluster.  Returns a permutation
    of ``range(len(items))``.
    """
    if clusters < 1:
        raise ValueError("clusters must be >= 1")
    sets = [item if isinstance(item, frozenset) else evk_working_set(item)
            for item in items]
    buckets: dict[frozenset, deque] = {}
    for index, working in enumerate(sets):
        buckets.setdefault(working, deque()).append(index)
    queues = [deque() for _ in range(clusters)]
    for bucket in sorted(buckets.values(), key=len, reverse=True):
        min(queues, key=len).extend(bucket)
    order = []
    for position in range(len(sets)):
        queue = queues[position % clusters]
        if not queue:
            # A cluster drained early (counts not divisible): steal
            # from the longest queue rather than stall the slot.
            queue = max(queues, key=len)
        order.append(queue.popleft())
    return order
