"""Batch-vectorised functional compute substrate for serving.

The serving layer's counterpart of
:class:`repro.sched.executor.FunctionalExecutor`: every request's
synthetic ciphertexts are ``limbs x N`` residue matrices over
NTT-friendly primes, and every trace op is a deterministic,
order-sensitive transform (affine map per limb, applied in the NTT
domain for key-switch ops, plus the negacyclic shift for rotations).
The difference is the execution geometry: a batch of B admitted
requests runs as *stacked* ``(B, N)`` row arrays per limb, one
whole-batch numpy pass per op instead of B interpreted passes — the
software shape of the accelerator amortising its pipelines across
independent requests.

Cross-request batching is **bit-transparent** by construction:

* per-op affine parameters derive from the request seed through a
  vectorised SplitMix64 chain — the serial oracle and the stacked
  path evaluate the *same function* of ``(seed, op index, limb)``;
* the stacked NTT (:class:`RowBatchNtt`) runs the exact lazy-Shoup
  butterfly formulas of :class:`repro.ckks.ntt.BatchNttPlan` with the
  batch axis over requests instead of limbs, bit-identical to the
  scalar :class:`repro.ckks.ntt.NttPlan` per row;
* all residues stay canonical (``[0, q)``), so mathematically equal
  intermediate values are bit-identical regardless of kernel path.

Hence a request's response digest depends only on its shape and its
request-id-derived seed, never on which batch it landed in — the
property the serving CI gate asserts against a serial per-request
oracle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np
from multiprocessing import shared_memory

import repro.backend as backend_mod
from repro import obs
from repro.ckks import modmath, primes
from repro.core.optrace import OpTrace
from repro.sched.graph import DataflowGraph

from repro.serve.jobs import request_seed

_MASK = 0xFFFFFFFFFFFFFFFF
# SplitMix64 constants (Steele et al.): the finaliser is a bijection
# on 64-bit words, so distinct (seed, op, limb) tuples keep distinct
# parameter streams.
_C1 = np.uint64(0x9E3779B97F4A7C15)
_C2 = np.uint64(0xBF58476D1CE4E5B9)
_C3 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finaliser over a uint64 array."""
    z = x + _C1
    z = (z ^ (z >> _SHIFT30)) * _C2
    z = (z ^ (z >> _SHIFT27)) * _C3
    return z ^ (z >> _SHIFT31)


def _mix_key(*parts: int) -> np.uint64:
    """One uint64 tweak from a few small integers (order-sensitive)."""
    acc = 0
    for part in parts:
        acc = (acc * 0x100000001B3 + (int(part) & _MASK) + 1) & _MASK
    return np.uint64(acc)


def op_params(seeds: np.ndarray, index: int, limb: int, q: int,
              counter: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-request affine parameters of op ``index`` on limb ``limb``.

    ``seeds`` is the ``(B,)`` uint64 request-seed vector; returns
    ``(scale (B,), offsets (B, N))`` with scales in ``[1, q-1]``
    (invertible) and offsets canonical in ``[0, q)``.  The whole
    derivation is uint64 wraparound arithmetic — identical bits for a
    batch row and for a 1-request serial evaluation.
    """
    base = splitmix64(seeds ^ _mix_key(index, limb))
    scale = base % np.uint64(q - 1) + np.uint64(1)
    offsets = splitmix64(base[:, None] + counter[None, :]) % np.uint64(q)
    return scale, offsets


def fresh_params(seeds: np.ndarray, ct_id: int, limb: int, q: int,
                 counter: np.ndarray) -> np.ndarray:
    """Per-request initial residues of ciphertext ``ct_id``."""
    base = splitmix64(seeds ^ _mix_key(0x5EED, ct_id, limb))
    return splitmix64(base[:, None] + counter[None, :]) % np.uint64(q)


class RowBatchNtt:
    """Negacyclic NTT over ``(B, N)`` rows sharing one modulus.

    :class:`repro.ckks.ntt.BatchNttPlan` batches the *limb* axis of
    one RNS basis; serving batches the *request* axis of one limb.
    Because every row shares the same modulus, the butterflies run
    with a scalar ``q`` and the plan's own ``(N,)`` twiddle tables —
    no per-row table stacking, no Python loop over rows.  The rows
    ride the same fused radix-4 lazy-reduction engine
    (:class:`repro.ckks.ntt.FusedNttEngine`) as ``BatchNttPlan``, so
    results are bit-identical to running the scalar
    :class:`repro.ckks.ntt.NttPlan` on each row — which is exactly
    what the serial oracle does, on radix-2 plans, so the fused tier
    never vets itself.

    Moduli beyond the 62-bit uint64 datapath (the exact ``object``
    path) fall back to a per-row scalar-plan loop.
    """

    def __init__(self, ring_degree: int, modulus: int, backend=None):
        from repro.ckks.ntt import FusedNttEngine
        from repro.ckks.rns import get_plan

        self.n = int(ring_degree)
        self.modulus = int(modulus)
        self._kernel = modmath.get_kernel(self.modulus, backend=backend)
        self.backend = self._kernel.backend
        self._plan = get_plan(self.n, self.modulus, backend=backend)
        self.vectorised = self._kernel.path != modmath.OBJECT
        if not self.vectorised:
            self._engine = None
            return
        plan = self._plan
        kernel = self._kernel
        be = self.backend
        # The scalar plan's tables are already resident on the same
        # backend; only the dtype view changes here (narrow kernels
        # keep int64 residues, the butterflies want uint64).
        self._psi = be.asarray(plan._psi_rev, dtype=np.uint64)
        self._psi_inv = be.asarray(plan._psi_inv_rev, dtype=np.uint64)
        if kernel.path == modmath.WIDE:
            self._psi_shoup = plan._psi_rev_shoup
            self._psi_inv_shoup = plan._psi_inv_rev_shoup
            w, ws = plan._n_inv_pair
        else:
            # shoup_table returns a host array: one upload, at build.
            self._psi_shoup = be.from_host(
                kernel.shoup_table(plan._psi_rev))
            self._psi_inv_shoup = be.from_host(
                kernel.shoup_table(plan._psi_inv_rev))
            w, ws = modmath.shoup_pair(plan._n_inv, self.modulus)
        self._n_inv_w = np.uint64(w)
        self._n_inv_ws = np.uint64(ws)
        self._q = np.uint64(self.modulus)
        self._engine = FusedNttEngine(
            self.n, self.modulus, self._psi, self._psi_shoup,
            self._psi_inv, self._psi_inv_shoup, (w, ws), be,
            backend_mod.WorkspaceArena(be, "ntt"), per_row=False)

    def _rows(self, rows: np.ndarray) -> np.ndarray:
        a = self.backend.asarray(rows, dtype=np.uint64, copy=True)
        if a.ndim != 2 or a.shape[1] != self.n:
            raise ValueError("rows must be (B, N) for this plan")
        return a

    def _loop(self, rows: np.ndarray, inverse: bool) -> np.ndarray:
        transform = self._plan.inverse if inverse else self._plan.forward
        return np.stack([np.asarray(transform(row), dtype=np.uint64)
                         for row in np.asarray(rows)])

    def forward(self, rows: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation form, every row at once."""
        if not self.vectorised:
            return self._loop(rows, inverse=False)
        a = self._rows(rows)
        self._engine.forward(a)
        return a

    def inverse(self, rows: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient form, every row at once."""
        if not self.vectorised:
            return self._loop(rows, inverse=True)
        a = self._rows(rows)
        self._engine.inverse(a)
        return a


# -- stacked op application ------------------------------------------------

def _mulmod(kernel, rows: np.ndarray, scale: np.ndarray) -> np.ndarray:
    """Canonical ``rows * scale mod q`` with a per-request scalar
    column: the limb kernel's exact elementwise multiply (128-bit
    Barrett on the wide path), results back in uint64."""
    out = kernel.mul(kernel.asresidues(rows, copy=False),
                     kernel.asresidues(scale[:, None], copy=False))
    return kernel.backend.asarray(out, dtype=np.uint64)


def _apply_batch_op(ct3: np.ndarray, index: int, rotation: int,
                    needs_ks: bool, seeds: np.ndarray, ctx: dict) -> None:
    """Apply op ``index``'s transform to one ciphertext's ``(B,
    limbs, N)`` stack in place — all requests at once."""
    n = ctx["n"]
    counter = ctx["counter"]
    for j, (q, kernel, row_ntt) in enumerate(zip(ctx["moduli"],
                                                 ctx["kernels"],
                                                 ctx["row_ntts"])):
        scale, offsets = op_params(seeds, index, j, q, counter)
        rows = ct3[:, j, :]
        if needs_ks:
            evals = row_ntt.forward(rows)
            evals = _addmod(_mulmod(kernel, evals, scale), offsets, q)
            rows = row_ntt.inverse(evals)
        else:
            rows = _addmod(_mulmod(kernel, rows, scale), offsets, q)
        r = rotation % n if rotation else 0
        if r:
            rows = np.roll(rows, r, axis=1)
            rows[:, :r] = _negmod(rows[:, :r], q)
        ct3[:, j, :] = rows


def _addmod(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    s = a + b
    qq = np.uint64(q)
    return np.where(s >= qq, s - qq, s)


def _negmod(a: np.ndarray, q: int) -> np.ndarray:
    qq = np.uint64(q)
    return np.where(a == 0, a, qq - a)


@lru_cache(maxsize=8)
def _batch_context(moduli: tuple[int, ...], ring_degree: int,
                   backend_name: str = "numpy") -> dict:
    """Per-process stacked-execution context (workers build lazily).

    Keyed by backend *name* (a plain string) so the cache key stays
    picklable and workers rebuilding the context in a fork land on
    the same entry.  The pooled shared-memory path always passes
    ``"numpy"`` — the arena is host memory by construction.
    """
    be = backend_mod.get_backend(backend_name)
    return {
        "moduli": moduli,
        "n": ring_degree,
        "backend": be,
        "counter": be.from_host(np.arange(1, ring_degree + 1,
                                          dtype=np.uint64) * _C3),
        "kernels": [modmath.get_kernel(q, backend=be) for q in moduli],
        "row_ntts": [RowBatchNtt(ring_degree, q, backend=be)
                     for q in moduli],
    }


def _run_batch_node(shm_name: str, shape: tuple, slot: int,
                    items: list[tuple], seeds: list[int],
                    moduli: tuple[int, ...], ring_degree: int) -> int:
    """Pool task: apply one node's ops to one ciphertext's batch
    stack inside the shared arena (self-contained: rebuilds its
    context in the worker on first use)."""
    ctx = _batch_context(tuple(moduli), int(ring_degree))
    seeds_arr = np.array(seeds, dtype=np.uint64)
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        arena = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        ct3 = arena[slot]
        for index, rotation, needs_ks in items:
            _apply_batch_op(ct3, index, rotation, needs_ks,
                            seeds_arr, ctx)
    finally:
        shm.close()
    return slot


@dataclass
class ServeCheck:
    """Stacked-batch vs per-request-serial bit-exactness result."""

    bit_exact: bool
    batch: int
    num_ops: int
    num_cts: int
    parallel: bool = False
    mismatched: list = field(default_factory=list)


class ServeExecutor:
    """Executes one shape over a batch of request seeds, stacked.

    ``run_serial`` is the per-request oracle (program order, one
    request); ``run_batch`` is the production path (program order,
    all requests stacked per op); ``run_batch_pooled`` dispatches
    per-node stacked tasks over a resident
    :class:`~repro.sched.executor.FunctionalExecutor` fork pool in
    DAG-ready order.  All three produce bit-identical per-request
    states.
    """

    def __init__(self, ring_degree: int = 256, num_limbs: int = 3,
                 prime_bits: int = 36, seed: int = 20250806,
                 backend=None):
        self.ring_degree = int(ring_degree)
        self.seed = int(seed)
        self.moduli = tuple(primes.ntt_primes(
            num_limbs, prime_bits, ring_degree))
        self.backend = backend_mod.resolve(backend)
        self._ctx = _batch_context(self.moduli, self.ring_degree,
                                   self.backend.name)

    # -- seeds ----------------------------------------------------------
    def request_seed(self, request_id: int) -> int:
        return request_seed(self.seed, request_id)

    def _seed_array(self, seeds) -> np.ndarray:
        be = self._ctx["backend"]
        if be.is_device_array(seeds) and seeds.dtype == np.uint64:
            return seeds        # already uploaded by the caller
        return be.from_host(
            np.array([int(s) & _MASK for s in seeds], dtype=np.uint64))

    # -- state ----------------------------------------------------------
    def _ct_ids(self, trace: OpTrace) -> list[int]:
        return sorted({op.ct_id for op in trace})

    def initial_state(self, trace: OpTrace,
                      seeds) -> dict[int, np.ndarray]:
        """ct id -> ``(B, limbs, N)`` fresh residue stack."""
        seeds_arr = self._seed_array(seeds)
        counter = self._ctx["counter"]
        be = self._ctx["backend"]
        state = {}
        for ct in self._ct_ids(trace):
            stack = be.empty((len(seeds_arr), len(self.moduli),
                              self.ring_degree), np.uint64)
            for j, q in enumerate(self.moduli):
                stack[:, j, :] = fresh_params(seeds_arr, ct, j, q,
                                              counter)
            state[ct] = stack
        return state

    # -- serial oracle ---------------------------------------------------
    def run_serial(self, trace: OpTrace,
                   seed: int) -> dict[int, np.ndarray]:
        """Program-order single-request run: the ground truth.  Uses
        the same parameter derivation as the stacked path on a
        1-element seed vector, with scalar per-limb kernels."""
        state = {ct: stack[0].copy()
                 for ct, stack in self.initial_state(trace,
                                                     [seed]).items()}
        from repro.ckks.ntt import RADIX_ORACLE
        from repro.ckks.rns import get_plan

        seeds_arr = self._seed_array([seed])
        counter = self._ctx["counter"]
        kernels = self._ctx["kernels"]
        n = self.ring_degree
        # Radix-2 oracle-tier plans, deliberately: the serial oracle
        # must not share the fused butterflies the stacked path runs.
        plans = [get_plan(n, row_ntt.modulus, radix=RADIX_ORACLE)
                 for row_ntt in self._ctx["row_ntts"]]
        for index, op in enumerate(trace):
            ct = state[op.ct_id]
            for j, q in enumerate(self.moduli):
                kernel, plan = kernels[j], plans[j]
                scale, offsets = op_params(seeds_arr, index, j, q,
                                           counter)
                limb = ct[j]
                if op.needs_key_switch:
                    # The scalar NttPlan, deliberately: the oracle
                    # must not share the stacked butterflies it vets.
                    evals = np.asarray(plan.forward(limb),
                                       dtype=np.uint64)[None, :]
                    evals = _addmod(_mulmod(kernel, evals, scale),
                                    offsets, q)
                    limb = np.asarray(plan.inverse(evals[0]),
                                      dtype=np.uint64)
                else:
                    limb = _addmod(_mulmod(kernel, limb[None, :],
                                           scale), offsets, q)[0]
                r = op.rotation % n if op.rotation else 0
                if r:
                    limb = np.roll(limb, r)
                    limb[:r] = _negmod(limb[:r], q)
                ct[j] = limb
        return state

    # -- stacked execution -----------------------------------------------
    def run_batch(self, trace: OpTrace, seeds) -> dict[int, np.ndarray]:
        """Program-order whole-batch run: each op transforms its
        ciphertext's ``(B, limbs, N)`` stack in one vectorised pass."""
        seeds_arr = self._seed_array(seeds)
        state = self.initial_state(trace, seeds_arr)
        for index, op in enumerate(trace):
            _apply_batch_op(state[op.ct_id], index, op.rotation,
                            op.needs_key_switch, seeds_arr, self._ctx)
        return state

    def run_batch_pooled(self, trace: OpTrace, seeds,
                         executor, workers: int = 4
                         ) -> tuple[dict[int, np.ndarray], bool]:
        """DAG-ready-order stacked run over ``executor``'s resident
        fork pool (:meth:`FunctionalExecutor.ensure_pool`); falls
        back to the in-process stacked run when the pool cannot be
        created, returning ``parallel=False``."""
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        seeds_list = [int(s) & _MASK for s in seeds]
        graph = DataflowGraph.from_trace(trace)
        ct_ids = self._ct_ids(trace)
        slots = {ct: i for i, ct in enumerate(ct_ids)}
        shape = (len(ct_ids), len(seeds_list), len(self.moduli),
                 self.ring_degree)
        try:
            pool = executor.ensure_pool(workers)
            shm = shared_memory.SharedMemory(
                create=True, size=max(int(np.prod(shape)) * 8, 8))
        except (OSError, ValueError, PermissionError,
                BrokenProcessPool):
            obs.get_tracer().count("serve.pool_fallback")
            return self.run_batch(trace, seeds_list), False
        try:
            arena = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
            for ct, stack in self.initial_state(trace,
                                                seeds_list).items():
                arena[slots[ct]] = backend_mod.to_host(stack)
            indegree = {nd.node_id: len(nd.preds) for nd in graph.nodes}
            ready = [nid for nid, deg in indegree.items() if deg == 0]
            in_flight: dict = {}
            done = 0
            while done < len(graph.nodes):
                while ready:
                    nid = ready.pop()
                    node = graph.node(nid)
                    items = [(idx, op.rotation, op.needs_key_switch)
                             for idx, op in zip(node.indices, node.ops)]
                    future = pool.submit(
                        _run_batch_node, shm.name, shape,
                        slots[node.ct_id], items, seeds_list,
                        self.moduli, self.ring_degree)
                    in_flight[future] = nid
                finished, _ = wait(in_flight,
                                   return_when=FIRST_COMPLETED)
                for future in finished:
                    nid = in_flight.pop(future)
                    future.result()
                    done += 1
                    for succ in graph.node(nid).succs:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            ready.append(succ)
            state = {ct: arena[slots[ct]].copy() for ct in ct_ids}
            return state, True
        except (OSError, ValueError, PermissionError,
                BrokenProcessPool):
            executor.close()
            obs.get_tracer().count("serve.pool_fallback")
            return self.run_batch(trace, seeds_list), False
        finally:
            shm.close()
            shm.unlink()

    # -- digests ---------------------------------------------------------
    def digest_row(self, state: dict[int, np.ndarray],
                   row: int) -> str:
        """Response digest of request ``row`` in a batch state."""
        h = hashlib.blake2b(digest_size=16)
        for ct in sorted(state):
            h.update(ct.to_bytes(8, "little", signed=True))
            h.update(np.ascontiguousarray(
                backend_mod.to_host(state[ct][row])).tobytes())
        return h.hexdigest()

    def digest_serial(self, state: dict[int, np.ndarray]) -> str:
        """Digest of one serial-oracle final state."""
        h = hashlib.blake2b(digest_size=16)
        for ct in sorted(state):
            h.update(ct.to_bytes(8, "little", signed=True))
            h.update(np.ascontiguousarray(np.asarray(
                backend_mod.to_host(state[ct]),
                dtype=np.uint64)).tobytes())
        return h.hexdigest()

    # -- the proof --------------------------------------------------------
    def verify_batch(self, trace: OpTrace, seeds) -> ServeCheck:
        """Stacked run vs per-request serial oracle, bit-for-bit."""
        seeds_list = [int(s) & _MASK for s in seeds]
        batched = self.run_batch(trace, seeds_list)
        mismatched = []
        for row, seed in enumerate(seeds_list):
            serial = self.run_serial(trace, seed)
            for ct in serial:
                if not np.array_equal(
                        np.asarray(backend_mod.to_host(serial[ct]),
                                   dtype=np.uint64),
                        backend_mod.to_host(batched[ct][row])):
                    mismatched.append((row, ct))
        return ServeCheck(bit_exact=not mismatched,
                          batch=len(seeds_list), num_ops=len(trace),
                          num_cts=len(batched), mismatched=mismatched)
