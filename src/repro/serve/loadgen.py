"""Load generation against :class:`~repro.serve.server.FheServer`.

Two arrival disciplines:

* **closed loop** — ``tenants x concurrency`` workers each keep one
  request in flight, draining their tenant's pre-assigned id
  allotment; offered load adapts to service rate (the BENCH/CI
  discipline: deterministic request-id set, saturating);
* **open loop** — requests arrive at a fixed rate regardless of
  completions, tenants round-robin (deterministic inter-arrival gap,
  no randomness).

The report carries the serving section's numbers: requests/sec, p50
and p99 latency, mean batch size and occupancy, peak queue depth —
plus the honesty checks: a timed serial per-request oracle run over
the *same* request ids (speedup = serial time / served wall time)
and a digest-by-digest bit-exactness comparison against it.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from dataclasses import dataclass, field

from repro.serve.jobs import EVAL, default_shape, get_shape, request_seed
from repro.serve.server import FheServer, ServerConfig

CLOSED = "closed"
OPEN = "open"
MODES = (CLOSED, OPEN)


def percentile(values, pct: float) -> float:
    """Nearest-rank percentile (no interpolation, 0 on empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class LoadReport:
    """One loadgen run's measurements."""

    mode: str
    shape: str
    tenants: int
    requests: int
    concurrency: int
    duration_s: float
    rps: float
    p50_ms: float
    p99_ms: float
    mean_latency_ms: float
    mean_batch: float
    batch_occupancy: float
    max_queue_depth: int
    errors: int
    pin_violations: int = 0
    serial_s: float | None = None
    serial_rps: float | None = None
    speedup: float | None = None
    bit_exact: bool | None = None
    per_tenant: dict = field(default_factory=dict)
    server_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "shape": self.shape,
            "tenants": self.tenants,
            "requests": self.requests,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "rps": self.rps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "mean_latency_ms": self.mean_latency_ms,
            "mean_batch": self.mean_batch,
            "batch_occupancy": self.batch_occupancy,
            "max_queue_depth": self.max_queue_depth,
            "errors": self.errors,
            "pin_violations": self.pin_violations,
            "serial_s": self.serial_s,
            "serial_rps": self.serial_rps,
            "speedup": self.speedup,
            "bit_exact": self.bit_exact,
            "per_tenant": self.per_tenant,
        }


async def _drive_closed(server: FheServer, shape: str, kind: str,
                        tenants: int, per_tenant: int,
                        concurrency: int) -> list:
    """``tenants x concurrency`` workers drain per-tenant id pools."""
    responses = []

    async def worker(tenant: str, ids: deque) -> None:
        while ids:
            rid = ids.popleft()
            responses.append(await server.submit(
                tenant, kind=kind, shape=shape, request_id=rid))

    tasks = []
    for t in range(tenants):
        ids = deque(range(t * per_tenant, (t + 1) * per_tenant))
        for _ in range(concurrency):
            tasks.append(asyncio.ensure_future(
                worker(f"tenant-{t}", ids)))
    await asyncio.gather(*tasks)
    return responses


async def _drive_open(server: FheServer, shape: str, kind: str,
                      tenants: int, requests: int,
                      rate_rps: float) -> list:
    """Fixed-rate arrivals; tenants round-robin over request ids."""
    interval = 1.0 / rate_rps if rate_rps > 0 else 0.0
    tasks = []
    for rid in range(requests):
        tasks.append(asyncio.ensure_future(server.submit(
            f"tenant-{rid % tenants}", kind=kind, shape=shape,
            request_id=rid)))
        if interval and rid + 1 < requests:
            await asyncio.sleep(interval)
    return list(await asyncio.gather(*tasks))


def run_loadgen(config: ServerConfig | None = None,
                shape: str | None = None, kind: str = EVAL,
                tenants: int = 8, requests_per_tenant: int = 8,
                concurrency: int = 2, mode: str = CLOSED,
                rate_rps: float = 200.0,
                compare_serial: bool = True) -> LoadReport:
    """Stand up a server, drive it, tear it down, report.

    With ``compare_serial`` the same request ids are then replayed
    one at a time through the serial per-request oracle
    (:meth:`ServeExecutor.run_serial`) — timed, and digest-compared
    against every served response.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; "
                         f"expected one of {MODES}")
    if tenants < 1 or requests_per_tenant < 1 or concurrency < 1:
        raise ValueError("tenants, requests_per_tenant and "
                         "concurrency must be >= 1")
    server_config = config or ServerConfig()
    shape = shape or default_shape(kind)
    get_shape(shape)
    total = tenants * requests_per_tenant
    holder: dict = {}

    async def _run() -> None:
        server = FheServer(server_config)
        try:
            start = time.perf_counter()
            if mode == CLOSED:
                responses = await _drive_closed(
                    server, shape, kind, tenants, requests_per_tenant,
                    concurrency)
            else:
                responses = await _drive_open(
                    server, shape, kind, tenants, total, rate_rps)
            holder["duration_s"] = time.perf_counter() - start
            holder["responses"] = responses
        finally:
            await server.close()
        holder["server"] = server

    asyncio.run(_run())
    server = holder["server"]
    responses = holder["responses"]
    duration = holder["duration_s"]
    stats = server.stats()
    errors = [r for r in responses if not r.ok]
    latencies = [r.latency_ms for r in responses if r.ok]
    tenancy = stats["tenancy"]
    report = LoadReport(
        mode=mode, shape=shape, tenants=tenants,
        requests=len(responses), concurrency=concurrency,
        duration_s=duration,
        rps=len(responses) / duration if duration > 0 else 0.0,
        p50_ms=percentile(latencies, 50.0),
        p99_ms=percentile(latencies, 99.0),
        mean_latency_ms=(sum(latencies) / len(latencies)
                         if latencies else 0.0),
        mean_batch=stats["mean_batch"],
        batch_occupancy=stats["batch_occupancy"],
        max_queue_depth=stats["max_queue_depth"],
        errors=len(errors),
        pin_violations=tenancy["pin_violations"],
        per_tenant={name: record["evk_hit_rate"] for name, record
                    in tenancy["tenants"].items()},
        server_stats=stats)
    if compare_serial:
        trace = get_shape(shape)
        executor = server.executor
        oracle = {}
        start = time.perf_counter()
        for response in responses:
            state = executor.run_serial(
                trace, request_seed(server_config.seed,
                                    response.request_id))
            oracle[response.request_id] = executor.digest_serial(state)
        report.serial_s = time.perf_counter() - start
        report.serial_rps = (len(responses) / report.serial_s
                             if report.serial_s > 0 else 0.0)
        report.speedup = (report.rps / report.serial_rps
                          if report.serial_rps else 0.0)
        report.bit_exact = (not errors and all(
            response.digest == oracle[response.request_id]
            for response in responses))
    return report


def format_report(report: LoadReport) -> list[str]:
    """Human-readable summary lines for the CLI."""
    lines = [
        f"loadgen: {report.mode}-loop, shape {report.shape}, "
        f"{report.tenants} tenants x concurrency {report.concurrency}",
        f"  requests {report.requests}  errors {report.errors}  "
        f"duration {report.duration_s:.3f} s  "
        f"rps {report.rps:.1f}",
        f"  latency p50 {report.p50_ms:.1f} ms  "
        f"p99 {report.p99_ms:.1f} ms  "
        f"mean {report.mean_latency_ms:.1f} ms",
        f"  batch mean {report.mean_batch:.1f}  "
        f"occupancy {report.batch_occupancy:.2f}  "
        f"peak queue depth {report.max_queue_depth}  "
        f"pin violations {report.pin_violations}",
    ]
    if report.speedup is not None:
        lines.append(
            f"  serial oracle {report.serial_s:.3f} s "
            f"({report.serial_rps:.1f} rps)  "
            f"speedup {report.speedup:.2f}x  "
            f"bit-exact {report.bit_exact}")
    return lines
