"""The asyncio serving front-end: admission window -> stacked batch.

:class:`FheServer` accepts encode/encrypt/eval/decrypt jobs from
named tenants through two doors — the in-process async API
(:meth:`FheServer.submit`) and a JSON-lines-over-TCP endpoint
(:meth:`FheServer.start_tcp`) — and answers each with a response
digest of the request's final ciphertext state.

The serving loop:

1. ``submit`` assigns the request its id-derived data seed
   (``request_seed``) and drops it into the :class:`BatchQueue`.
   The first request of a ``(kind, shape)`` group arms that group's
   admission-window timer (``window_s``); a group flushes early the
   moment it reaches ``max_batch``.
2. On flush the batch acquires every member tenant's evk working set
   through the :class:`TenantKeyManager` (quota check, pinning —
   in-flight keys are never evicted), then executes the whole group
   as ONE stacked run on the :class:`ServeExecutor` — in-process
   vectorised (``backend="stacked"``) or fanned across the resident
   :class:`FunctionalExecutor` fork pool (``backend="pool"``).
   Compute runs on a single dedicated worker thread so the event
   loop keeps admitting requests while a batch executes.
3. Each admitted shape also runs once through the optimiser pipeline
   (:func:`repro.opt.pipeline.optimise_trace`, cached per shape) and
   each admitted ``(shape, batch)`` point is priced on the
   throughput scheduler sim — the response path stays bit-exact by
   executing the *original* trace while the sim prices the optimised
   one.

Batching is invisible in the bits: a response digest depends only on
``(shape, request_id)``, never on batch-mates, so every response can
be checked against a serial per-request oracle (the loadgen does).
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro import obs
from repro.ckks.keys import HYBRID
from repro.ckks.params import SET_I, SET_II
from repro.core.hemera import EvkPool
from repro.hw.config import FAST_CONFIG
from repro.hw.memory import PartitionedKeyCache
from repro.sched.executor import FunctionalExecutor
from repro.serve.batcher import (BatchKey, BatchQueue, evk_aware_order,
                                 evk_working_set)
from repro.serve.engine import ServeExecutor
from repro.serve.jobs import (EVAL, JOB_KINDS, ServeRequest,
                              ServeResponse, default_shape, get_shape,
                              request_seed)
from repro.serve.tenants import TenantKeyManager, TenantQuotaError

STACKED = "stacked"
POOL = "pool"
BACKENDS = (STACKED, POOL)


@dataclass
class ServerConfig:
    """Everything one server instance is allowed to decide."""

    window_s: float = 0.002        # admission window per batch group
    max_batch: int = 16            # flush early at this group size
    clusters: int = 4              # sim-pricing design point
    backend: str = STACKED         # "stacked" | "pool"
    workers: int = 4               # fork-pool width (pool backend)
    ring_degree: int = 256
    num_limbs: int = 3
    prime_bits: int = 36
    seed: int = 20250806           # base seed; requests mix their id in
    optimise: bool = True          # run the optimiser per admitted shape
    price_sim: bool = True         # price (shape, batch) on the scheduler
    evk_method: str = HYBRID
    key_storage_bytes: float = FAST_CONFIG.key_storage_bytes
    tenant_quota_bytes: float | None = None   # default: full capacity
    tenant_quotas: dict = field(default_factory=dict)  # per-tenant override


class FheServer:
    """Async multi-tenant front-end over the stacked batch executor."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config = config or ServerConfig()
        if config.backend not in BACKENDS:
            raise ValueError(f"unknown backend {config.backend!r}; "
                             f"expected one of {BACKENDS}")
        self.executor = ServeExecutor(config.ring_degree,
                                      config.num_limbs,
                                      config.prime_bits, config.seed)
        # Resident fork pool (satellite of the serving layer: the
        # executor's persistent mode exists so this server does not
        # pay pool spin-up per batch).
        self.compute_pool = FunctionalExecutor(
            config.ring_degree, config.num_limbs, config.prime_bits,
            config.seed, persistent=True)
        cache = PartitionedKeyCache(config.key_storage_bytes,
                                    config.tenant_quota_bytes)
        self.tenants = TenantKeyManager(EvkPool(SET_I, SET_II), cache)
        for tenant, quota in config.tenant_quotas.items():
            self.tenants.register(tenant, quota)
        self.queue = BatchQueue(config.max_batch)
        self._timers: dict[BatchKey, asyncio.TimerHandle] = {}
        self._waiters: dict[int, asyncio.Future] = {}
        self._inflight: set[asyncio.Task] = set()
        self._next_request_id = 0
        self._compute = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-compute")
        self._sim_engine = None
        self._opt_stats: dict[str, dict] = {}
        self._opt_traces: dict[str, object] = {}
        self._price_cache: dict[tuple[str, int], dict] = {}
        # Running tallies for stats()/the BENCH serving section.
        self.responses = 0
        self.batch_sizes: list[int] = []
        self.max_queue_depth = 0
        self._tcp_server: asyncio.AbstractServer | None = None
        self._closed = False

    # -- submission ------------------------------------------------------
    async def submit(self, tenant: str, kind: str = EVAL,
                     shape: str | None = None,
                     request_id: int | None = None) -> ServeResponse:
        """Submit one job and await its response.

        ``request_id`` may be client-supplied (it determines the
        request's data seed, so a replay with the same id is
        bit-identical); otherwise the server assigns the next free
        monotonic id.
        """
        loop = asyncio.get_running_loop()
        if self._closed:
            raise RuntimeError("server is closed")
        if kind not in JOB_KINDS:
            raise ValueError(f"unknown job kind {kind!r}; "
                             f"expected one of {JOB_KINDS}")
        shape = shape or default_shape(kind)
        get_shape(shape)  # validates the name before queueing
        if request_id is None:
            request_id = self._next_request_id
            self._next_request_id += 1
        else:
            request_id = int(request_id)
            self._next_request_id = max(self._next_request_id,
                                        request_id + 1)
        if request_id in self._waiters:
            return ServeResponse(
                request_id=request_id, tenant=tenant, kind=kind,
                shape=shape,
                error=f"request id {request_id} already in flight")
        request = ServeRequest(tenant=tenant, kind=kind, shape=shape,
                               request_id=request_id,
                               submitted_s=loop.time())
        future: asyncio.Future = loop.create_future()
        self._waiters[request_id] = future
        obs.count("serve.requests")
        key, opened, full = self.queue.add(request,
                                           now_s=request.submitted_s)
        self.max_queue_depth = max(self.max_queue_depth,
                                   self.queue.depth())
        obs.observe("serve.queue_depth", self.queue.depth())
        if full:
            self._flush(key)
        elif opened:
            self._timers[key] = loop.call_later(
                self.config.window_s, self._flush, key)
        return await future

    # -- batch lifecycle -------------------------------------------------
    def _flush(self, key: BatchKey) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        requests = self.queue.take(key)
        if not requests:
            return
        task = asyncio.get_running_loop().create_task(
            self._dispatch(key, requests))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, key: BatchKey, requests: list) -> None:
        loop = asyncio.get_running_loop()
        tracer = obs.get_tracer()
        trace = get_shape(key.shape)
        working = evk_working_set(trace, self.config.evk_method)
        leases, admitted = [], []
        for request in requests:
            self.tenants.count_request(request.tenant)
            try:
                if working:
                    leases.append(
                        self.tenants.acquire(request.tenant, working))
                admitted.append(request)
            except TenantQuotaError as exc:
                self._resolve(request, error=str(exc))
        if not admitted:
            return
        self._prepare_shape(key.shape)
        seeds = [request_seed(self.config.seed, r.request_id)
                 for r in admitted]
        try:
            with tracer.span("serve.batch", shape=key.shape,
                             kind=key.kind, size=len(admitted)):
                state = await loop.run_in_executor(
                    self._compute, self._execute, trace, seeds)
        except Exception as exc:  # compute must never strand waiters
            for lease in leases:
                self.tenants.release(lease)
            for request in admitted:
                self._resolve(request, error=f"execution failed: {exc}")
            return
        for lease in leases:
            self.tenants.release(lease)
        if self.config.price_sim:
            self._price(key.shape, len(admitted))
        self.batch_sizes.append(len(admitted))
        if tracer.enabled:
            tracer.count("serve.batches")
            tracer.observe("serve.batch_size", len(admitted))
            tracer.observe("serve.batch_occupancy",
                           len(admitted) / self.config.max_batch)
            for request in admitted:
                tracer.count(
                    f"serve.tenant.{request.tenant}.requests")
        for row, request in enumerate(admitted):
            self._resolve(request,
                          digest=self.executor.digest_row(state, row),
                          batch_size=len(admitted))

    def _execute(self, trace, seeds):
        """Runs on the compute thread; returns the final batch state."""
        if self.config.backend == POOL:
            state, _ = self.executor.run_batch_pooled(
                trace, seeds, self.compute_pool,
                workers=self.config.workers)
            return state
        return self.executor.run_batch(trace, seeds)

    def _resolve(self, request: ServeRequest, digest: str = "",
                 batch_size: int = 0,
                 error: str | None = None) -> None:
        future = self._waiters.pop(request.request_id, None)
        if future is None or future.done():
            return
        loop = asyncio.get_running_loop()
        latency_ms = (loop.time() - request.submitted_s) * 1e3
        self.responses += 1
        if error is not None:
            obs.count("serve.errors")
        obs.observe("serve.latency_ms", latency_ms)
        future.set_result(ServeResponse(
            request_id=request.request_id, tenant=request.tenant,
            kind=request.kind, shape=request.shape, digest=digest,
            batch_size=batch_size, latency_ms=latency_ms, error=error))

    # -- optimiser + sim pricing ----------------------------------------
    def _prepare_shape(self, shape: str) -> None:
        """Once per shape: run the optimiser pipeline over the trace.

        The optimised trace prices the scheduler sim; the response
        path executes the original trace (the functional transform is
        op-index-sensitive, so rewriting would change digests).
        """
        if not self.config.optimise or shape in self._opt_stats:
            return
        try:
            from repro.opt.pipeline import optimise_trace
            optimised = optimise_trace(get_shape(shape), SET_II)
            self._opt_traces[shape] = optimised
            self._opt_stats[shape] = optimised.stats.as_dict()
        except Exception as exc:
            self._opt_stats[shape] = {"error": str(exc)}

    def _sim(self):
        if self._sim_engine is None:
            from repro.sched.simulate import ScheduledEngine
            config = FAST_CONFIG.with_(
                name=f"FAST-{self.config.clusters}C",
                clusters=self.config.clusters,
                key_storage_bytes=self.config.key_storage_bytes)
            self._sim_engine = ScheduledEngine(config)
        return self._sim_engine

    def _price(self, shape: str, batch: int) -> dict:
        """Scheduler-sim cost of one admitted ``(shape, batch)``."""
        key = (shape, batch)
        cached = self._price_cache.get(key)
        if cached is None:
            try:
                trace = self._opt_traces.get(shape) or get_shape(shape)
                result = self._sim().run_streams(trace, batch)
                cached = {
                    "sim_total_s": result.total_s,
                    "sim_amortized_s": result.amortized_s,
                    "prefetch_misses": result.prefetch_misses,
                }
            except Exception as exc:
                cached = {"error": str(exc)}
            self._price_cache[key] = cached
        return cached

    # -- TCP endpoint ----------------------------------------------------
    async def start_tcp(self, host: str = "127.0.0.1",
                        port: int = 0) -> tuple:
        """Serve JSON-lines jobs over TCP; returns ``(host, port)``.

        One request per line: ``{"tenant": ..., "kind": ...,
        "shape": ..., "request_id": ...}``; one JSON response per
        line, in completion order (lines from one connection are
        admitted concurrently so they can share a batch).
        """
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, host, port)
        return self._tcp_server.sockets[0].getsockname()[:2]

    async def _handle_connection(self, reader, writer) -> None:
        lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def answer(message: dict) -> None:
            try:
                response = await self.submit(
                    tenant=str(message.get("tenant", "anonymous")),
                    kind=message.get("kind", EVAL),
                    shape=message.get("shape"),
                    request_id=message.get("request_id"))
                payload = response.to_dict()
            except Exception as exc:
                payload = {"error": str(exc),
                           "request_id": message.get("request_id")}
            async with lock:
                writer.write((json.dumps(payload) + "\n").encode())
                await writer.drain()

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    message = json.loads(line)
                    if not isinstance(message, dict):
                        raise ValueError("job must be a JSON object")
                except ValueError as exc:
                    async with lock:
                        writer.write((json.dumps(
                            {"error": f"bad request: {exc}"})
                            + "\n").encode())
                        await writer.drain()
                    continue
                task = asyncio.get_running_loop().create_task(
                    answer(message))
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*list(pending),
                                     return_exceptions=True)
        finally:
            # No await here: server shutdown cancels handler tasks,
            # and an awaited wait_closed() would surface that as loop
            # noise; the transport finishes closing on its own.
            writer.close()

    # -- reporting / shutdown --------------------------------------------
    def stats(self) -> dict:
        sizes = self.batch_sizes
        mean_batch = sum(sizes) / len(sizes) if sizes else 0.0
        return {
            "responses": self.responses,
            "batches": len(sizes),
            "mean_batch": mean_batch,
            "batch_occupancy": (mean_batch / self.config.max_batch
                                if sizes else 0.0),
            "max_queue_depth": self.max_queue_depth,
            "backend": self.config.backend,
            "window_ms": self.config.window_s * 1e3,
            "max_batch": self.config.max_batch,
            "tenancy": self.tenants.to_dict(),
            "optimiser": dict(self._opt_stats),
            "pricing": {f"{shape}@{batch}": price for (shape, batch),
                        price in sorted(self._price_cache.items())},
        }

    def flush_all(self) -> None:
        """Flush every pending group now, in evk-aware order.

        When several groups are ready at once (drain, shutdown), the
        cross-stream admission policy applies: groups are ordered by
        evaluation-key working set (:func:`evk_aware_order`) so
        shared-key batches reach the tenant key manager back to back
        and reuse residency instead of thrashing the key store.
        """
        keys = self.queue.pending_keys()
        if not keys:
            return
        sets = [evk_working_set(get_shape(key.shape),
                                self.config.evk_method) for key in keys]
        # Contiguous grouping (clusters=1): the batches drain through
        # one shared key store, so temporal adjacency is the win.
        for position in evk_aware_order(sets):
            self._flush(keys[position])

    async def close(self) -> None:
        """Flush pending groups, drain in-flight batches, shut down."""
        self._closed = True
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self.flush_all()
        while self._inflight:
            await asyncio.gather(*list(self._inflight),
                                 return_exceptions=True)
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        self._compute.shutdown(wait=True)
        self.compute_pool.close()
        for future in self._waiters.values():
            if not future.done():
                future.cancel()
        self._waiters.clear()
