"""On-chip memory and HBM models (Sec. 5.6).

* :class:`RegisterFile` — the large lane-wise register file: one
  72-bit word per lane per cycle, sequential access driven by small
  lane-group counters (no cluster-wide address broadcast).  Area and
  power scale with capacity, anchored to Table 3 (123.9 mm^2 / 29.4 W
  for FAST's 281 MB).
* :class:`HbmModel` — the off-chip interface: 1 TB/s, with transfer
  times and busy-time accounting used for the utilisation figure and
  the stall model.
* :class:`EvkPrefetcher` — Hemera's double-buffered evaluation-key
  prefetch: the throughput scheduler issues the key fetches of the
  *next* scheduled key-switches while the current ones compute, so
  the KeyMult stage finds its keys resident instead of stalling.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.hw.config import ChipConfig

# Table 3 anchors.
RF_AREA_PER_MB_MM2 = 123.9 / 281.0
RF_POWER_PER_MB_W = 29.4 / 281.0
RF_WORD_BITS = 72
HBM_PHY_AREA_MM2 = 29.6
HBM_POWER_W = 31.8


class RegisterFile:
    """Lane-wise register file with sequential-access addressing."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.capacity_bytes = config.onchip_memory_bytes
        self.lanes = config.total_lanes

    def words_per_cycle(self) -> int:
        """One 72-bit word per lane per cycle."""
        return self.lanes

    def bandwidth_bytes_per_s(self) -> float:
        return self.words_per_cycle() * (RF_WORD_BITS / 8) * \
            self.config.frequency_hz

    def fits(self, working_set_bytes: float) -> bool:
        return working_set_bytes <= self.capacity_bytes

    def area_mm2(self) -> float:
        return RF_AREA_PER_MB_MM2 * self.capacity_bytes / 2**20

    def peak_power_w(self) -> float:
        return RF_POWER_PER_MB_W * self.capacity_bytes / 2**20


@dataclass
class HbmTraffic:
    """Accumulated off-chip transfer accounting for one run."""

    key_bytes: float = 0.0
    ciphertext_bytes: float = 0.0
    busy_s: float = 0.0
    stall_s: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.key_bytes + self.ciphertext_bytes


class HbmModel:
    """The 1 TB/s HBM interface with busy-time tracking."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.bandwidth = config.hbm_bandwidth_bytes
        self.traffic = HbmTraffic()

    def transfer_time(self, num_bytes: float) -> float:
        return num_bytes / self.bandwidth

    def record_key_transfer(self, num_bytes: float,
                            window_s: float) -> float:
        """Account a key transfer; returns the exposed stall time."""
        t = self.transfer_time(num_bytes)
        self.traffic.key_bytes += num_bytes
        self.traffic.busy_s += t
        stall = max(0.0, t - window_s)
        self.traffic.stall_s += stall
        return stall

    def record_ciphertext_transfer(self, num_bytes: float) -> float:
        t = self.transfer_time(num_bytes)
        self.traffic.ciphertext_bytes += num_bytes
        self.traffic.busy_s += t
        return t

    def reset(self) -> None:
        self.traffic = HbmTraffic()

    def area_mm2(self) -> float:
        return HBM_PHY_AREA_MM2 * (self.bandwidth / 1e12)

    def peak_power_w(self) -> float:
        return HBM_POWER_W * (self.bandwidth / 1e12)


class UnitTimeline:
    """Earliest-fit busy timeline of one pipelined resource.

    The serial engine (and latency-mode scheduling) reserves
    resources with a high-water-mark clock: every booking appends to
    a FIFO, so an op's later stages leave bubbles no later request
    can reclaim.  Throughput mode's point is that independent streams
    *backfill* those bubbles — ``alloc`` books each request into the
    earliest gap at or after its ready time, which is what a
    scoreboarded unit (or a request-queued HBM channel) actually
    does.  Used for the per-cluster compute units and for the shared
    HBM channel, whose transfers would otherwise serialise in
    dispatch order rather than in simulated-time order.
    """

    __slots__ = ("_starts", "_busy")

    def __init__(self):
        self._starts: list[float] = []
        self._busy: list[tuple[float, float]] = []

    def alloc(self, ready: float, duration: float) -> float:
        """Book ``duration`` seconds at the earliest time >= ``ready``
        with no overlap; returns the booked start time."""
        busy = self._busy
        i = bisect.bisect_left(self._starts, ready)
        candidate = ready
        if i and busy[i - 1][1] > candidate:
            candidate = busy[i - 1][1]
        while i < len(busy) and busy[i][0] < candidate + duration:
            if busy[i][1] > candidate:
                candidate = busy[i][1]
            i += 1
        self._starts.insert(i, candidate)
        self._busy.insert(i, (candidate, candidate + duration))
        return candidate

    @property
    def horizon(self) -> float:
        """End of the last booked interval."""
        return self._busy[-1][1] if self._busy else 0.0


def hbm_transfer(hbm_free, request_s: float,
                 duration: float) -> tuple[object, float]:
    """Book one transfer on the shared HBM channel.

    ``hbm_free`` is either the latency-mode FIFO clock (a float: the
    transfer queues behind everything booked so far, regardless of
    when it was requested) or a throughput-mode :class:`UnitTimeline`
    (the transfer takes the earliest free slot at or after
    ``request_s``).  Returns ``(updated hbm_free, arrival_s)``.
    """
    if isinstance(hbm_free, UnitTimeline):
        return hbm_free, hbm_free.alloc(request_s, duration) + duration
    hbm_free += duration
    return hbm_free, hbm_free


@dataclass
class ClaimStats:
    """What one :meth:`EvkPrefetcher.claim` found for its key group."""

    arrival_s: float = 0.0
    prefetch_hits: int = 0   # keys covered by an issued prefetch
    cache_hits: int = 0      # keys simply resident on chip
    demand_misses: int = 0   # keys fetched on demand at claim time
    demand_bytes: float = 0.0


class EvkPrefetcher:
    """Double-buffered evaluation-key prefetch (Hemera front buffer).

    A *slot* holds the key group of one upcoming key-switch node.
    ``issue`` starts the HBM transfers for a group's missing keys the
    moment the scheduler knows the node is next in line; ``claim``
    resolves the group when the node actually executes, returning the
    time its last key arrives (0 when everything was resident or
    landed earlier) and fetching on demand whatever the buffer did
    not cover.  With the default two slots this is classic double
    buffering: one group feeding the running key-switch, one in
    flight behind it.

    Keys are pinned in the shared :class:`~repro.core.hemera.KeyCache`
    from issue until the owning node retires (``unpin_group`` — the
    scheduler calls it once the node's simulated interval has
    passed), so prefetch pressure can never evict a key an in-flight
    node still needs.
    """

    def __init__(self, cache, bandwidth_bytes: float, slots: int = 2):
        if slots < 1:
            raise ValueError("prefetcher needs at least one slot")
        self.cache = cache
        self.bandwidth = bandwidth_bytes
        self.slots = slots
        self._groups: OrderedDict[object, dict] = OrderedDict()
        self._in_flight: dict = {}   # key -> arrival_s
        self.issues = 0
        self.hits = 0
        self.misses = 0
        self.issued_bytes = 0.0

    @property
    def outstanding(self) -> int:
        return len(self._groups)

    def can_issue(self, token) -> bool:
        return token not in self._groups and \
            len(self._groups) < self.slots

    def issue(self, token, identities, bytes_per_key: float,
              hbm_free, request_s: float = 0.0) -> tuple[object, float]:
        """Prefetch one upcoming group's missing keys.

        ``hbm_free`` is the shared HBM channel state (float clock or
        :class:`UnitTimeline`); transfers are requested at
        ``request_s``.  Returns ``(new hbm_free, bytes issued)``; a
        no-op when the buffer is full or the token already issued.
        """
        if not self.can_issue(token):
            return hbm_free, 0.0
        arrivals: dict = {}
        issued = 0.0
        for key in identities:
            if key in self._in_flight:
                # Another slot already fetches it; share the transfer.
                arrivals[key] = self._in_flight[key]
                self.cache.pin(key)
                continue
            if self.cache.resident(key):
                continue
            hbm_free, arrival = hbm_transfer(
                hbm_free, request_s, bytes_per_key / self.bandwidth)
            self.cache.insert(key, bytes_per_key)
            self.cache.pin(key)
            self._in_flight[key] = arrival
            arrivals[key] = arrival
            issued += bytes_per_key
        self._groups[token] = arrivals
        self.issues += 1
        self.issued_bytes += issued
        return hbm_free, issued

    def claim(self, token, identities, bytes_per_key: float,
              hbm_free, request_s: float = 0.0
              ) -> tuple[ClaimStats, object]:
        """Resolve a node's key group at execution time.

        Every key of the group leaves this call pinned (prefetched
        keys keep their issue pin; the rest gain one); the scheduler
        releases them with :meth:`unpin_group` when the node retires.
        Demand fetches for uncovered keys are requested at
        ``request_s`` on the shared channel.
        """
        group = self._groups.pop(token, None) or {}
        stats = ClaimStats()
        for key in identities:
            if key in group:
                # Own prefetch: the transfer stays registered in
                # ``_in_flight`` until this node *retires*, so the
                # other streams' aligned claims of the same group ride
                # it instead of re-fetching — essential when one group
                # exceeds the key store and could never go resident.
                stats.arrival_s = max(stats.arrival_s, group.pop(key))
                stats.prefetch_hits += 1   # pin transferred, not re-added
            elif key in self._in_flight:
                # In flight for an overlapping group: ride it.
                stats.arrival_s = max(stats.arrival_s,
                                      self._in_flight[key])
                self.cache.pin(key)
                stats.prefetch_hits += 1
            elif self.cache.resident(key):
                self.cache.pin(key)
                stats.cache_hits += 1
            else:
                hbm_free, arrival = hbm_transfer(
                    hbm_free, request_s, bytes_per_key / self.bandwidth)
                stats.arrival_s = max(stats.arrival_s, arrival)
                self.cache.insert(key, bytes_per_key)
                self.cache.pin(key)
                self._in_flight[key] = arrival
                stats.demand_misses += 1
                stats.demand_bytes += bytes_per_key
        # Keys issued for this group but not in the claimed identity
        # list (cannot happen when issue and claim share the same
        # schedule, but stay safe): release their pins.
        for key in group:
            self._in_flight.pop(key, None)
            self.cache.unpin(key)
        self.hits += stats.prefetch_hits
        self.misses += stats.demand_misses
        return stats, hbm_free

    def unpin_group(self, identities) -> None:
        """Retire a node: release its keys' execution pins and drop
        their in-flight registrations (a later claim must then find
        the key resident or pay for a fresh transfer)."""
        for key in identities:
            self.cache.unpin(key)
            self._in_flight.pop(key, None)


class PartitionedKeyCache:
    """Tenant-partitioned on-chip key store for the serving layer.

    One physical key store shared across tenants: *residency* is
    global — any tenant's lookup rides any resident copy, which is the
    whole point of sharing the Hemera evk pool — but *capacity* is
    accounted to the tenant that inserted each key, against a
    per-tenant quota.  A tenant under partition pressure evicts its
    own unpinned LRU entries first; only then does global pressure
    evict across partitions, so one tenant's key churn cannot empty
    another's working set while that set is being reused.

    Pins are ref-counted exactly as in
    :class:`~repro.core.hemera.KeyCache`: a pinned (in-flight) key is
    never selected for eviction, and an insert that cannot make room
    without touching pinned entries is dropped (``dropped_inserts``)
    rather than forced.  ``pin_violations`` counts evictions that
    would have removed a pinned key — by construction always zero;
    the serving CI gate asserts it stays that way.
    """

    def __init__(self, capacity_bytes: float,
                 default_quota_bytes: float | None = None):
        self.capacity = capacity_bytes
        self.default_quota = (capacity_bytes if default_quota_bytes is None
                              else default_quota_bytes)
        self._entries: OrderedDict = OrderedDict()  # key -> (size, owner)
        self._pins: dict = {}
        self._quotas: dict[str, float] = {}
        self._charged: dict[str, float] = {}
        self.used = 0.0
        self.evictions = 0
        self.evictions_by_owner: dict[str, int] = {}
        self.dropped_inserts = 0
        self.pin_violations = 0

    # -- quotas ---------------------------------------------------------
    def set_quota(self, owner: str, quota_bytes: float) -> None:
        self._quotas[owner] = float(quota_bytes)

    def quota(self, owner: str) -> float:
        return self._quotas.get(owner, self.default_quota)

    def charged_bytes(self, owner: str) -> float:
        return self._charged.get(owner, 0.0)

    # -- residency ------------------------------------------------------
    def resident(self, key) -> bool:
        return key in self._entries

    def owner(self, key) -> str | None:
        entry = self._entries.get(key)
        return entry[1] if entry else None

    def touch(self, key) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)

    # -- pinning --------------------------------------------------------
    def pin(self, key) -> None:
        self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key) -> None:
        count = self._pins.get(key, 0)
        if count <= 1:
            self._pins.pop(key, None)
        else:
            self._pins[key] = count - 1

    def pinned(self, key) -> bool:
        return key in self._pins

    # -- insertion / eviction -------------------------------------------
    def _victim(self, owned_by: str | None = None):
        for key, (_, owner) in self._entries.items():
            if key in self._pins:
                continue
            if owned_by is not None and owner != owned_by:
                continue
            return key
        return None

    def _evict(self, key) -> None:
        if key in self._pins:
            self.pin_violations += 1
            return
        size, owner = self._entries.pop(key)
        self._charged[owner] = self._charged.get(owner, 0.0) - size
        self.used -= size
        self.evictions += 1
        self.evictions_by_owner[owner] = \
            self.evictions_by_owner.get(owner, 0) + 1

    def insert(self, key, size: float, owner: str) -> bool:
        """Charge ``size`` bytes to ``owner`` and make ``key``
        resident; returns False (and counts a dropped insert) when
        room cannot be made without evicting pinned entries."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        size = float(size)
        while self.charged_bytes(owner) + size > self.quota(owner):
            victim = self._victim(owned_by=owner)
            if victim is None:
                self.dropped_inserts += 1
                return False
            self._evict(victim)
        while self.used + size > self.capacity:
            victim = self._victim()
            if victim is None:
                self.dropped_inserts += 1
                return False
            self._evict(victim)
        self._entries[key] = (size, owner)
        self._charged[owner] = self._charged.get(owner, 0.0) + size
        self.used += size
        return True

    def resident_bytes(self) -> float:
        return self.used
