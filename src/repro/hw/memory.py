"""On-chip memory and HBM models (Sec. 5.6).

* :class:`RegisterFile` — the large lane-wise register file: one
  72-bit word per lane per cycle, sequential access driven by small
  lane-group counters (no cluster-wide address broadcast).  Area and
  power scale with capacity, anchored to Table 3 (123.9 mm^2 / 29.4 W
  for FAST's 281 MB).
* :class:`HbmModel` — the off-chip interface: 1 TB/s, with transfer
  times and busy-time accounting used for the utilisation figure and
  the stall model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.config import ChipConfig

# Table 3 anchors.
RF_AREA_PER_MB_MM2 = 123.9 / 281.0
RF_POWER_PER_MB_W = 29.4 / 281.0
RF_WORD_BITS = 72
HBM_PHY_AREA_MM2 = 29.6
HBM_POWER_W = 31.8


class RegisterFile:
    """Lane-wise register file with sequential-access addressing."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.capacity_bytes = config.onchip_memory_bytes
        self.lanes = config.total_lanes

    def words_per_cycle(self) -> int:
        """One 72-bit word per lane per cycle."""
        return self.lanes

    def bandwidth_bytes_per_s(self) -> float:
        return self.words_per_cycle() * (RF_WORD_BITS / 8) * \
            self.config.frequency_hz

    def fits(self, working_set_bytes: float) -> bool:
        return working_set_bytes <= self.capacity_bytes

    def area_mm2(self) -> float:
        return RF_AREA_PER_MB_MM2 * self.capacity_bytes / 2**20

    def peak_power_w(self) -> float:
        return RF_POWER_PER_MB_W * self.capacity_bytes / 2**20


@dataclass
class HbmTraffic:
    """Accumulated off-chip transfer accounting for one run."""

    key_bytes: float = 0.0
    ciphertext_bytes: float = 0.0
    busy_s: float = 0.0
    stall_s: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.key_bytes + self.ciphertext_bytes


class HbmModel:
    """The 1 TB/s HBM interface with busy-time tracking."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.bandwidth = config.hbm_bandwidth_bytes
        self.traffic = HbmTraffic()

    def transfer_time(self, num_bytes: float) -> float:
        return num_bytes / self.bandwidth

    def record_key_transfer(self, num_bytes: float,
                            window_s: float) -> float:
        """Account a key transfer; returns the exposed stall time."""
        t = self.transfer_time(num_bytes)
        self.traffic.key_bytes += num_bytes
        self.traffic.busy_s += t
        stall = max(0.0, t - window_s)
        self.traffic.stall_s += stall
        return stall

    def record_ciphertext_transfer(self, num_bytes: float) -> float:
        t = self.transfer_time(num_bytes)
        self.traffic.ciphertext_bytes += num_bytes
        self.traffic.busy_s += t
        return t

    def reset(self) -> None:
        self.traffic = HbmTraffic()

    def area_mm2(self) -> float:
        return HBM_PHY_AREA_MM2 * (self.bandwidth / 1e12)

    def peak_power_w(self) -> float:
        return HBM_POWER_W * (self.bandwidth / 1e12)
