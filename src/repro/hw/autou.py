"""AutoU: the automorphism unit (Sec. 5.5).

AutoU rearranges limb elements under the Galois map
``phi_r: i -> (i * 5^r) mod N`` using a Benes network — a
``2 log2(n) - 1`` stage rearrangeable fabric that can route *any*
permutation without conflicts.  The datapath is 72 bits wide: one
60-bit coefficient, or two 36-bit coefficients from consecutive
batches, per port per cycle.

:class:`BenesNetwork` implements real looping-algorithm route
computation (functional proof that every automorphism permutation is
realisable conflict-free); :class:`AutomorphismUnit` is the
throughput/area model.
"""

from __future__ import annotations

import numpy as np

from repro.hw.config import ChipConfig

DATAPATH_BITS = 72  # paper: fixed 72-bit word


class BenesNetwork:
    """A 2^k-port Benes network with looping-algorithm routing.

    The recursive structure — an input switch column, two half-size
    subnetworks, an output switch column — is the standard
    rearrangeable construction the paper cites ([7]).  ``apply``
    computes the switch settings for an arbitrary permutation via the
    looping (cycle 2-colouring) algorithm and routes the data through
    them, which proves conflict-freedom constructively.
    """

    def __init__(self, ports: int):
        if ports & (ports - 1) or ports < 2:
            raise ValueError("ports must be a power of two >= 2")
        self.ports = ports

    @property
    def stages(self) -> int:
        return 2 * (self.ports.bit_length() - 1) - 1

    def apply(self, data, perm) -> np.ndarray:
        """Route ``data`` so that output ``perm[i]`` carries input ``i``."""
        perm = [int(p) for p in perm]
        if sorted(perm) != list(range(self.ports)):
            raise ValueError("not a permutation of the ports")
        if len(data) != self.ports:
            raise ValueError("data length must equal port count")
        return np.asarray(self._route(list(data), perm))

    def _route(self, data: list, perm: list) -> list:
        n = len(data)
        if n == 2:
            return data if perm == [0, 1] else [data[1], data[0]]
        inverse = [0] * n
        for src, dst in enumerate(perm):
            inverse[dst] = src
        # Looping algorithm: inputs sharing a switch must take
        # different subnetworks, and so must the two inputs feeding
        # one output switch.  Walking these constraints 2-colours
        # every cycle consistently.
        side = [-1] * n
        for seed in range(n):
            if side[seed] != -1:
                continue
            src = seed
            while side[src] == -1:
                side[src] = 0
                partner = src ^ 1
                side[partner] = 1
                # The input feeding the output partnered with
                # partner's destination must ride the other side (0);
                # continue the walk from it.
                src = inverse[perm[partner] ^ 1]
        upper_data, lower_data = [], []
        upper_perm, lower_perm = [], []
        for src in range(n):
            if side[src] == 0:
                upper_data.append(data[src])
                upper_perm.append(perm[src] // 2)
            else:
                lower_data.append(data[src])
                lower_perm.append(perm[src] // 2)
        # Subnetwork outputs are indexed by output pair already.
        upper_out = self._route(upper_data, upper_perm)
        lower_out = self._route(lower_data, lower_perm)
        out = [None] * n
        for src in range(n):
            dst = perm[src]
            pair = dst // 2
            out[dst] = upper_out[pair] if side[src] == 0 else lower_out[pair]
        return out


def automorphism_permutation(n: int, galois_power: int) -> list[int]:
    """Destination index (sign handled downstream) of coefficient ``i``
    under ``X -> X^g``: ``i -> (i * g mod 2N) mod N``."""
    two_n = 2 * n
    return [((i * galois_power) % two_n) % n for i in range(n)]


class AutomorphismUnit:
    """One cluster's AutoU: Benes fabric over the lane ports."""

    # Table 3 anchors for the 256-port, 72-bit configuration.
    AREA_ANCHOR_MM2 = 0.15    # one of the 4 AutoUs (total 0.6)
    POWER_ANCHOR_W = 0.2      # one of the 4 AutoUs (total 0.8)

    def __init__(self, config: ChipConfig):
        self.config = config
        self.ports = config.lanes_per_cluster
        self.network = BenesNetwork(self.ports)

    def elements_per_cycle(self, wide: bool) -> int:
        """256 wide elements, or 512 narrow (two per 72-bit word)."""
        return self.ports * self.config.parallel_factor(wide)

    def cycles_for_limbs(self, num_limbs: int, ring_degree: int,
                         wide: bool) -> float:
        return num_limbs * ring_degree / self.elements_per_cycle(wide)

    def _stage_scale(self) -> float:
        reference_stages = 2 * 8 - 1  # 256-port reference network
        return self.network.stages / reference_stages

    def area_mm2(self) -> float:
        return self.AREA_ANCHOR_MM2 * (self.ports / 256) * \
            self._stage_scale()

    def peak_power_w(self) -> float:
        return self.POWER_ANCHOR_W * (self.ports / 256) * \
            self._stage_scale()
