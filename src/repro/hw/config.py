"""Chip configurations: FAST and its ablation/baseline variants.

A :class:`ChipConfig` carries everything the simulator and the area
model need.  Presets:

* :data:`FAST_CONFIG` — the paper's design point (Table 4 bottom row):
  4 clusters x 256 lanes at 1 GHz, TBM datapath (36/60-bit tunable),
  281 MB on-chip memory, 72+72 TB/s internal bandwidth, 1 TB/s HBM.
* :func:`fast_variant` — derived points for the sensitivity study
  (Fig. 13: scratchpad size and cluster count sweeps) and for the
  efficiency ablation (Fig. 12: no-TBM, 36-bit-ALU).
* SHARP-class baselines for the comparison rows live in
  :mod:`repro.sim.baselines`, built on the same dataclass.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ChipConfig:
    """Static description of one accelerator design point.

    Attributes mirror Table 4's columns plus the datapath options the
    efficiency study toggles.
    """

    name: str
    clusters: int = 4
    lanes_per_cluster: int = 256
    frequency_hz: float = 1.0e9
    narrow_bits: int = 36
    wide_bits: int = 60
    has_tbm: bool = True            # TBM datapath (dual narrow / one wide)
    supports_klss: bool = True      # 60-bit KeyMult path present
    supports_hoisting: bool = True
    onchip_memory_bytes: float = 281 * 2**20
    key_storage_bytes: float = 180 * 2**20   # reserve inside on-chip mem
    onchip_bandwidth_bytes: float = 144e12   # 72+72 TB/s
    hbm_bandwidth_bytes: float = 1e12        # 1 TB/s
    use_ekg: bool = True
    # ARK-style minimum key-switching / inter-operation key reuse
    # (Sec. 6.1): one key per (method, kind, rotation) serves every
    # level, so repeated rotations hit the on-chip key cache.
    use_minks: bool = True
    # Unit sizing knobs (per cluster, in base modular multipliers).
    bconv_array_height: int = 4
    kmu_array_width: int = 3

    @property
    def total_lanes(self) -> int:
        return self.clusters * self.lanes_per_cluster

    @property
    def narrow_parallel_factor(self) -> int:
        """Modmuls per lane-slot in narrow mode (2 with TBM, else 1)."""
        return 2 if self.has_tbm else 1

    def parallel_factor(self, wide: bool) -> int:
        """Modular ops per lane-slot for a precision mode.

        Reconciliation note (documented in DESIGN.md): Sec. 5's prose
        halves the element rate in wide mode, but the paper's own
        evaluation (KLSS adoption at EvalMod/SlotToCoeff, Fig. 10's
        1.24x, Fig. 11b, Tables 5/6) is only self-consistent if the
        TBM datapath sustains the same op-slot rate in both modes; we
        therefore charge one TBM slot per modular operation in either
        precision.  Chips without the TBM run one op per slot.
        """
        return 2 if self.has_tbm else 1

    def modops_per_second(self, wide: bool = False) -> float:
        """Aggregate lane throughput used by Aether's delay estimates."""
        per_lane = 1 if wide else self.narrow_parallel_factor
        return self.total_lanes * per_lane * self.frequency_hz

    def effective_modops_per_second(self) -> float:
        """Sustained modular-op rate for delay estimates.

        Key-switching is NTTU-dominated; the sustained chip rate is
        about 75% of the NTTU's narrow-mode butterfly throughput
        (sqrt(N)-lane streaming with log2(N)/2 butterflies in flight).
        """
        ring_log = 16  # N = 2^16 (the evaluation ring)
        butterflies = (1 << (ring_log // 2)) * ring_log / 2
        per_cluster = butterflies * self.narrow_parallel_factor
        return 0.75 * self.clusters * per_cluster * self.frequency_hz

    def with_(self, **changes) -> "ChipConfig":
        return replace(self, **changes)

    def per_cluster(self) -> "ChipConfig":
        """The single-cluster slice of this design point.

        The dataflow scheduler times each operation on one cluster's
        units (1/``clusters`` of the chip-wide throughput) and runs
        the clusters concurrently; the memory system (HBM channel,
        on-chip key reserve) stays shared at full capacity.
        """
        if self.clusters == 1:
            return self
        return self.with_(name=f"{self.name}/cluster", clusters=1)


FAST_CONFIG = ChipConfig(name="FAST")


def fast_variant(name: str, **changes) -> ChipConfig:
    """A FAST-derived design point (sensitivity/ablation sweeps)."""
    return FAST_CONFIG.with_(name=name, **changes)


# Efficiency-study points (Fig. 12): progressively remove TBM, then
# Aether-Hemera (modelled at the simulator level), down to a plain
# 36-bit-ALU accelerator.
FAST_WITHOUT_TBM = fast_variant("FAST-noTBM", has_tbm=False)
FAST_36BIT_ALU = fast_variant("FAST-36bitALU", has_tbm=False,
                              supports_klss=False, wide_bits=36)


def memory_sweep(sizes_mb: list[int]) -> list[ChipConfig]:
    """Fig. 13(a): FAST at several scratchpad capacities."""
    configs = []
    for mb in sizes_mb:
        # FAST reserves ~64% of the scratchpad for evaluation keys
        # (180 of 281 MB); the sweep keeps that split.
        key_reserve = 0.64 * mb * 2**20
        configs.append(fast_variant(
            f"FAST-{mb}MB", onchip_memory_bytes=mb * 2**20,
            key_storage_bytes=key_reserve))
    return configs


def cluster_sweep(counts: list[int]) -> list[ChipConfig]:
    """Fig. 13(b): FAST at several cluster counts."""
    return [fast_variant(f"FAST-{c}C", clusters=c) for c in counts]
