"""The assembled FAST chip: units + memory + NoC under one config.

:class:`Accelerator` instantiates one of every unit model per cluster
description and exposes the aggregate throughput queries the cycle
simulator uses: *how many cycles does kernel X take at precision mode
M on this chip?*  The same object feeds the Table 3 area roll-up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.aem import AuxiliaryExecutionModule
from repro.hw.autou import AutomorphismUnit
from repro.hw.bconvu import BConvUnit
from repro.hw.config import ChipConfig, FAST_CONFIG
from repro.hw.kmu import KeyMultUnit
from repro.hw.memory import HbmModel, RegisterFile
from repro.hw.noc import LaneWiseNoc
from repro.hw.nttu import NttUnit

# Sustained fraction of peak unit throughput: register-file bank
# conflicts, inter-phase transpose bubbles and pipeline refill on
# limb-group boundaries cost real designs ~20% of peak; calibrated so
# FAST's bootstrap lands at the paper's 1.38 ms.
UNIT_EFFICIENCY = 0.80

# Kernel names the simulator schedules.
KERNEL_NTT = "ntt"
KERNEL_BCONV = "bconv"
KERNEL_KEYMULT = "keymult"
KERNEL_ELEMENTWISE = "elementwise"
KERNEL_AUTOMORPH = "automorph"
KERNEL_UNITS = {
    KERNEL_NTT: "nttu",
    KERNEL_BCONV: "bconvu",
    KERNEL_KEYMULT: "kmu",
    KERNEL_ELEMENTWISE: "kmu",
    KERNEL_AUTOMORPH: "autou",
}


@dataclass
class UnitThroughput:
    """Chip-wide sustained modular ops per cycle for one unit."""

    narrow: float
    wide: float

    def at(self, wide: bool) -> float:
        return self.wide if wide else self.narrow


class Accelerator:
    """One design point's full hardware model."""

    def __init__(self, config: ChipConfig = FAST_CONFIG,
                 ring_degree: int = 1 << 16):
        self.config = config
        self.ring_degree = ring_degree
        self.nttu = NttUnit(config, ring_degree)
        self.bconvu = BConvUnit(config)
        self.kmu = KeyMultUnit(config)
        self.autou = AutomorphismUnit(config)
        self.aem = AuxiliaryExecutionModule(config)
        self.register_file = RegisterFile(config)
        self.hbm = HbmModel(config)
        self.noc = LaneWiseNoc(config)

    # -- aggregate throughputs -------------------------------------------
    def unit_throughput(self, kernel: str) -> UnitThroughput:
        """Chip-wide modular ops per cycle for a kernel's host unit."""
        c = self.config.clusters
        if kernel == KERNEL_NTT:
            return UnitThroughput(
                narrow=c * self.nttu.modops_per_cycle(wide=False),
                wide=c * self.nttu.modops_per_cycle(wide=True))
        if kernel == KERNEL_BCONV:
            return UnitThroughput(
                narrow=c * self.bconvu.macs_per_cycle(wide=False),
                wide=c * self.bconvu.macs_per_cycle(wide=True))
        if kernel in (KERNEL_KEYMULT, KERNEL_ELEMENTWISE):
            return UnitThroughput(
                narrow=c * self.kmu.macs_per_cycle(wide=False),
                wide=c * self.kmu.macs_per_cycle(wide=True))
        if kernel == KERNEL_AUTOMORPH:
            return UnitThroughput(
                narrow=c * self.autou.elements_per_cycle(wide=False),
                wide=c * self.autou.elements_per_cycle(wide=True))
        raise ValueError(f"unknown kernel {kernel!r}")

    def kernel_cycles(self, kernel: str, modops: float, wide: bool) -> float:
        """Busy cycles the kernel's unit needs for ``modops`` work."""
        if modops <= 0:
            return 0.0
        sustained = self.unit_throughput(kernel).at(wide) * UNIT_EFFICIENCY
        return modops / sustained

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.config.frequency_hz

    def modops_per_second(self, wide: bool = False) -> float:
        """Aggregate lane throughput (Aether's delay conversion)."""
        return self.config.modops_per_second(wide)

    # -- capability predicates ---------------------------------------------
    def supports(self, method: str) -> bool:
        if method == "klss":
            return self.config.supports_klss
        return True

    # -- roll-ups -------------------------------------------------------------
    def component_areas_mm2(self) -> dict[str, float]:
        c = self.config.clusters
        return {
            f"{c}xNTTUs": c * self.nttu.area_mm2(),
            f"{c}xBConvUs": c * self.bconvu.area_mm2(),
            f"{c}xKMUs": c * self.kmu.area_mm2(),
            f"{c}xAUTOUs": c * self.autou.area_mm2(),
            f"{c}xAEM": c * self.aem.area_mm2(),
            "Register Files": self.register_file.area_mm2(),
            "HBM": self.hbm.area_mm2(),
            "NoC": self.noc.area_mm2(),
        }

    def component_powers_w(self) -> dict[str, float]:
        c = self.config.clusters
        return {
            f"{c}xNTTUs": c * self.nttu.peak_power_w(),
            f"{c}xBConvUs": c * self.bconvu.peak_power_w(),
            f"{c}xKMUs": c * self.kmu.peak_power_w(),
            f"{c}xAUTOUs": c * self.autou.peak_power_w(),
            f"{c}xAEM": c * self.aem.peak_power_w(),
            "Register Files": self.register_file.peak_power_w(),
            "HBM": self.hbm.peak_power_w(),
            "NoC": self.noc.peak_power_w(),
        }

    def total_area_mm2(self) -> float:
        return sum(self.component_areas_mm2().values())

    def total_peak_power_w(self) -> float:
        return sum(self.component_powers_w().values())
