"""Area/power models for multipliers and modular multipliers (Fig. 4).

We have no PDK, so absolute numbers are anchored to the paper's
published ratios and Table 3 figures; the *scaling law* is structural:
multiplier area grows slightly super-quadratically in word length
(partial-product array + compression tree depth + timing margin).

Paper anchors encoded here (Sec. 3.2 / Fig. 4):

* a 60-bit modular multiplier needs 2.9x the area and 2.8x the power
  of the 36-bit one; a raw multiplier needs 2.8x / 2.7x;
* Booth-composing a 60-bit multiply from four 36-bit ALUs costs 27.5%
  (30%) more area (power) than a native 60-bit multiplier;
* one TBM is 28% larger than a conventional 60-bit multiplier, plus
  19% control logic, and delivers 2x parallel 36-bit throughput
  (Sec. 4.2);
* a group of four independent 36-bit ALUs matching TBM throughput is
  1.5x the area of the TBM group (Sec. 7.6).
"""

from __future__ import annotations

import math

from repro.core import tbm as tbm_model

# Exponents solving ratio(60/36) = anchor from the paper's Fig. 4.
_RATIO_60_36 = 60 / 36
MOD_MULT_AREA_EXP = math.log(2.9) / math.log(_RATIO_60_36)
MOD_MULT_POWER_EXP = math.log(2.8) / math.log(_RATIO_60_36)
MULT_AREA_EXP = math.log(2.8) / math.log(_RATIO_60_36)
MULT_POWER_EXP = math.log(2.7) / math.log(_RATIO_60_36)

# Absolute anchors for one 36-bit unit in a 7 nm-class process,
# back-solved from Table 3: with the structural unit sizes (NTTU 4352,
# BConvU 2048, KMU 768 TBMs per cluster) a uniform TBM area of
# ~3.50e-3 mm^2 reproduces the three compute rows within 2%, which
# fixes the 36-bit modular multiplier at 3.50e-3/(1.28*1.19)/2.9.
MOD_MULT_AREA_36_MM2 = 7.92e-4
MOD_MULT_POWER_36_W = 2.51e-3
MULT_AREA_36_MM2 = 5.22e-4
MULT_POWER_36_W = 1.66e-3

BOOTH_4X36_AREA_OVERHEAD = 0.275   # vs native 60-bit (Sec. 3.2)
BOOTH_4X36_POWER_OVERHEAD = 0.30
QUAD_36_ALU_GROUP_AREA_FACTOR = 1.5  # vs TBM group (Sec. 7.6)


def multiplier_area(bits: int, modular: bool = True) -> float:
    """Area (mm^2) of one ``bits``-wide (modular) multiplier."""
    if modular:
        return MOD_MULT_AREA_36_MM2 * (bits / 36) ** MOD_MULT_AREA_EXP
    return MULT_AREA_36_MM2 * (bits / 36) ** MULT_AREA_EXP


def multiplier_power(bits: int, modular: bool = True) -> float:
    """Peak power (W) of one ``bits``-wide (modular) multiplier."""
    if modular:
        return MOD_MULT_POWER_36_W * (bits / 36) ** MOD_MULT_POWER_EXP
    return MULT_POWER_36_W * (bits / 36) ** MULT_POWER_EXP


def relative_scaling(bits_list, modular: bool = True,
                     reference_bits: int = 36) -> dict[int, dict[str, float]]:
    """Fig. 4 data: area/power of each width relative to 36-bit."""
    ref_area = multiplier_area(reference_bits, modular)
    ref_power = multiplier_power(reference_bits, modular)
    return {bits: {"area": multiplier_area(bits, modular) / ref_area,
                   "power": multiplier_power(bits, modular) / ref_power}
            for bits in bits_list}


def tbm_area(narrow_bits: int = 36, wide_bits: int = 60) -> float:
    """Area of one TBM: a conventional wide multiplier +28% +19% ctrl."""
    base = multiplier_area(wide_bits, modular=True)
    datapath = base * (1 + tbm_model.AREA_OVERHEAD_VS_60BIT)
    return datapath * (1 + tbm_model.CONTROL_LOGIC_OVERHEAD)


def tbm_power(narrow_bits: int = 36, wide_bits: int = 60) -> float:
    """Peak power of one TBM (three base multipliers + combiners)."""
    base = multiplier_power(wide_bits, modular=True)
    return base * (1 + tbm_model.AREA_OVERHEAD_VS_60BIT)


def booth_60_from_36_area() -> float:
    """Area of composing 60-bit from four 36-bit ALUs (Sec. 3.2)."""
    native = multiplier_area(60, modular=True)
    return native * (1 + BOOTH_4X36_AREA_OVERHEAD)


def booth_60_from_36_power() -> float:
    native = multiplier_power(60, modular=True)
    return native * (1 + BOOTH_4X36_POWER_OVERHEAD)


def datapath_multiplier_area(config, count: int) -> float:
    """Area of ``count`` multiplier slots under a chip's datapath choice.

    With the TBM each slot is one TBM; without it (ablations) each
    slot is one fixed-width modular multiplier at the chip's wide
    width (or narrow width for the 36-bit-ALU point).
    """
    if config.has_tbm:
        return count * tbm_area(config.narrow_bits, config.wide_bits)
    return count * multiplier_area(config.wide_bits, modular=True)


def datapath_multiplier_power(config, count: int) -> float:
    if config.has_tbm:
        return count * tbm_power(config.narrow_bits, config.wide_bits)
    return count * multiplier_power(config.wide_bits, modular=True)
