"""AEM: the auxiliary execution module (Sec. 5.7).

Two sub-units keep full-scale bootstrapping accurate and the key
storage small:

* **DSU** (double-prime scaling unit): with 36-bit ciphertext words a
  single rescale cannot remove a full ``Delta^2``; bootstrapping uses
  a *double rescale* dividing by two primes at once.  The DSU is the
  SHARP design: four multipliers, two adders, two modulo units at
  512-wide parallelism.  :func:`double_rescale_coeff` is the
  functional per-coefficient model.
* **EKG** (evaluation key generator): every RLWE key pair ``(b, a)``
  has a uniformly pseudorandom half that can be regenerated on chip
  from a seed instead of being stored/transferred.
  :class:`EvaluationKeyGenerator` reproduces the pseudorandom half
  deterministically, which is what halves key traffic (the factor
  Aether/Hemera apply).
"""

from __future__ import annotations

import numpy as np

from repro.ckks import modmath
from repro.hw import multiplier
from repro.hw.config import ChipConfig


def double_rescale_coeff(value: int, q_second_last: int, q_last: int,
                         target_modulus: int) -> int:
    """Functionally divide a coefficient by two primes with rounding.

    ``round(value / (q_a * q_b)) mod target`` — the DSU's per-element
    operation during bootstrap's double rescale.
    """
    divisor = q_second_last * q_last
    # With floor division, adding divisor//2 rounds to nearest for
    # positive and negative inputs alike.
    quotient = (value + divisor // 2) // divisor
    return quotient % target_modulus


class DoublePrimeScalingUnit:
    """DSU throughput/area model: 4 mults, 2 adds, 2 mod units, 512-wide."""

    MULTIPLIERS = 4
    ADDERS = 2
    MOD_UNITS = 2
    PARALLELISM = 512

    # Per-512-lane-slice cell constants (4 mults, 2 adders, 2 modulo
    # units plus wide accumulators), calibrated to Table 3's AEM row
    # net of the EKG share.
    CELL_AREA_MM2 = 2.93e-3
    CELL_POWER_W = 4.06e-3

    def __init__(self, config: ChipConfig):
        self.config = config

    def cycles_for_rescale(self, ring_degree: int, num_limbs: int) -> float:
        """One double rescale touches every remaining limb element."""
        elements = ring_degree * num_limbs
        return elements / self.PARALLELISM

    def area_mm2(self) -> float:
        return self.PARALLELISM * self.CELL_AREA_MM2

    def peak_power_w(self) -> float:
        return self.PARALLELISM * self.CELL_POWER_W


class EvaluationKeyGenerator:
    """EKG: deterministic regeneration of the pseudorandom key half.

    The pool stores a 32-byte seed per key; on chip, the PRNG expands
    it to the uniform polynomial ``a``.  Regeneration is exact —
    :meth:`expand` with the same seed always returns the same limbs —
    so only the ``b`` half ever crosses the HBM interface.
    """

    SEED_BYTES = 32

    def __init__(self, config: ChipConfig):
        self.config = config
        self.expansions = 0

    def expand(self, seed: int, ring_degree: int, moduli) -> list[np.ndarray]:
        """Expand ``seed`` into one uniform limb per modulus."""
        self.expansions += 1
        rng = np.random.default_rng(seed)
        return [modmath.random_uniform(ring_degree, int(q), rng)
                for q in moduli]

    def traffic_saving_factor(self) -> float:
        """Key bytes that still move off-chip: the stored half only."""
        return 0.5

    def area_mm2(self) -> float:
        """PRNG + expansion datapath, anchored within Table 3's AEM."""
        return 0.67 * (self.config.lanes_per_cluster / 256)

    def peak_power_w(self) -> float:
        return 0.6 * (self.config.lanes_per_cluster / 256)


class AuxiliaryExecutionModule:
    """One cluster's AEM: DSU + EKG."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.dsu = DoublePrimeScalingUnit(config)
        self.ekg = EvaluationKeyGenerator(config)

    def area_mm2(self) -> float:
        return self.dsu.area_mm2() + self.ekg.area_mm2()

    def peak_power_w(self) -> float:
        return self.dsu.peak_power_w() + self.ekg.peak_power_w()
