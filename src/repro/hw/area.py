"""Table 3 / Table 4 roll-ups: chip area and peak power.

The per-unit models in this package are anchored so that the FAST
configuration reproduces the paper's Table 3 within a few percent;
variant configurations (more clusters, different memory, no TBM) then
scale *structurally* — that is what makes the performance-per-area
comparisons in the evaluation meaningful.
"""

from __future__ import annotations

from repro.hw.accelerator import Accelerator
from repro.hw.config import ChipConfig, FAST_CONFIG

# The paper's Table 3, for side-by-side reporting.
PAPER_TABLE3_AREA_MM2 = {
    "4xNTTUs": 60.88,
    "4xBConvUs": 28.89,
    "4xKMUs": 10.58,
    "4xAUTOUs": 0.6,
    "4xAEM": 8.67,
    "Register Files": 123.9,
    "HBM": 29.6,
    "NoC": 20.6,
}
PAPER_TABLE3_POWER_W = {
    "4xNTTUs": 142.7,
    "4xBConvUs": 86.6,
    "4xKMUs": 27.67,
    "4xAUTOUs": 0.8,
    "4xAEM": 10.7,
    "Register Files": 29.4,
    "HBM": 31.8,
    "NoC": 27.0,
}
PAPER_TOTAL_AREA_MM2 = 283.75
PAPER_TOTAL_POWER_W = 337.5


def table3(config: ChipConfig = FAST_CONFIG) -> dict[str, dict[str, float]]:
    """Regenerate Table 3 for a configuration.

    Returns ``{component: {"area_mm2": ..., "power_w": ...}}`` plus a
    ``"Total"`` row.
    """
    chip = Accelerator(config)
    areas = chip.component_areas_mm2()
    powers = chip.component_powers_w()
    rows = {name: {"area_mm2": areas[name], "power_w": powers[name]}
            for name in areas}
    rows["Total"] = {"area_mm2": sum(areas.values()),
                     "power_w": sum(powers.values())}
    return rows


def area_for(config: ChipConfig) -> float:
    return Accelerator(config).total_area_mm2()


def performance_per_area(latency_s: float, config: ChipConfig,
                         reference_latency_s: float,
                         reference_area_mm2: float) -> float:
    """Perf/area gain vs a reference design (higher is better)."""
    own = 1.0 / (latency_s * area_for(config))
    ref = 1.0 / (reference_latency_s * reference_area_mm2)
    return own / ref
