"""BConvU: the base-conversion unit (Sec. 5.3).

FAST splits BConv into an element-wise modular-multiplication stage
(executed by the KMU) followed by a large matrix-matrix product of the
limbs matrix ``(N x alpha_in)`` with the base table ``(alpha_in x
alpha_out)``, which two 256-wide 2D systolic arrays per cluster
accelerate.  Rows share the base-table input, columns carry limb
batches downward, and the bottom row performs the modular reduction.

:class:`SystolicArray` is a cycle-stepped functional model of one
array (used in tests to validate the wavefront), and
:class:`BConvUnit` is the throughput/area model.
"""

from __future__ import annotations

import numpy as np

from repro.hw import multiplier
from repro.hw.config import ChipConfig


class SystolicArray:
    """Cycle-stepped output-along-column systolic MAC array.

    Computes ``out[j, c] = sum_i table[i, j] * limbs[c, i] (mod q_out)``
    for column batches ``c`` streaming through, which is exactly the
    BConv matrix product with the row-shared base table.  The model
    tracks the cycle count including fill/drain, matching
    ``rows + batches`` pipeline behaviour.
    """

    def __init__(self, height: int, width: int):
        self.height = height
        self.width = width
        self.cycles = 0

    def run(self, limbs: np.ndarray, table: np.ndarray,
            modulus: int) -> np.ndarray:
        """Stream ``limbs`` (batches x height) against ``table``
        (height x out_cols), ``out_cols <= width``."""
        batches, a_in = limbs.shape
        a_in2, out_cols = table.shape
        if a_in != a_in2:
            raise ValueError("dimension mismatch")
        if a_in > self.height or out_cols > self.width:
            raise ValueError("matrix larger than the array; block it")
        # Wavefront simulation: partial sums move down one row per
        # cycle; cell (i, j) adds table[i, j] * limb value of its
        # column's current batch.
        out = np.zeros((batches, out_cols), dtype=object)
        for c in range(batches):
            for j in range(out_cols):
                acc = 0
                for i in range(a_in):
                    acc += int(table[i, j]) * int(limbs[c, i])
                out[c, j] = acc % modulus  # bottom-row reduction unit
        # Fill (height) + stream (batches) + drain (out_cols skew).
        self.cycles += a_in + batches + out_cols - 1
        return out


class BConvUnit:
    """One cluster's BConvU: two 256-wide systolic arrays."""

    ARRAYS_PER_CLUSTER = 2

    def __init__(self, config: ChipConfig):
        self.config = config
        self.width = config.lanes_per_cluster
        self.height = config.bconv_array_height
        self.mac_count = self.ARRAYS_PER_CLUSTER * self.width * self.height

    def macs_per_cycle(self, wide: bool) -> float:
        """Each MAC cell holds one TBM (uniform slot rate, see
        ChipConfig.parallel_factor)."""
        return self.mac_count * self.config.parallel_factor(wide)

    def cycles_for_bconv(self, ring_degree: int, a_in: int, a_out: int,
                         wide: bool) -> float:
        """Cycles for one BConv's matrix stage on one cluster."""
        macs = ring_degree * a_in * a_out
        return macs / self.macs_per_cycle(wide)

    # Dense MAC arrays switch harder than butterfly datapaths; this
    # lands Table 3's BConvU power split.
    POWER_CALIBRATION = 1.175

    def area_mm2(self) -> float:
        return multiplier.datapath_multiplier_area(self.config,
                                                   self.mac_count)

    def peak_power_w(self) -> float:
        return self.POWER_CALIBRATION * \
            multiplier.datapath_multiplier_power(self.config,
                                                 self.mac_count)
