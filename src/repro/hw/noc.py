"""Lane-wise NoC connecting the four vector clusters (Fig. 7).

The global data-distribution policy mirrors SHARP/ARK: limbs are
spread limb-wise across clusters, and the only cluster-global traffic
is the inter-lane-group transpose between the two NTT phases plus
operand redistribution for BConv.  We model the NoC as a bisection-
bandwidth constraint with per-hop latency; Table 3 anchors the
area/power (20.6 mm^2 / 27.0 W for the 4-cluster chip).
"""

from __future__ import annotations

from repro.hw.config import ChipConfig

NOC_AREA_ANCHOR_MM2 = 20.6
NOC_POWER_ANCHOR_W = 27.0
ANCHOR_CLUSTERS = 4


class LaneWiseNoc:
    """Cluster interconnect: bandwidth model + transpose latency."""

    def __init__(self, config: ChipConfig):
        self.config = config
        # Bisection: half the lanes exchange words each cycle.
        self.bisection_words_per_cycle = config.total_lanes // 2

    def bisection_bandwidth_bytes(self) -> float:
        return self.bisection_words_per_cycle * 9 * \
            self.config.frequency_hz  # 72-bit words

    def transpose_cycles(self, ring_degree: int, num_limbs: int,
                         wide: bool) -> float:
        """Inter-phase transpose of the NTT's 2D tile, fully pipelined.

        Each limb moves N elements across the bisection once; narrow
        mode packs two elements per word.
        """
        per_word = 1 if wide else self.config.narrow_parallel_factor
        words = ring_degree * num_limbs / per_word
        return words / self.bisection_words_per_cycle

    def _cluster_scale(self) -> float:
        """Additional clusters attach to the existing lane-wise
        channels, so only the endpoints grow — the paper's 8-cluster
        point (+37% total chip area) implies a nearly flat NoC."""
        c = self.config.clusters
        return 1.0 + 0.15 * (c / ANCHOR_CLUSTERS - 1.0)

    def area_mm2(self) -> float:
        return NOC_AREA_ANCHOR_MM2 * self._cluster_scale()

    def peak_power_w(self) -> float:
        return NOC_POWER_ANCHOR_W * self._cluster_scale()
