"""NTTU: the NTT unit (Sec. 5.2).

FAST's NTTU is a radix-2 pipelined FFT datapath organised around the
*four-step/ten-step* decomposition: an N-point NTT is mapped onto a
``sqrt(N) x sqrt4(N) x sqrt4(N)`` arrangement, executed as column-wise
then row-wise passes of small NTTs with a quadrant-swap transpose in
between.  Lanes stream ``sqrt(N)`` elements per cycle in wide (60-bit)
mode and ``2 sqrt(N)`` in narrow (36-bit) mode — the TBM lets every
butterfly multiplier carry two narrow products.

Two models live here:

* :func:`four_step_ntt` — a *functional* model of the decomposed
  dataflow, validated against the direct NTT: this is the paper's
  architectural claim that the 2D decomposition computes the same
  transform while bounding cross-lane wiring;
* :class:`NttUnit` — the throughput/area/power model the simulator
  and the Table 3 roll-up use.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hw import multiplier
from repro.hw.config import ChipConfig


# -- functional model: the four-step decomposition ---------------------------

def _cyclic_ntt_matrix(n1: int, omega: int, modulus: int) -> np.ndarray:
    """Dense n1-point cyclic NTT (used for the small sub-transforms)."""
    mat = np.empty((n1, n1), dtype=object)
    for i in range(n1):
        for j in range(n1):
            mat[i, j] = pow(omega, i * j, modulus)
    return mat


def four_step_ntt(coeffs, n1: int, n2: int, omega: int,
                  modulus: int) -> np.ndarray:
    """Cyclic NTT of length ``n1*n2`` via the four-step method.

    Steps: (1) view the input as an ``n1 x n2`` matrix (column-major),
    (2) n2-point NTTs along rows' counterpart (columns), (3) twiddle
    by ``omega^(i*j)``, (4) n1-point NTTs along the other axis, then
    read out transposed.  This is the building block the ten-step
    method applies recursively; equality with the direct transform is
    the NTTU's functional correctness condition.
    """
    n = n1 * n2
    x = np.array([int(v) % modulus for v in coeffs], dtype=object)
    if len(x) != n:
        raise ValueError("length mismatch")
    mat = x.reshape(n1, n2)                      # row-major n1 x n2
    # Step 1: n1-point NTTs down the columns (stride-n2 subsequences).
    omega_n1 = pow(omega, n2, modulus)
    ntt1 = _cyclic_ntt_matrix(n1, omega_n1, modulus)
    mat = (ntt1 @ mat) % modulus
    # Step 2: twiddle factors omega^(i*j).
    for i in range(n1):
        for j in range(n2):
            mat[i, j] = mat[i, j] * pow(omega, i * j, modulus) % modulus
    # Step 3: n2-point NTTs along the rows.
    omega_n2 = pow(omega, n1, modulus)
    ntt2 = _cyclic_ntt_matrix(n2, omega_n2, modulus)
    mat = (mat @ ntt2.T) % modulus
    # Step 4: transpose read-out: X[j*n1 + i] = mat[i, j].
    return mat.T.reshape(n)


def direct_cyclic_ntt(coeffs, omega: int, modulus: int) -> np.ndarray:
    """Reference O(n^2) cyclic NTT."""
    n = len(coeffs)
    out = np.empty(n, dtype=object)
    for k in range(n):
        acc = 0
        for i in range(n):
            acc = (acc + int(coeffs[i]) * pow(omega, i * k, modulus)) % modulus
        out[k] = acc
    return out


def negacyclic_via_four_step(coeffs, n1: int, n2: int, psi: int,
                             modulus: int) -> np.ndarray:
    """Negacyclic NTT = pre-twist by ``psi^i`` + cyclic four-step.

    This mirrors the NTTU's merged *twisting* stage.
    """
    n = n1 * n2
    twisted = [int(coeffs[i]) * pow(psi, i, modulus) % modulus
               for i in range(n)]
    omega = pow(psi, 2, modulus)
    return four_step_ntt(twisted, n1, n2, omega, modulus)


# -- throughput / area model ---------------------------------------------

class NttUnit:
    """One cluster's NTTU: sizing, throughput and energy."""

    def __init__(self, config: ChipConfig, ring_degree: int = 1 << 16):
        self.config = config
        self.ring_degree = ring_degree
        # Sustaining sqrt(N) elements/cycle through log2(N) butterfly
        # stages needs sqrt(N) * log2(N) / 2 busy multipliers; the two
        # ten-step phases are overlapped (x2) and each lane carries a
        # twisting multiplier.
        root = round(math.sqrt(ring_degree))
        logn = ring_degree.bit_length() - 1
        self.multiplier_count = root * logn + root

    def elements_per_cycle(self, wide: bool) -> int:
        """sqrt(N) in wide mode; 2 sqrt(N) with the TBM in narrow mode."""
        base = round(self.ring_degree ** 0.5)
        return base * self.config.parallel_factor(wide)

    def modops_per_cycle(self, wide: bool) -> float:
        """Sustained modular multiplications per cycle (one cluster).

        The pipeline keeps (log2 N)/2-deep butterfly stages busy; the
        sustained rate is elements/cycle times log2(N)/2 butterflies
        amortised over the streaming passes.
        """
        logn = self.ring_degree.bit_length() - 1
        return self.elements_per_cycle(wide) * logn / 2

    def cycles_for_limbs(self, num_limbs: int, wide: bool) -> float:
        """Cycles to stream ``num_limbs`` (I)NTTs through one cluster."""
        per_limb = self.ring_degree / self.elements_per_cycle(wide)
        return num_limbs * per_limb

    # Activity/wiring calibration landing Table 3's power split
    # (long butterfly wires vs dense MAC arrays differ in switching).
    POWER_CALIBRATION = 0.911

    def area_mm2(self) -> float:
        return multiplier.datapath_multiplier_area(
            self.config, self.multiplier_count)

    def peak_power_w(self) -> float:
        return self.POWER_CALIBRATION * \
            multiplier.datapath_multiplier_power(
                self.config, self.multiplier_count)
