"""Hardware models of the FAST accelerator (Sec. 5).

Each functional unit of the chip has a model here with three faces:

* a **throughput** model (modular ops per cycle, per precision mode)
  used by the cycle simulator;
* an **area/power** model anchored to the paper's Table 3 and Fig. 4;
* where meaningful, a **functional** model (the BConvU/KMU systolic
  arrays and the AutoU Benes permutation are executed element by
  element in tests to validate the dataflow).

``repro.hw.config`` holds the chip configurations (FAST itself plus
the ablation and baseline variants), ``repro.hw.accelerator``
assembles units into a chip, and ``repro.hw.area`` rolls up Table 3.
"""

from repro.hw.config import ChipConfig, FAST_CONFIG
from repro.hw.accelerator import Accelerator

__all__ = ["ChipConfig", "FAST_CONFIG", "Accelerator"]
