"""KMU: the KeyMult unit (Sec. 5.4).

An output-stationary 2D systolic array, 3 wide (the hybrid ``beta``)
by 256 tall, whose MAC cells each hold one TBM, a reduction unit and
an adder.  It multiplies decomposed ciphertext digits with evaluation
keys — vector-vector for the hybrid method, vector-matrix (with input
limb reuse across columns) for KLSS and hoisting — and doubles as the
element-wise engine for HAdd/PMult/PAdd/CMult/CAdd and the first
(element-wise) stage of BConv.

:class:`OutputStationaryArray` functionally validates the reuse
dataflow; :class:`KeyMultUnit` provides throughput/area.
"""

from __future__ import annotations

import numpy as np

from repro.hw import multiplier
from repro.hw.config import ChipConfig


class OutputStationaryArray:
    """Functional model of the KMU's output-stationary dataflow.

    ``run_vector_matrix`` computes ``out[j] = sum_b digits[b] *
    keys[b][j] (mod q)`` with the input digit element broadcast across
    the row (the KLSS/hoisting reuse the paper highlights); each cell
    accumulates into its stationary output register.
    """

    def __init__(self, width: int = 3, height: int = 256):
        self.width = width
        self.height = height
        self.cycles = 0
        self.shared_reads = 0
        self.private_reads = 0

    def run_vector_matrix(self, digits: np.ndarray, keys: np.ndarray,
                          modulus: int, share_inputs: bool = True
                          ) -> np.ndarray:
        """``digits``: (beta, elems); ``keys``: (beta, cols, elems)."""
        beta, elems = digits.shape
        beta2, cols, elems2 = keys.shape
        if beta != beta2 or elems != elems2:
            raise ValueError("dimension mismatch")
        out = np.zeros((cols, elems), dtype=object)
        for b in range(beta):
            for j in range(cols):
                for e in range(elems):
                    out[j, e] = (out[j, e] +
                                 int(digits[b, e]) * int(keys[b, j, e])) \
                        % modulus
                if share_inputs:
                    # One read of the digit element feeds all columns.
                    self.private_reads += elems if j == 0 else 0
                else:
                    self.private_reads += elems
            if share_inputs:
                self.shared_reads += elems * (cols - 1)
        rows_used = min(self.height, elems)
        self.cycles += beta * cols * max(1, elems // rows_used)
        return out


class KeyMultUnit:
    """One cluster's KMU: 3 x 256 MAC cells with TBMs."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.width = config.kmu_array_width
        self.height = config.lanes_per_cluster
        self.mac_count = self.width * self.height

    def macs_per_cycle(self, wide: bool) -> float:
        return self.mac_count * self.config.parallel_factor(wide)

    def cycles_for_keymult(self, total_modmuls: float, wide: bool) -> float:
        return total_modmuls / self.macs_per_cycle(wide)

    def cycles_for_elementwise(self, total_ops: float, wide: bool) -> float:
        """HAdd/PMult/CMult-style ops ride the same array."""
        return total_ops / self.macs_per_cycle(wide)

    def area_mm2(self) -> float:
        return multiplier.datapath_multiplier_area(self.config,
                                                   self.mac_count)

    def peak_power_w(self) -> float:
        return multiplier.datapath_multiplier_power(self.config,
                                                    self.mac_count)
