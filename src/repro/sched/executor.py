"""Functional multiprocess executor: dependency proof by execution.

The cycle model asserts the cluster schedule respects the dataflow
DAG; this module *proves* it on real data.  Every ciphertext becomes a
small RNS polynomial (``limbs x N`` residue matrix over NTT-friendly
wide-path primes, exercising PR 2's vectorised kernels), and every
trace op becomes a deterministic, order-sensitive transform of its
ciphertext:

* plain ops apply an element-wise affine map ``x -> a*x + b`` with
  per-op pseudorandom ``a``/``b`` (affine maps do not commute);
* key-switch ops apply the affine map in the NTT domain
  (forward -> affine -> inverse), which does not commute with the
  coefficient-domain maps;
* rotations additionally apply the negacyclic shift ``x -> X^r * x``
  (a signed permutation, non-commuting with non-constant affines).

Running the DAG out of order therefore yields different bits with
overwhelming probability.  :meth:`FunctionalExecutor.verify` executes
the trace twice — serially in program order, and in parallel across a
fork-based process pool over one shared-memory residue arena, with
nodes dispatched purely by DAG readiness — and compares bit-for-bit.
Each node touches only its own ciphertext's rows and the DAG chains
same-ciphertext nodes, so concurrent nodes never alias: bit-equality
demonstrates the dependency discipline end to end.

When the platform cannot fork a pool (restricted sandboxes), the
parallel run degrades to in-process execution in DAG order — still a
reordering of the program, just not a concurrent one — and reports
``parallel=False``.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import multiprocessing
from multiprocessing import shared_memory

import numpy as np

from repro import obs
from repro.ckks import modmath, primes
from repro.ckks.ntt import NttPlan
from repro.core.optrace import OpTrace

from repro.sched.graph import DataflowGraph, GraphNode

_MIX = 0x9E3779B97F4A7C15  # golden-ratio odd constant for seed mixing


def _rng(seed: int, *parts: int) -> np.random.Generator:
    """Deterministic per-(op, limb) generator, identical everywhere."""
    return np.random.default_rng(
        [seed, *(int(p) & 0xFFFFFFFFFFFFFFFF for p in parts), _MIX])


# -- per-process kernel context (workers rebuild it on first use) --------

_CTX: dict | None = None


def _build_context(moduli: tuple[int, ...], ring_degree: int,
                   seed: int) -> dict:
    return {
        "moduli": moduli,
        "n": ring_degree,
        "seed": seed,
        "kernels": [modmath.get_kernel(q) for q in moduli],
        "plans": [NttPlan(ring_degree, q) for q in moduli],
    }


def _init_worker(moduli: tuple[int, ...], ring_degree: int,
                 seed: int) -> None:
    global _CTX
    _CTX = _build_context(moduli, ring_degree, seed)


def _apply_op(ct: np.ndarray, index: int, rotation: int,
              needs_key_switch: bool, ctx: dict) -> None:
    """Apply op ``index``'s transform to ciphertext rows in place."""
    n = ctx["n"]
    seed = ctx["seed"]
    for j, (kernel, plan) in enumerate(zip(ctx["kernels"],
                                           ctx["plans"])):
        q = kernel.modulus
        rng = _rng(seed, index, j)
        scale = 1 + int(rng.integers(0, q - 1))  # nonzero: stays invertible
        offset = kernel.asresidues(
            rng.integers(0, q, size=n, dtype=np.uint64))
        limb = ct[j]
        if needs_key_switch:
            evals = plan.forward(limb)
            evals = kernel.add(kernel.mul_scalar(evals, scale), offset)
            limb = plan.inverse(evals)
        else:
            limb = kernel.add(kernel.mul_scalar(limb, scale), offset)
        r = rotation % n if rotation else 0
        if r:
            limb = np.roll(limb, r)
            limb[:r] = kernel.neg(limb[:r])
        ct[j] = limb


def _run_node(shm_name: str, shape: tuple, slot: int,
              items: list[tuple], seed: int | None = None) -> int:
    """Pool task: apply one node's ops to its ciphertext slot.

    ``seed`` overrides the worker context's base seed — merged
    multi-stream runs replay stream ``s``'s nodes under that stream's
    own seed, so each stream's bits match its independent serial run.
    """
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        arena = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
        ct = arena[slot]
        ctx = _CTX if seed is None or seed == _CTX["seed"] \
            else {**_CTX, "seed": seed}
        for index, rotation, needs_ks in items:
            _apply_op(ct, index, rotation, needs_ks, ctx)
    finally:
        shm.close()
    return slot


@dataclass
class ExecutionCheck:
    """Result of one serial-vs-parallel bit-exactness run."""

    bit_exact: bool
    parallel: bool
    workers: int
    num_cts: int
    num_ops: int
    num_nodes: int
    mismatched_cts: list = field(default_factory=list)


@dataclass
class StreamExecutionCheck:
    """Result of one merged-vs-independent multi-stream run.

    ``mismatched`` lists ``(stream, local ciphertext id)`` pairs whose
    merged-run bits differ from that stream's independent serial run.
    """

    bit_exact: bool
    parallel: bool
    workers: int
    streams: int
    num_cts: int
    num_ops: int
    num_nodes: int
    mismatched: list = field(default_factory=list)


class FunctionalExecutor:
    """Executes traces functionally, serially or across processes."""

    def __init__(self, ring_degree: int = 256, num_limbs: int = 3,
                 prime_bits: int = 36, seed: int = 20250806,
                 persistent: bool = False):
        self.ring_degree = ring_degree
        self.seed = seed
        self.moduli = tuple(primes.ntt_primes(
            num_limbs, prime_bits, ring_degree))
        self._ctx = _build_context(self.moduli, ring_degree, seed)
        # Persistent mode keeps one fork pool alive across runs so a
        # server dispatching many small batches does not pay the pool
        # spin-up (fork + worker context build) per batch.
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0

    # -- pool lifecycle ----------------------------------------------------
    def ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The resident fork pool: created on first use, reused across
        runs, grown (recreated) when a caller needs more workers.
        Raises ``OSError`` where fork is unavailable — callers fall
        back exactly as with the per-run pools."""
        if self._pool is not None and workers <= self._pool_workers:
            obs.get_tracer().count("sched.executor.pool_reuse")
            return self._pool
        self.close()
        ctx = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.moduli, self.ring_degree, self.seed))
        self._pool = pool
        self._pool_workers = workers
        obs.get_tracer().count("sched.executor.pool_create")
        return pool

    def _checkout_pool(self, workers: int
                       ) -> tuple[ProcessPoolExecutor, bool]:
        """A pool to run on plus whether the caller owns (must shut
        down) it: the resident pool in persistent mode, a fresh
        per-run pool otherwise."""
        if self.persistent:
            return self.ensure_pool(workers), False
        ctx = multiprocessing.get_context("fork")
        pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx,
            initializer=_init_worker,
            initargs=(self.moduli, self.ring_degree, self.seed))
        return pool, True

    def close(self) -> None:
        """Shut down the resident pool (idempotent; the executor
        stays usable — the next persistent run re-creates it)."""
        pool, self._pool, self._pool_workers = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "FunctionalExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- state -------------------------------------------------------------
    def _ct_ids(self, trace: OpTrace) -> list[int]:
        return sorted({op.ct_id for op in trace})

    def stream_seed(self, stream: int) -> int:
        """Stream ``s``'s independent data seed (stream 0 keeps the
        base seed, so a 1-stream merged run equals the plain run)."""
        return (self.seed ^ (stream * _MIX)) & 0xFFFFFFFFFFFFFFFF

    def _fresh_ct(self, ct_id: int, seed: int | None = None) -> np.ndarray:
        seed = self.seed if seed is None else seed
        ct = np.empty((len(self.moduli), self.ring_degree),
                      dtype=np.uint64)
        for j, kernel in enumerate(self._ctx["kernels"]):
            rng = _rng(seed, -1 - ct_id, j)
            ct[j] = kernel.asresidues(rng.integers(
                0, kernel.modulus, size=self.ring_degree,
                dtype=np.uint64))
        return ct

    def initial_state(self, trace: OpTrace,
                      seed: int | None = None) -> dict[int, np.ndarray]:
        return {ct: self._fresh_ct(ct, seed)
                for ct in self._ct_ids(trace)}

    # -- serial reference --------------------------------------------------
    def run_serial(self, trace: OpTrace,
                   seed: int | None = None) -> dict[int, np.ndarray]:
        """Program-order execution: the ground truth."""
        ctx = self._ctx if seed is None or seed == self.seed \
            else {**self._ctx, "seed": seed}
        state = self.initial_state(trace, seed)
        for index, op in enumerate(trace):
            _apply_op(state[op.ct_id], index, op.rotation,
                      op.needs_key_switch, ctx)
        return state

    def run_serial_streams(self, streams) -> list[dict[int, np.ndarray]]:
        """K independent program-order runs, stream ``s`` under
        ``stream_seed(s)`` — the merged run's ground truth."""
        return [self.run_serial(trace, seed=self.stream_seed(s))
                for s, trace in enumerate(streams)]

    # -- parallel execution ------------------------------------------------
    @staticmethod
    def _node_items(node: GraphNode) -> list[tuple]:
        return [(index, op.rotation, op.needs_key_switch)
                for index, op in zip(node.indices, node.ops)]

    def run_parallel(self, trace: OpTrace,
                     graph: DataflowGraph | None = None,
                     workers: int = 2
                     ) -> tuple[dict[int, np.ndarray], bool]:
        """DAG-ready-order execution over a process pool.

        Returns ``(final state, ran_concurrently)``; the second item is
        False when the pool could not be created and the run fell back
        to in-process DAG-order execution.
        """
        if graph is None:
            graph = DataflowGraph.from_trace(trace)
        ct_ids = self._ct_ids(trace)
        slots = {ct: i for i, ct in enumerate(ct_ids)}
        try:
            return self._run_pool(trace, graph, ct_ids, slots, workers)
        except (OSError, ValueError, PermissionError, BrokenProcessPool):
            self.close()  # a broken resident pool must not be reused
            obs.get_tracer().count("sched.executor.pool_fallback")
            state = self._run_inline(trace, graph)
            return state, False

    def _run_pool(self, trace, graph, ct_ids, slots,
                  workers) -> tuple[dict[int, np.ndarray], bool]:
        shape = (len(ct_ids), len(self.moduli), self.ring_degree)
        nbytes = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 8))
        pool, owned = None, False
        try:
            arena = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
            for ct in ct_ids:
                arena[slots[ct]] = self._fresh_ct(ct)
            pool, owned = self._checkout_pool(workers)
            indegree = {n.node_id: len(n.preds) for n in graph.nodes}
            ready = [nid for nid, deg in indegree.items() if deg == 0]
            in_flight = {}
            done = 0
            while done < len(graph.nodes):
                while ready:
                    nid = ready.pop()
                    node = graph.node(nid)
                    future = pool.submit(
                        _run_node, shm.name, shape,
                        slots[node.ct_id], self._node_items(node))
                    in_flight[future] = nid
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    nid = in_flight.pop(future)
                    future.result()  # surface worker exceptions
                    done += 1
                    for succ in graph.node(nid).succs:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            ready.append(succ)
            state = {ct: arena[slots[ct]].copy() for ct in ct_ids}
            return state, True
        finally:
            if owned and pool is not None:
                pool.shutdown(wait=True)
            shm.close()
            shm.unlink()

    def _run_inline(self, trace, graph) -> dict[int, np.ndarray]:
        """Fallback: DAG-order (not program-order) in-process run."""
        state = self.initial_state(trace)
        for nid in graph.topological_order():
            node = graph.node(nid)
            ct = state[node.ct_id]
            for index, rotation, needs_ks in self._node_items(node):
                _apply_op(ct, index, rotation, needs_ks, self._ctx)
        return state

    # -- merged multi-stream execution -------------------------------------
    def _merged_graph(self, streams) -> "DataflowGraph":
        from repro.sched.streams import merge_graphs
        return merge_graphs([DataflowGraph.from_trace(t)
                             for t in streams])

    def run_merged(self, streams, graph: DataflowGraph | None = None,
                   workers: int = 2
                   ) -> tuple[list[dict[int, np.ndarray]], bool]:
        """One DAG-ready-order run of K merged streams.

        ``graph`` must be a stream-tagged merged graph whose node
        ``indices`` and ciphertext ids are *local* to each stream
        (what :func:`~repro.sched.streams.merge_graphs` and
        :func:`~repro.sched.streams.replicate_graph` build); stream
        ``s``'s nodes execute under ``stream_seed(s)``.  Returns the
        per-stream final states plus the concurrency flag.
        """
        streams = list(getattr(streams, "streams", streams))
        if graph is None:
            graph = self._merged_graph(streams)
        slots = {}
        for nid in range(len(graph.nodes)):
            node = graph.node(nid)
            slots.setdefault((node.stream, node.ct_id), len(slots))
        # Untouched ciphertexts still belong to the comparison.
        for s, trace in enumerate(streams):
            for ct in self._ct_ids(trace):
                slots.setdefault((s, ct), len(slots))
        try:
            return self._run_merged_pool(streams, graph, slots, workers)
        except (OSError, ValueError, PermissionError, BrokenProcessPool):
            self.close()  # a broken resident pool must not be reused
            obs.get_tracer().count("sched.executor.pool_fallback")
            return self._run_merged_inline(streams, graph, slots), False

    def _run_merged_pool(self, streams, graph, slots,
                         workers) -> tuple[list[dict], bool]:
        shape = (len(slots), len(self.moduli), self.ring_degree)
        nbytes = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 8))
        pool, owned = None, False
        try:
            arena = np.ndarray(shape, dtype=np.uint64, buffer=shm.buf)
            for (s, ct), slot in slots.items():
                arena[slot] = self._fresh_ct(ct, self.stream_seed(s))
            pool, owned = self._checkout_pool(workers)
            indegree = {n.node_id: len(n.preds) for n in graph.nodes}
            ready = [nid for nid, deg in indegree.items() if deg == 0]
            in_flight = {}
            done = 0
            while done < len(graph.nodes):
                while ready:
                    nid = ready.pop()
                    node = graph.node(nid)
                    future = pool.submit(
                        _run_node, shm.name, shape,
                        slots[(node.stream, node.ct_id)],
                        self._node_items(node),
                        self.stream_seed(node.stream))
                    in_flight[future] = nid
                finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in finished:
                    nid = in_flight.pop(future)
                    future.result()  # surface worker exceptions
                    done += 1
                    for succ in graph.node(nid).succs:
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            ready.append(succ)
            states = [{} for _ in streams]
            for (s, ct), slot in slots.items():
                states[s][ct] = arena[slot].copy()
            return states, True
        finally:
            if owned and pool is not None:
                pool.shutdown(wait=True)
            shm.close()
            shm.unlink()

    def _run_merged_inline(self, streams, graph, slots) -> list[dict]:
        states: list[dict] = [{} for _ in streams]
        for (s, ct) in slots:
            states[s][ct] = self._fresh_ct(ct, self.stream_seed(s))
        for nid in graph.topological_order():
            node = graph.node(nid)
            ctx = {**self._ctx, "seed": self.stream_seed(node.stream)}
            ct = states[node.stream][node.ct_id]
            for index, rotation, needs_ks in self._node_items(node):
                _apply_op(ct, index, rotation, needs_ks, ctx)
        return states

    # -- the proof ---------------------------------------------------------
    def verify(self, trace: OpTrace,
               graph: DataflowGraph | None = None,
               workers: int = 2) -> ExecutionCheck:
        """Serial vs parallel bit-exactness on one trace."""
        tracer = obs.get_tracer()
        with tracer.span("sched.executor.verify", trace=trace.name,
                         workers=workers):
            if graph is None:
                graph = DataflowGraph.from_trace(trace)
            serial = self.run_serial(trace)
            parallel, concurrent = self.run_parallel(
                trace, graph, workers=workers)
            mismatched = [ct for ct in serial
                          if not np.array_equal(serial[ct], parallel[ct])]
            check = ExecutionCheck(
                bit_exact=not mismatched, parallel=concurrent,
                workers=workers, num_cts=len(serial),
                num_ops=len(trace), num_nodes=len(graph.nodes),
                mismatched_cts=mismatched)
        if tracer.enabled:
            tracer.count("sched.executor.verifications")
            if not check.bit_exact:
                tracer.count("sched.executor.mismatches")
        return check

    def verify_streams(self, streams,
                       graph: DataflowGraph | None = None,
                       workers: int = 2) -> StreamExecutionCheck:
        """Merged K-stream execution vs K independent serial runs.

        The merged graph interleaves the streams' nodes arbitrarily
        (subject to per-stream dependencies); bit-equality of every
        stream's final state against its own independent program-order
        run proves the merge fabricated no cross-stream coupling and
        dropped no intra-stream ordering.
        """
        tracer = obs.get_tracer()
        streams = list(getattr(streams, "streams", streams))
        with tracer.span("sched.executor.verify_streams",
                         streams=len(streams), workers=workers):
            if graph is None:
                graph = self._merged_graph(streams)
            reference = self.run_serial_streams(streams)
            merged, concurrent = self.run_merged(
                streams, graph, workers=workers)
            mismatched = [
                (s, ct)
                for s, ref in enumerate(reference)
                for ct in ref
                if not np.array_equal(ref[ct], merged[s][ct])]
            check = StreamExecutionCheck(
                bit_exact=not mismatched, parallel=concurrent,
                workers=workers, streams=len(streams),
                num_cts=sum(len(ref) for ref in reference),
                num_ops=sum(len(t) for t in streams),
                num_nodes=len(graph.nodes),
                mismatched=mismatched)
        if tracer.enabled:
            tracer.count("sched.executor.stream_verifications")
            if not check.bit_exact:
                tracer.count("sched.executor.mismatches")
        return check


def default_workers() -> int:
    """A conservative worker count for the verification runs."""
    return max(2, min(4, (os.cpu_count() or 2) // 2))
