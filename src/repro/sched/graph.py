"""Dataflow-graph lowering: ``OpTrace`` -> explicit dependency DAG.

The trace IR follows single-writer ciphertext versioning: every
operation reads its primary ``ct_id`` and writes the next version of
it.  Def-use chains over those versions are therefore the complete
dependency relation the trace encodes, and lowering is a single
ordered walk: each op depends on the previous writer of its
ciphertext.  Hoist groups fuse into one node per group (they share a
decomposition, so they schedule as a unit); when the graph is built
from Aether's lowered schedules, each *hoist batch* becomes one node
instead, mirroring exactly what the cycle model executes.

CiFlow (PAPERS.md) applies the same op-graph dataflow analysis to
key-switching; here it is what exposes the cluster-level parallelism
of Sec. 5 — operations on unrelated ciphertext chains may run on
different clusters concurrently.

Validation rejects cyclic graphs (impossible under def-use lowering
unless a fused group interleaves same-ciphertext ops — the trace
validator catches that first) and level rises along edges without a
ModRaise, the graph-level form of :meth:`OpTrace.validate`'s
per-ciphertext monotonicity rule.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro import obs
from repro.core import optrace
from repro.core.optrace import FheOp, OpTrace


class GraphValidationError(ValueError):
    """A dataflow graph (or the partition lowering to it) is invalid.

    Raised on cyclic graphs, level rises without ModRaise, duplicate
    or uncovered trace indices — a named error so fuzzers and callers
    can tell rejected input from lowering bugs.  Subclasses
    ``ValueError`` for backward compatibility.
    """


@dataclass
class GraphNode:
    """One schedulable unit: a single op, or a fused hoist batch.

    ``stream`` tags which independent ciphertext stream the node
    belongs to (0 for single-stream graphs); ``indices`` stay *local*
    to that stream's trace, so executors can replay each stream with
    its own seed.
    """

    node_id: int
    indices: tuple[int, ...]
    ops: tuple[FheOp, ...]
    preds: list[int] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    # The lowered kernel schedule, attached by ``from_schedules``.
    schedule: object | None = None
    stream: int = 0

    @property
    def first(self) -> FheOp:
        return self.ops[0]

    @property
    def kind(self) -> str:
        return self.first.kind

    @property
    def level(self) -> int:
        return self.first.level

    @property
    def ct_id(self) -> int:
        return self.first.ct_id

    @property
    def needs_key_switch(self) -> bool:
        return self.first.needs_key_switch

    def __repr__(self) -> str:
        tag = f", s{self.stream}" if self.stream else ""
        return (f"GraphNode({self.node_id}, {self.kind}, "
                f"ct={self.ct_id}, l={self.level}, "
                f"x{len(self.ops)}{tag})")


class DataflowGraph:
    """The dependency DAG of one trace, in trace-index node order."""

    def __init__(self, nodes: list[GraphNode], name: str = "graph"):
        self.nodes = nodes
        self.name = name
        self.num_edges = sum(len(n.preds) for n in nodes)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: OpTrace,
                   partition: list[tuple[int, ...]] | None = None
                   ) -> "DataflowGraph":
        """Lower a validated trace; hoist groups fuse into one node.

        ``partition`` overrides the node grouping with explicit cells
        of trace indices (each cell becomes one node); by default every
        complete hoist group is one cell and every other op its own.
        """
        trace.check()
        if partition is None:
            partition = cls._default_partition(trace)
        return cls._build(trace, partition, schedules=None)

    @classmethod
    def from_schedules(cls, trace: OpTrace,
                       schedules: list) -> "DataflowGraph":
        """Lower against Aether's lowered op schedules: one node per
        :class:`~repro.sim.kernels.OpSchedule` (so a hoist group split
        into several batches becomes several chained nodes)."""
        trace.check()
        partition = [tuple(s.indices) for s in schedules]
        return cls._build(trace, partition, schedules=schedules)

    @staticmethod
    def _default_partition(trace: OpTrace) -> list[tuple[int, ...]]:
        groups: dict[int, list[int]] = {}
        cells: list[tuple[int, ...]] = []
        for index, op in enumerate(trace):
            if op.hoist_group is not None:
                members = groups.get(op.hoist_group)
                if members is None:
                    members = []
                    groups[op.hoist_group] = members
                    cells.append(members)  # placeholder, filled below
                members.append(index)
            else:
                cells.append((index,))
        return [tuple(cell) if isinstance(cell, list) else cell
                for cell in cells]

    @classmethod
    def _build(cls, trace: OpTrace, partition: list[tuple[int, ...]],
               schedules: list | None) -> "DataflowGraph":
        tracer = obs.get_tracer()
        with tracer.span("sched.lower_graph", trace=trace.name):
            owner: dict[int, int] = {}
            nodes: list[GraphNode] = []
            order = sorted(range(len(partition)),
                           key=lambda i: min(partition[i]))
            for node_id, cell_index in enumerate(order):
                cell = tuple(sorted(partition[cell_index]))
                node = GraphNode(
                    node_id=node_id, indices=cell,
                    ops=tuple(trace[i] for i in cell),
                    schedule=(schedules[cell_index]
                              if schedules is not None else None))
                nodes.append(node)
                for i in cell:
                    if i in owner:
                        raise GraphValidationError(
                            f"trace index {i} appears in two nodes "
                            f"(duplicate write)")
                    owner[i] = node_id
            if len(owner) != len(trace):
                missing = sorted(set(range(len(trace))) - set(owner))
                raise GraphValidationError(
                    f"partition does not cover trace indices {missing[:5]}")
            last_writer: dict[int, int] = {}
            for index in range(len(trace)):
                node_id = owner[index]
                ct = trace[index].ct_id
                prev = last_writer.get(ct)
                if prev is not None and prev != node_id:
                    node = nodes[node_id]
                    if prev not in node.preds:
                        node.preds.append(prev)
                        nodes[prev].succs.append(node_id)
                last_writer[ct] = node_id
            graph = cls(nodes, name=trace.name)
            graph.check()
        if tracer.enabled:
            tracer.count("sched.graph.nodes", len(graph.nodes))
            tracer.count("sched.graph.edges", graph.num_edges)
        return graph

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> GraphNode:
        return self.nodes[node_id]

    def sources(self) -> list[GraphNode]:
        return [n for n in self.nodes if not n.preds]

    def topological_order(self) -> list[int]:
        """Kahn's algorithm, smallest node id first (deterministic)."""
        indegree = {n.node_id: len(n.preds) for n in self.nodes}
        frontier = deque(sorted(nid for nid, d in indegree.items()
                                if d == 0))
        order: list[int] = []
        while frontier:
            nid = frontier.popleft()
            order.append(nid)
            for succ in self.nodes[nid].succs:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.nodes):
            raise ValueError(f"graph {self.name!r} contains a cycle")
        return order

    def critical_path(self, weight) -> dict[int, float]:
        """Longest downstream path per node, *including* its own
        weight — the priority function of the list scheduler.

        ``weight`` maps a :class:`GraphNode` to its estimated
        duration in seconds.
        """
        length: dict[int, float] = {}
        for nid in reversed(self.topological_order()):
            node = self.nodes[nid]
            downstream = max((length[s] for s in node.succs), default=0.0)
            length[nid] = weight(node) + downstream
        return length

    def stats(self) -> dict:
        """Shape summary: node/edge counts, chain depth, parallelism."""
        depth_of: dict[int, int] = {}
        for nid in self.topological_order():
            node = self.nodes[nid]
            depth_of[nid] = 1 + max((depth_of[p] for p in node.preds),
                                    default=0)
        depth = max(depth_of.values(), default=0)
        chains = len({(n.stream, n.ct_id) for n in self.nodes})
        return {
            "nodes": len(self.nodes),
            "edges": self.num_edges,
            "depth": depth,
            "streams": len({n.stream for n in self.nodes}),
            "ciphertext_chains": chains,
            "avg_parallelism": (len(self.nodes) / depth) if depth else 0.0,
        }

    # -- validation --------------------------------------------------------
    def validate(self) -> list[str]:
        """Graph integrity violations (empty list = clean)."""
        violations: list[str] = []
        try:
            self.topological_order()
        except ValueError as exc:
            violations.append(str(exc))
        for node in self.nodes:
            for pred in node.preds:
                producer = self.nodes[pred]
                if node.level > producer.level \
                        and node.kind != optrace.MOD_RAISE:
                    violations.append(
                        f"edge {producer.node_id}->{node.node_id}: level "
                        f"rises {producer.level} -> {node.level} on ct "
                        f"{node.ct_id} without ModRaise")
        return violations

    def check(self) -> "DataflowGraph":
        violations = self.validate()
        if violations:
            preview = "; ".join(violations[:5])
            raise GraphValidationError(
                f"dataflow graph {self.name!r} invalid: {preview}")
        return self
