"""The scheduled execution path: serial core loop -> cluster timeline.

:class:`ScheduledEngine` is the parallel counterpart of
:class:`repro.sim.engine.Engine`.  It reuses the serial engine's
whole front half — Aether's offline decisions, the kernel lowering of
:mod:`repro.sim.kernels` — then replaces the in-order core loop with
the dataflow DAG (:mod:`repro.sched.graph`) and the critical-path
cluster scheduler (:mod:`repro.sched.scheduler`).

The serial engine charges every kernel task at chip-aggregate
throughput, i.e. it idealises all clusters ganging on each op with
zero cost; the scheduled engine is the explicit model — each op runs
on *one* cluster's units, and clusters overlap only where the
dataflow permits.  ``speedup`` therefore reads against the serial
one-pipeline execution (``Engine`` on the 1-cluster slice of the same
design point): the classic T_serial / T_parallel, with the 1-cluster
schedule reproducing T_serial as the degenerate case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.ckks.params import CkksParams, SET_I, SET_II
from repro.hw.accelerator import Accelerator
from repro.hw.config import ChipConfig, FAST_CONFIG
from repro.sim.engine import Engine, SimulationResult, UNIT_NAMES
from repro.sim.kernels import lower_trace

from repro.sched.graph import DataflowGraph
from repro.sched.scheduler import ClusterScheduler, ScheduleTimeline


@dataclass
class ClusterReport:
    """One cluster's share of a scheduled run."""

    cluster_id: int
    ops: int
    occupancy: float
    span_fraction: float
    busy_s: dict
    dep_stall_s: float
    evk_stall_s: float


@dataclass
class ScheduledResult:
    """Everything one scheduled run produces."""

    name: str
    clusters: int
    total_s: float
    per_cluster: list = field(default_factory=list)
    stalls: dict = field(default_factory=dict)
    graph_stats: dict = field(default_factory=dict)
    unit_busy_s: dict = field(default_factory=dict)
    kernel_modops: dict = field(default_factory=dict)
    method_ops: dict = field(default_factory=dict)
    stage_s: dict = field(default_factory=dict)
    key_bytes: float = 0.0
    plaintext_bytes: float = 0.0
    num_ops: int = 0
    num_key_switches: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    dependency_violations: int = 0
    serial_total_s: float | None = None

    @property
    def hbm_bytes(self) -> float:
        return self.key_bytes + self.plaintext_bytes

    @property
    def speedup(self) -> float | None:
        """Speedup over serial one-pipeline execution (if measured)."""
        if not self.serial_total_s or not self.total_s:
            return None
        return self.serial_total_s / self.total_s

    @property
    def key_cache_hit_rate(self) -> float:
        lookups = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / lookups if lookups else 0.0

    def mean_occupancy(self) -> float:
        if not self.per_cluster:
            return 0.0
        return sum(c.occupancy for c in self.per_cluster) / \
            len(self.per_cluster)

    def utilisation(self) -> dict:
        """Chip-wide unit busy fractions (cluster-summed busy over
        ``clusters * makespan`` — comparable to the serial engine's)."""
        if self.total_s <= 0:
            return {u: 0.0 for u in UNIT_NAMES}
        return {u: self.unit_busy_s.get(u, 0.0) /
                (self.total_s if u == "hbm"
                 else self.total_s * self.clusters)
                for u in UNIT_NAMES}


class ScheduledEngine:
    """Simulates traces on one design point with explicit clusters."""

    def __init__(self, config: ChipConfig = FAST_CONFIG,
                 hybrid_params: CkksParams = SET_I,
                 klss_params: CkksParams = SET_II,
                 policy_mode: str = "aether"):
        self.config = config
        # The serial engine supplies Aether, the policy machinery and
        # the reference core loop; its accelerator stays chip-wide.
        self.engine = Engine(config, hybrid_params, klss_params,
                             policy_mode)
        self.cluster_accelerator = Accelerator(
            config.per_cluster(), hybrid_params.ring_degree)
        self.scheduler = ClusterScheduler(
            config, hybrid_params, accelerator=self.cluster_accelerator)

    # -- pipeline stages ---------------------------------------------------
    def lower(self, trace) -> DataflowGraph:
        """Trace -> validated dataflow DAG with attached schedules."""
        policy = self.engine.make_policy(trace)
        schedules = lower_trace(trace, self.engine.aether, policy)
        return DataflowGraph.from_schedules(trace, schedules)

    def run(self, trace, name: str | None = None) -> ScheduledResult:
        tracer = obs.get_tracer()
        with tracer.span("sched.run", trace=trace.name,
                         clusters=self.config.clusters):
            graph = self.lower(trace)
            timeline = self.scheduler.run(graph)
            result = self._package(timeline, graph,
                                   name or trace.name)
        if tracer.enabled:
            tracer.count("sched.runs")
            tracer.observe("sched.sim_total_s", result.total_s)
        return result

    def run_with_serial(self, trace,
                        name: str | None = None
                        ) -> tuple[ScheduledResult, SimulationResult]:
        """Scheduled run plus its serial one-pipeline reference."""
        result = self.run(trace, name)
        serial = serial_reference(self.config).run(trace, name)
        result.serial_total_s = serial.total_s
        return result, serial

    def _package(self, timeline: ScheduleTimeline,
                 graph: DataflowGraph, name: str) -> ScheduledResult:
        makespan = timeline.total_s
        per_cluster = [
            ClusterReport(
                cluster_id=c.cluster_id, ops=c.ops,
                occupancy=c.occupancy(makespan),
                span_fraction=c.span_fraction(makespan),
                busy_s=dict(c.busy_s),
                dep_stall_s=c.dep_stall_s, evk_stall_s=c.evk_stall_s)
            for c in timeline.clusters]
        return ScheduledResult(
            name=name, clusters=timeline.num_clusters, total_s=makespan,
            per_cluster=per_cluster,
            stalls=timeline.stall_breakdown(),
            graph_stats=graph.stats(),
            unit_busy_s=dict(timeline.unit_busy_s),
            kernel_modops=dict(timeline.kernel_modops),
            method_ops=dict(timeline.method_ops),
            stage_s=dict(timeline.stage_s),
            key_bytes=timeline.key_bytes,
            plaintext_bytes=timeline.plaintext_bytes,
            num_ops=timeline.num_ops,
            num_key_switches=timeline.num_key_switches,
            key_cache_hits=timeline.key_cache_hits,
            key_cache_misses=timeline.key_cache_misses,
            dependency_violations=len(timeline.violations()))


def serial_reference(config: ChipConfig = FAST_CONFIG,
                     **engine_kwargs) -> Engine:
    """The serial one-pipeline baseline for ``config``: the in-order
    engine on the single-cluster slice of the same design point."""
    return Engine(config.per_cluster(), **engine_kwargs)


def cluster_scaling(trace, counts=(1, 2, 4, 8),
                    config: ChipConfig = FAST_CONFIG,
                    serial: SimulationResult | None = None) -> dict:
    """Speedup curve: scheduled latency per cluster count vs serial.

    Returns ``{"serial_s": ..., "points": [{clusters, sim_s, speedup,
    occupancy, stalls}, ...]}`` — the Fig. 13(b)-shaped scaling data
    the bench harness records.
    """
    if serial is None:
        serial = serial_reference(config).run(trace)
    points = []
    for count in counts:
        variant = config.with_(name=f"{config.name}-{count}C",
                               clusters=count)
        result = ScheduledEngine(variant).run(trace)
        result.serial_total_s = serial.total_s
        points.append({
            "clusters": count,
            "sim_s": result.total_s,
            "speedup": result.speedup,
            "mean_occupancy": result.mean_occupancy(),
            "occupancy": [c.occupancy for c in result.per_cluster],
            "stalls": result.stalls,
            "dependency_violations": result.dependency_violations,
        })
    return {"serial_s": serial.total_s, "points": points}
