"""The scheduled execution path: serial core loop -> cluster timeline.

:class:`ScheduledEngine` is the parallel counterpart of
:class:`repro.sim.engine.Engine`.  It reuses the serial engine's
whole front half — Aether's offline decisions, the kernel lowering of
:mod:`repro.sim.kernels` — then replaces the in-order core loop with
the dataflow DAG (:mod:`repro.sched.graph`) and the critical-path
cluster scheduler (:mod:`repro.sched.scheduler`).

The serial engine charges every kernel task at chip-aggregate
throughput, i.e. it idealises all clusters ganging on each op with
zero cost; the scheduled engine is the explicit model — each op runs
on *one* cluster's units, and clusters overlap only where the
dataflow permits.  ``speedup`` therefore reads against the serial
one-pipeline execution (``Engine`` on the 1-cluster slice of the same
design point): the classic T_serial / T_parallel, with the 1-cluster
schedule reproducing T_serial as the degenerate case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.ckks.params import CkksParams, SET_I, SET_II
from repro.hw.accelerator import Accelerator
from repro.hw.config import ChipConfig, FAST_CONFIG
from repro.sim.engine import Engine, SimulationResult, UNIT_NAMES
from repro.sim.kernels import lower_trace

from repro.sched.graph import DataflowGraph
from repro.sched.scheduler import (DEFAULT_PIPELINE_DEPTH,
                                   DEFAULT_PREFETCH_SLOTS,
                                   ClusterScheduler, ScheduleTimeline)
from repro.sched.streams import merge_graphs, replicate_graph


@dataclass
class ClusterReport:
    """One cluster's share of a scheduled run."""

    cluster_id: int
    ops: int
    occupancy: float
    span_fraction: float
    busy_s: dict
    dep_stall_s: float
    evk_stall_s: float


@dataclass
class ScheduledResult:
    """Everything one scheduled run produces."""

    name: str
    clusters: int
    total_s: float
    per_cluster: list = field(default_factory=list)
    stalls: dict = field(default_factory=dict)
    graph_stats: dict = field(default_factory=dict)
    unit_busy_s: dict = field(default_factory=dict)
    kernel_modops: dict = field(default_factory=dict)
    method_ops: dict = field(default_factory=dict)
    stage_s: dict = field(default_factory=dict)
    key_bytes: float = 0.0
    plaintext_bytes: float = 0.0
    num_ops: int = 0
    num_key_switches: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    dependency_violations: int = 0
    serial_total_s: float | None = None

    @property
    def hbm_bytes(self) -> float:
        return self.key_bytes + self.plaintext_bytes

    @property
    def speedup(self) -> float | None:
        """Speedup over serial one-pipeline execution (if measured)."""
        if not self.serial_total_s or not self.total_s:
            return None
        return self.serial_total_s / self.total_s

    @property
    def key_cache_hit_rate(self) -> float:
        lookups = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / lookups if lookups else 0.0

    def mean_occupancy(self) -> float:
        if not self.per_cluster:
            return 0.0
        return sum(c.occupancy for c in self.per_cluster) / \
            len(self.per_cluster)

    def utilisation(self) -> dict:
        """Chip-wide unit busy fractions (cluster-summed busy over
        ``clusters * makespan`` — comparable to the serial engine's)."""
        if self.total_s <= 0:
            return {u: 0.0 for u in UNIT_NAMES}
        return {u: self.unit_busy_s.get(u, 0.0) /
                (self.total_s if u == "hbm"
                 else self.total_s * self.clusters)
                for u in UNIT_NAMES}


@dataclass
class ThroughputResult(ScheduledResult):
    """A :class:`ScheduledResult` over K interleaved streams.

    ``total_s`` is the merged makespan; the headline figure is the
    *amortized* per-stream time ``total_s / streams`` and its speedup
    against the serial single-stream reference.
    """

    streams: int = 1
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_bytes: float = 0.0
    stolen_ops: int = 0

    @property
    def amortized_s(self) -> float:
        return self.total_s / self.streams if self.streams else 0.0

    @property
    def amortized_speedup(self) -> float | None:
        """Per-stream speedup over the serial reference: how many
        serial pipelines this one chip replaces in steady state."""
        if not self.serial_total_s or not self.total_s:
            return None
        return self.serial_total_s / self.amortized_s


class ScheduledEngine:
    """Simulates traces on one design point with explicit clusters."""

    def __init__(self, config: ChipConfig = FAST_CONFIG,
                 hybrid_params: CkksParams = SET_I,
                 klss_params: CkksParams = SET_II,
                 policy_mode: str = "aether",
                 pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
                 prefetch_slots: int = DEFAULT_PREFETCH_SLOTS):
        self.config = config
        # The serial engine supplies Aether, the policy machinery and
        # the reference core loop; its accelerator stays chip-wide.
        self.engine = Engine(config, hybrid_params, klss_params,
                             policy_mode)
        # Throughput mode lowers against ONE cluster's throughput:
        # every op executes on a single cluster, so Aether's
        # method/hoisting trade-offs (NTT work vs key traffic) must be
        # priced at per-cluster rates — the chip-wide policy under-
        # counts NTT time 4x and picks hoisting plans whose NTT work
        # alone would cap the amortized speedup below the target.
        self.stream_engine = Engine(config.per_cluster(), hybrid_params,
                                    klss_params, policy_mode)
        self.cluster_accelerator = Accelerator(
            config.per_cluster(), hybrid_params.ring_degree)
        self.scheduler = ClusterScheduler(
            config, hybrid_params, accelerator=self.cluster_accelerator)
        self.throughput_scheduler = ClusterScheduler(
            config, hybrid_params, accelerator=self.cluster_accelerator,
            mode="throughput", pipeline_depth=pipeline_depth,
            prefetch_slots=prefetch_slots)

    # -- pipeline stages ---------------------------------------------------
    def lower(self, trace) -> DataflowGraph:
        """Trace -> validated dataflow DAG with attached schedules."""
        policy = self.engine.make_policy(trace)
        schedules = lower_trace(trace, self.engine.aether, policy)
        return DataflowGraph.from_schedules(trace, schedules)

    def lower_for_streams(self, trace) -> DataflowGraph:
        """Trace -> DAG with per-cluster-priced Aether decisions (the
        lowering throughput mode schedules; see ``stream_engine``)."""
        policy = self.stream_engine.make_policy(trace)
        schedules = lower_trace(trace, self.stream_engine.aether, policy)
        return DataflowGraph.from_schedules(trace, schedules)

    def run(self, trace, name: str | None = None) -> ScheduledResult:
        tracer = obs.get_tracer()
        with tracer.span("sched.run", trace=trace.name,
                         clusters=self.config.clusters):
            graph = self.lower(trace)
            timeline = self.scheduler.run(graph)
            result = self._package(timeline, graph,
                                   name or trace.name)
        if tracer.enabled:
            tracer.count("sched.runs")
            tracer.observe("sched.sim_total_s", result.total_s)
        return result

    def run_with_serial(self, trace,
                        name: str | None = None
                        ) -> tuple[ScheduledResult, SimulationResult]:
        """Scheduled run plus its serial one-pipeline reference."""
        result = self.run(trace, name)
        serial = serial_reference(self.config).run(trace, name)
        result.serial_total_s = serial.total_s
        return result, serial

    # -- throughput mode ---------------------------------------------------
    def run_streams(self, trace, streams: int,
                    name: str | None = None) -> ThroughputResult:
        """Throughput mode over K streams of the same workload.

        The trace is lowered *once* and the graph replicated with
        stream tags (:func:`~repro.sched.streams.replicate_graph`),
        then software-pipelined across the clusters.
        """
        tracer = obs.get_tracer()
        with tracer.span("sched.run_streams", trace=trace.name,
                         clusters=self.config.clusters,
                         streams=streams):
            graph = replicate_graph(self.lower_for_streams(trace),
                                    streams)
            timeline = self.throughput_scheduler.run(graph)
            result = self._package_throughput(
                timeline, graph, name or graph.name, streams)
        if tracer.enabled:
            tracer.count("sched.runs")
            tracer.observe("sched.sim_total_s", result.total_s)
        return result

    def run_multi(self, traces,
                  name: str | None = None) -> ThroughputResult:
        """Throughput mode over distinct per-stream traces (each
        lowered independently, merged with stream tags)."""
        graphs = [self.lower_for_streams(trace) for trace in traces]
        graph = merge_graphs(graphs, name=name)
        timeline = self.throughput_scheduler.run(graph)
        return self._package_throughput(timeline, graph, graph.name,
                                        len(graphs))

    def _package_throughput(self, timeline: ScheduleTimeline,
                            graph: DataflowGraph, name: str,
                            streams: int) -> ThroughputResult:
        base = self._package(timeline, graph, name)
        return ThroughputResult(
            **{f: getattr(base, f) for f in base.__dataclass_fields__},
            streams=streams,
            prefetch_hits=timeline.prefetch_hits,
            prefetch_misses=timeline.prefetch_misses,
            prefetch_bytes=timeline.prefetch_bytes,
            stolen_ops=timeline.stolen_ops)

    def _package(self, timeline: ScheduleTimeline,
                 graph: DataflowGraph, name: str) -> ScheduledResult:
        makespan = timeline.total_s
        per_cluster = [
            ClusterReport(
                cluster_id=c.cluster_id, ops=c.ops,
                occupancy=c.occupancy(makespan),
                span_fraction=c.span_fraction(makespan),
                busy_s=dict(c.busy_s),
                dep_stall_s=c.dep_stall_s, evk_stall_s=c.evk_stall_s)
            for c in timeline.clusters]
        return ScheduledResult(
            name=name, clusters=timeline.num_clusters, total_s=makespan,
            per_cluster=per_cluster,
            stalls=timeline.stall_breakdown(),
            graph_stats=graph.stats(),
            unit_busy_s=dict(timeline.unit_busy_s),
            kernel_modops=dict(timeline.kernel_modops),
            method_ops=dict(timeline.method_ops),
            stage_s=dict(timeline.stage_s),
            key_bytes=timeline.key_bytes,
            plaintext_bytes=timeline.plaintext_bytes,
            num_ops=timeline.num_ops,
            num_key_switches=timeline.num_key_switches,
            key_cache_hits=timeline.key_cache_hits,
            key_cache_misses=timeline.key_cache_misses,
            dependency_violations=len(timeline.violations()))


def serial_reference(config: ChipConfig = FAST_CONFIG,
                     **engine_kwargs) -> Engine:
    """The serial one-pipeline baseline for ``config``: the in-order
    engine on the single-cluster slice of the same design point."""
    return Engine(config.per_cluster(), **engine_kwargs)


def cluster_scaling(trace, counts=(1, 2, 4, 8),
                    config: ChipConfig = FAST_CONFIG,
                    serial: SimulationResult | None = None) -> dict:
    """Speedup curve: scheduled latency per cluster count vs serial.

    Returns ``{"serial_s": ..., "points": [{clusters, sim_s, speedup,
    occupancy, stalls}, ...]}`` — the Fig. 13(b)-shaped scaling data
    the bench harness records.
    """
    if serial is None:
        serial = serial_reference(config).run(trace)
    points = []
    for count in counts:
        variant = config.with_(name=f"{config.name}-{count}C",
                               clusters=count)
        result = ScheduledEngine(variant).run(trace)
        result.serial_total_s = serial.total_s
        points.append({
            "clusters": count,
            "sim_s": result.total_s,
            "speedup": result.speedup,
            "mean_occupancy": result.mean_occupancy(),
            "occupancy": [c.occupancy for c in result.per_cluster],
            "stalls": result.stalls,
            "dependency_violations": result.dependency_violations,
        })
    return {"serial_s": serial.total_s, "points": points}


def throughput_scaling(trace, cluster_counts=(1, 2, 4, 8),
                       stream_counts=(1, 2, 4, 8),
                       config: ChipConfig = FAST_CONFIG,
                       serial: SimulationResult | None = None,
                       **engine_kwargs) -> dict:
    """Table-6-style grid: amortized per-op time and utilisation at
    every ``clusters x streams`` point of the throughput scheduler.

    Returns ``{"serial_s": ..., "points": [{clusters, streams, sim_s,
    amortized_s, amortized_speedup, ...}, ...]}``; every point also
    carries the stall taxonomy so throughput mode's deltas against
    latency mode stay visible.
    """
    if serial is None:
        serial = serial_reference(config).run(trace)
    points = []
    for count in cluster_counts:
        variant = config.with_(name=f"{config.name}-{count}C",
                               clusters=count)
        engine = ScheduledEngine(variant, **engine_kwargs)
        graph = engine.lower_for_streams(trace)
        for streams in stream_counts:
            merged = replicate_graph(graph, streams)
            timeline = engine.throughput_scheduler.run(merged)
            result = engine._package_throughput(
                timeline, merged, merged.name, streams)
            result.serial_total_s = serial.total_s
            points.append({
                "clusters": count,
                "streams": streams,
                "sim_s": result.total_s,
                "amortized_s": result.amortized_s,
                "amortized_speedup": result.amortized_speedup,
                "mean_occupancy": result.mean_occupancy(),
                "utilisation": result.utilisation(),
                "stalls": result.stalls,
                "prefetch_hits": result.prefetch_hits,
                "prefetch_misses": result.prefetch_misses,
                "stolen_ops": result.stolen_ops,
                "dependency_violations": result.dependency_violations,
            })
    return {"serial_s": serial.total_s, "points": points}
