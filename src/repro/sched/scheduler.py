"""Critical-path list scheduling of a dataflow graph onto clusters.

The chip's ``num_clusters`` clusters (Sec. 5) are modelled as
independent pipelines, each with its own unit set (NTTU, BConvU, KMU,
AutoU, DSU) at per-cluster throughput; the HBM channel and the
on-chip evaluation-key store stay shared.  Per-cluster timing follows
the serial engine's queueing semantics exactly — stages in order,
tasks of one stage overlapping on different units, the next op
entering a cluster once the previous one clears its first (decompose)
stage — so a 1-cluster schedule reproduces the serial pipeline and
every extra cluster buys only what the dataflow actually permits.

Dispatch is time-ordered list scheduling: among the nodes whose
dependencies allow the earliest start, the one with the longest
remaining critical path wins (ties break on trace order), and it goes
to the cluster that can accept it with the least idle gap.  A
dependent node may start once all its producers have cleared their
first stage — the limb-level forwarding the serial pipeline already
models — but key-switch ops additionally stall at the KeyMult stage
until Hemera's (shared, batched, work-queued) HBM channel reports
their evaluation key resident.

The stall taxonomy every run reports:

* **dependency** — a cluster sat idle because the chosen op's
  producers had not cleared their first stage yet;
* **evk** — the KeyMult stage waited for its evaluation key;
* **structural** — HBM operand/plaintext streaming delays plus
  end-of-schedule drain (clusters idle while the last chains finish).

Two dispatch modes share the per-node execution model:

* **latency** (default, PR 3): critical-path list scheduling that
  minimises one program's makespan, reproducing the serial pipeline
  exactly at 1 cluster;
* **throughput**: FPT-style software pipelining over stream-tagged
  graphs (:mod:`repro.sched.streams`).  Each cluster admits up to
  ``pipeline_depth`` operations into its front end (stream i+1's
  early stages overlap stream i's tail instead of waiting for the
  first stage to drain), streams get round-robin cluster affinity
  with deterministic work-stealing when a pipeline idles, and a
  double-buffered Hemera prefetcher
  (:class:`~repro.hw.memory.EvkPrefetcher`) fetches the next
  key-switches' keys while the current ones compute.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field

from repro import obs
from repro.ckks.keyswitch import cost
from repro.ckks.params import CkksParams
from repro.core import optrace
from repro.core.hemera import KeyCache
from repro.hw.accelerator import Accelerator, KERNEL_UNITS
from repro.hw.config import ChipConfig
from repro.hw.memory import EvkPrefetcher, UnitTimeline, hbm_transfer
from repro.sim.engine import (UNIT_NAMES, WORKING_SET_CIPHERTEXTS,
                              key_identities)
from repro.sim.kernels import KERNEL_DSU, OpSchedule

from repro.sched.graph import DataflowGraph, GraphNode

MODES = ("latency", "throughput")
# Software-pipelined front-end depth: operations one cluster may have
# simultaneously in flight before admission blocks.  Deep enough that
# independent streams backfill each other's stage bubbles (amortized
# speedup at 4 clusters / 8 streams saturates past ~24), shallow
# enough to bound the in-flight working set.
DEFAULT_PIPELINE_DEPTH = 32
DEFAULT_PREFETCH_SLOTS = 2


@dataclass
class NodeTiming:
    """When and where one graph node executed."""

    node_id: int
    cluster: int
    start_s: float
    end_s: float
    first_stage_end_s: float
    dep_ready_s: float
    dep_stall_s: float = 0.0
    evk_stall_s: float = 0.0
    hbm_wait_s: float = 0.0


@dataclass
class ClusterTimeline:
    """Per-cluster execution summary."""

    cluster_id: int
    ops: int = 0
    busy_s: dict = field(default_factory=lambda: defaultdict(float))
    first_start_s: float = 0.0
    last_end_s: float = 0.0
    dep_stall_s: float = 0.0
    evk_stall_s: float = 0.0

    def occupancy(self, makespan: float) -> float:
        """Bottleneck-unit busy fraction of the whole makespan."""
        if makespan <= 0:
            return 0.0
        compute = [v for u, v in self.busy_s.items() if u != "hbm"]
        return max(compute, default=0.0) / makespan

    def span_fraction(self, makespan: float) -> float:
        """Fraction of the makespan the cluster had work in flight."""
        if makespan <= 0:
            return 0.0
        return (self.last_end_s - self.first_start_s) / makespan


@dataclass
class ScheduleTimeline:
    """The scheduler's full output for one graph."""

    num_clusters: int
    total_s: float = 0.0
    timings: dict = field(default_factory=dict)   # node_id -> NodeTiming
    clusters: list = field(default_factory=list)  # ClusterTimeline
    order: list = field(default_factory=list)     # dispatch order
    unit_busy_s: dict = field(default_factory=lambda: defaultdict(float))
    kernel_modops: dict = field(default_factory=lambda: defaultdict(float))
    method_ops: dict = field(default_factory=lambda: defaultdict(int))
    stage_s: dict = field(default_factory=lambda: defaultdict(float))
    key_bytes: float = 0.0
    plaintext_bytes: float = 0.0
    num_ops: int = 0
    num_key_switches: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    dep_stall_s: float = 0.0
    evk_stall_s: float = 0.0
    hbm_wait_s: float = 0.0
    mode: str = "latency"
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    prefetch_bytes: float = 0.0
    stolen_ops: int = 0

    @property
    def structural_stall_s(self) -> float:
        """HBM streaming waits plus end-of-schedule drain idle."""
        drain = sum(self.total_s - c.last_end_s for c in self.clusters)
        return self.hbm_wait_s + drain

    def stall_breakdown(self) -> dict:
        return {
            "dependency_s": self.dep_stall_s,
            "evk_s": self.evk_stall_s,
            "structural_s": self.structural_stall_s,
        }

    def violations(self) -> list[str]:
        """Ordering violations (empty = dependency-safe schedule)."""
        problems = []
        for timing in self.timings.values():
            if timing.start_s + 1e-12 < timing.dep_ready_s:
                problems.append(
                    f"node {timing.node_id} started {timing.start_s:.3e}s "
                    f"before its producers allowed "
                    f"({timing.dep_ready_s:.3e}s)")
        return problems


class ClusterScheduler:
    """Schedules one dataflow graph onto ``config.clusters`` pipelines.

    ``accelerator`` must be the *per-cluster* hardware model (one
    cluster's unit throughputs); the scheduler replicates its unit set
    per cluster and shares the HBM channel and key store across them.
    """

    def __init__(self, config: ChipConfig, hybrid_params: CkksParams,
                 accelerator: Accelerator | None = None,
                 mode: str = "latency",
                 pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
                 prefetch_slots: int = DEFAULT_PREFETCH_SLOTS):
        if mode not in MODES:
            raise ValueError(f"unknown scheduler mode {mode!r}; "
                             f"expected one of {MODES}")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be positive")
        self.config = config
        self.hybrid_params = hybrid_params
        self.accelerator = accelerator or Accelerator(
            config.per_cluster(), hybrid_params.ring_degree)
        self.word_bytes = cost.NARROW_WORD_BYTES
        self.mode = mode
        self.pipeline_depth = pipeline_depth
        self.prefetch_slots = prefetch_slots

    # -- node cost estimation (priority function) --------------------------
    def _task_seconds(self, task) -> float:
        acc = self.accelerator
        if task.kernel == KERNEL_DSU:
            cycles = acc.aem.dsu.cycles_for_rescale(1, int(task.modops))
        elif task.kernel == "automorph":
            cycles = task.modops / acc.unit_throughput(
                "automorph").at(task.wide)
        else:
            cycles = acc.kernel_cycles(task.kernel, task.modops, task.wide)
        return acc.cycles_to_seconds(cycles)

    def estimate_node_s(self, node: GraphNode) -> float:
        """Contention-free node latency: sum of stage bottlenecks."""
        schedule: OpSchedule = node.schedule
        return sum(max((self._task_seconds(t) for t in stage), default=0.0)
                   for stage in schedule.stages)

    def estimate_first_stage_s(self, node: GraphNode) -> float:
        """Contention-free first (decompose) stage bottleneck."""
        schedule: OpSchedule = node.schedule
        if not schedule.stages:
            return 0.0
        return max((self._task_seconds(t) for t in schedule.stages[0]),
                   default=0.0)

    def pipelined_critical_path_s(self, graph: DataflowGraph) -> float:
        """Lower bound on any legal makespan of ``graph`` here.

        Under limb-level forwarding a consumer may start once every
        producer clears its *first* stage, so along a dependency
        chain each non-terminal node contributes at least its
        first-stage bottleneck and the chain's last node its full
        contention-free latency.  Queueing and stalls only add time;
        every schedule this class produces satisfies
        ``total_s >= pipelined_critical_path_s(graph)`` (the
        property-test invariant).
        """
        down: dict[int, float] = {}
        best = 0.0
        for nid in reversed(graph.topological_order()):
            node = graph.nodes[nid]
            tail = max((down[s] for s in node.succs), default=None)
            value = self.estimate_node_s(node)
            if tail is not None:
                value = max(value,
                            self.estimate_first_stage_s(node) + tail)
            down[nid] = value
            best = max(best, value)
        return best

    # -- the dispatch loop -------------------------------------------------
    def run(self, graph: DataflowGraph) -> ScheduleTimeline:
        tracer = obs.get_tracer()
        with tracer.span("sched.schedule", graph=graph.name,
                         clusters=self.config.clusters,
                         mode=self.mode) as span:
            if self.mode == "throughput":
                timeline = self._run_throughput(graph)
            else:
                timeline = self._run(graph)
        if tracer.enabled:
            span.set(total_s=timeline.total_s)
            tracer.count("sched.dispatched", len(timeline.order))
            tracer.observe("sched.dep_stall_s", timeline.dep_stall_s)
            tracer.observe("sched.evk_stall_s", timeline.evk_stall_s)
            tracer.observe("sched.total_s", timeline.total_s)
            if self.mode == "throughput":
                tracer.count("hemera.prefetch.hit",
                             timeline.prefetch_hits)
                tracer.count("hemera.prefetch.miss",
                             timeline.prefetch_misses)
                tracer.count("sched.stolen_ops", timeline.stolen_ops)
        return timeline

    def _run(self, graph: DataflowGraph) -> ScheduleTimeline:
        num_clusters = self.config.clusters
        timeline = ScheduleTimeline(num_clusters=num_clusters)
        timeline.clusters = [ClusterTimeline(c)
                             for c in range(num_clusters)]
        pipeline_ready = [0.0] * num_clusters
        unit_free = [{u: 0.0 for u in UNIT_NAMES}
                     for _ in range(num_clusters)]
        hbm_free = 0.0
        key_cache = KeyCache(self.config.key_storage_bytes)
        if num_clusters == 1:
            # One pipeline has no parallelism to exploit: dispatch in
            # program order, which reproduces the serial engine's
            # timeline exactly (the dependency constraint is subsumed
            # by in-order limb pipelining).  List scheduling below
            # kicks in only when reordering can buy overlap.
            return self._run_in_order(graph, timeline, pipeline_ready,
                                      unit_free, hbm_free, key_cache)
        priority = graph.critical_path(self.estimate_node_s)
        pending = {n.node_id: len(n.preds) for n in graph.nodes}
        # Two-heap dispatch: ``waiting`` orders dependency-released
        # nodes by the time their producers allow them to start;
        # ``released`` holds nodes startable "now", ordered by
        # critical-path priority (longest first, trace order on ties).
        waiting: list = []   # (dep_ready, node_id)
        released: list = []  # (-priority, node_id)
        dep_ready: dict[int, float] = {}
        for node in graph.nodes:
            if pending[node.node_id] == 0:
                dep_ready[node.node_id] = 0.0
                heapq.heappush(released, (-priority[node.node_id],
                                          node.node_id))
        scheduled = 0
        total_nodes = len(graph.nodes)
        finish = 0.0
        while scheduled < total_nodes:
            t_free = min(pipeline_ready)
            while waiting and waiting[0][0] <= t_free:
                ready_t, nid = heapq.heappop(waiting)
                heapq.heappush(released, (-priority[nid], nid))
            if not released:
                # Every startable node waits on producers: advance to
                # the earliest dependency-release time.
                ready_t, nid = heapq.heappop(waiting)
                heapq.heappush(released, (-priority[nid], nid))
                while waiting and waiting[0][0] <= ready_t:
                    t2, nid2 = heapq.heappop(waiting)
                    heapq.heappush(released, (-priority[nid2], nid2))
            _, node_id = heapq.heappop(released)
            node = graph.nodes[node_id]
            ready = dep_ready[node_id]
            cluster = self._pick_cluster(pipeline_ready, ready)
            timing = self._execute(
                node, cluster, ready, pipeline_ready, unit_free,
                hbm_free, key_cache, timeline)
            hbm_free = timing.pop("hbm_free")
            node_timing: NodeTiming = timing["timing"]
            timeline.timings[node_id] = node_timing
            timeline.order.append(node_id)
            finish = max(finish, node_timing.end_s)
            scheduled += 1
            for succ in node.succs:
                pending[succ] -= 1
                if pending[succ] == 0:
                    # Limb-level forwarding: a consumer may enter its
                    # cluster once every producer cleared its first
                    # stage (same rule the serial pipeline applies to
                    # successive ops).
                    ready_at = max(
                        timeline.timings[p].first_stage_end_s
                        for p in graph.nodes[succ].preds)
                    dep_ready[succ] = ready_at
                    heapq.heappush(waiting, (ready_at, succ))
        timeline.total_s = finish
        return timeline

    def _run_in_order(self, graph: DataflowGraph,
                      timeline: ScheduleTimeline,
                      pipeline_ready: list[float],
                      unit_free: list[dict], hbm_free: float,
                      key_cache: KeyCache) -> ScheduleTimeline:
        finish = 0.0
        for node in graph.nodes:
            ready = max((timeline.timings[p].first_stage_end_s
                         for p in node.preds), default=0.0)
            timing = self._execute(node, 0, ready, pipeline_ready,
                                   unit_free, hbm_free, key_cache,
                                   timeline)
            hbm_free = timing.pop("hbm_free")
            node_timing: NodeTiming = timing["timing"]
            timeline.timings[node.node_id] = node_timing
            timeline.order.append(node.node_id)
            finish = max(finish, node_timing.end_s)
        timeline.total_s = finish
        return timeline

    # -- throughput mode: software-pipelined multi-stream dispatch ---------
    def _run_throughput(self, graph: DataflowGraph) -> ScheduleTimeline:
        """FPT-style streaming dispatch over a stream-tagged graph.

        Differences from latency mode:

        * **admission depth** — each cluster's front end holds at
          most ``pipeline_depth`` operations in flight (admitted but
          not yet drained): instead of draining one first stage per
          admission, stream i+1's early stages overlap stream i's
          tail, with unit booking on interval timelines
          (:class:`UnitTimeline`) as the capacity limit;
        * **stream affinity** — node ``n`` runs on cluster
          ``n.stream % clusters`` (round-robin) unless another
          cluster could start it strictly earlier, in which case the
          idle cluster steals it (deterministically, lowest index);
        * **evk prefetch** — a double-buffered
          :class:`~repro.hw.memory.EvkPrefetcher` issues the next
          scheduled key-switches' fetches while compute runs, and
          pins in-flight keys against eviction.

        Dispatch is plain priority order (longest remaining critical
        path, ties to the lowest node id, i.e. the earliest stream):
        a node is dispatched as soon as all its producers are, and
        the earliest-fit unit timelines place its tasks — later
        dispatches backfill earlier bubbles, so dispatch order need
        not track simulated time.
        """
        num_clusters = self.config.clusters
        timeline = ScheduleTimeline(num_clusters=num_clusters,
                                    mode="throughput")
        timeline.clusters = [ClusterTimeline(c)
                             for c in range(num_clusters)]
        pipeline_ready = [0.0] * num_clusters  # admission clocks
        # Interval timelines, not high-water marks: streams backfill
        # the unit bubbles other streams' stage structure leaves.
        unit_free = [{u: UnitTimeline() for u in UNIT_NAMES}
                     for _ in range(num_clusters)]
        # The shared HBM channel is an interval timeline too: a
        # transfer takes the earliest slot at or after its request
        # time instead of queueing behind every earlier-dispatched
        # transfer regardless of when it was needed.
        hbm_free = UnitTimeline()
        key_cache = KeyCache(self.config.key_storage_bytes)
        prefetcher = EvkPrefetcher(key_cache,
                                   self.config.hbm_bandwidth_bytes,
                                   slots=self.prefetch_slots)
        priority = graph.critical_path(self.estimate_node_s)
        pending = {n.node_id: len(n.preds) for n in graph.nodes}
        depth = self.pipeline_depth
        # Per-cluster admission window: min-heap of the ``depth``
        # LARGEST end times among admitted ops.  When the window is
        # full the next op may be admitted at heap[0] — the instant
        # the in-flight count drops below ``depth``.
        windows: list[list[float]] = [[] for _ in range(num_clusters)]

        def admission(c: int) -> float:
            window = windows[c]
            return window[0] if len(window) >= depth else 0.0

        released: list = []  # (-priority, node_id): deps dispatched
        ks_queue: list = []  # key-switch lookahead (prefetch)
        issued: set = set()
        ready_at: dict[int, float] = {}

        def release(nid: int) -> None:
            ready_at[nid] = max(
                (timeline.timings[p].first_stage_end_s
                 for p in graph.nodes[nid].preds), default=0.0)
            heapq.heappush(released, (-priority[nid], nid))
            if graph.nodes[nid].schedule.key_bytes > 0:
                heapq.heappush(ks_queue, (-priority[nid], nid))

        for node in graph.nodes:
            if pending[node.node_id] == 0:
                release(node.node_id)
        # Execution pins held while a node is in flight in simulated
        # time: (end_s, identities), released once the (monotone)
        # dispatch watermark passes end_s.
        live_pins: list = []
        watermark = 0.0
        finish = 0.0
        while released:
            _, node_id = heapq.heappop(released)
            node = graph.nodes[node_id]
            dep_ready = ready_at[node_id]
            home = node.stream % num_clusters
            cluster = home
            start = max(admission(home), dep_ready)
            # Work-stealing with hysteresis: affinity keeps a stream's
            # ops on one cluster (their unit bookings interlock), so
            # another cluster takes the node only when it would start
            # it at least one first-stage earlier — i.e. the home
            # pipeline is genuinely backlogged, not float-jittered.
            margin = self.estimate_first_stage_s(node)
            for c in range(num_clusters):
                other = max(admission(c), dep_ready)
                if other + margin < start:
                    cluster, start = c, other
            if cluster != home:
                timeline.stolen_ops += 1
            watermark = max(watermark, start)
            while live_pins and live_pins[0][0] <= watermark:
                _, identities = heapq.heappop(live_pins)
                prefetcher.unpin_group(identities)
            pipeline_ready[cluster] = admission(cluster)
            timing = self._execute(
                node, cluster, dep_ready, pipeline_ready,
                unit_free, hbm_free, key_cache, timeline,
                prefetcher=prefetcher)
            hbm_free = timing.pop("hbm_free")
            node_timing: NodeTiming = timing["timing"]
            if timing["identities"]:
                heapq.heappush(live_pins, (node_timing.end_s,
                                           timing["identities"]))
            timeline.timings[node_id] = node_timing
            timeline.order.append(node_id)
            finish = max(finish, node_timing.end_s)
            window = windows[cluster]
            heapq.heappush(window, node_timing.end_s)
            if len(window) > depth:
                heapq.heappop(window)
            for succ in node.succs:
                pending[succ] -= 1
                if pending[succ] == 0:
                    release(succ)
            # Double-buffered lookahead: start the next scheduled
            # key-switches' fetches behind the one just dispatched.
            hbm_free = self._issue_prefetches(
                graph, prefetcher, ks_queue, issued,
                timeline, hbm_free, ready_at)
        timeline.total_s = finish
        timeline.prefetch_bytes = prefetcher.issued_bytes
        return timeline

    def _issue_prefetches(self, graph, prefetcher: EvkPrefetcher,
                          ks_queue: list, issued: set,
                          timeline: ScheduleTimeline,
                          hbm_free, ready_at: dict):
        """Issue fetches for the highest-priority released
        key-switches that still lack one, while slots last.

        Each fetch is requested at the consuming node's
        dependency-ready time — when its producers clear their first
        stage the front end provably knows the key is next, and the
        transfer overlaps the node's remaining wait instead of
        queueing at some unrelated dispatch-order time.
        """
        cfg = self.config
        while ks_queue and prefetcher.outstanding < prefetcher.slots:
            _, nid = heapq.heappop(ks_queue)
            if nid in issued or nid in timeline.timings:
                continue  # already prefetched or already executed
            node = graph.nodes[nid]
            schedule: OpSchedule = node.schedule
            identities = key_identities(schedule, cfg.use_minks)
            hbm_free, issued_bytes = prefetcher.issue(
                nid, identities, schedule.key_bytes_per_key, hbm_free,
                ready_at.get(nid, 0.0))
            issued.add(nid)
            if issued_bytes:
                timeline.key_bytes += issued_bytes
                timeline.unit_busy_s["hbm"] += \
                    issued_bytes / cfg.hbm_bandwidth_bytes
        return hbm_free

    @staticmethod
    def _pick_cluster(pipeline_ready: list[float], ready: float) -> int:
        """Best-fit cluster: latest pipeline that is still free by the
        node's dependency-release time (least idle waste); if none is,
        the earliest-free pipeline.

        Ties on equal free times break to the LOWEST cluster index,
        explicitly: the selection must not depend on float identity
        quirks or iteration incidentals, so the same trace always
        yields the same timeline on every Python version (the
        reproducibility regression test pins this).
        """
        feasible = [c for c, free in enumerate(pipeline_ready)
                    if free <= ready]
        if feasible:
            best_free = max(pipeline_ready[c] for c in feasible)
            return next(c for c in feasible
                        if pipeline_ready[c] == best_free)
        best_free = min(pipeline_ready)
        return pipeline_ready.index(best_free)

    # -- one node's execution (serial-engine timing semantics) -------------
    def _execute(self, node: GraphNode, cluster: int, dep_ready: float,
                 pipeline_ready: list[float], unit_free: list[dict],
                 hbm_free: float, key_cache: KeyCache,
                 timeline: ScheduleTimeline,
                 prefetcher: EvkPrefetcher | None = None) -> dict:
        acc = self.accelerator
        cfg = self.config
        schedule: OpSchedule = node.schedule
        op = schedule.op
        cluster_state = timeline.clusters[cluster]
        op_start = max(pipeline_ready[cluster], dep_ready)
        dep_stall = max(0.0, dep_ready - pipeline_ready[cluster])
        timeline.num_ops += 1
        # -- evaluation-key traffic (shared HBM work queue) ---------------
        key_arrival = 0.0
        claimed: tuple = ()
        if schedule.key_bytes > 0:
            timeline.num_key_switches += max(1, schedule.hoisting)
            timeline.method_ops[schedule.method] += \
                max(1, schedule.hoisting)
            identities = key_identities(schedule, cfg.use_minks)
            if prefetcher is not None:
                # Throughput mode: resolve the group through the
                # double-buffered prefetcher.  Keys come back pinned;
                # the dispatch loop unpins them once the node retires.
                stats, hbm_free = prefetcher.claim(
                    node.node_id, identities,
                    schedule.key_bytes_per_key, hbm_free, op_start)
                claimed = tuple(identities)
                key_arrival = stats.arrival_s
                timeline.key_cache_hits += \
                    stats.cache_hits + stats.prefetch_hits
                timeline.key_cache_misses += stats.demand_misses
                timeline.prefetch_hits += stats.prefetch_hits
                timeline.prefetch_misses += stats.demand_misses
                if stats.demand_bytes:
                    timeline.key_bytes += stats.demand_bytes
                    timeline.unit_busy_s["hbm"] += \
                        stats.demand_bytes / cfg.hbm_bandwidth_bytes
            else:
                missing = [k for k in identities
                           if not key_cache.contains(k)]
                timeline.key_cache_hits += len(identities) - len(missing)
                timeline.key_cache_misses += len(missing)
                if missing:
                    bytes_needed = \
                        schedule.key_bytes_per_key * len(missing)
                    duration = bytes_needed / cfg.hbm_bandwidth_bytes
                    hbm_free, key_arrival = hbm_transfer(
                        hbm_free, op_start, duration)
                    timeline.key_bytes += bytes_needed
                    timeline.unit_busy_s["hbm"] += duration
                    for k in missing:
                        key_cache.insert(k, schedule.key_bytes_per_key)
        # -- ciphertext working-set spills --------------------------------
        operand_arrival = 0.0
        if schedule.key_bytes > 0:
            data_region = cfg.onchip_memory_bytes - cfg.key_storage_bytes
            ws = WORKING_SET_CIPHERTEXTS * cost.ciphertext_bytes(
                self.hybrid_params, op.level)
            spill = max(0.0, ws - data_region)
            if spill > 0:
                duration = spill / cfg.hbm_bandwidth_bytes
                hbm_free, operand_arrival = hbm_transfer(
                    hbm_free, op_start, duration)
                timeline.plaintext_bytes += spill
                timeline.unit_busy_s["hbm"] += duration
        # -- plaintext streaming for PMult --------------------------------
        if op.kind == optrace.PMULT:
            pt_bytes = self.hybrid_params.ring_degree * self.word_bytes
            duration = pt_bytes / cfg.hbm_bandwidth_bytes
            hbm_free, pt_arrival = hbm_transfer(
                hbm_free, op_start, duration)
            key_arrival = max(key_arrival, pt_arrival)
            timeline.plaintext_bytes += pt_bytes
            timeline.unit_busy_s["hbm"] += duration
        # -- staged execution on this cluster's units ---------------------
        stage_ready = max(op_start, operand_arrival)
        hbm_wait = max(0.0, operand_arrival - op_start)
        evk_stall = 0.0
        first_stage_end = op_start
        free = unit_free[cluster]
        for stage_idx, tasks in enumerate(schedule.stages):
            if stage_idx == schedule.keymult_stage and key_arrival:
                if key_arrival > stage_ready:
                    evk_stall += key_arrival - stage_ready
                    stage_ready = key_arrival
            stage_end = stage_ready
            for task in tasks:
                unit = KERNEL_UNITS.get(task.kernel, task.kernel)
                if task.kernel == KERNEL_DSU:
                    unit = "dsu"
                seconds = self._task_seconds(task)
                slot = free[unit]
                if isinstance(slot, UnitTimeline):
                    begin = slot.alloc(stage_ready, seconds)
                else:
                    begin = max(stage_ready, slot)
                    free[unit] = begin + seconds
                end = begin + seconds
                cluster_state.busy_s[unit] += seconds
                timeline.unit_busy_s[unit] += seconds
                timeline.kernel_modops[task.kernel] += task.modops
                stage_end = max(stage_end, end)
            if stage_idx == 0:
                first_stage_end = stage_end
            stage_ready = stage_end
        op_end = stage_ready
        label = schedule.stage_label or "main"
        timeline.stage_s[label] += op_end - op_start
        if cluster_state.ops == 0:
            cluster_state.first_start_s = op_start
        cluster_state.ops += 1
        cluster_state.last_end_s = max(cluster_state.last_end_s, op_end)
        cluster_state.dep_stall_s += dep_stall
        cluster_state.evk_stall_s += evk_stall
        timeline.dep_stall_s += dep_stall
        timeline.evk_stall_s += evk_stall
        timeline.hbm_wait_s += hbm_wait
        pipeline_ready[cluster] = first_stage_end
        return {
            "hbm_free": hbm_free,
            "identities": claimed,
            "timing": NodeTiming(
                node_id=node.node_id, cluster=cluster, start_s=op_start,
                end_s=op_end, first_stage_end_s=first_stage_end,
                dep_ready_s=dep_ready, dep_stall_s=dep_stall,
                evk_stall_s=evk_stall, hbm_wait_s=hbm_wait),
        }
