"""Multi-stream front-end: K independent ciphertext streams, one graph.

FPT (SNIPPETS.md Snippet 1) saturates its arithmetic units not by
making one bootstrap faster but by *streaming* independent ones
through throughput-balanced pipeline stages.  This module is the
trace-level counterpart: it takes K independent streams (the same
workload on independent data, or distinct traces) and presents them
to the scheduler as one merged dataflow graph whose nodes carry a
``stream`` tag.  Ciphertext ids are re-based per stream so chains of
different streams never alias — aliasing would fabricate def-use
dependencies between operations that are independent by construction.

Node ``indices`` stay *local* to each stream's trace: the functional
executor replays stream ``s`` with its own seed and its own op
indices, so a merged run is comparable bit-for-bit against K
independent serial runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.optrace import OpTrace

from repro.sched.graph import DataflowGraph, GraphNode


class StreamMergeError(ValueError):
    """Streams cannot be merged into one graph.

    Raised on cross-stream ciphertext-id collisions (when re-basing
    is disabled) and on empty or inconsistent stream sets — a named
    error so fuzzers can tell rejected input from merge bugs.
    """


@dataclass
class MultiStreamTrace:
    """K validated streams plus their merged, collision-free trace.

    ``streams`` keep their original (local) ciphertext ids and op
    indices; ``merged`` re-bases ciphertext ids by ``ct_stride`` per
    stream so the usual def-use lowering applies to the union.
    """

    name: str
    streams: list = field(default_factory=list)   # list[OpTrace]
    merged: OpTrace | None = None
    ct_stride: int = 0

    @property
    def num_streams(self) -> int:
        return len(self.streams)

    def stream_of_ct(self, merged_ct_id: int) -> int:
        return merged_ct_id // self.ct_stride if self.ct_stride else 0

    def local_ct(self, merged_ct_id: int) -> int:
        return merged_ct_id % self.ct_stride if self.ct_stride \
            else merged_ct_id

    def stream_cts(self, stream: int) -> list[int]:
        """The local ciphertext ids stream ``stream`` touches."""
        return sorted({op.ct_id for op in self.streams[stream]})


def merge_streams(streams, name: str | None = None,
                  rebase: bool = True) -> MultiStreamTrace:
    """Merge independent per-stream traces into one trace.

    Each stream is validated first (:class:`TraceValidationError`
    propagates).  With ``rebase`` (the default) ciphertext ids are
    shifted by one shared stride per stream, which makes collisions
    impossible; with ``rebase=False`` the caller asserts the streams
    already use disjoint ids, and any cross-stream collision raises
    :class:`StreamMergeError` — a collision would chain unrelated
    streams through a fabricated def-use edge and silently serialise
    (or corrupt) them.
    """
    streams = list(streams)
    if not streams:
        raise StreamMergeError("cannot merge zero streams")
    for trace in streams:
        trace.check()
    if not rebase:
        seen: dict[int, int] = {}
        for s, trace in enumerate(streams):
            for ct in {op.ct_id for op in trace}:
                owner = seen.setdefault(ct, s)
                if owner != s:
                    raise StreamMergeError(
                        f"ciphertext id {ct} appears in streams "
                        f"{owner} and {s} (cross-stream collision); "
                        f"re-base ids or pass rebase=True")
    stride = max((trace._ct_stride() for trace in streams), default=0)
    merged_name = name or f"{streams[0].name}x{len(streams)}streams"
    ops = []
    group_offset = 0
    for s, trace in enumerate(streams):
        groups = [op.hoist_group for op in trace
                  if op.hoist_group is not None]
        for op in trace:
            changes = {}
            if rebase:
                changes["ct_id"] = op.ct_id + s * stride
            if op.hoist_group is not None:
                changes["hoist_group"] = op.hoist_group + group_offset
            ops.append(op.with_(**changes) if changes else op)
        group_offset += (max(groups) + 1) if groups else 0
    merged = OpTrace(ops, name=merged_name)
    merged.check()
    return MultiStreamTrace(name=merged_name, streams=streams,
                            merged=merged,
                            ct_stride=stride if rebase else 0)


def replicate(trace: OpTrace, streams: int,
              name: str | None = None) -> MultiStreamTrace:
    """The common case: K streams of the same workload on
    independent data."""
    if streams < 1:
        raise StreamMergeError("stream count must be positive")
    return merge_streams([trace] * streams,
                         name=name or f"{trace.name}x{streams}streams")


def _copy_nodes(graph: DataflowGraph, stream: int,
                offset: int) -> list[GraphNode]:
    return [GraphNode(node_id=node.node_id + offset,
                      indices=node.indices, ops=node.ops,
                      preds=[p + offset for p in node.preds],
                      succs=[s + offset for s in node.succs],
                      schedule=node.schedule, stream=stream)
            for node in graph.nodes]


def merge_graphs(graphs, name: str | None = None) -> DataflowGraph:
    """Union of per-stream DAGs as one stream-tagged graph.

    Stream ``s``'s nodes keep their internal edges with node ids
    shifted by the preceding streams' node counts; no cross-stream
    edges exist (the streams are independent by construction).
    """
    graphs = list(graphs)
    if not graphs:
        raise StreamMergeError("cannot merge zero stream graphs")
    nodes: list[GraphNode] = []
    offset = 0
    for stream, graph in enumerate(graphs):
        nodes.extend(_copy_nodes(graph, stream, offset))
        offset += len(graph.nodes)
    merged_name = name or f"{graphs[0].name}x{len(graphs)}streams"
    return DataflowGraph(nodes, name=merged_name).check()


def replicate_graph(graph: DataflowGraph, streams: int,
                    name: str | None = None) -> DataflowGraph:
    """K stream-tagged copies of one lowered graph.

    Identical workloads share Aether's lowering: the base trace is
    lowered once and each stream reuses the attached
    :class:`~repro.sim.kernels.OpSchedule` objects (they are
    read-only to the scheduler), so the front-end costs O(nodes)
    per extra stream instead of a full re-lowering.
    """
    if streams < 1:
        raise StreamMergeError("stream count must be positive")
    return merge_graphs([graph] * streams,
                        name=name or f"{graph.name}x{streams}streams")
