"""Dataflow scheduling and the parallel cluster runtime (Sec. 5).

The serial engine (:mod:`repro.sim.engine`) executes traces in
program order on one idealised ganged pipeline.  This package lifts
the trace into an explicit dependency DAG and exploits it:

* :mod:`repro.sched.graph` — ``OpTrace`` -> dataflow DAG via def-use
  chains over ciphertext versions, with hoist-group fusion;
* :mod:`repro.sched.streams` — the multi-stream front end: K
  independent ciphertext streams merged into one stream-tagged graph
  for throughput scheduling;
* :mod:`repro.sched.scheduler` — critical-path list scheduling onto
  per-cluster pipelines sharing the HBM channel and key cache, in
  ``latency`` (one program's makespan) and ``throughput``
  (software-pipelined multi-stream) modes;
* :mod:`repro.sched.simulate` — the :class:`ScheduledEngine` wrapper
  reporting occupancy, stall breakdowns and speedup vs serial, plus
  the Table-6-style ``throughput_scaling`` grid;
* :mod:`repro.sched.executor` — a multiprocess functional executor
  proving the dependency discipline bit-exactly on real residues,
  per stream for merged multi-stream graphs.
"""

from repro.sched.executor import (ExecutionCheck, FunctionalExecutor,
                                  StreamExecutionCheck)
from repro.sched.graph import (DataflowGraph, GraphNode,
                               GraphValidationError)
from repro.sched.scheduler import (DEFAULT_PIPELINE_DEPTH,
                                   DEFAULT_PREFETCH_SLOTS,
                                   ClusterScheduler, ClusterTimeline,
                                   NodeTiming, ScheduleTimeline)
from repro.sched.simulate import (ClusterReport, ScheduledEngine,
                                  ScheduledResult, ThroughputResult,
                                  cluster_scaling, serial_reference,
                                  throughput_scaling)
from repro.sched.streams import (MultiStreamTrace, StreamMergeError,
                                 merge_graphs, merge_streams,
                                 replicate, replicate_graph)

__all__ = [
    "ClusterReport",
    "ClusterScheduler",
    "ClusterTimeline",
    "DEFAULT_PIPELINE_DEPTH",
    "DEFAULT_PREFETCH_SLOTS",
    "DataflowGraph",
    "ExecutionCheck",
    "FunctionalExecutor",
    "GraphNode",
    "GraphValidationError",
    "MultiStreamTrace",
    "NodeTiming",
    "ScheduleTimeline",
    "ScheduledEngine",
    "ScheduledResult",
    "StreamExecutionCheck",
    "StreamMergeError",
    "ThroughputResult",
    "cluster_scaling",
    "merge_graphs",
    "merge_streams",
    "replicate",
    "replicate_graph",
    "serial_reference",
    "throughput_scaling",
]
