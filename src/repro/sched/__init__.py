"""Dataflow scheduling and the parallel cluster runtime (Sec. 5).

The serial engine (:mod:`repro.sim.engine`) executes traces in
program order on one idealised ganged pipeline.  This package lifts
the trace into an explicit dependency DAG and exploits it:

* :mod:`repro.sched.graph` — ``OpTrace`` -> dataflow DAG via def-use
  chains over ciphertext versions, with hoist-group fusion;
* :mod:`repro.sched.scheduler` — critical-path list scheduling onto
  per-cluster pipelines sharing the HBM channel and key cache;
* :mod:`repro.sched.simulate` — the :class:`ScheduledEngine` wrapper
  reporting occupancy, stall breakdowns and speedup vs serial;
* :mod:`repro.sched.executor` — a multiprocess functional executor
  proving the dependency discipline bit-exactly on real residues.
"""

from repro.sched.executor import ExecutionCheck, FunctionalExecutor
from repro.sched.graph import DataflowGraph, GraphNode
from repro.sched.scheduler import (ClusterScheduler, ClusterTimeline,
                                   NodeTiming, ScheduleTimeline)
from repro.sched.simulate import (ClusterReport, ScheduledEngine,
                                  ScheduledResult, cluster_scaling,
                                  serial_reference)

__all__ = [
    "ClusterReport",
    "ClusterScheduler",
    "ClusterTimeline",
    "DataflowGraph",
    "ExecutionCheck",
    "FunctionalExecutor",
    "GraphNode",
    "NodeTiming",
    "ScheduleTimeline",
    "ScheduledEngine",
    "ScheduledResult",
    "cluster_scaling",
    "serial_reference",
]
