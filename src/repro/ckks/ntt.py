"""Negacyclic number-theoretic transform over one RNS prime.

This is the software model of the accelerator's NTTU: it converts a
limb between *coefficient* representation and *evaluation* (point)
representation so that polynomial multiplication in
``Z_q[X]/(X^N + 1)`` becomes element-wise multiplication.

The implementation is the standard merged-twist radix-2 pair:

* forward: Cooley-Tukey butterflies on bit-reversed powers of ``psi``
  (a primitive 2N-th root of unity), which folds the negacyclic
  twisting into the butterflies;
* inverse: Gentleman-Sande butterflies on powers of ``psi^-1``
  followed by multiplication with ``N^-1``.

Butterflies are stage-vectorised: each of the log2(N) stages reshapes
the working array into an (m, 2t) matrix of butterfly groups and
applies the whole stage as a handful of array-wide operations, so no
Python loop runs per butterfly group.  The twiddle tables follow the
plan's width path (see :mod:`repro.ckks.modmath`): int64 on the
narrow path, uint64 with precomputed Shoup companions on the wide
path (lazy-reduction mulmod butterflies), Python ints on the exact
object path.
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter

import numpy as np

import repro.backend as backend_mod
from repro.ckks import modmath, primes
from repro.obs.tracer import get_tracer


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    out = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        out = (out << 1) | (idx & 1)
        idx >>= 1
    return out


def eval_point_exponents(n: int) -> np.ndarray:
    """Root exponents ``e(i)`` with ``forward(a)[i] = a(psi^e(i))``.

    The merged-twist Cooley-Tukey network evaluates the input at every
    odd power of the primitive 2N-th root ``psi`` (the negacyclic
    points), emitting slot ``i`` at exponent ``2 * brv(i) + 1`` where
    ``brv`` is :func:`bit_reverse_permutation`.  Automorphism plans
    (:class:`repro.ckks.rns.AutoPlan`) lean on this ordering to turn
    ``X -> X^g`` into a pure permutation of evaluation slots: slot
    holding point ``psi^e`` must move to the slot holding
    ``psi^(e * g mod 2N)``.
    """
    if n < 1 or n & (n - 1):
        raise ValueError("ring degree must be a power of two")
    return 2 * bit_reverse_permutation(n) + 1


class NttPlan:
    """Precomputed tables for the negacyclic NTT of one prime.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        NTT-friendly prime with ``modulus = 1 (mod 2N)``.
    path:
        Optional width-path override (e.g. ``modmath.OBJECT`` to force
        the exact arbitrary-precision oracle for a modulus that would
        auto-select a faster path).  Defaults to the modulus's
        auto-selected path.

    The plan owns the bit-reversed twiddle tables; limbs transform
    in-place-style through :meth:`forward` / :meth:`inverse`.
    """

    def __init__(self, ring_degree: int, modulus: int,
                 path: str | None = None, backend=None):
        if ring_degree & (ring_degree - 1):
            raise ValueError("ring degree must be a power of two")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}")
        self.n = ring_degree
        self.modulus = modulus
        self._kernel = modmath.get_kernel(modulus, path, backend)
        self.path = self._kernel.path
        self.backend = self._kernel.backend
        psi = primes.root_of_unity(2 * ring_degree, modulus)
        psi_inv = modmath.inv_mod(psi, modulus)
        # Twiddle tables are built host-side (exact Python ints) and
        # cross the residency boundary exactly once, here at build.
        self._psi_rev = self._power_table(psi)
        self._psi_inv_rev = self._power_table(psi_inv)
        self._n_inv = modmath.inv_mod(ring_degree, modulus)
        if self.path == modmath.WIDE:
            kernel = self._kernel
            self._psi_rev_shoup = self.backend.from_host(
                kernel.shoup_table(self._psi_rev))
            self._psi_inv_rev_shoup = self.backend.from_host(
                kernel.shoup_table(self._psi_inv_rev))
            self._n_inv_pair = kernel.shoup(self._n_inv)
        else:
            self._psi_rev_shoup = None
            self._psi_inv_rev_shoup = None
            self._n_inv_pair = None

    def _power_table(self, base: int) -> np.ndarray:
        """Powers base^0..base^(N-1) stored in bit-reversed order."""
        n, q = self.n, self.modulus
        powers = np.empty(n, dtype=object)
        acc = 1
        for i in range(n):
            powers[i] = acc
            acc = acc * base % q
        rev = bit_reverse_permutation(n)
        return self._kernel.asresidues(powers[rev])

    def _stage_mul(self, values, twiddles, shoup):
        """Butterfly-stage multiply: values (m, t) by twiddle column."""
        if self.path == modmath.WIDE:
            return self._kernel.mul_shoup(values, twiddles, shoup)
        return np.mod(values * twiddles, self.modulus)

    def _forward_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Cooley-Tukey butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(m, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_rev[m:2 * m].reshape(m, 1)
            ws = self._psi_rev_shoup[m:2 * m].reshape(m, 1) if wide else None
            prod = self._stage_mul(hi, w, ws)
            new_hi = kernel.sub(lo, prod)
            view[:, :t] = kernel.add(lo, prod)
            view[:, t:] = new_hi
            m *= 2

    def _inverse_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Gentleman-Sande butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_inv_rev[h:2 * h].reshape(h, 1)
            ws = (self._psi_inv_rev_shoup[h:2 * h].reshape(h, 1)
                  if wide else None)
            # diff must be taken before lo's slot is overwritten:
            # lo/hi are views into the working array.
            diff = kernel.sub(lo, hi)
            view[:, :t] = kernel.add(lo, hi)
            view[:, t:] = self._stage_mul(diff, w, ws)
            t *= 2
            m = h

    # The object path keeps the textbook per-group loops below instead
    # of sharing the stage-vectorised code: the oracle's value is that
    # it is an independent, obviously-correct implementation, so a bug
    # in the vectorised stages cannot cancel against itself when the
    # property tests cross-check the two.

    def _forward_groups(self, a: np.ndarray) -> None:
        """Per-group Cooley-Tukey butterflies (object-path oracle)."""
        q = self.modulus
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            for i in range(m):
                w = int(self._psi_rev[m + i])
                j1 = 2 * i * t
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                prod = np.mod(hi * w, q)
                a[j1 + t:j1 + 2 * t] = np.mod(lo - prod, q)
                a[j1:j1 + t] = np.mod(lo + prod, q)
            m *= 2

    def _inverse_groups(self, a: np.ndarray) -> None:
        """Per-group Gentleman-Sande butterflies (object-path oracle)."""
        q = self.modulus
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            j1 = 0
            for i in range(h):
                w = int(self._psi_inv_rev[h + i])
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                diff = np.mod(lo - hi, q)
                a[j1:j1 + t] = np.mod(lo + hi, q)
                a[j1 + t:j1 + 2 * t] = np.mod(diff * w, q)
                j1 += 2 * t
            t *= 2
            m = h

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient form -> evaluation form (negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        a = self._kernel.asresidues(coeffs)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._forward_groups(a)
        else:
            self._forward_stages(a)
        if tracer.enabled:
            tracer.count("ntt.forward")
            tracer.count("ntt.path." + self.path)
            tracer.observe("ntt.forward_s", perf_counter() - start)
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation form -> coefficient form (inverse negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        kernel = self._kernel
        a = kernel.asresidues(evals)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._inverse_groups(a)
        else:
            self._inverse_stages(a)
        if self.path == modmath.WIDE:
            out = kernel.mul_shoup(a, *self._n_inv_pair)
        else:
            out = kernel.mul(a, self._n_inv)
        if tracer.enabled:
            tracer.count("ntt.inverse")
            tracer.count("ntt.path." + self.path)
            tracer.observe("ntt.inverse_s", perf_counter() - start)
        return out


# -- batched multi-limb transforms ----------------------------------------

# Bound on cached batch plans: one entry per (N, basis) pair actually
# transformed.  A full workload touches one basis per level per
# key-switch flavour — a few dozen — and each entry only *references*
# per-prime twiddle tables plus small stacked copies, so eviction
# costs a restack, never a root search.
BATCH_PLAN_CACHE_MAXSIZE = 64


class BatchNttPlan:
    """Stage-vectorised NTT over every limb of one RNS basis at once.

    The per-limb :class:`NttPlan` loop spends most of its time in
    Python dispatch: ``k`` limbs times ``log2 N`` stages times a
    handful of kernel calls each.  This plan stacks all limbs whose
    modulus fits the uint64 datapath (``q < 2^62`` — both the narrow
    and wide width paths) into one ``(k, N)`` array and per-basis
    ``(k, N)`` twiddle/Shoup tables, so each butterfly stage is a
    single set of whole-batch numpy ops with the per-limb modulus
    broadcast as a ``(k, 1, 1)`` column.  This is the software shape
    of the accelerator's NTTU operating on a whole limb set per
    ModUp digit.

    Limbs over the exact ``object`` path (moduli beyond 62 bits) fall
    back to their scalar plans; results are bit-identical to the
    per-limb plans on every path.
    """

    def __init__(self, ring_degree: int, moduli: tuple[int, ...],
                 backend=None):
        # Imported lazily: rns imports NttPlan from this module at
        # load time, but the shared bounded per-(N, q) plan cache
        # lives there and must be reused so batch and scalar callers
        # agree on tables.
        from repro.ckks.rns import get_plan

        self.n = int(ring_degree)
        self.moduli = tuple(int(q) for q in moduli)
        # The batched butterflies are pure uint64 lazy-Shoup ops.
        be = backend_mod.kernel_backend(backend)
        self.backend = be
        self._kernels = [modmath.get_kernel(q, backend=be)
                         for q in self.moduli]
        self._batch_rows: list[int] = []     # limb positions in the stack
        self._object_rows: list[int] = []    # limb positions on the oracle
        self._scalar_plans = {}
        psi, psi_shoup = [], []
        psi_inv, psi_inv_shoup = [], []
        n_inv_w, n_inv_ws, q_col = [], [], []
        for i, q in enumerate(self.moduli):
            plan = get_plan(self.n, q, backend=be)
            self._scalar_plans[i] = plan
            kernel = self._kernels[i]
            if kernel.path == modmath.OBJECT:
                self._object_rows.append(i)
                continue
            self._batch_rows.append(i)
            # Stacking happens host-side (the scalar plans' tables may
            # be device-resident); the stacked copies go back through
            # from_host below — one build-time transfer per table.
            psi.append(backend_mod.to_host(plan._psi_rev)
                       .astype(np.uint64, copy=False))
            psi_inv.append(backend_mod.to_host(plan._psi_inv_rev)
                           .astype(np.uint64, copy=False))
            if kernel.path == modmath.WIDE:
                psi_shoup.append(backend_mod.to_host(plan._psi_rev_shoup))
                psi_inv_shoup.append(
                    backend_mod.to_host(plan._psi_inv_rev_shoup))
                w, ws = plan._n_inv_pair
            else:
                # Narrow plans keep int64 tables without Shoup
                # companions; the uint64 lazy-Shoup butterflies are
                # valid for any q < 2^62, so build companions here.
                psi_shoup.append(kernel.shoup_table(plan._psi_rev))
                psi_inv_shoup.append(kernel.shoup_table(plan._psi_inv_rev))
                w, ws = modmath.shoup_pair(plan._n_inv, q)
            n_inv_w.append(w)
            n_inv_ws.append(ws)
            q_col.append(np.uint64(q))
        if self._batch_rows:
            self._psi = be.from_host(np.stack(psi))
            self._psi_shoup = be.from_host(np.stack(psi_shoup))
            self._psi_inv = be.from_host(np.stack(psi_inv))
            self._psi_inv_shoup = be.from_host(np.stack(psi_inv_shoup))
            self._n_inv_w = be.from_host(
                np.array(n_inv_w, dtype=np.uint64).reshape(-1, 1))
            self._n_inv_ws = be.from_host(
                np.array(n_inv_ws, dtype=np.uint64).reshape(-1, 1))
            self._q = be.from_host(
                np.array(q_col, dtype=np.uint64).reshape(-1, 1))

    # -- batched butterflies (uint64 lazy-Shoup datapath) ---------------
    def _stack(self, limbs) -> np.ndarray:
        a = self.backend.empty((len(self._batch_rows), self.n), np.uint64)
        for row, i in enumerate(self._batch_rows):
            arr = self._kernels[i].asresidues(limbs[i], copy=False)
            if len(arr) != self.n:
                raise ValueError("limb length does not match the plan")
            a[row] = arr
        return a

    def _unstack(self, a: np.ndarray, out: list) -> None:
        for row, i in enumerate(self._batch_rows):
            if self._kernels[i].dtype == np.int64:
                out[i] = a[row].astype(np.int64)
            else:
                out[i] = a[row]

    def _forward_stages(self, a: np.ndarray) -> None:
        k = a.shape[0]
        q = self._q[:, :, None]
        t, m = self.n, 1
        while m < self.n:
            t //= 2
            view = a.reshape(k, m, 2 * t)
            lo = view[:, :, :t]
            hi = view[:, :, t:]
            w = self._psi[:, m:2 * m, None]
            ws = self._psi_shoup[:, m:2 * m, None]
            prod = hi * w - modmath.mulhi(hi, ws) * q   # lazy: [0, 2q)
            prod = np.where(prod >= q, prod - q, prod)
            s = lo + prod
            d = lo + (q - prod)
            view[:, :, :t] = np.where(s >= q, s - q, s)
            view[:, :, t:] = np.where(d >= q, d - q, d)
            m *= 2

    def _inverse_stages(self, a: np.ndarray) -> np.ndarray:
        k = a.shape[0]
        q = self._q[:, :, None]
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            view = a.reshape(k, h, 2 * t)
            lo = view[:, :, :t]
            hi = view[:, :, t:]
            w = self._psi_inv[:, h:2 * h, None]
            ws = self._psi_inv_shoup[:, h:2 * h, None]
            d = lo + (q - hi)
            d = np.where(d >= q, d - q, d)
            s = lo + hi
            view[:, :, :t] = np.where(s >= q, s - q, s)
            prod = d * w - modmath.mulhi(d, ws) * q
            view[:, :, t:] = np.where(prod >= q, prod - q, prod)
            t *= 2
            m = h
        qq = self._q
        r = a * self._n_inv_w - modmath.mulhi(a, self._n_inv_ws) * qq
        return np.where(r >= qq, r - qq, r)

    # -- public API -----------------------------------------------------
    def forward(self, limbs) -> list:
        if len(limbs) != len(self.moduli):
            raise ValueError("limb count does not match the basis")
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        out: list = [None] * len(limbs)
        if self._batch_rows:
            a = self._stack(limbs)
            self._forward_stages(a)
            self._unstack(a, out)
        for i in self._object_rows:
            out[i] = self._scalar_plans[i].forward(limbs[i])
        if tracer.enabled:
            tracer.count("ntt.batch_forward")
            for i in self._batch_rows:
                tracer.count("ntt.path." + self._kernels[i].path)
            tracer.observe("ntt.batch_forward_s", perf_counter() - start)
        return out

    def inverse(self, limbs) -> list:
        if len(limbs) != len(self.moduli):
            raise ValueError("limb count does not match the basis")
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        out: list = [None] * len(limbs)
        if self._batch_rows:
            a = self._stack(limbs)
            self._unstack(self._inverse_stages(a), out)
        for i in self._object_rows:
            out[i] = self._scalar_plans[i].inverse(limbs[i])
        if tracer.enabled:
            tracer.count("ntt.batch_inverse")
            for i in self._batch_rows:
                tracer.count("ntt.path." + self._kernels[i].path)
            tracer.observe("ntt.batch_inverse_s", perf_counter() - start)
        return out


@lru_cache(maxsize=BATCH_PLAN_CACHE_MAXSIZE)
def _build_batch_plan(ring_degree: int, moduli: tuple[int, ...],
                      backend) -> BatchNttPlan:
    return BatchNttPlan(ring_degree, moduli, backend)


def get_batch_plan(ring_degree: int, moduli: tuple[int, ...],
                   backend=None) -> BatchNttPlan:
    """Shared batch plan for one (N, basis, backend) triple.

    Bounded LRU cache keyed on the resolved backend singleton, so a
    mid-process ``backend.select`` builds fresh device-resident stacks
    instead of serving another device's tables.
    """
    return _build_batch_plan(int(ring_degree),
                             tuple(int(q) for q in moduli),
                             backend_mod.resolve(backend))


def batch_plan_cache_info():
    return _build_batch_plan.cache_info()


def clear_batch_plan_cache() -> None:
    _build_batch_plan.cache_clear()


def transform_limbs(limbs, moduli, ring_degree: int,
                    inverse: bool = False, backend=None) -> list:
    """Run every limb of one basis through a single batched NTT call.

    ``limbs[i]`` must be a residue vector modulo ``moduli[i]``.
    Returns the transformed limbs in basis order, bit-identical to
    looping :meth:`NttPlan.forward` / :meth:`NttPlan.inverse` per
    limb, but with one stage-vectorised pass over a ``(k, N)`` stack
    instead of ``k`` separate transforms.
    """
    plan = get_batch_plan(int(ring_degree), tuple(int(q) for q in moduli),
                          backend)
    return plan.inverse(limbs) if inverse else plan.forward(limbs)


def negacyclic_convolution_reference(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook multiply in Z_q[X]/(X^N+1), for testing."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i]) % modulus
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * (int(b[j]) % modulus)
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return modmath.asresidues(out, modulus)
