"""Negacyclic number-theoretic transform over one RNS prime.

This is the software model of the accelerator's NTTU: it converts a
limb between *coefficient* representation and *evaluation* (point)
representation so that polynomial multiplication in
``Z_q[X]/(X^N + 1)`` becomes element-wise multiplication.

The implementation is the standard merged-twist radix-2 pair:

* forward: Cooley-Tukey butterflies on bit-reversed powers of ``psi``
  (a primitive 2N-th root of unity), which folds the negacyclic
  twisting into the butterflies;
* inverse: Gentleman-Sande butterflies on powers of ``psi^-1``
  followed by multiplication with ``N^-1``.

Transforms are vectorised with numpy slicing and work on both the
int64 fast path and the exact object path (see
:mod:`repro.ckks.modmath`).
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.ckks import modmath, primes
from repro.obs.tracer import get_tracer


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    bits = n.bit_length() - 1
    out = np.zeros(n, dtype=np.int64)
    for i in range(n):
        out[i] = int(format(i, f"0{bits}b")[::-1], 2) if bits else 0
    return out


class NttPlan:
    """Precomputed tables for the negacyclic NTT of one prime.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        NTT-friendly prime with ``modulus = 1 (mod 2N)``.

    The plan owns the bit-reversed twiddle tables; limbs transform
    in-place-style through :meth:`forward` / :meth:`inverse`.
    """

    def __init__(self, ring_degree: int, modulus: int):
        if ring_degree & (ring_degree - 1):
            raise ValueError("ring degree must be a power of two")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}")
        self.n = ring_degree
        self.modulus = modulus
        psi = primes.root_of_unity(2 * ring_degree, modulus)
        psi_inv = modmath.inv_mod(psi, modulus)
        self._psi_rev = self._power_table(psi)
        self._psi_inv_rev = self._power_table(psi_inv)
        self._n_inv = modmath.inv_mod(ring_degree, modulus)

    def _power_table(self, base: int) -> np.ndarray:
        """Powers base^0..base^(N-1) stored in bit-reversed order."""
        n, q = self.n, self.modulus
        powers = np.empty(n, dtype=object)
        acc = 1
        for i in range(n):
            powers[i] = acc
            acc = acc * base % q
        rev = bit_reverse_permutation(n)
        table = powers[rev]
        return modmath.asresidues(table, q)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient form -> evaluation form (negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        q = self.modulus
        a = modmath.asresidues(coeffs, q)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            for i in range(m):
                w = self._psi_rev[m + i]
                j1 = 2 * i * t
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                prod = modmath.mul(hi, int(w), q)
                a[j1 + t:j1 + 2 * t] = modmath.sub(lo, prod, q)
                a[j1:j1 + t] = modmath.add(lo, prod, q)
            m *= 2
        if tracer.enabled:
            tracer.count("ntt.forward")
            tracer.observe("ntt.forward_s", perf_counter() - start)
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation form -> coefficient form (inverse negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        q = self.modulus
        a = modmath.asresidues(evals, q)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            j1 = 0
            for i in range(h):
                w = self._psi_inv_rev[h + i]
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                # diff must be taken before lo's slot is overwritten:
                # lo/hi are views into the working array.
                diff = modmath.sub(lo, hi, q)
                a[j1:j1 + t] = modmath.add(lo, hi, q)
                a[j1 + t:j1 + 2 * t] = modmath.mul(diff, int(w), q)
                j1 += 2 * t
            t *= 2
            m = h
        out = modmath.mul(a, self._n_inv, q)
        if tracer.enabled:
            tracer.count("ntt.inverse")
            tracer.observe("ntt.inverse_s", perf_counter() - start)
        return out


def negacyclic_convolution_reference(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook multiply in Z_q[X]/(X^N+1), for testing."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i]) % modulus
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * (int(b[j]) % modulus)
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return modmath.asresidues(out, modulus)
