"""Negacyclic number-theoretic transform over one RNS prime.

This is the software model of the accelerator's NTTU: it converts a
limb between *coefficient* representation and *evaluation* (point)
representation so that polynomial multiplication in
``Z_q[X]/(X^N + 1)`` becomes element-wise multiplication.

The implementation is the standard merged-twist radix-2 pair:

* forward: Cooley-Tukey butterflies on bit-reversed powers of ``psi``
  (a primitive 2N-th root of unity), which folds the negacyclic
  twisting into the butterflies;
* inverse: Gentleman-Sande butterflies on powers of ``psi^-1``
  followed by multiplication with ``N^-1``.

Butterflies are stage-vectorised: each of the log2(N) stages reshapes
the working array into an (m, 2t) matrix of butterfly groups and
applies the whole stage as a handful of array-wide operations, so no
Python loop runs per butterfly group.  The twiddle tables follow the
plan's width path (see :mod:`repro.ckks.modmath`): int64 on the
narrow path, uint64 with precomputed Shoup companions on the wide
path (lazy-reduction mulmod butterflies), Python ints on the exact
object path.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.ckks import modmath, primes
from repro.obs.tracer import get_tracer


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    out = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        out = (out << 1) | (idx & 1)
        idx >>= 1
    return out


class NttPlan:
    """Precomputed tables for the negacyclic NTT of one prime.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        NTT-friendly prime with ``modulus = 1 (mod 2N)``.
    path:
        Optional width-path override (e.g. ``modmath.OBJECT`` to force
        the exact arbitrary-precision oracle for a modulus that would
        auto-select a faster path).  Defaults to the modulus's
        auto-selected path.

    The plan owns the bit-reversed twiddle tables; limbs transform
    in-place-style through :meth:`forward` / :meth:`inverse`.
    """

    def __init__(self, ring_degree: int, modulus: int,
                 path: str | None = None):
        if ring_degree & (ring_degree - 1):
            raise ValueError("ring degree must be a power of two")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}")
        self.n = ring_degree
        self.modulus = modulus
        self._kernel = modmath.get_kernel(modulus, path)
        self.path = self._kernel.path
        psi = primes.root_of_unity(2 * ring_degree, modulus)
        psi_inv = modmath.inv_mod(psi, modulus)
        self._psi_rev = self._power_table(psi)
        self._psi_inv_rev = self._power_table(psi_inv)
        self._n_inv = modmath.inv_mod(ring_degree, modulus)
        if self.path == modmath.WIDE:
            kernel = self._kernel
            self._psi_rev_shoup = kernel.shoup_table(self._psi_rev)
            self._psi_inv_rev_shoup = kernel.shoup_table(self._psi_inv_rev)
            self._n_inv_pair = kernel.shoup(self._n_inv)
        else:
            self._psi_rev_shoup = None
            self._psi_inv_rev_shoup = None
            self._n_inv_pair = None

    def _power_table(self, base: int) -> np.ndarray:
        """Powers base^0..base^(N-1) stored in bit-reversed order."""
        n, q = self.n, self.modulus
        powers = np.empty(n, dtype=object)
        acc = 1
        for i in range(n):
            powers[i] = acc
            acc = acc * base % q
        rev = bit_reverse_permutation(n)
        return self._kernel.asresidues(powers[rev])

    def _stage_mul(self, values, twiddles, shoup):
        """Butterfly-stage multiply: values (m, t) by twiddle column."""
        if self.path == modmath.WIDE:
            return self._kernel.mul_shoup(values, twiddles, shoup)
        return np.mod(values * twiddles, self.modulus)

    def _forward_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Cooley-Tukey butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(m, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_rev[m:2 * m].reshape(m, 1)
            ws = self._psi_rev_shoup[m:2 * m].reshape(m, 1) if wide else None
            prod = self._stage_mul(hi, w, ws)
            new_hi = kernel.sub(lo, prod)
            view[:, :t] = kernel.add(lo, prod)
            view[:, t:] = new_hi
            m *= 2

    def _inverse_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Gentleman-Sande butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_inv_rev[h:2 * h].reshape(h, 1)
            ws = (self._psi_inv_rev_shoup[h:2 * h].reshape(h, 1)
                  if wide else None)
            # diff must be taken before lo's slot is overwritten:
            # lo/hi are views into the working array.
            diff = kernel.sub(lo, hi)
            view[:, :t] = kernel.add(lo, hi)
            view[:, t:] = self._stage_mul(diff, w, ws)
            t *= 2
            m = h

    # The object path keeps the textbook per-group loops below instead
    # of sharing the stage-vectorised code: the oracle's value is that
    # it is an independent, obviously-correct implementation, so a bug
    # in the vectorised stages cannot cancel against itself when the
    # property tests cross-check the two.

    def _forward_groups(self, a: np.ndarray) -> None:
        """Per-group Cooley-Tukey butterflies (object-path oracle)."""
        q = self.modulus
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            for i in range(m):
                w = int(self._psi_rev[m + i])
                j1 = 2 * i * t
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                prod = np.mod(hi * w, q)
                a[j1 + t:j1 + 2 * t] = np.mod(lo - prod, q)
                a[j1:j1 + t] = np.mod(lo + prod, q)
            m *= 2

    def _inverse_groups(self, a: np.ndarray) -> None:
        """Per-group Gentleman-Sande butterflies (object-path oracle)."""
        q = self.modulus
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            j1 = 0
            for i in range(h):
                w = int(self._psi_inv_rev[h + i])
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                diff = np.mod(lo - hi, q)
                a[j1:j1 + t] = np.mod(lo + hi, q)
                a[j1 + t:j1 + 2 * t] = np.mod(diff * w, q)
                j1 += 2 * t
            t *= 2
            m = h

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient form -> evaluation form (negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        a = self._kernel.asresidues(coeffs)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._forward_groups(a)
        else:
            self._forward_stages(a)
        if tracer.enabled:
            tracer.count("ntt.forward")
            tracer.count("ntt.path." + self.path)
            tracer.observe("ntt.forward_s", perf_counter() - start)
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation form -> coefficient form (inverse negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        kernel = self._kernel
        a = kernel.asresidues(evals)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._inverse_groups(a)
        else:
            self._inverse_stages(a)
        if self.path == modmath.WIDE:
            out = kernel.mul_shoup(a, *self._n_inv_pair)
        else:
            out = kernel.mul(a, self._n_inv)
        if tracer.enabled:
            tracer.count("ntt.inverse")
            tracer.count("ntt.path." + self.path)
            tracer.observe("ntt.inverse_s", perf_counter() - start)
        return out


def negacyclic_convolution_reference(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook multiply in Z_q[X]/(X^N+1), for testing."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i]) % modulus
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * (int(b[j]) % modulus)
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return modmath.asresidues(out, modulus)
