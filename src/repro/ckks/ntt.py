"""Negacyclic number-theoretic transform over one RNS prime.

This is the software model of the accelerator's NTTU: it converts a
limb between *coefficient* representation and *evaluation* (point)
representation so that polynomial multiplication in
``Z_q[X]/(X^N + 1)`` becomes element-wise multiplication.

The implementation is the standard merged-twist radix-2 pair:

* forward: Cooley-Tukey butterflies on bit-reversed powers of ``psi``
  (a primitive 2N-th root of unity), which folds the negacyclic
  twisting into the butterflies;
* inverse: Gentleman-Sande butterflies on powers of ``psi^-1``
  followed by multiplication with ``N^-1``.

Two butterfly tiers exist:

* **radix-2 oracle** — stage-vectorised, canonically reduced after
  every stage.  Retained as the bit-exactness reference for the fused
  tier (and, on the object path, as per-group textbook loops).
* **fused radix-4** (:class:`FusedNttEngine`, the default) — two
  radix-2 stages merged into one pass over the limb tensor, values
  riding in Harvey-style lazy domains between stages ([0, 4q) on the
  forward network, [0, 2q) on the inverse; one correction pass at the
  end instead of per-stage normalisation), every intermediate written
  via ``out=``-chained ufuncs into an arena-pooled scratch block so a
  warmed plan allocates nothing but its output.  Valid for any
  ``q < 2^62`` — exactly the wide-path bound: all lazy sums stay
  below ``4q < 2^64``.

Both tiers emit the same slot ordering (``2*brv(i)+1``, see
:func:`eval_point_exponents`) and bit-identical canonical outputs.
The twiddle tables follow the plan's width path (see
:mod:`repro.ckks.modmath`): int64 on the narrow path, uint64 with
precomputed Shoup companions on the wide path, Python ints on the
exact object path.
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter

import numpy as np

import repro.backend as backend_mod
from repro.backend.arena import WorkspaceArena
from repro.ckks import modmath, primes
from repro.obs.tracer import get_tracer

#: default butterfly tier — fused merged-two-stage engine.
RADIX_FUSED = 4
#: the stage-per-pass bit-exactness oracle tier.
RADIX_ORACLE = 2


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Index permutation reversing log2(n)-bit indices."""
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    out = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        out = (out << 1) | (idx & 1)
        idx >>= 1
    return out


def eval_point_exponents(n: int) -> np.ndarray:
    """Root exponents ``e(i)`` with ``forward(a)[i] = a(psi^e(i))``.

    The merged-twist Cooley-Tukey network evaluates the input at every
    odd power of the primitive 2N-th root ``psi`` (the negacyclic
    points), emitting slot ``i`` at exponent ``2 * brv(i) + 1`` where
    ``brv`` is :func:`bit_reverse_permutation`.  Automorphism plans
    (:class:`repro.ckks.rns.AutoPlan`) lean on this ordering to turn
    ``X -> X^g`` into a pure permutation of evaluation slots: slot
    holding point ``psi^e`` must move to the slot holding
    ``psi^(e * g mod 2N)``.  The fused radix-4 tier merges stages
    without reindexing, so the ordering is identical on every tier.
    """
    if n < 1 or n & (n - 1):
        raise ValueError("ring degree must be a power of two")
    return 2 * bit_reverse_permutation(n) + 1


def _split_scalar(ws) -> tuple[np.uint32, np.uint32]:
    """32-bit halves of one uint64 Shoup companion as numpy scalars."""
    w = int(ws)
    return np.uint32(w & 0xFFFFFFFF), np.uint32(w >> 32)


class FusedNttEngine:
    """Radix-4 merged-stage lazy-reduction butterfly engine.

    Operates **in place** on ``(R, n)`` uint64 stacks.  Twiddle tables
    are either per-row ``(R, n)`` (one modulus per row — the batched
    limb transform) or shared ``(n,)`` (one modulus for all rows —
    scalar plans and the serving layer's request batching).

    Domain discipline (the headroom proof, per width):

    * every twiddle multiply is the shared lazy-Shoup helper — exact
      representative in ``[0, 2q)`` for *any* uint64 input, because
      the quotient estimate ``mulhi(a, ws)`` undershoots the true
      quotient by at most 1 when ``w < q``;
    * forward (Cooley-Tukey): stage inputs live in ``[0, 4q)``.  The
      two added operands are folded to ``[0, 2q)`` with one
      branch-free conditional subtraction each, the two multiplied
      operands feed the Shoup multiply unfolded; sums are then
      ``< 2q + 2q = 4q``, so the invariant holds and nothing exceeds
      ``4q < 2^64`` — which is precisely ``q < 2^62``, the wide-path
      bound (:data:`repro.ckks.modmath._WIDE_SAFE_BITS`).  26/28/31-bit
      narrow moduli ride the same datapath with even more slack.
    * inverse (Gentleman-Sande): stage values stay in ``[0, 2q)`` —
      sums are folded once, differences are computed as
      ``a + (2q - b) < 4q`` and immediately consumed by a Shoup
      multiply that re-normalises to ``[0, 2q)``.
    * one final correction pass (two folds forward, shoup-scale plus
      one fold inverse) lands canonical ``[0, q)`` residues.

    All scratch comes from a :class:`~repro.backend.arena
    .WorkspaceArena`: six flat ``R * n/2`` buffers per distinct row
    count, allocated on first use (a ledger-counted pool miss) and
    reused forever after — the steady state is zero allocations.
    """

    def __init__(self, ring_degree: int, moduli, psi, psi_shoup,
                 psi_inv, psi_inv_shoup, n_inv_pair, backend, arena,
                 per_row: bool):
        self.n = int(ring_degree)
        self.backend = backend
        self.arena = arena
        self.per_row = per_row
        # Pre-split Shoup companions once (uint32 halves: saves two
        # splits per multiply and half the table bytes).
        self._w_f = psi
        self._ws_f = modmath.split32(psi_shoup)
        self._w_i = psi_inv
        self._ws_i = modmath.split32(psi_inv_shoup)
        if per_row:
            qs = np.array([int(q) for q in moduli], dtype=np.uint64)
            self._q3 = backend.from_host(qs.reshape(-1, 1, 1))
            self._q2_3 = backend.from_host((qs * 2).reshape(-1, 1, 1))
            self._q2d = self._q3[:, :, 0]
            self._q2_2d = self._q2_3[:, :, 0]
            ni_w, ni_ws = n_inv_pair            # (k, 1) device columns
            self._ni_w = ni_w
            self._ni_ws = modmath.split32(ni_ws)
        else:
            q = int(moduli)
            self._q3 = self._q2d = np.uint64(q)
            self._q2_3 = self._q2_2d = np.uint64(2 * q)
            ni_w, ni_ws = n_inv_pair            # scalar pair
            self._ni_w = np.uint64(ni_w)
            self._ni_ws = _split_scalar(ni_ws)
        # Per-stage twiddle views are pure slicing — built once here,
        # zero per-call cost.  Merged (radix-4) entries carry three
        # twiddle triples (w, ws_lo, ws_hi): the first-stage column
        # and the even/odd second-stage columns.
        stages = self.n.bit_length() - 1
        self._fwd: list = []
        m = 1
        if stages % 2:
            self._fwd.append(("r2", 1, self.n // 2,
                              (self._tw_f(1, 2),)))
            m = 2
        while m < self.n:
            self._fwd.append(("r4", m, self.n // (4 * m),
                              (self._tw_f(m, 2 * m),
                               self._tw_f(2 * m, 4 * m, 2),
                               self._tw_f(2 * m + 1, 4 * m, 2))))
            m *= 4
        self._inv: list = []
        h, t = self.n // 2, 1
        while h >= 2:
            self._inv.append(("r4", h // 2, t,
                              (self._tw_i(h, 2 * h, 2),
                               self._tw_i(h + 1, 2 * h, 2),
                               self._tw_i(h // 2, h))))
            h //= 4
            t *= 4
        if h == 1:
            self._inv.append(("r2", 1, self.n // 2,
                              (self._tw_i(1, 2),)))

    def _tw_f(self, start, stop, step=1):
        return self._slice(self._w_f, self._ws_f, start, stop, step)

    def _tw_i(self, start, stop, step=1):
        return self._slice(self._w_i, self._ws_i, start, stop, step)

    def _slice(self, w, ws, start, stop, step):
        lo, hi = ws
        if self.per_row:
            return (w[:, start:stop:step, None],
                    lo[:, start:stop:step, None],
                    hi[:, start:stop:step, None])
        return (w[None, start:stop:step, None],
                lo[None, start:stop:step, None],
                hi[None, start:stop:step, None])

    def _scratch(self, rows: int) -> tuple:
        size = rows * max(self.n // 2, 1)
        return self.arena.take_many(("fused", rows), 6, (size,))

    # -- forward (Cooley-Tukey, [0, 4q) lazy domain) --------------------
    def forward(self, a) -> None:
        """In-place forward NTT of an ``(R, n)`` canonical stack."""
        rows = a.shape[0]
        bufs = self._scratch(rows)
        q, q2 = self._q3, self._q2_3
        for kind, m, t, tw in self._fwd:
            cnt = rows * m * t
            work = tuple(b[:cnt].reshape(rows, m, t) for b in bufs)
            if kind == "r4":
                view = a.reshape(rows, m, 4, t)
                self._fwd_r4(view, tw, q, q2, work)
            else:
                view = a.reshape(rows, m, 2, t)
                self._fwd_r2(view, tw[0], q, q2, work)
        # Final correction: [0, 4q) -> canonical, in scratch-sized
        # half-row chunks (the arena buffers span R * n/2 words).
        half = max(self.n // 2, 1)
        sc = bufs[0]
        for col in range(0, self.n, half):
            part = a[:, col:col + half]
            scr = sc[:part.size].reshape(part.shape)
            modmath.cond_sub_into(part, self._q2_2d, scr)
            modmath.cond_sub_into(part, self._q2d, scr)

    def _fwd_r4(self, view, tw, q, q2, work) -> None:
        (w1, w1lo, w1hi), (w2, w2lo, w2hi), (w3, w3lo, w3hi) = tw
        x0 = view[:, :, 0]
        x1 = view[:, :, 1]
        x2 = view[:, :, 2]
        x3 = view[:, :, 3]
        T, s1 = work[0], work[1]
        s = work[1:]
        # first half-stage: (x0, x2) and (x1, x3), twiddle w1
        modmath.cond_sub_into(x0, q2, s1)
        modmath.cond_sub_into(x1, q2, s1)
        modmath.mul_shoup_lazy_into(x2, w1, w1lo, w1hi, q, T, s)
        np.subtract(q2, T, out=s1)
        np.add(x0, s1, out=x2)                  # b2 = x0 - w1*x2
        np.add(x0, T, out=x0)                   # b0 = x0 + w1*x2
        modmath.mul_shoup_lazy_into(x3, w1, w1lo, w1hi, q, T, s)
        np.subtract(q2, T, out=s1)
        np.add(x1, s1, out=x3)                  # b3 = x1 - w1*x3
        np.add(x1, T, out=x1)                   # b1 = x1 + w1*x3
        # second half-stage: (b0, b1) by w2, (b2, b3) by w3
        modmath.cond_sub_into(x0, q2, s1)
        modmath.cond_sub_into(x2, q2, s1)
        modmath.mul_shoup_lazy_into(x1, w2, w2lo, w2hi, q, T, s)
        np.subtract(q2, T, out=s1)
        np.add(x0, s1, out=x1)                  # c1
        np.add(x0, T, out=x0)                   # c0
        modmath.mul_shoup_lazy_into(x3, w3, w3lo, w3hi, q, T, s)
        np.subtract(q2, T, out=s1)
        np.add(x2, s1, out=x3)                  # c3
        np.add(x2, T, out=x2)                   # c2

    def _fwd_r2(self, view, tw, q, q2, work) -> None:
        w, wlo, whi = tw
        lo = view[:, :, 0]
        hi = view[:, :, 1]
        T, s1 = work[0], work[1]
        modmath.cond_sub_into(lo, q2, s1)
        modmath.mul_shoup_lazy_into(hi, w, wlo, whi, q, T, work[1:])
        np.subtract(q2, T, out=s1)
        np.add(lo, s1, out=hi)
        np.add(lo, T, out=lo)

    # -- inverse (Gentleman-Sande, [0, 2q) lazy domain) -----------------
    def inverse(self, a) -> None:
        """In-place inverse NTT of an ``(R, n)`` canonical stack.

        Includes the trailing ``N^-1`` scaling and canonicalisation.
        """
        rows = a.shape[0]
        bufs = self._scratch(rows)
        q, q2 = self._q3, self._q2_3
        for kind, g, t, tw in self._inv:
            cnt = rows * g * t
            work = tuple(b[:cnt].reshape(rows, g, t) for b in bufs)
            if kind == "r4":
                view = a.reshape(rows, g, 4, t)
                self._inv_r4(view, tw, q, q2, work)
            else:
                view = a.reshape(rows, g, 2, t)
                self._inv_r2(view, tw[0], q, q2, work)
        # N^-1 scaling (in-place Shoup) + canonical fold, by halves.
        half = max(self.n // 2, 1)
        qd = self._q2d
        for col in range(0, self.n, half):
            part = a[:, col:col + half]
            s = tuple(b[:part.size].reshape(part.shape) for b in bufs)
            modmath.mul_shoup_lazy_into(
                part, self._ni_w, self._ni_ws[0], self._ni_ws[1],
                qd, part, s)
            modmath.cond_sub_into(part, qd, s[0])

    def _inv_r4(self, view, tw, q, q2, work) -> None:
        (we, welo, wehi), (wo, wolo, wohi), (w2, w2lo, w2hi) = tw
        x0 = view[:, :, 0]
        x1 = view[:, :, 1]
        x2 = view[:, :, 2]
        x3 = view[:, :, 3]
        T, s1 = work[0], work[1]
        s = (work[2], work[3], work[4], work[5], T)
        # first half-stage: (x0, x1) by we, (x2, x3) by wo
        np.subtract(q2, x1, out=s1)
        np.add(s1, x0, out=s1)                  # x0 - x1 (+2q)
        np.add(x0, x1, out=x0)
        modmath.cond_sub_into(x0, q2, work[2])  # b0
        modmath.mul_shoup_lazy_into(s1, we, welo, wehi, q, x1, s)
        np.subtract(q2, x3, out=s1)
        np.add(s1, x2, out=s1)
        np.add(x2, x3, out=x2)
        modmath.cond_sub_into(x2, q2, work[2])  # b2
        modmath.mul_shoup_lazy_into(s1, wo, wolo, wohi, q, x3, s)
        # second half-stage: (b0, b2) and (b1, b3), shared twiddle w2
        np.subtract(q2, x2, out=s1)
        np.add(s1, x0, out=s1)
        np.add(x0, x2, out=x0)
        modmath.cond_sub_into(x0, q2, work[2])  # c0
        modmath.mul_shoup_lazy_into(s1, w2, w2lo, w2hi, q, x2, s)
        np.subtract(q2, x3, out=s1)
        np.add(s1, x1, out=s1)
        np.add(x1, x3, out=x1)
        modmath.cond_sub_into(x1, q2, work[2])  # c1
        modmath.mul_shoup_lazy_into(s1, w2, w2lo, w2hi, q, x3, s)

    def _inv_r2(self, view, tw, q, q2, work) -> None:
        w, wlo, whi = tw
        lo = view[:, :, 0]
        hi = view[:, :, 1]
        T, s1 = work[0], work[1]
        s = (work[2], work[3], work[4], work[5], T)
        np.subtract(q2, hi, out=s1)
        np.add(s1, lo, out=s1)
        np.add(lo, hi, out=lo)
        modmath.cond_sub_into(lo, q2, work[2])
        modmath.mul_shoup_lazy_into(s1, w, wlo, whi, q, hi, s)


class NttPlan:
    """Precomputed tables for the negacyclic NTT of one prime.

    Parameters
    ----------
    ring_degree:
        Power-of-two polynomial degree ``N``.
    modulus:
        NTT-friendly prime with ``modulus = 1 (mod 2N)``.
    path:
        Optional width-path override (e.g. ``modmath.OBJECT`` to force
        the exact arbitrary-precision oracle for a modulus that would
        auto-select a faster path).  Defaults to the modulus's
        auto-selected path.
    radix:
        Butterfly tier: :data:`RADIX_FUSED` (default — the scalar plan
        delegates to a one-row :class:`FusedNttEngine`) or
        :data:`RADIX_ORACLE` for the per-stage-normalised radix-2
        reference.  The object path always runs its per-group loops.

    The plan owns the bit-reversed twiddle tables; limbs transform
    in-place-style through :meth:`forward` / :meth:`inverse`.
    """

    def __init__(self, ring_degree: int, modulus: int,
                 path: str | None = None, backend=None,
                 radix: int | None = None):
        if ring_degree & (ring_degree - 1):
            raise ValueError("ring degree must be a power of two")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                f"modulus {modulus} is not NTT-friendly for N={ring_degree}")
        radix = RADIX_FUSED if radix is None else int(radix)
        if radix not in (RADIX_ORACLE, RADIX_FUSED):
            raise ValueError(f"unsupported butterfly radix {radix}")
        self.n = ring_degree
        self.modulus = modulus
        self.radix = radix
        self._kernel = modmath.get_kernel(modulus, path, backend)
        self.path = self._kernel.path
        self.backend = self._kernel.backend
        psi = primes.root_of_unity(2 * ring_degree, modulus)
        psi_inv = modmath.inv_mod(psi, modulus)
        # Twiddle tables are built host-side (exact Python ints) and
        # cross the residency boundary exactly once, here at build.
        self._psi_rev = self._power_table(psi)
        self._psi_inv_rev = self._power_table(psi_inv)
        self._n_inv = modmath.inv_mod(ring_degree, modulus)
        if self.path == modmath.WIDE:
            kernel = self._kernel
            self._psi_rev_shoup = self.backend.from_host(
                kernel.shoup_table(self._psi_rev))
            self._psi_inv_rev_shoup = self.backend.from_host(
                kernel.shoup_table(self._psi_inv_rev))
            self._n_inv_pair = kernel.shoup(self._n_inv)
        else:
            self._psi_rev_shoup = None
            self._psi_inv_rev_shoup = None
            self._n_inv_pair = None
        # The fused engine is built lazily on first use: plans built
        # only for their tables (the batch plan reuses them) never pay
        # for uint64 re-tabulation or Shoup splitting.
        self._engine = None

    @property
    def fused(self) -> bool:
        """Whether transforms run on the fused radix-4 engine."""
        return self.radix == RADIX_FUSED and self.path != modmath.OBJECT

    def _get_engine(self) -> FusedNttEngine:
        if self._engine is None:
            kernel = self._kernel
            be = self.backend
            if self.path == modmath.WIDE:
                psi, psi_s = self._psi_rev, self._psi_rev_shoup
                psi_i, psi_is = self._psi_inv_rev, self._psi_inv_rev_shoup
                pair = self._n_inv_pair
            else:
                # Narrow plans keep int64 tables without Shoup
                # companions; the uint64 engine is valid for any
                # q < 2^62, so build uint64 copies once here.
                psi = be.asarray(self._psi_rev, dtype=np.uint64)
                psi_i = be.asarray(self._psi_inv_rev, dtype=np.uint64)
                psi_s = be.from_host(kernel.shoup_table(self._psi_rev))
                psi_is = be.from_host(
                    kernel.shoup_table(self._psi_inv_rev))
                pair = modmath.shoup_pair(self._n_inv, self.modulus)
            self._engine = FusedNttEngine(
                self.n, self.modulus, psi, psi_s, psi_i, psi_is, pair,
                be, WorkspaceArena(be, "ntt"), per_row=False)
        return self._engine

    def _power_table(self, base: int) -> np.ndarray:
        """Powers base^0..base^(N-1) stored in bit-reversed order."""
        n, q = self.n, self.modulus
        powers = np.empty(n, dtype=object)
        acc = 1
        for i in range(n):
            powers[i] = acc
            acc = acc * base % q
        rev = bit_reverse_permutation(n)
        return self._kernel.asresidues(powers[rev])

    def _stage_mul(self, values, twiddles, shoup):
        """Butterfly-stage multiply: values (m, t) by twiddle column.

        The wide path runs the shared lazy-Shoup helper — the same
        multiply the batch oracle and the fused engine use — folded
        back to canonical here because the radix-2 oracle keeps every
        stage in ``[0, q)``.
        """
        if self.path == modmath.WIDE:
            q = self._kernel._q64
            r = modmath.mul_shoup_lazy(values, twiddles, shoup, q)
            return np.where(r >= q, r - q, r)
        return np.mod(values * twiddles, self.modulus)

    def _forward_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Cooley-Tukey butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            view = a.reshape(m, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_rev[m:2 * m].reshape(m, 1)
            ws = self._psi_rev_shoup[m:2 * m].reshape(m, 1) if wide else None
            prod = self._stage_mul(hi, w, ws)
            new_hi = kernel.sub(lo, prod)
            view[:, :t] = kernel.add(lo, prod)
            view[:, t:] = new_hi
            m *= 2

    def _inverse_stages(self, a: np.ndarray) -> None:
        """Stage-vectorised Gentleman-Sande butterflies (narrow/wide)."""
        kernel = self._kernel
        wide = self.path == modmath.WIDE
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            view = a.reshape(h, 2 * t)
            lo = view[:, :t]
            hi = view[:, t:]
            w = self._psi_inv_rev[h:2 * h].reshape(h, 1)
            ws = (self._psi_inv_rev_shoup[h:2 * h].reshape(h, 1)
                  if wide else None)
            # diff must be taken before lo's slot is overwritten:
            # lo/hi are views into the working array.
            diff = kernel.sub(lo, hi)
            view[:, :t] = kernel.add(lo, hi)
            view[:, t:] = self._stage_mul(diff, w, ws)
            t *= 2
            m = h

    # The object path keeps the textbook per-group loops below instead
    # of sharing the stage-vectorised code: the oracle's value is that
    # it is an independent, obviously-correct implementation, so a bug
    # in the vectorised stages cannot cancel against itself when the
    # property tests cross-check the two.

    def _forward_groups(self, a: np.ndarray) -> None:
        """Per-group Cooley-Tukey butterflies (object-path oracle)."""
        q = self.modulus
        t = self.n
        m = 1
        while m < self.n:
            t //= 2
            for i in range(m):
                w = int(self._psi_rev[m + i])
                j1 = 2 * i * t
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                prod = np.mod(hi * w, q)
                a[j1 + t:j1 + 2 * t] = np.mod(lo - prod, q)
                a[j1:j1 + t] = np.mod(lo + prod, q)
            m *= 2

    def _inverse_groups(self, a: np.ndarray) -> None:
        """Per-group Gentleman-Sande butterflies (object-path oracle)."""
        q = self.modulus
        t = 1
        m = self.n
        while m > 1:
            h = m // 2
            j1 = 0
            for i in range(h):
                w = int(self._psi_inv_rev[h + i])
                lo = a[j1:j1 + t]
                hi = a[j1 + t:j1 + 2 * t]
                diff = np.mod(lo - hi, q)
                a[j1:j1 + t] = np.mod(lo + hi, q)
                a[j1 + t:j1 + 2 * t] = np.mod(diff * w, q)
                j1 += 2 * t
            t *= 2
            m = h

    def _as_u64_rows(self, a: np.ndarray) -> np.ndarray:
        """Reinterpret a canonical 1-D working array as (1, n) uint64.

        Narrow residues are int64 but canonical (< q < 2^31), so the
        dtype reinterpret is a free view in both directions.
        """
        if a.dtype == np.int64:
            return a.view(np.uint64).reshape(1, -1)
        return a.reshape(1, -1)

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient form -> evaluation form (negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        a = self._kernel.asresidues(coeffs)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._forward_groups(a)
        elif self.fused:
            self._get_engine().forward(self._as_u64_rows(a))
        else:
            self._forward_stages(a)
        if tracer.enabled:
            tracer.count("ntt.forward")
            tracer.count("ntt.path." + self.path)
            tracer.count("ntt.tier.radix%d" % self.radix)
            tracer.observe("ntt.forward_s", perf_counter() - start)
        return a

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation form -> coefficient form (inverse negacyclic NTT)."""
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        kernel = self._kernel
        a = kernel.asresidues(evals)
        if len(a) != self.n:
            raise ValueError("limb length does not match the plan")
        if self.path == modmath.OBJECT:
            self._inverse_groups(a)
            out = kernel.mul(a, self._n_inv)
        elif self.fused:
            # The engine folds the N^-1 scaling into its final pass.
            self._get_engine().inverse(self._as_u64_rows(a))
            out = a
        else:
            self._inverse_stages(a)
            if self.path == modmath.WIDE:
                out = kernel.mul_shoup(a, *self._n_inv_pair)
            else:
                out = kernel.mul(a, self._n_inv)
        if tracer.enabled:
            tracer.count("ntt.inverse")
            tracer.count("ntt.path." + self.path)
            tracer.count("ntt.tier.radix%d" % self.radix)
            tracer.observe("ntt.inverse_s", perf_counter() - start)
        return out


# -- batched multi-limb transforms ----------------------------------------

# Bound on cached batch plans: one entry per (N, basis) pair actually
# transformed.  A full workload touches one basis per level per
# key-switch flavour — a few dozen — and each entry only *references*
# per-prime twiddle tables plus small stacked copies, so eviction
# costs a restack, never a root search.
BATCH_PLAN_CACHE_MAXSIZE = 64


class BatchNttPlan:
    """Stage-vectorised NTT over every limb of one RNS basis at once.

    The per-limb :class:`NttPlan` loop spends most of its time in
    Python dispatch: ``k`` limbs times ``log2 N`` stages times a
    handful of kernel calls each.  This plan stacks all limbs whose
    modulus fits the uint64 datapath (``q < 2^62`` — both the narrow
    and wide width paths) into one ``(k, N)`` array and per-basis
    ``(k, N)`` twiddle/Shoup tables, so each butterfly stage is a
    single set of whole-batch numpy ops with the per-limb modulus
    broadcast as a ``(k, 1, 1)`` column.  This is the software shape
    of the accelerator's NTTU operating on a whole limb set per
    ModUp digit.

    ``radix=4`` (default) runs the zero-steady-state-allocation
    :class:`FusedNttEngine`; ``radix=2`` keeps the per-stage
    canonically-reduced butterflies as the bit-exactness oracle.
    Limbs over the exact ``object`` path (moduli beyond 62 bits) fall
    back to their scalar plans; results are bit-identical to the
    per-limb plans on every path and every tier.
    """

    def __init__(self, ring_degree: int, moduli: tuple[int, ...],
                 backend=None, radix: int | None = None):
        # Imported lazily: rns imports NttPlan from this module at
        # load time, but the shared bounded per-(N, q) plan cache
        # lives there and must be reused so batch and scalar callers
        # agree on tables.
        from repro.ckks.rns import get_plan

        radix = RADIX_FUSED if radix is None else int(radix)
        if radix not in (RADIX_ORACLE, RADIX_FUSED):
            raise ValueError(f"unsupported butterfly radix {radix}")
        self.n = int(ring_degree)
        self.moduli = tuple(int(q) for q in moduli)
        self.radix = radix
        # The batched butterflies are pure uint64 lazy-Shoup ops.
        be = backend_mod.kernel_backend(backend)
        self.backend = be
        self._kernels = [modmath.get_kernel(q, backend=be)
                         for q in self.moduli]
        self._batch_rows: list[int] = []     # limb positions in the stack
        self._object_rows: list[int] = []    # limb positions on the oracle
        self._scalar_plans = {}
        psi, psi_shoup = [], []
        psi_inv, psi_inv_shoup = [], []
        n_inv_w, n_inv_ws, q_col = [], [], []
        for i, q in enumerate(self.moduli):
            plan = get_plan(self.n, q, backend=be)
            self._scalar_plans[i] = plan
            kernel = self._kernels[i]
            if kernel.path == modmath.OBJECT:
                self._object_rows.append(i)
                continue
            self._batch_rows.append(i)
            # Stacking happens host-side (the scalar plans' tables may
            # be device-resident); the stacked copies go back through
            # from_host below — one build-time transfer per table.
            psi.append(backend_mod.to_host(plan._psi_rev)
                       .astype(np.uint64, copy=False))
            psi_inv.append(backend_mod.to_host(plan._psi_inv_rev)
                           .astype(np.uint64, copy=False))
            if kernel.path == modmath.WIDE:
                psi_shoup.append(backend_mod.to_host(plan._psi_rev_shoup))
                psi_inv_shoup.append(
                    backend_mod.to_host(plan._psi_inv_rev_shoup))
                w, ws = plan._n_inv_pair
            else:
                # Narrow plans keep int64 tables without Shoup
                # companions; the uint64 lazy-Shoup butterflies are
                # valid for any q < 2^62, so build companions here.
                psi_shoup.append(kernel.shoup_table(plan._psi_rev))
                psi_inv_shoup.append(kernel.shoup_table(plan._psi_inv_rev))
                w, ws = modmath.shoup_pair(plan._n_inv, q)
            n_inv_w.append(w)
            n_inv_ws.append(ws)
            q_col.append(np.uint64(q))
        self._engine = None
        if self._batch_rows:
            self._psi = be.from_host(np.stack(psi))
            self._psi_shoup = be.from_host(np.stack(psi_shoup))
            self._psi_inv = be.from_host(np.stack(psi_inv))
            self._psi_inv_shoup = be.from_host(np.stack(psi_inv_shoup))
            self._n_inv_w = be.from_host(
                np.array(n_inv_w, dtype=np.uint64).reshape(-1, 1))
            self._n_inv_ws = be.from_host(
                np.array(n_inv_ws, dtype=np.uint64).reshape(-1, 1))
            self._q = be.from_host(
                np.array(q_col, dtype=np.uint64).reshape(-1, 1))
            if radix == RADIX_FUSED:
                self._engine = FusedNttEngine(
                    self.n,
                    [self.moduli[i] for i in self._batch_rows],
                    self._psi, self._psi_shoup,
                    self._psi_inv, self._psi_inv_shoup,
                    (self._n_inv_w, self._n_inv_ws),
                    be, WorkspaceArena(be, "ntt"), per_row=True)

    # -- batched butterflies (uint64 lazy-Shoup datapath) ---------------
    def _stack(self, limbs) -> np.ndarray:
        a = self.backend.empty((len(self._batch_rows), self.n), np.uint64)
        self._stack_into(limbs, a)
        return a

    def _stack_into(self, limbs, block) -> None:
        for row, i in enumerate(self._batch_rows):
            arr = self._kernels[i].asresidues(limbs[i], copy=False)
            if len(arr) != self.n:
                raise ValueError("limb length does not match the plan")
            block[row] = arr

    def _unstack(self, a: np.ndarray, out: list) -> None:
        """Hand rows back as per-limb arrays (free dtype views).

        Rows are views into the output block (each caller gets a fresh
        block, so views never alias across calls); narrow limbs are
        reinterpreted to int64 in place — canonical residues fit both.
        """
        for row, i in enumerate(self._batch_rows):
            if self._kernels[i].dtype == np.int64:
                out[i] = a[row].view(np.int64)
            else:
                out[i] = a[row]

    def _forward_stages(self, a: np.ndarray) -> None:
        k = a.shape[0]
        q = self._q[:, :, None]
        t, m = self.n, 1
        while m < self.n:
            t //= 2
            view = a.reshape(k, m, 2 * t)
            lo = view[:, :, :t]
            hi = view[:, :, t:]
            w = self._psi[:, m:2 * m, None]
            ws = self._psi_shoup[:, m:2 * m, None]
            prod = modmath.mul_shoup_lazy(hi, w, ws, q)   # lazy: [0, 2q)
            prod = np.where(prod >= q, prod - q, prod)
            s = lo + prod
            d = lo + (q - prod)
            view[:, :, :t] = np.where(s >= q, s - q, s)
            view[:, :, t:] = np.where(d >= q, d - q, d)
            m *= 2

    def _inverse_stages(self, a: np.ndarray) -> np.ndarray:
        k = a.shape[0]
        q = self._q[:, :, None]
        t, m = 1, self.n
        while m > 1:
            h = m // 2
            view = a.reshape(k, h, 2 * t)
            lo = view[:, :, :t]
            hi = view[:, :, t:]
            w = self._psi_inv[:, h:2 * h, None]
            ws = self._psi_inv_shoup[:, h:2 * h, None]
            d = lo + (q - hi)
            d = np.where(d >= q, d - q, d)
            s = lo + hi
            view[:, :, :t] = np.where(s >= q, s - q, s)
            prod = modmath.mul_shoup_lazy(d, w, ws, q)
            view[:, :, t:] = np.where(prod >= q, prod - q, prod)
            t *= 2
            m = h
        qq = self._q
        r = modmath.mul_shoup_lazy(a, self._n_inv_w, self._n_inv_ws, qq)
        return np.where(r >= qq, r - qq, r)

    # -- public API -----------------------------------------------------
    def _out_block(self, out):
        rows = len(self._batch_rows)
        if out is None:
            return self.backend.empty((rows, self.n), np.uint64)
        if out.shape != (rows, self.n) or out.dtype != np.uint64:
            raise ValueError("out block must be (batch_rows, N) uint64")
        return out

    def forward(self, limbs, out=None) -> list:
        """Batched forward NTT; ``out`` may supply the output block.

        On the fused tier the only steady-state allocation is the
        output block itself — pass a caller-owned ``(len(batch_rows),
        N)`` uint64 array as ``out`` to run fully allocation-free
        (returned limbs are then views into that block).
        """
        if len(limbs) != len(self.moduli):
            raise ValueError("limb count does not match the basis")
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        result: list = [None] * len(limbs)
        if self._batch_rows:
            if self._engine is not None:
                a = self._out_block(out)
                self._stack_into(limbs, a)
                self._engine.forward(a)
            else:
                a = self._stack(limbs)
                self._forward_stages(a)
            self._unstack(a, result)
        for i in self._object_rows:
            result[i] = self._scalar_plans[i].forward(limbs[i])
        if tracer.enabled:
            tracer.count("ntt.batch_forward")
            tracer.count("ntt.tier.radix%d" % self.radix)
            for i in self._batch_rows:
                tracer.count("ntt.path." + self._kernels[i].path)
            tracer.observe("ntt.batch_forward_s", perf_counter() - start)
        return result

    def inverse(self, limbs, out=None) -> list:
        """Batched inverse NTT; ``out`` may supply the output block."""
        if len(limbs) != len(self.moduli):
            raise ValueError("limb count does not match the basis")
        tracer = get_tracer()
        start = perf_counter() if tracer.enabled else 0.0
        result: list = [None] * len(limbs)
        if self._batch_rows:
            if self._engine is not None:
                a = self._out_block(out)
                self._stack_into(limbs, a)
                self._engine.inverse(a)
                self._unstack(a, result)
            else:
                a = self._stack(limbs)
                self._unstack(self._inverse_stages(a), result)
        for i in self._object_rows:
            result[i] = self._scalar_plans[i].inverse(limbs[i])
        if tracer.enabled:
            tracer.count("ntt.batch_inverse")
            tracer.count("ntt.tier.radix%d" % self.radix)
            for i in self._batch_rows:
                tracer.count("ntt.path." + self._kernels[i].path)
            tracer.observe("ntt.batch_inverse_s", perf_counter() - start)
        return result


@lru_cache(maxsize=BATCH_PLAN_CACHE_MAXSIZE)
def _build_batch_plan(ring_degree: int, moduli: tuple[int, ...],
                      backend, radix: int) -> BatchNttPlan:
    return BatchNttPlan(ring_degree, moduli, backend, radix=radix)


def get_batch_plan(ring_degree: int, moduli: tuple[int, ...],
                   backend=None, radix: int | None = None) -> BatchNttPlan:
    """Shared batch plan for one (N, basis, backend, radix) tuple.

    Bounded LRU cache keyed on the resolved backend singleton, so a
    mid-process ``backend.select`` builds fresh device-resident stacks
    instead of serving another device's tables — and on the butterfly
    radix tier, so the radix-2 oracle and the fused radix-4 plan for
    the same basis never alias each other.
    """
    radix = RADIX_FUSED if radix is None else int(radix)
    return _build_batch_plan(int(ring_degree),
                             tuple(int(q) for q in moduli),
                             backend_mod.resolve(backend), radix)


def batch_plan_cache_info():
    return _build_batch_plan.cache_info()


def clear_batch_plan_cache() -> None:
    _build_batch_plan.cache_clear()


def transform_limbs(limbs, moduli, ring_degree: int,
                    inverse: bool = False, backend=None,
                    radix: int | None = None) -> list:
    """Run every limb of one basis through a single batched NTT call.

    ``limbs[i]`` must be a residue vector modulo ``moduli[i]``.
    Returns the transformed limbs in basis order, bit-identical to
    looping :meth:`NttPlan.forward` / :meth:`NttPlan.inverse` per
    limb, but with one fused pass over a ``(k, N)`` stack instead of
    ``k`` separate transforms.  ``radix`` selects the butterfly tier
    (fused radix-4 by default; 2 for the oracle).
    """
    plan = get_batch_plan(int(ring_degree), tuple(int(q) for q in moduli),
                          backend, radix=radix)
    return plan.inverse(limbs) if inverse else plan.forward(limbs)


def negacyclic_convolution_reference(a, b, modulus: int) -> np.ndarray:
    """O(N^2) schoolbook multiply in Z_q[X]/(X^N+1), for testing."""
    n = len(a)
    out = [0] * n
    for i in range(n):
        ai = int(a[i]) % modulus
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * (int(b[j]) % modulus)
            if k < n:
                out[k] = (out[k] + term) % modulus
            else:
                out[k - n] = (out[k - n] - term) % modulus
    return modmath.asresidues(out, modulus)
