"""Tunable-width vectorised modular arithmetic over a single prime.

All polynomial limbs in this library are 1-D :class:`numpy.ndarray`
objects holding coefficients reduced modulo one RNS prime.  Three
representations exist, selected automatically per modulus — the
software analogue of the paper's Tunable-Bit Multiplier picking its
datapath width per operation (Sec. 4.2, 36-bit vs 60-bit mode):

* ``narrow`` — ``int64`` arrays for moduli up to 31 bits, so that a
  product of two reduced residues fits a signed 64-bit integer.  This
  is the path the scaled-down toy parameter sets run on.
* ``wide`` — ``uint64`` arrays for moduli up to 62 bits.  Products are
  formed exactly as 128-bit (hi, lo) pairs via 32-bit-limb schoolbook
  multiplication and reduced with a vectorised Barrett reduction
  using the precomputed per-modulus constant ``floor(2^128 / q)``.
  Multiplications by a fixed operand (twiddles, CRT scalars) use
  Shoup's precomputed-quotient trick with a single lazy final
  subtraction.  This is the path the paper's full-size 36/60-bit
  parameter sets (Set-I/Set-II) run on.
* ``object`` — arbitrary-precision Python integers.  Exactness oracle
  for the wide kernels and the only path for moduli beyond 62 bits.

Per-modulus constants live in a :class:`ModulusKernel` plan, cached by
:func:`get_kernel`.  The module-level functions keep their historic
``f(a, b, modulus)`` signatures and dispatch through the kernel.  When
the observability layer is enabled, every kernel invocation bumps a
``modmath.path.{narrow,wide,object}`` counter — the software analogue
of TBM mode-occupancy statistics (Fig. 12).

The functions here are deliberately free of any CKKS semantics; they
are the software analogue of the accelerator's modular ALUs.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

import repro.backend as backend_mod
from repro.obs.tracer import get_tracer

NARROW = "narrow"
WIDE = "wide"
OBJECT = "object"

# Largest modulus for which a*b of two reduced residues fits in int64.
_INT64_SAFE_BITS = 31
# Largest modulus for the split-limb Barrett path: the reduction needs
# q < 2^62 so that the (< 3q) pre-subtraction remainder and the lazy
# Shoup product (< 2q) both fit in uint64 with slack.
_WIDE_SAFE_BITS = 62

_PATH_RANK = {NARROW: 0, WIDE: 1, OBJECT: 2}

_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_U64_ZERO = np.uint64(0)

# The process-global tracer is a stable singleton (obs.configure
# mutates it in place), so one module-level reference is safe and
# keeps the disabled-tracer cost to a single attribute read per op.
_TRACER = get_tracer()


def width_path(modulus: int) -> str:
    """Auto-selected width path (``narrow``/``wide``/``object``)."""
    bits = int(modulus).bit_length()
    if bits <= _INT64_SAFE_BITS:
        return NARROW
    if bits <= _WIDE_SAFE_BITS:
        return WIDE
    return OBJECT


def uses_int64(modulus: int) -> bool:
    """Return True when residues mod ``modulus`` use the int64 path."""
    return width_path(modulus) == NARROW


def _dtype_for(modulus: int):
    return get_kernel(modulus).dtype


# -- 64x64 -> 128-bit building blocks (uint64 arrays) ---------------------

def _mul128(a, b):
    """Exact 128-bit product of uint64 operands as a (hi, lo) pair.

    Schoolbook on 32-bit halves; every partial product and carry sum
    fits uint64, so no wraparound occurs inside this function.
    """
    a0 = a & _MASK32
    a1 = a >> _SHIFT32
    b0 = b & _MASK32
    b1 = b >> _SHIFT32
    ll = a0 * b0
    lh = a0 * b1
    hl = a1 * b0
    mid = (ll >> _SHIFT32) + (lh & _MASK32) + (hl & _MASK32)
    lo = (ll & _MASK32) | ((mid & _MASK32) << _SHIFT32)
    hi = a1 * b1 + (lh >> _SHIFT32) + (hl >> _SHIFT32) + (mid >> _SHIFT32)
    return hi, lo


def _mulhi(a, b):
    """High 64 bits of the 128-bit product (skips lo-word assembly)."""
    a0 = a & _MASK32
    a1 = a >> _SHIFT32
    b0 = b & _MASK32
    b1 = b >> _SHIFT32
    lh = a0 * b1
    hl = a1 * b0
    mid = ((a0 * b0) >> _SHIFT32) + (lh & _MASK32) + (hl & _MASK32)
    return a1 * b1 + (lh >> _SHIFT32) + (hl >> _SHIFT32) + (mid >> _SHIFT32)


def _barrett128(hi, lo, q, r_hi, r_lo):
    """Reduce the 128-bit values ``hi * 2^64 + lo`` modulo ``q < 2^62``.

    ``(r_hi, r_lo)`` is ``floor(2^128 / q)``.  The quotient estimate
    ``floor(x * ratio / 2^128)`` is computed exactly except for the
    dropped low word of ``lo * r_lo`` (SEAL-style two rounds with
    carry propagation).  For ``x < 2^126`` the estimate undershoots
    ``floor(x / q)`` by at most 2 — one unit from the dropped word,
    less than one from ``x * (2^128 mod q) / (q * 2^128) < x / 2^128
    < 1/4`` — so the remainder lands in ``[0, 3q)`` and ``3q < 2^64``
    still fits uint64; the two conditional subtractions finish the
    job.  The BConv matrix kernel (:mod:`repro.ckks.rns`) leans on
    the full ``x < 2^126`` range to accumulate several 124-bit
    products between reductions.
    """
    carry = _mulhi(lo, r_lo)
    t_hi, t_lo = _mul128(lo, r_hi)
    s1 = t_lo + carry
    c1 = s1 < t_lo
    u_hi, u_lo = _mul128(hi, r_lo)
    s2 = s1 + u_lo
    c2 = s2 < u_lo
    quotient = hi * r_hi + t_hi + u_hi + c1 + c2
    r = lo - quotient * q          # exact in [0, 3q), mod-2^64 wraps cancel
    r = np.where(r >= q, r - q, r)
    return np.where(r >= q, r - q, r)


# Public aliases for the batch kernels (BConv matrix stage, batched
# multi-limb NTT).  All three broadcast: operands may be any mutually
# broadcastable uint64 array shapes, e.g. a (N,) residue row against a
# (k, 1) per-modulus column.
mul128 = _mul128
mulhi = _mulhi
barrett128 = _barrett128


def mul_shoup_lazy(a, w, w_shoup, q):
    """Shared lazy-Shoup butterfly multiply: exact value in ``[0, 2q)``.

    ``r = a*w - mulhi(a, w_shoup)*q`` with every product wrapping mod
    2^64.  For ``w < q`` (a reduced table entry) and **any** uint64
    ``a`` the quotient estimate ``mulhi(a, w_shoup)`` undershoots the
    true quotient by at most one, so the wraps cancel and ``r`` is the
    exact representative of ``a*w mod q`` in ``[0, 2q)`` whenever
    ``2q < 2^64``.  Every butterfly tier — scalar :class:`NttPlan`
    stages, the batched radix-2 oracle, the fused radix-4 engine and
    ``RowBatchNtt`` — multiplies through this one helper, so there is
    exactly one lazy-reduction bug surface.
    """
    return a * w - _mulhi(a, w_shoup) * q


# -- out=-chained kernels (zero-allocation steady state) -------------------
#
# The functions below are the arena tier of the same arithmetic: every
# intermediate lands in a caller-provided scratch buffer via ufunc
# ``out=``, so a warmed plan performs *zero* allocations per call (the
# ledger in :mod:`repro.backend.arena` asserts it).  Fixed operands
# (twiddles, key weights, Barrett ratios) arrive pre-split into 32-bit
# halves — :func:`split32` — saving two splits per multiply and
# halving the table bytes (uint32 storage).
#
# Aliasing contract: ``a`` may alias ``out`` (the product ``a*w`` is
# read off before ``out`` is first written); ``a`` must not alias any
# scratch buffer, and scratch buffers must be mutually distinct.

def split32(table):
    """Pre-split a uint64 table into ``(lo, hi)`` uint32 halves."""
    return ((table & _MASK32).astype(np.uint32),
            (table >> _SHIFT32).astype(np.uint32))


def mulhi_into(a, b_lo, b_hi, out, s):
    """``out = floor(a * b / 2^64)`` with ``b`` pre-split, no allocs.

    ``s`` is a tuple of 4 uint64 scratch buffers broadcast-compatible
    with the result shape.  ``a`` is only read before ``out`` is first
    written, so ``out`` may alias ``a``.
    """
    s1, s2, s3, s4 = s
    np.bitwise_and(a, _MASK32, out=s1)          # a0
    np.right_shift(a, _SHIFT32, out=s2)         # a1
    np.multiply(s1, b_lo, out=s3)               # ll
    np.right_shift(s3, _SHIFT32, out=s3)        # mid := ll >> 32
    np.multiply(s1, b_hi, out=s4)               # lh
    np.bitwise_and(s4, _MASK32, out=s1)
    np.add(s3, s1, out=s3)                      # mid += lh & M
    np.right_shift(s4, _SHIFT32, out=s4)        # lh >> 32
    np.multiply(s2, b_lo, out=s1)               # hl
    np.multiply(s2, b_hi, out=out)              # hh
    np.bitwise_and(s1, _MASK32, out=s2)
    np.add(s3, s2, out=s3)                      # mid += hl & M
    np.right_shift(s1, _SHIFT32, out=s1)        # hl >> 32
    np.right_shift(s3, _SHIFT32, out=s3)        # mid >> 32
    np.add(out, s4, out=out)
    np.add(out, s1, out=out)
    np.add(out, s3, out=out)


def mul128_into(a, b_lo, b_hi, out_hi, out_lo, s):
    """Exact 128-bit product into ``(out_hi, out_lo)``, no allocs.

    ``b`` pre-split via :func:`split32`; ``s`` is 4 uint64 scratch
    buffers.  ``a`` must not alias ``out_lo`` or scratch.
    """
    s1, s2, s3, s4 = s
    np.bitwise_and(a, _MASK32, out=s1)          # a0
    np.right_shift(a, _SHIFT32, out=s2)         # a1
    np.multiply(s1, b_lo, out=s3)               # ll
    np.bitwise_and(s3, _MASK32, out=out_lo)     # lo := ll & M
    np.right_shift(s3, _SHIFT32, out=s3)        # mid := ll >> 32
    np.multiply(s1, b_hi, out=s4)               # lh
    np.bitwise_and(s4, _MASK32, out=s1)
    np.add(s3, s1, out=s3)                      # mid += lh & M
    np.right_shift(s4, _SHIFT32, out=s4)        # lh >> 32
    np.multiply(s2, b_lo, out=s1)               # hl
    np.multiply(s2, b_hi, out=out_hi)           # hh
    np.bitwise_and(s1, _MASK32, out=s2)
    np.add(s3, s2, out=s3)                      # mid += hl & M
    np.right_shift(s1, _SHIFT32, out=s1)        # hl >> 32
    np.add(out_hi, s4, out=out_hi)
    np.add(out_hi, s1, out=out_hi)
    np.bitwise_and(s3, _MASK32, out=s1)
    np.left_shift(s1, _SHIFT32, out=s1)
    np.bitwise_or(out_lo, s1, out=out_lo)       # lo |= (mid & M) << 32
    np.right_shift(s3, _SHIFT32, out=s3)        # mid >> 32
    np.add(out_hi, s3, out=out_hi)


def mul_shoup_lazy_into(a, w, ws_lo, ws_hi, q, out, s):
    """:func:`mul_shoup_lazy` into ``out``, no allocations.

    ``ws_lo``/``ws_hi`` are the :func:`split32` halves of the Shoup
    companion table; ``s`` is 5 uint64 scratch buffers (4 for
    :func:`mulhi_into` plus one holding the wrap product ``a*w``).
    ``out`` may alias ``a``.
    """
    s5 = s[4]
    np.multiply(a, w, out=s5)                   # a*w mod 2^64
    mulhi_into(a, ws_lo, ws_hi, out, s[:4])     # quotient estimate
    np.multiply(out, q, out=out)
    np.subtract(s5, out, out=out)               # exact in [0, 2q)


def cond_sub_into(a, bound, scratch) -> None:
    """In-place ``a -= bound`` wherever ``a >= bound`` (branch-free).

    The uint64 min-trick: ``a - bound`` wraps past 2^64 exactly when
    ``a < bound`` (any ``bound < 2^64``), so ``min(a, a - bound)``
    selects the folded value without a boolean temporary.  This is the
    lazy-domain correction of the fused butterflies: one call folds
    ``[0, 2*bound)`` into ``[0, bound)``.
    """
    np.subtract(a, bound, out=scratch)
    np.minimum(a, scratch, out=a)


def barrett128_into(hi, lo, q, r_hi, r_lo_split, r_hi_split, out, s,
                    carry) -> None:
    """:func:`barrett128` into ``out``, no allocations.

    ``r_lo_split``/``r_hi_split`` are :func:`split32` halves of the
    Barrett ratio words; ``r_hi`` is the full uint64 hi word (needed
    for the wrapping ``hi * r_hi`` quotient term).  ``s`` is 8 uint64
    scratch buffers, ``carry`` one bool buffer.  ``out`` must not
    alias ``hi``/``lo``/scratch.  Same range contract as
    :func:`barrett128`: exact for ``x < 2^126``, ``q < 2^62``.
    """
    t1, t2, t3, t4, t5, t6, t7, t8 = s
    rlo_lo, rlo_hi = r_lo_split
    rhi_lo, rhi_hi = r_hi_split
    mulhi_into(lo, rlo_lo, rlo_hi, t1, (t2, t3, t4, t5))   # dropped-word carry
    mul128_into(lo, rhi_lo, rhi_hi, t6, t7, (t2, t3, t4, t5))  # lo * r_hi
    np.add(t7, t1, out=t7)
    np.less(t7, t1, out=carry)                  # carry out of t_lo + carry
    np.add(t6, carry, out=t6)
    mul128_into(hi, rlo_lo, rlo_hi, t1, t8, (t2, t3, t4, t5))  # hi * r_lo
    np.add(t7, t8, out=t7)
    np.less(t7, t8, out=carry)                  # carry out of s1 + u_lo
    np.multiply(hi, r_hi, out=t2)               # hi * r_hi (wraps cancel)
    np.add(t2, t6, out=t2)
    np.add(t2, t1, out=t2)
    np.add(t2, carry, out=t2)                   # quotient estimate
    np.multiply(t2, q, out=t2)
    np.subtract(lo, t2, out=out)                # exact in [0, 3q)
    cond_sub_into(out, q, t2)
    cond_sub_into(out, q, t2)


def barrett_constants(modulus: int) -> tuple[np.uint64, np.uint64]:
    """``floor(2^128 / q)`` as a uint64 (hi, lo) pair for :func:`barrett128`."""
    ratio = (1 << 128) // int(modulus)
    return np.uint64(ratio >> 64), np.uint64(ratio & 0xFFFFFFFFFFFFFFFF)


def shoup_pair(w: int, modulus: int) -> tuple[np.uint64, np.uint64]:
    """``(w mod q, floor(w * 2^64 / q))`` for lazy fixed-operand mulmod.

    Unlike :meth:`ModulusKernel.shoup` this is path-agnostic — the
    batch kernels run narrow moduli through the same uint64 datapath
    as wide ones, where the Shoup trick is valid for any ``q < 2^62``.
    """
    q = int(modulus)
    w = int(w) % q
    return np.uint64(w), np.uint64((w << 64) // q)


class ModulusKernel:
    """Per-modulus arithmetic plan: width path plus reduction constants.

    The plan object is the software TBM: one kernel runs either the
    narrow int64 datapath or the wide split-limb Barrett datapath (or
    the exact object oracle), chosen once per modulus.  Residue arrays
    handed to the binary ops are assumed reduced; :meth:`asresidues`
    is the boundary that establishes that invariant.
    """

    __slots__ = ("modulus", "path", "dtype", "bits", "backend",
                 "_q64", "_r_hi", "_r_lo", "_half")

    def __init__(self, modulus: int, path: str | None = None,
                 backend=None):
        modulus = int(modulus)
        if modulus < 2:
            raise ValueError("modulus must be at least 2")
        auto = width_path(modulus)
        if path is None:
            path = auto
        elif path not in _PATH_RANK:
            raise ValueError(f"unknown width path {path!r}")
        elif _PATH_RANK[path] < _PATH_RANK[auto]:
            raise ValueError(
                f"modulus {modulus} ({modulus.bit_length()} bits) does "
                f"not fit the {path} path")
        self.modulus = modulus
        self.path = path
        self.bits = modulus.bit_length()
        self._half = modulus // 2
        if path == OBJECT:
            # The object oracle is host-only by definition (boxed
            # Python ints); pinning it to numpy is the documented
            # contract, not a capability fallback.
            self.backend = backend_mod.get_backend("numpy")
        else:
            self.backend = backend_mod.kernel_backend(
                backend, need_uint64=(path == WIDE))
        if path == NARROW:
            self.dtype = np.int64
        elif path == WIDE:
            self.dtype = np.uint64
            self._q64 = np.uint64(modulus)
            ratio = (1 << 128) // modulus
            self._r_hi = np.uint64(ratio >> 64)
            self._r_lo = np.uint64(ratio & 0xFFFFFFFFFFFFFFFF)
        else:
            self.dtype = object

    def __repr__(self) -> str:
        return (f"ModulusKernel(modulus={self.modulus}, "
                f"path={self.path!r}, bits={self.bits}, "
                f"backend={self.backend.cache_token!r})")

    # -- internals ----------------------------------------------------
    def _tick(self) -> None:
        if _TRACER.enabled:
            _TRACER.count("modmath.path." + self.path)

    def _scalar(self, value) -> int:
        """A reduced plain-int scalar operand."""
        return int(value) % self.modulus

    def _coerce(self, a) -> np.ndarray:
        """Ensure ``a`` is a residue array of this kernel's dtype."""
        if isinstance(a, np.ndarray) and a.dtype == self.dtype:
            return a
        return self._asresidues(a, copy=False)

    def _asresidues(self, values, copy: bool = True) -> np.ndarray:
        q = self.modulus
        if isinstance(values, np.ndarray) \
                or self.backend.is_device_array(values):
            arr = values
        else:
            arr = np.asarray(values)
            if arr.dtype.kind == "f":
                # numpy converts an int list to float64 (losing low
                # bits) when any element lands in [2^63, 2^64); rebox
                # from the original exact values.
                boxed = np.empty(len(values), dtype=object)
                boxed[:] = [int(v) for v in values]
                arr = boxed
        if self.path == OBJECT:
            if arr.dtype != object:
                boxed = np.empty(arr.size, dtype=object)
                boxed[:] = arr.ravel().tolist()
                arr = boxed
            else:
                arr = arr.ravel()
            return np.mod(arr, q)
        # Every non-object exit crosses the residency boundary: host
        # input is uploaded, device-resident input passes through
        # untouched (from_host is the identity there).
        from_host = self.backend.from_host
        if arr.dtype == object:
            # Single reduce-then-convert pass: one vectorised Python-%
            # sweep, then a bulk dtype conversion (no per-element
            # comprehension).
            return from_host(np.mod(arr.ravel(), q).astype(self.dtype))
        if arr.dtype == self.dtype and arr.ndim == 1:
            # Fast path: already-reduced input needs at most a copy.
            if self.path == WIDE:
                reduced = bool((arr < self._q64).all())
            else:
                reduced = bool(((arr >= 0) & (arr < q)).all())
            if reduced:
                return from_host(arr.copy() if copy else arr)
        if self.path == WIDE:
            if arr.dtype == np.uint64:
                return from_host(np.mod(arr, self._q64))
            return from_host(np.mod(arr.astype(np.int64, copy=False),
                                    q).astype(np.uint64))
        return from_host(np.mod(arr.astype(np.int64, copy=True), q))

    def _mul_scalar(self, a, scalar: int) -> np.ndarray:
        s = self._scalar(scalar)
        if self.path == WIDE:
            w, w_shoup = self.shoup(s)
            return self._mul_shoup(self._coerce(a), w, w_shoup)
        return np.mod(a * s, self.modulus)

    def _mul_shoup(self, a, w, w_shoup) -> np.ndarray:
        q = self._q64
        r = mul_shoup_lazy(a, w, w_shoup, q)   # lazy: exact in [0, 2q)
        return np.where(r >= q, r - q, r)

    # -- constructors / conversions -----------------------------------
    def zeros(self, n: int) -> np.ndarray:
        if self.path == OBJECT:
            out = np.empty(n, dtype=object)
            out[:] = 0
            return out
        return self.backend.zeros(n, self.dtype)

    def asresidues(self, values, copy: bool = True) -> np.ndarray:
        """Coerce ints/arrays into a reduced residue vector.

        With ``copy=False``, input that is already a reduced vector of
        the kernel's dtype is returned as-is (no copy); callers opting
        in must not mutate the result.
        """
        self._tick()
        return self._asresidues(values, copy=copy)

    def to_signed(self, a) -> np.ndarray:
        """Map residues to the symmetric interval (-q/2, q/2]."""
        self._tick()
        half = self._half
        if self.path == OBJECT:
            return np.where(np.greater(a, half), a - self.modulus, a)
        signed = a.astype(np.int64, copy=True)
        signed[signed > half] -= self.modulus
        return signed

    # -- element-wise ring ops -----------------------------------------
    def add(self, a, b) -> np.ndarray:
        self._tick()
        if isinstance(b, (int, np.integer)):
            b = self._scalar(b)
            if self.path == WIDE:
                b = np.uint64(b)
        if self.path == WIDE:
            s = a + b                   # < 2^63: no wraparound
            return np.where(s >= self._q64, s - self._q64, s)
        return np.mod(a + b, self.modulus)

    def sub(self, a, b) -> np.ndarray:
        self._tick()
        if isinstance(b, (int, np.integer)):
            b = self._scalar(b)
            if self.path == WIDE:
                b = np.uint64(b)
        if self.path == WIDE:
            d = a + (self._q64 - b)     # in [0, 2q)
            return np.where(d >= self._q64, d - self._q64, d)
        return np.mod(a - b, self.modulus)

    def neg(self, a) -> np.ndarray:
        self._tick()
        if self.path == WIDE:
            return np.where(a == _U64_ZERO, _U64_ZERO, self._q64 - a)
        return np.mod(-a, self.modulus)

    def mul(self, a, b) -> np.ndarray:
        """Element-wise ``(a * b) mod q``; ``b`` may be a scalar."""
        self._tick()
        if isinstance(b, (int, np.integer)):
            return self._mul_scalar(a, int(b))
        if self.path == WIDE:
            hi, lo = _mul128(self._coerce(a), self._coerce(b))
            return _barrett128(hi, lo, self._q64, self._r_hi, self._r_lo)
        return np.mod(a * b, self.modulus)

    def mul_scalar(self, a, scalar: int) -> np.ndarray:
        self._tick()
        return self._mul_scalar(a, int(scalar))

    # -- Shoup fixed-operand multiplication (wide path) -----------------
    def shoup(self, w: int) -> tuple[np.uint64, np.uint64]:
        """Precompute ``(w, floor(w * 2^64 / q))`` for :meth:`mul_shoup`."""
        w = self._scalar(w)
        return np.uint64(w), np.uint64((w << 64) // self.modulus)

    def shoup_table(self, table) -> np.ndarray:
        """Vectorised Shoup companions for a table of residues.

        Returns a *host* uint64 array (it iterates Python ints); plan
        builders that keep the companions device-resident wrap the
        result in ``backend.from_host`` once, at build.
        """
        q = self.modulus
        table = backend_mod.to_host(table)
        boxed = np.empty(len(table), dtype=object)
        boxed[:] = [int(w) for w in table]
        return ((boxed << 64) // q).astype(np.uint64)

    def mul_shoup(self, a, w, w_shoup) -> np.ndarray:
        """Lazy-reduction multiply by precomputed operands (wide only).

        ``w``/``w_shoup`` come from :meth:`shoup` / :meth:`shoup_table`
        (scalars or broadcastable arrays).  Exact result in [0, q).
        """
        if self.path != WIDE:
            raise ValueError(f"mul_shoup requires the wide path, "
                             f"not {self.path}")
        self._tick()
        return self._mul_shoup(a, w, w_shoup)

    # -- sampling -------------------------------------------------------
    def random_uniform(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._tick()
        q = self.modulus
        if self.path == NARROW:
            return self.backend.from_host(
                rng.integers(0, q, size=n, dtype=np.int64))
        if self.path == WIDE:
            return self.backend.from_host(
                rng.integers(0, q, size=n, dtype=np.uint64))
        words = (q.bit_length() + 62) // 63
        out = np.empty(n, dtype=object)
        for i in range(n):
            v = 0
            for _ in range(words):
                v = (v << 63) | int(rng.integers(0, 1 << 63,
                                                 dtype=np.uint64))
            out[i] = v % q
        return out


@lru_cache(maxsize=1024)
def _build_kernel(modulus: int, path: str | None,
                  backend) -> ModulusKernel:
    return ModulusKernel(modulus, path, backend)


def get_kernel(modulus: int, path: str | None = None,
               backend=None) -> ModulusKernel:
    """Shared :class:`ModulusKernel` for one (modulus, path, backend).

    ``backend`` may be a name, an :class:`~repro.backend.ArrayBackend`
    instance, or None for the process default.  The cache keys on the
    resolved backend singleton, so kernels (and the constants they
    hold) are never shared across devices and a mid-process
    ``backend.select`` cannot serve stale tables.
    """
    return _build_kernel(int(modulus), path, backend_mod.resolve(backend))


# -- module-level functional API (historic signatures) --------------------

def zeros(n: int, modulus: int) -> np.ndarray:
    """An all-zero residue vector of length ``n`` for ``modulus``."""
    return get_kernel(modulus).zeros(n)


def asresidues(values, modulus: int, copy: bool = True) -> np.ndarray:
    """Coerce ``values`` (ints / array) into a reduced residue vector."""
    return get_kernel(modulus).asresidues(values, copy=copy)


def add(a: np.ndarray, b, modulus: int) -> np.ndarray:
    """Element-wise ``(a + b) mod modulus``."""
    return get_kernel(modulus).add(a, b)


def sub(a: np.ndarray, b, modulus: int) -> np.ndarray:
    """Element-wise ``(a - b) mod modulus``."""
    return get_kernel(modulus).sub(a, b)


def neg(a: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(-a) mod modulus``."""
    return get_kernel(modulus).neg(a)


def mul(a: np.ndarray, b, modulus: int) -> np.ndarray:
    """Element-wise ``(a * b) mod modulus``; ``b`` may be a scalar.

    Narrow path: the product of two reduced residues is at most
    ``(2^31 - 1)^2 < 2^62`` so it never overflows int64.  Wide path:
    exact 128-bit product + Barrett reduction.
    """
    return get_kernel(modulus).mul(a, b)


def mul_scalar(a: np.ndarray, scalar: int, modulus: int) -> np.ndarray:
    """Element-wise multiplication by a plain integer scalar."""
    return get_kernel(modulus).mul_scalar(a, scalar)


def mul_shoup(a: np.ndarray, w, w_shoup, modulus: int) -> np.ndarray:
    """Wide-path lazy multiply by Shoup-precomputed operands."""
    return get_kernel(modulus).mul_shoup(a, w, w_shoup)


def pow_mod(base: int, exp: int, modulus: int) -> int:
    """Scalar modular exponentiation (thin wrapper over built-in pow)."""
    return pow(base % modulus, exp, modulus)


def inv_mod(value: int, modulus: int) -> int:
    """Scalar modular inverse; raises ValueError when not invertible."""
    value %= modulus
    if value == 0:
        raise ValueError("zero has no modular inverse")
    return pow(value, -1, modulus)


def to_signed(a: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues to the symmetric interval (-q/2, q/2].

    Returns an int64 array on the narrow and wide paths (safe: moduli
    there are < 2^62, so centred values fit a signed 64-bit integer)
    and an object array of Python ints on the object path.  Used when
    rounding/decoding and in ModDown error analysis.
    """
    return get_kernel(modulus).to_signed(a)


def random_uniform(n: int, modulus: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform residue vector, used for RLWE masks and evk ``a`` parts.

    Narrow/wide moduli sample directly into int64/uint64 arrays; only
    the object path pays a per-element rejection loop.
    """
    return get_kernel(modulus).random_uniform(n, rng)


def random_ternary(n: int, rng: np.random.Generator,
                   hamming_weight: int | None = None) -> np.ndarray:
    """Ternary {-1, 0, 1} secret vector, optionally of fixed Hamming weight."""
    if hamming_weight is None:
        return rng.integers(-1, 2, size=n, dtype=np.int64)
    coeffs = np.zeros(n, dtype=np.int64)
    support = rng.choice(n, size=min(hamming_weight, n), replace=False)
    coeffs[support] = rng.choice(np.array([-1, 1], dtype=np.int64),
                                 size=len(support))
    return coeffs


def random_discrete_gaussian(n: int, rng: np.random.Generator,
                             sigma: float = 3.2) -> np.ndarray:
    """Rounded-Gaussian error vector (standard RLWE error distribution)."""
    return np.rint(rng.normal(0.0, sigma, size=n)).astype(np.int64)
