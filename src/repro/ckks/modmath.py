"""Vectorised modular arithmetic over a single prime modulus.

All polynomial limbs in this library are 1-D :class:`numpy.ndarray`
objects holding coefficients reduced modulo one RNS prime.  Two
representations are used, selected automatically per modulus:

* ``int64`` arrays when the modulus fits in 31 bits, so that a product
  of two reduced residues fits in a signed 64-bit integer.  This is
  the fast path used by all functional tests.
* ``object`` arrays of Python integers otherwise (exact, arbitrary
  precision).  This path is used when full-size 36/60-bit parameter
  sets are exercised functionally.

The functions here are deliberately free of any CKKS semantics; they
are the software analogue of the accelerator's modular ALUs.
"""

from __future__ import annotations

import numpy as np

# Largest modulus for which a*b of two reduced residues fits in int64.
_INT64_SAFE_BITS = 31


def uses_int64(modulus: int) -> bool:
    """Return True when residues mod ``modulus`` can use the int64 path."""
    return modulus.bit_length() <= _INT64_SAFE_BITS


def _dtype_for(modulus: int):
    return np.int64 if uses_int64(modulus) else object


def zeros(n: int, modulus: int) -> np.ndarray:
    """An all-zero residue vector of length ``n`` for ``modulus``."""
    if uses_int64(modulus):
        return np.zeros(n, dtype=np.int64)
    out = np.empty(n, dtype=object)
    out[:] = 0
    return out


def asresidues(values, modulus: int) -> np.ndarray:
    """Coerce ``values`` (ints / array) into a reduced residue vector."""
    if uses_int64(modulus):
        arr = np.asarray(values)
        if arr.dtype == object:
            arr = np.array([int(v) % modulus for v in arr], dtype=np.int64)
            return arr
        return np.mod(arr.astype(np.int64, copy=True), modulus)
    arr = np.array([int(v) % modulus for v in np.asarray(values).ravel()],
                   dtype=object)
    return arr


def add(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a + b) mod modulus``."""
    return np.mod(a + b, modulus)


def sub(a: np.ndarray, b: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(a - b) mod modulus``."""
    return np.mod(a - b, modulus)


def neg(a: np.ndarray, modulus: int) -> np.ndarray:
    """Element-wise ``(-a) mod modulus``."""
    return np.mod(-a, modulus)


def mul(a: np.ndarray, b, modulus: int) -> np.ndarray:
    """Element-wise ``(a * b) mod modulus``; ``b`` may be a scalar.

    On the int64 path the product of two reduced residues is at most
    ``(2^31 - 1)^2 < 2^62`` so it never overflows.
    """
    if isinstance(b, (int, np.integer)):
        b = int(b) % modulus
    return np.mod(a * b, modulus)


def mul_scalar(a: np.ndarray, scalar: int, modulus: int) -> np.ndarray:
    """Element-wise multiplication by a plain integer scalar."""
    return mul(a, int(scalar) % modulus, modulus)


def pow_mod(base: int, exp: int, modulus: int) -> int:
    """Scalar modular exponentiation (thin wrapper over built-in pow)."""
    return pow(base % modulus, exp, modulus)


def inv_mod(value: int, modulus: int) -> int:
    """Scalar modular inverse; raises ValueError when not invertible."""
    value %= modulus
    if value == 0:
        raise ValueError("zero has no modular inverse")
    return pow(value, -1, modulus)


def to_signed(a: np.ndarray, modulus: int) -> np.ndarray:
    """Map residues to the symmetric interval (-q/2, q/2].

    Returns a float64 array on the int64 path (safe: moduli on that
    path are < 2^31) and an object array of Python ints otherwise.
    Used when rounding/decoding and in ModDown error analysis.
    """
    half = modulus // 2
    if uses_int64(modulus):
        signed = a.astype(np.int64, copy=True)
        signed[signed > half] -= modulus
        return signed
    out = np.empty(len(a), dtype=object)
    for i, v in enumerate(a):
        v = int(v)
        out[i] = v - modulus if v > half else v
    return out


def random_uniform(n: int, modulus: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform residue vector, used for RLWE masks and evk ``a`` parts."""
    if uses_int64(modulus):
        return rng.integers(0, modulus, size=n, dtype=np.int64)
    words = (modulus.bit_length() + 62) // 63
    out = np.empty(n, dtype=object)
    for i in range(n):
        v = 0
        for _ in range(words):
            v = (v << 63) | int(rng.integers(0, 1 << 63, dtype=np.uint64))
        out[i] = v % modulus
    return out


def random_ternary(n: int, rng: np.random.Generator,
                   hamming_weight: int | None = None) -> np.ndarray:
    """Ternary {-1, 0, 1} secret vector, optionally of fixed Hamming weight."""
    if hamming_weight is None:
        return rng.integers(-1, 2, size=n, dtype=np.int64)
    coeffs = np.zeros(n, dtype=np.int64)
    support = rng.choice(n, size=min(hamming_weight, n), replace=False)
    coeffs[support] = rng.choice(np.array([-1, 1], dtype=np.int64),
                                 size=len(support))
    return coeffs


def random_discrete_gaussian(n: int, rng: np.random.Generator,
                             sigma: float = 3.2) -> np.ndarray:
    """Rounded-Gaussian error vector (standard RLWE error distribution)."""
    return np.rint(rng.normal(0.0, sigma, size=n)).astype(np.int64)
