"""Key material: secret/public keys and key-switching (evaluation) keys.

Both key-switching families in the paper are generated here:

* **hybrid** keys: per digit ``j`` (a group of ``alpha`` primes with
  product ``D_j``), a ring-LWE pair over ``Q_l * P`` encrypting
  ``P * q~_j * s_from`` where ``q~_j = (Q_l/D_j) * ((Q_l/D_j)^{-1}
  mod D_j)`` is the CRT interpolation factor;
* **KLSS** gadget keys: per digit ``j`` of a balanced base-``2^v``
  decomposition, a pair over ``Q_l * T`` encrypting
  ``T * 2^{v j} * s_from``, where ``T`` is the wide (60-bit-class)
  auxiliary basis.

Keys are generated *per level* and cached in :class:`EvkStore`; this
mirrors the paper's Hemera evk pool, which is likewise indexed by the
ciphertext level and holds one rotation-key and one multiply-key group
per level (Sec. 4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ckks import modmath, rns
from repro.ckks.params import CkksParams
from repro.ckks.rns import RnsPoly

HYBRID = "hybrid"
KLSS = "klss"
METHODS = (HYBRID, KLSS)


@dataclass(frozen=True)
class SecretKey:
    """Sparse ternary secret ``s`` stored as small integer coefficients."""

    coeffs: np.ndarray  # int64, entries in {-1, 0, 1}

    def as_rns(self, moduli) -> RnsPoly:
        """The secret reduced onto a basis, in evaluation form."""
        return RnsPoly.from_int_coeffs(self.coeffs, moduli).to_eval()

    def squared_coeffs(self) -> np.ndarray:
        """Integer coefficients of ``s^2`` in ``Z[X]/(X^N+1)``."""
        n = len(self.coeffs)
        full = np.convolve(self.coeffs, self.coeffs)
        folded = full[:n].copy()
        folded[: n - 1] -= full[n:]
        return folded

    def automorphism_coeffs(self, galois_power: int) -> np.ndarray:
        """Integer coefficients of ``s(X^g)`` in ``Z[X]/(X^N+1)``."""
        n = len(self.coeffs)
        two_n = 2 * n
        out = np.zeros(n, dtype=np.int64)
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            k = (i * galois_power) % two_n
            if k < n:
                out[k] += c
            else:
                out[k - n] -= c
        return out


@dataclass(frozen=True)
class PublicKey:
    """RLWE encryption key ``(b, a)`` with ``b = -a s + e`` (eval form)."""

    b: RnsPoly
    a: RnsPoly


@dataclass(frozen=True)
class KeySwitchKey:
    """A gadget key: one RLWE pair per decomposition digit.

    ``parts[j] = (b_j, a_j)`` over ``moduli`` in evaluation form with
    ``b_j = -a_j s + e_j + factor_j * s_from``.  ``aux_count`` is the
    number of trailing auxiliary limbs (P or T) removed by ModDown.
    For KLSS keys, ``digit_bits`` records the gadget width ``v``.
    """

    method: str
    parts: tuple
    moduli: tuple
    aux_count: int
    digit_bits: int = 0
    digit_indices: tuple = ()

    @property
    def num_digits(self) -> int:
        return len(self.parts)

    def hoisting_profile(self) -> dict:
        """The decomposition geometry hoisted rotations must agree on.

        A shared decomposition of ``c1`` can only feed keys whose
        method, basis and digit layout all match; anything else would
        silently pair digits with the wrong key parts.  Field name ->
        value, so a validator can report exactly what diverged.
        """
        return {"method": self.method, "moduli": self.moduli,
                "aux_count": self.aux_count, "num_digits": self.num_digits,
                "digit_bits": self.digit_bits}

    def size_bytes(self) -> int:
        """Storage footprint (two polys per digit, ceil(bits/8) per word)."""
        total = 0
        for _ in self.parts:
            for q in self.moduli:
                word_bytes = (int(q).bit_length() + 7) // 8
                total += 2 * word_bytes * self.parts[0][0].n
        return total


def generate_secret_key(params: CkksParams,
                        rng: np.random.Generator) -> SecretKey:
    """Sparse ternary secret of the configured Hamming weight."""
    coeffs = modmath.random_ternary(params.ring_degree, rng,
                                    params.hamming_weight)
    return SecretKey(coeffs)


def _rlwe_pair(secret_eval: RnsPoly, payload_eval: RnsPoly | None,
               moduli, params: CkksParams,
               rng: np.random.Generator) -> tuple[RnsPoly, RnsPoly]:
    """Sample ``(b, a)`` with ``b = -a s + e (+ payload)`` in eval form."""
    n = params.ring_degree
    # random_uniform samples straight into the modulus's width path
    # (int64 narrow / uint64 wide), so evk generation at 36/60-bit
    # primes never touches arbitrary-precision arrays.
    a = RnsPoly([modmath.random_uniform(n, q, rng) for q in moduli],
                moduli, rns.EVAL)
    e = RnsPoly.from_int_coeffs(
        modmath.random_discrete_gaussian(n, rng, params.sigma),
        moduli).to_eval()
    b = -(a * secret_eval) + e
    if payload_eval is not None:
        b = b + payload_eval
    return b, a


def generate_public_key(params: CkksParams, secret: SecretKey,
                        moduli, rng: np.random.Generator) -> PublicKey:
    b, a = _rlwe_pair(secret.as_rns(moduli), None, moduli, params, rng)
    return PublicKey(b, a)


def hybrid_digit_indices(num_limbs: int, alpha: int) -> list[list[int]]:
    """Chunk limb positions ``0..num_limbs-1`` into digits of ``alpha``."""
    return [list(range(lo, min(lo + alpha, num_limbs)))
            for lo in range(0, num_limbs, alpha)]


def generate_hybrid_key(params: CkksParams, secret: SecretKey,
                        source_coeffs: np.ndarray, q_moduli, p_moduli,
                        rng: np.random.Generator) -> KeySwitchKey:
    """Hybrid key switching ``s_from -> s`` at the level of ``q_moduli``.

    ``source_coeffs`` are the integer coefficients of ``s_from`` (e.g.
    ``s^2`` for relinearisation, ``s(X^g)`` for a rotation key).
    """
    q_moduli = tuple(int(q) for q in q_moduli)
    p_moduli = tuple(int(p) for p in p_moduli)
    full = q_moduli + p_moduli
    digits = hybrid_digit_indices(len(q_moduli), params.alpha)
    big_q = rns.product(q_moduli)
    big_p = rns.product(p_moduli)
    secret_eval = secret.as_rns(full)
    source = RnsPoly.from_int_coeffs(source_coeffs, full).to_eval()
    parts = []
    for indices in digits:
        d_j = rns.product(q_moduli[i] for i in indices)
        q_over_d = big_q // d_j
        tilde = q_over_d * modmath.inv_mod(q_over_d % d_j, d_j)
        factor = big_p * tilde
        payload = source.mul_scalar_per_limb([factor % q for q in full])
        parts.append(_rlwe_pair(secret_eval, payload, full, params, rng))
    return KeySwitchKey(method=HYBRID, parts=tuple(parts), moduli=full,
                        aux_count=len(p_moduli),
                        digit_indices=tuple(tuple(d) for d in digits))


def klss_digit_count(q_moduli, digit_bits: int) -> int:
    """Digits needed for a balanced base-``2^v`` split of ``Q_l``."""
    big_q = rns.product(q_moduli)
    return -(-(big_q.bit_length() + 1) // digit_bits)


def generate_klss_key(params: CkksParams, secret: SecretKey,
                      source_coeffs: np.ndarray, q_moduli, t_moduli,
                      rng: np.random.Generator) -> KeySwitchKey:
    """KLSS gadget key ``s_from -> s`` over ``Q_l * T``.

    Digit ``j`` of the key encrypts ``T * 2^{v j} * s_from``; the
    switching procedure decomposes the input into balanced base-``2^v``
    digits (the paper's double decomposition into wide ``R_T`` limbs)
    so that ``sum_j d_j 2^{v j} = x`` exactly over the integers.
    """
    q_moduli = tuple(int(q) for q in q_moduli)
    t_moduli = tuple(int(t) for t in t_moduli)
    full = q_moduli + t_moduli
    v = params.klss_digit_bits
    num_digits = klss_digit_count(q_moduli, v)
    big_t = rns.product(t_moduli)
    secret_eval = secret.as_rns(full)
    source = RnsPoly.from_int_coeffs(source_coeffs, full).to_eval()
    parts = []
    for j in range(num_digits):
        factor = big_t * (1 << (v * j))
        payload = source.mul_scalar_per_limb([factor % q for q in full])
        parts.append(_rlwe_pair(secret_eval, payload, full, params, rng))
    return KeySwitchKey(method=KLSS, parts=tuple(parts), moduli=full,
                        aux_count=len(t_moduli), digit_bits=v)
