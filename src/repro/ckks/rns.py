"""RNS (residue number system) polynomial machinery.

A CKKS ciphertext limb set is a polynomial of degree ``N`` whose huge
integer coefficients (mod ``Q = prod q_i``) are stored as *limbs*: one
residue vector per prime.  This module provides

* :class:`RnsPoly` — an RNS polynomial with coefficient/evaluation
  form tracking, element-wise ring ops, NTTs and automorphisms;
* fast approximate base conversion (:func:`base_convert`) executed by
  a precomputed-matrix kernel (:class:`BConvPlan`), the workhorse of
  ModUp/ModDown — the software analogue of the accelerator's BConvU
  systolic arrays;
* exact CRT composition/decomposition, used by the KLSS gadget
  decomposition and by decryption;
* :func:`mod_up` / :func:`mod_down`, the hybrid key-switching stages.

Plans are cached and bounded: NTT tables per ``(N, q)``
(:func:`get_plan`), conversion matrices per ``(source basis, target
basis)`` pair (:func:`get_bconv_plan`), automorphism index tables per
``(N, g)`` (:func:`get_auto_plan` — the software AutoU), CRT constants
per basis, so repeated level changes redo neither root searches nor
modular inverses.
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter

import numpy as np

import repro.backend as backend_mod
from repro.ckks import modmath
from repro.ckks.ntt import NttPlan, transform_limbs
from repro.obs.tracer import get_tracer

COEFF = "coeff"
EVAL = "eval"

# Bound on cached NTT plans.  Both paper parameter sets together touch
# fewer than ~100 (N, q) pairs (36 + 12 primes for Set-I, 36 + 5 for
# Set-II, plus KLSS wide bases), so 256 keeps every real working set
# resident while stopping pathological callers (parameter sweeps,
# fuzzers) from growing the table without limit.  Plans are pure
# functions of (N, q): eviction only costs a rebuild, never
# correctness — tests/ckks/test_plan_cache.py pins that down.
PLAN_CACHE_MAXSIZE = 256


@lru_cache(maxsize=PLAN_CACHE_MAXSIZE)
def _build_plan(ring_degree: int, modulus: int, backend,
                radix: int) -> NttPlan:
    tracer = get_tracer()
    if tracer.enabled:
        start = perf_counter()
        plan = NttPlan(ring_degree, modulus, backend=backend, radix=radix)
        tracer.count("rns.plan_builds")
        tracer.observe("rns.plan_build_s", perf_counter() - start)
        return plan
    return NttPlan(ring_degree, modulus, backend=backend, radix=radix)


def get_plan(ring_degree: int, modulus: int, backend=None,
             radix: int | None = None) -> NttPlan:
    """Shared NTT plan for one (N, q, backend, radix) tuple.

    Bounded LRU, keyed on the resolved backend singleton so
    twiddle/Shoup tables built for one device are never served to
    another — and on the butterfly radix tier, so the radix-2
    bit-exactness oracle and the fused radix-4 plan for the same
    (N, q) never alias.
    """
    from repro.ckks import ntt as ntt_mod

    radix = ntt_mod.RADIX_FUSED if radix is None else int(radix)
    return _build_plan(int(ring_degree), int(modulus),
                       backend_mod.resolve(backend), radix)


def plan_cache_info():
    """``functools`` cache statistics for the NTT-plan cache."""
    return _build_plan.cache_info()


def clear_plan_cache() -> None:
    _build_plan.cache_clear()


class RnsPoly:
    """Polynomial in ``prod_i Z_{q_i}[X]/(X^N+1)``, one limb per prime.

    Attributes
    ----------
    limbs:
        List of residue vectors (one per modulus, each of length N).
    moduli:
        Tuple of the primes, aligned with ``limbs``.
    form:
        Either ``"coeff"`` or ``"eval"``; element-wise multiplication
        is only defined in evaluation form.
    """

    __slots__ = ("limbs", "moduli", "form", "n")

    def __init__(self, limbs, moduli, form: str):
        self.limbs = list(limbs)
        self.moduli = tuple(int(q) for q in moduli)
        if len(self.limbs) != len(self.moduli):
            raise ValueError("limb/modulus count mismatch")
        if len(set(self.moduli)) != len(self.moduli):
            # A repeated prime would silently mis-pair limbs wherever
            # a basis is navigated by modulus *value* (mod_up builds
            # the digit complement that way), so reject it outright.
            raise ValueError("duplicate moduli in RNS basis")
        if form not in (COEFF, EVAL):
            raise ValueError(f"unknown form {form!r}")
        self.form = form
        self.n = len(self.limbs[0]) if self.limbs else 0
        for limb in self.limbs:
            if len(limb) != self.n:
                raise ValueError("ragged limb lengths")

    # -- constructors -------------------------------------------------
    @classmethod
    def zeros(cls, n: int, moduli, form: str = COEFF) -> "RnsPoly":
        return cls([modmath.zeros(n, q) for q in moduli], moduli, form)

    @classmethod
    def from_int_coeffs(cls, coeffs, moduli) -> "RnsPoly":
        """Reduce signed integer coefficients into every limb (coeff form)."""
        return cls([modmath.asresidues(coeffs, q) for q in moduli],
                   moduli, COEFF)

    def copy(self) -> "RnsPoly":
        return RnsPoly([limb.copy() for limb in self.limbs],
                       self.moduli, self.form)

    # -- form conversion ---------------------------------------------
    def to_eval(self) -> "RnsPoly":
        if self.form == EVAL:
            return self.copy()
        if len(self.limbs) > 1:
            limbs = transform_limbs(self.limbs, self.moduli, self.n)
        else:
            limbs = [get_plan(self.n, q).forward(limb)
                     for limb, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, EVAL)

    def to_coeff(self) -> "RnsPoly":
        if self.form == COEFF:
            return self.copy()
        if len(self.limbs) > 1:
            limbs = transform_limbs(self.limbs, self.moduli, self.n,
                                    inverse=True)
        else:
            limbs = [get_plan(self.n, q).inverse(limb)
                     for limb, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, COEFF)

    # ``from_eval`` mirrors the accelerator's INTT direction name.
    from_eval = to_coeff

    # -- ring operations ----------------------------------------------
    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli:
            raise ValueError("RNS bases differ")
        if self.form != other.form:
            raise ValueError("representation forms differ")

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        limbs = [modmath.add(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        limbs = [modmath.sub(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __neg__(self) -> "RnsPoly":
        limbs = [modmath.neg(a, q) for a, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, (int, np.integer)):
            limbs = [modmath.mul_scalar(a, int(other), q)
                     for a, q in zip(self.limbs, self.moduli)]
            return RnsPoly(limbs, self.moduli, self.form)
        self._check_compatible(other)
        if self.form != EVAL:
            raise ValueError("polynomial product requires evaluation form")
        limbs = [modmath.mul(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, EVAL)

    __rmul__ = __mul__

    def mul_scalar_per_limb(self, scalars) -> "RnsPoly":
        """Multiply limb ``i`` by scalar ``scalars[i]`` (any form)."""
        limbs = [modmath.mul_scalar(a, int(s), q) for a, s, q in
                 zip(self.limbs, scalars, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    # -- basis manipulation ---------------------------------------------
    def drop_limbs(self, keep: int) -> "RnsPoly":
        """Restrict to the first ``keep`` moduli (rescale/level drop)."""
        if keep > len(self.moduli):
            raise ValueError("cannot keep more limbs than present")
        return RnsPoly(self.limbs[:keep], self.moduli[:keep], self.form)

    def select_limbs(self, indices) -> "RnsPoly":
        """Arbitrary sub-basis selection (used by digit grouping)."""
        limbs = [self.limbs[i] for i in indices]
        moduli = [self.moduli[i] for i in indices]
        return RnsPoly(limbs, moduli, self.form)

    def concat(self, other: "RnsPoly") -> "RnsPoly":
        """Adjoin the limbs of ``other`` (bases must be disjoint)."""
        if self.form != other.form:
            raise ValueError("representation forms differ")
        if set(self.moduli) & set(other.moduli):
            raise ValueError("bases overlap")
        return RnsPoly(self.limbs + other.limbs,
                       self.moduli + other.moduli, self.form)

    # -- automorphism -----------------------------------------------------
    def automorphism(self, galois_power: int) -> "RnsPoly":
        """Apply ``X -> X^g`` with ``g = galois_power`` (odd, mod 2N).

        This is the functional model of the accelerator's AutoU.  The
        index tables come from the cached :class:`AutoPlan` for this
        ``(N, g)`` pair:

        * **evaluation form** — a pure gather of NTT points, zero
          NTTs: slot ``i`` holds the value at root ``psi^(2 brv(i) +
          1)`` (see :func:`repro.ckks.ntt.eval_point_exponents`), and
          ``sigma_g`` permutes those points among themselves because
          ``g`` is odd;
        * **coefficient form** — coefficient ``i`` moves to position
          ``(i * g) mod 2N``, negated when the destination falls in
          the upper half (``X^N = -1``).  This path is the
          bit-exactness oracle for the eval-domain gather.
        """
        plan = get_auto_plan(self.n, galois_power)
        tracer = get_tracer()
        if self.form == EVAL:
            perm = plan.eval_perm
            if perm is None:
                # No point permutation exists (non-power-of-two ring,
                # no NTT either): round-trip through the coeff oracle.
                if tracer.enabled:
                    tracer.count("rns.auto.eval_roundtrip")
                return self.to_coeff().automorphism(galois_power).to_eval()
            if tracer.enabled:
                tracer.count("rns.auto.eval")
            # Fancy-index gather per limb: works unchanged on every
            # width path (int64 / uint64 / object arrays).
            return RnsPoly([limb[perm] for limb in self.limbs],
                           self.moduli, EVAL)
        if tracer.enabled:
            tracer.count("rns.auto.coeff")
        dest = plan.coeff_dest
        negate = plan.coeff_negate
        out_limbs = []
        for limb, q in zip(self.limbs, self.moduli):
            # np.where instead of a sign multiply: mixing an int64 sign
            # array into a uint64 limb would silently promote to
            # float64 and corrupt wide residues.
            out = modmath.zeros(self.n, q)
            out[dest] = np.where(negate, modmath.neg(limb, q), limb)
            out_limbs.append(out)
        return RnsPoly(out_limbs, self.moduli, COEFF)


# -- automorphism plans (software AutoU) ----------------------------------

class AutoPlan:
    """Precomputed index tables for ``X -> X^g`` on one ``(N, g)`` pair.

    This is the software analogue of FAST's AutoU, which routes NTT
    points through a Benes network instead of leaving the evaluation
    domain.  Two table sets are built once and shared via the bounded
    :func:`get_auto_plan` cache:

    * ``eval_perm`` — the evaluation-domain permutation.  Slot ``i``
      of a forward NTT holds the value at root ``psi^e(i)`` with
      ``e(i) = 2 brv(i) + 1`` (:func:`~repro.ckks.ntt.
      eval_point_exponents`).  Applying ``sigma_g: a(X) -> a(X^g)``
      maps the value at point ``psi^e`` to the slot whose point is
      ``psi^(e g mod 2N)`` — for odd ``g`` the odd exponents permute
      among themselves, so ``out[i] = in[eval_perm[i]]`` with
      ``eval_perm[i] = brv((e(i) * g mod 2N - 1) / 2)``.  A pure
      gather: zero NTTs, exact on every width path.  ``None`` when
      ``N`` is not a power of two (no evaluation form exists there).
    * ``coeff_dest`` / ``coeff_negate`` — the coefficient-domain
      scatter: coefficient ``i`` lands at ``(i g) mod 2N`` folded into
      ``[0, N)`` with a sign flip in the upper half (``X^N = -1``).
      Kept as the structurally independent bit-exactness oracle for
      the gather, and as the only path for coefficient-form inputs.
    """

    __slots__ = ("n", "galois", "backend", "eval_perm", "coeff_dest",
                 "coeff_negate")

    def __init__(self, n: int, galois_power: int, backend=None):
        if galois_power % 2 == 0:
            raise ValueError("Galois element must be odd")
        self.n = int(n)
        two_n = 2 * self.n
        g = int(galois_power) % two_n
        self.galois = g
        # Index tables are pure gathers/scatters: any backend whose
        # arrays speak the numpy protocols can hold them resident.
        be = backend_mod.kernel_backend(backend, need_uint64=False)
        self.backend = be
        idx = (np.arange(self.n, dtype=np.int64) * g) % two_n
        self.coeff_dest = be.from_host(np.where(idx < n, idx, idx - n))
        self.coeff_negate = be.from_host(idx >= n)
        if self.n >= 1 and not (self.n & (self.n - 1)):
            from repro.ckks.ntt import (bit_reverse_permutation,
                                        eval_point_exponents)
            rev = bit_reverse_permutation(self.n)
            target = (eval_point_exponents(self.n) * g) % two_n
            self.eval_perm = be.from_host(rev[(target - 1) >> 1])
        else:
            self.eval_perm = None


@lru_cache(maxsize=PLAN_CACHE_MAXSIZE)
def _build_auto_plan(n: int, galois: int, backend=None) -> AutoPlan:
    return AutoPlan(n, galois, backend)


def get_auto_plan(n: int, galois_power: int, backend=None) -> AutoPlan:
    """Shared :class:`AutoPlan` per ``(N, g, backend)`` (bounded LRU).

    ``galois_power`` is normalised modulo ``2N`` before the cache
    lookup, so equivalent elements share one entry.  When the
    observability layer is enabled, bumps ``rns.auto.plan_hit`` /
    ``rns.auto.plan_miss``.
    """
    n = int(n)
    g = int(galois_power)
    if g % 2 == 0:
        raise ValueError("Galois element must be odd")
    g %= 2 * n
    be = backend_mod.resolve(backend)
    tracer = get_tracer()
    if not tracer.enabled:
        return _build_auto_plan(n, g, be)
    hits_before = _build_auto_plan.cache_info().hits
    plan = _build_auto_plan(n, g, be)
    if _build_auto_plan.cache_info().hits > hits_before:
        tracer.count("rns.auto.plan_hit")
    else:
        tracer.count("rns.auto.plan_miss")
    return plan


def auto_plan_cache_info():
    """``functools`` cache statistics for the automorphism-plan cache."""
    return _build_auto_plan.cache_info()


def clear_auto_plan_cache() -> None:
    _build_auto_plan.cache_clear()


# -- CRT helpers ----------------------------------------------------------

@lru_cache(maxsize=PLAN_CACHE_MAXSIZE)
def _crt_constants(moduli: tuple[int, ...]):
    """Per-basis CRT constants: Q, Q/q_i, and (Q/q_i)^-1 mod q_i.

    Bounded like the NTT-plan cache: constants are pure functions of
    the basis, so eviction only costs big-int recomputation, never
    correctness (tests/ckks/test_plan_cache.py pins that down).
    """
    big_q = 1
    for q in moduli:
        big_q *= q
    q_hat = tuple(big_q // q for q in moduli)
    q_hat_inv = tuple(modmath.inv_mod(h % q, q)
                      for h, q in zip(q_hat, moduli))
    return big_q, q_hat, q_hat_inv


def crt_constants_cache_info():
    """``functools`` cache statistics for the CRT-constants cache."""
    return _crt_constants.cache_info()


def clear_crt_constants_cache() -> None:
    _crt_constants.cache_clear()


def product(moduli) -> int:
    """Product of a basis (the composite modulus it represents)."""
    big_q = 1
    for q in moduli:
        big_q *= int(q)
    return big_q


def compose_crt(poly: RnsPoly) -> list[int]:
    """Exact CRT recombination to centred big-integer coefficients.

    Returns Python ints in ``(-Q/2, Q/2]``.  Used by decryption,
    decoding and the KLSS gadget decomposition.
    """
    if poly.form != COEFF:
        poly = poly.to_coeff()
    get_tracer().count("rns.compose_crt")
    big_q, q_hat, q_hat_inv = _crt_constants(poly.moduli)
    half = big_q // 2
    # One vectorised big-int pass per limb, deferring the expensive
    # mod-Q reduction to a single sweep at the end (the accumulated
    # magnitude stays below len(moduli) * q_max * Q).
    acc = np.zeros(poly.n, dtype=object)
    for limb, q, hat, hat_inv in zip(poly.limbs, poly.moduli,
                                     q_hat, q_hat_inv):
        scale = hat * hat_inv % big_q
        boxed = np.empty(poly.n, dtype=object)
        # Big-int recombination is host-side by nature; device-resident
        # limbs cross the boundary here (one d2h per limb).
        boxed[:] = backend_mod.to_host(limb).tolist()
        acc = acc + boxed * scale
    acc = np.mod(acc, big_q)
    return [int(v) - big_q if v > half else int(v) for v in acc]


def from_big_ints(coeffs: list[int], moduli, n: int | None = None) -> RnsPoly:
    """Reduce big-integer coefficients into an RNS polynomial."""
    if n is None:
        n = len(coeffs)
    limbs = [modmath.asresidues(coeffs, q) for q in moduli]
    return RnsPoly(limbs, moduli, COEFF)


# -- fast base conversion (BConv) -----------------------------------------

class BConvPlan:
    """Precomputed HPS base-conversion pipeline for one basis pair.

    This is the software BConvU: everything that depends only on the
    ``(source basis, target basis)`` pair is computed once —

    * the element-wise stage scalars ``(Q/q_i)^{-1} mod q_i`` as Shoup
      pairs (one lazy-reduction pass over the stacked ``(k_in, N)``
      input, the KMU stage in FAST);
    * the ``(k_out, k_in)`` residue matrix ``Q/q_i mod p_j`` (the
      systolic-array weights), pre-split into ``PIECE_BITS``-wide
      limb pieces and stacked into one block matrix per output scale;
    * the target-side reduction constants (``2^64 mod p_j`` Shoup
      pairs and Barrett ratios);
    * the ModDown / rescale scalars ``(prod src)^{-1} mod p_j`` with
      their Shoup companions, so :func:`mod_down` and
      :func:`exact_rescale` never call ``inv_mod`` per invocation.

    :meth:`convert` executes the conversion as a handful of
    whole-array kernels.  The O(k_in * k_out * N) multiply-accumulate
    core — the systolic array's job — runs as float64 matrix products
    over the split pieces: with 22-bit pieces every partial product
    fits 44 bits and a whole block-row dot product stays below the
    2^53 float64 integer window, so BLAS does the accumulation
    exactly at SIMD speed.  The piece sums are then recombined into a
    lazily-carried 128-bit (hi, lo) split-limb accumulator — pieces
    are shifted back by their scale, never individually reduced — and
    a single vectorised Barrett/Shoup pass per target limb folds the
    result into ``[0, p_j)``.

    Any modulus beyond the 62-bit uint64 datapath (or a basis pair so
    large the float64 window or the 128-bit accumulator would
    overflow — see ``_matrix_feasible``) forces ``matrix_path =
    False``; those conversions run the per-pair object-oracle loop
    (:func:`base_convert_reference`) instead.
    """

    # Width of the split pieces fed to the float64 matrix products.
    # Two 22-bit pieces multiply into 44 bits, leaving 53 - 44 = 9
    # doubling levels of exact float64 headroom for the row-length
    # accumulation (checked against the actual k_in below).
    PIECE_BITS = 22

    __slots__ = ("src_moduli", "dst_moduli", "k_in", "k_out", "backend",
                 "src_product", "matrix_path", "total_bits",
                 "_dst_kernels", "_src_kernels", "_ew_w", "_ew_ws",
                 "_src_q", "_ew_float", "_ew_wf", "_src_qf",
                 "_pieces_in", "_block_stack", "_shifts",
                 "_reduce_float", "_vf_gemm", "_scales", "_dst_qf",
                 "_dst_q", "_t64_w", "_t64_ws",
                 "_down_inv", "_down_pairs", "_ws_pool")

    def __init__(self, src_moduli, dst_moduli, backend=None):
        self.src_moduli = tuple(int(q) for q in src_moduli)
        self.dst_moduli = tuple(int(p) for p in dst_moduli)
        self.k_in = len(self.src_moduli)
        self.k_out = len(self.dst_moduli)
        big_q, q_hat, q_hat_inv = _crt_constants(self.src_moduli)
        self.src_product = big_q
        # The matrix kernel needs the uint64 lazy datapath *and* an
        # exactly-rounded float64 matmul; anything less negotiates
        # down to numpy.
        be = backend_mod.kernel_backend(backend, need_matmul=True)
        self.backend = be
        self._dst_kernels = [modmath.get_kernel(p, backend=be)
                             for p in self.dst_moduli]
        self._src_kernels = [modmath.get_kernel(q, backend=be)
                             for q in self.src_moduli]
        self._ws_pool = []
        self.matrix_path = self._matrix_feasible()
        if self.matrix_path and self.k_in and self.k_out:
            # Every constant column below is built host-side, then
            # placed device-resident exactly once (from_host).
            ew = [modmath.shoup_pair(inv, q)
                  for inv, q in zip(q_hat_inv, self.src_moduli)]
            self._ew_w = be.from_host(np.array(
                [w for w, _ in ew], dtype=np.uint64).reshape(-1, 1))
            self._ew_ws = be.from_host(np.array(
                [ws for _, ws in ew], dtype=np.uint64).reshape(-1, 1))
            self._src_q = be.from_host(np.array(
                self.src_moduli, dtype=np.uint64).reshape(-1, 1))
            self._dst_q = be.from_host(np.array(
                self.dst_moduli, dtype=np.uint64).reshape(-1, 1))
            t64 = [modmath.shoup_pair(1 << 64, p) for p in self.dst_moduli]
            self._t64_w = be.from_host(np.array(
                [w for w, _ in t64], dtype=np.uint64).reshape(-1, 1))
            self._t64_ws = be.from_host(np.array(
                [ws for _, ws in t64], dtype=np.uint64).reshape(-1, 1))
            bits_in = max(q.bit_length() for q in self.src_moduli)
            bits_out = max(p.bit_length() for p in self.dst_moduli)
            b = self.PIECE_BITS
            pieces_in = -(-bits_in // b)
            pieces_mat = -(-bits_out // b)
            # Float-quotient element-wise stage: x, w and x*w/q must
            # all sit inside float64's exact window so the rounded
            # quotient is within 1 of the true floor (see convert()).
            self._ew_float = bits_in <= 51
            if self._ew_float:
                self._ew_wf = self._ew_w.astype(np.float64)
                self._src_qf = self._src_q.astype(np.float64)
            # Float-quotient final reduction: the row value is below
            # k_in * 2^bits_in * p_j, so the absolute error of the
            # float quotient (ncomp recombination roundings plus the
            # p_j cast and the division, each 2^-53 relative) stays
            # strictly below 1/2 — quotient within 1 of the true
            # floor, remainder correctable in (0, 3 p_j) — exactly
            # when this bit budget holds (2 bits of slack).
            ncomp = max(1, pieces_in + pieces_mat - 1)
            logk = (self.k_in - 1).bit_length()
            self._reduce_float = (bits_in + logk
                                  + (ncomp - 1).bit_length()) <= 50
            # With a little more slack the quotient can come straight
            # out of the matrix product: one extra k_out-row block of
            # float(m_ji) * 2^(a*PIECE_BITS) accumulates the full
            # (approximate) value per row, with relative error below
            # (row length) * 2^-53 — still within 1 of the true floor
            # when this tighter budget holds.
            vf_rows = pieces_in * self.k_in
            self._vf_gemm = (self._reduce_float
                             and (bits_in + logk
                                  + (vf_rows - 1).bit_length() + 2) <= 53)
            if self._reduce_float:
                self._dst_qf = self._dst_q.astype(np.float64)
            self._build_matrix_blocks(q_hat)
        # Hoisted ModDown/rescale scalars: (prod src)^-1 mod p_j.
        # None when src and dst share a factor (never the case for
        # the disjoint bases ModDown and rescale use).
        try:
            self._down_inv = tuple(modmath.inv_mod(big_q % p, p)
                                   for p in self.dst_moduli)
            self._down_pairs = tuple(
                kernel.shoup(inv) if kernel.path == modmath.WIDE else None
                for inv, kernel in zip(self._down_inv, self._dst_kernels))
        except ValueError:
            self._down_inv = None
            self._down_pairs = None

    def _matrix_feasible(self) -> bool:
        """Whether the split-piece matrix kernel is exact for this pair."""
        moduli = self.src_moduli + self.dst_moduli
        if not self.k_in or not self.k_out:
            return bool(moduli) and all(
                modmath.width_path(q) != modmath.OBJECT for q in moduli)
        if any(modmath.width_path(q) == modmath.OBJECT for q in moduli):
            return False
        b = self.PIECE_BITS
        bits_in = max(q.bit_length() for q in self.src_moduli)
        bits_out = max(p.bit_length() for p in self.dst_moduli)
        pieces_in = -(-bits_in // b)
        pieces_mat = -(-bits_out // b)
        # Each block-row dot product sums min(pieces) * k_in exact
        # 2b-bit products and must stay inside float64's 2^53 window.
        rows = min(pieces_in, pieces_mat) * self.k_in
        if 2 * b + (rows - 1).bit_length() > 53:
            return False
        # The recombined value sum_i y_i * m_ji must fit the 126-bit
        # validity range of the final reduction's 128-bit accumulator.
        self.total_bits = (bits_in + bits_out
                           + (self.k_in - 1).bit_length())
        return self.total_bits <= 126

    def _build_matrix_blocks(self, q_hat) -> None:
        """Split the residue matrix into piece-scale block matrices.

        ``mat[j, i] = q_hat_i mod p_j`` is cut into ``PIECE_BITS``
        pieces; block matrix ``s`` gathers every (input-piece a,
        matrix-piece d) combination with ``a + d == s``, laid out so
        one float64 product against the stacked input pieces yields
        the whole ``2^(s * PIECE_BITS)``-scale component.  When the
        quotient comes from the gemm too (``_vf_gemm``), a final
        k_out-row block holding ``float(m_ji) * 2^(a*PIECE_BITS)``
        is appended, and components that only feed bits >= 2^64 of
        the value (zero modulo 2^64) are dropped.
        """
        b = self.PIECE_BITS
        bits_in = max(q.bit_length() for q in self.src_moduli)
        bits_out = max(p.bit_length() for p in self.dst_moduli)
        self._pieces_in = -(-bits_in // b)
        pieces_mat = -(-bits_out // b)
        mat = np.array([[hat % p for hat in q_hat]
                        for p in self.dst_moduli], dtype=np.uint64)
        mat_pieces = [((mat >> np.uint64(d * b))
                       & np.uint64((1 << b) - 1)).astype(np.float64)
                      for d in range(pieces_mat)]
        blocks = []
        self._shifts = []
        for s in range(self._pieces_in + pieces_mat - 1):
            if self._vf_gemm and s * b >= 64:
                break
            block = np.zeros((self.k_out, self._pieces_in * self.k_in))
            used = False
            for a in range(self._pieces_in):
                d = s - a
                if 0 <= d < pieces_mat:
                    block[:, a * self.k_in:(a + 1) * self.k_in] = \
                        mat_pieces[d]
                    used = True
            if used:
                blocks.append(block)
                self._shifts.append(s * b)
        self._scales = [float(1 << s) for s in self._shifts]
        if self._vf_gemm:
            # Quotient rows carry the 1/p_j scaling too, so the gemm
            # yields v/p_j directly and convert() only floors it.
            # (Host-side floats here: _dst_qf may be device-resident.)
            vf_block = np.empty((self.k_out, self._pieces_in * self.k_in))
            matf = mat.astype(np.float64) / np.array(
                self.dst_moduli, dtype=np.float64).reshape(-1, 1)
            for a in range(self._pieces_in):
                vf_block[:, a * self.k_in:(a + 1) * self.k_in] = \
                    matf * float(1 << (a * b))
            blocks.append(vf_block)
        # One tall matrix so the whole multiply-accumulate runs as a
        # single BLAS call; component s is rows [s*k_out, (s+1)*k_out).
        # The 22-bit split matrix is the big resident table: one
        # build-time upload, reused by every convert().
        self._block_stack = self.backend.from_host(np.vstack(blocks))

    def __repr__(self) -> str:
        return (f"BConvPlan(k_in={self.k_in}, k_out={self.k_out}, "
                f"matrix_path={self.matrix_path})")

    @property
    def has_down_scale(self) -> bool:
        """Whether the hoisted ``(prod src)^{-1} mod p_j`` scalars exist."""
        return self._down_inv is not None

    def _workspace(self, n: int) -> dict:
        """Check out a scratch-buffer set for length-``n`` inputs.

        Buffers are pooled on the plan (list ``pop``/``append`` are
        GIL-atomic, so concurrent converts simply allocate their own
        set) — the steady state runs with zero large allocations.
        Pool misses are ledger-counted as ``kernel.alloc.bconv``, the
        same way the NTT and KMU arenas count theirs (see
        :mod:`repro.backend.arena`), so "zero steady-state allocs" is
        asserted by the bench profile and CI, never assumed.
        """
        try:
            ws = self._ws_pool.pop()
            if ws["n"] == n:
                return ws
        except IndexError:
            pass
        tracer = get_tracer()
        if tracer.enabled:
            tracer.count("kernel.alloc.bconv")
        k_in, k_out = self.k_in, self.k_out
        empty = self.backend.empty
        ws = {
            "n": n,
            "x": empty((k_in, n), np.uint64),
            "y": empty((k_in, n), np.uint64),
            "tq": empty((k_in, n), np.uint64),
            "pieces": empty((self._pieces_in * k_in, n), np.float64),
            "flat": empty((self._block_stack.shape[0], n), np.float64),
            "lo": empty((k_out, n), np.uint64),
            "quo": empty((k_out, n), np.uint64),
            "tmpu": empty((k_out, n), np.uint64),
            "tmpf": empty((k_out, n), np.float64),
        }
        if self._ew_float:
            ws["xf"] = empty((k_in, n), np.float64)
        if not self._reduce_float:
            ws["hi"] = empty((k_out, n), np.uint64)
        return ws

    def _release(self, ws: dict) -> None:
        if len(self._ws_pool) < 4:
            self._ws_pool.append(ws)

    def _stack_input(self, limbs, n: int, out: np.ndarray) -> np.ndarray:
        for i, kernel in enumerate(self._src_kernels):
            arr = kernel.asresidues(limbs[i], copy=False)
            if len(arr) != n:
                raise ValueError("ragged limb lengths")
            out[i] = arr
        return out

    def convert(self, limbs) -> list:
        """Matrix-form conversion of stacked source limbs.

        ``limbs[i]`` is a residue vector modulo ``src_moduli[i]``.
        Returns one residue vector per target modulus (the kernel's
        dtype for that modulus), bit-identical to
        :func:`base_convert_reference`.
        """
        if not self.matrix_path:
            raise ValueError("plan has no matrix path for this basis pair")
        n = len(limbs[0]) if self.k_in else 0
        if not self.k_in or not self.k_out:
            return [kernel.zeros(n) for kernel in self._dst_kernels]
        ws = self._workspace(n)
        x = self._stack_input(limbs, n, ws["x"])
        # Element-wise stage over the whole stack.  For limbs inside
        # the float64 window the Barrett quotient floor(x*w / q) is
        # computed in float (exact operands, one rounded product and
        # one rounded division — off by at most 1 from the true
        # floor), corrected back in uint64 arithmetic; wider limbs
        # use the lazy-Shoup pass.
        sq = self._src_q
        y = ws["y"]
        tq = ws["tq"]
        if self._ew_float:
            xf = ws["xf"]
            xf[:] = x
            np.multiply(xf, self._ew_wf, out=xf)
            np.divide(xf, self._src_qf, out=xf)
            np.floor(xf, out=xf)
            tq[:] = xf
            np.multiply(tq, sq, out=tq)
            np.multiply(x, self._ew_w, out=y)
            np.subtract(y, tq, out=y)
            # y is x*w - quo*q in wrapping uint64, i.e. (-q, 2q);
            # two branch-free conditional fix-ups via np.minimum
            # (the wrong branch wraps around 2^64 and loses the min).
            np.add(y, sq, out=tq)
            np.minimum(y, tq, out=y)
            np.subtract(y, sq, out=tq)
            np.minimum(y, tq, out=y)
        else:
            np.multiply(modmath.mulhi(x, self._ew_ws), sq, out=tq)
            np.multiply(x, self._ew_w, out=y)
            np.subtract(y, tq, out=y)
            y = np.where(y >= sq, y - sq, y)
        # Matrix stage: split the scaled residues into float64 pieces
        # and let BLAS run the exact multiply-accumulate — all scale
        # components in one tall matrix product.  The a=0 piece needs
        # no shift and the top piece needs no mask (y's leading bits
        # run out first).
        bp = self.PIECE_BITS
        mask = np.uint64((1 << bp) - 1)
        pieces = ws["pieces"]
        top = self._pieces_in - 1
        for a in range(self._pieces_in):
            src = y
            if a:
                np.right_shift(y, np.uint64(a * bp), out=tq)
                src = tq
            if a < top:
                np.bitwise_and(src, mask, out=tq)
                src = tq
            pieces[a * self.k_in:(a + 1) * self.k_in] = src
        flat = ws["flat"]
        self.backend.matmul(self._block_stack, pieces, out=flat)
        comps = [flat[s * self.k_out:(s + 1) * self.k_out]
                 for s in range(len(self._shifts))]
        pq = self._dst_q
        lo = ws["lo"]
        tmpu = ws["tmpu"]
        lo[:] = comps[0]
        if self._reduce_float:
            # Recombine modulo 2^64 only (no carry tracking) and
            # recover the quotient from the float components: every
            # 2^(s*PIECE_BITS) scale is an exact float multiply, so
            # the only roundings are the ncomp additions, the p_j
            # cast and the division — within 1 of the true floor by
            # the _reduce_float bit budget above.
            if self._vf_gemm:
                vf = flat[len(self._shifts) * self.k_out:]
                for comp, shift in zip(comps[1:], self._shifts[1:]):
                    tmpu[:] = comp
                    np.left_shift(tmpu, np.uint64(shift), out=tmpu)
                    np.add(lo, tmpu, out=lo)
            else:
                tmpf = ws["tmpf"]
                vf = comps[0]
                for comp, scale, shift in zip(comps[1:], self._scales[1:],
                                              self._shifts[1:]):
                    np.multiply(comp, scale, out=tmpf)
                    np.add(vf, tmpf, out=vf)
                    if shift < 64:
                        tmpu[:] = comp
                        np.left_shift(tmpu, np.uint64(shift), out=tmpu)
                        np.add(lo, tmpu, out=lo)
                np.divide(vf, self._dst_qf, out=vf)
            np.floor(vf, out=vf)
            quo = ws["quo"]
            quo[:] = vf
            np.multiply(quo, pq, out=quo)
            np.subtract(lo, quo, out=lo)
            # lo is v - quo*p in wrapping uint64, i.e. (-p, 2p); the
            # same two branch-free np.minimum fix-ups as the
            # element-wise stage fold it into [0, p).
            np.add(lo, pq, out=tmpu)
            np.minimum(lo, tmpu, out=lo)
            np.subtract(lo, pq, out=tmpu)
            np.minimum(lo, tmpu, out=lo)
            acc = lo
        else:
            # Recombine into a lazily-carried 128-bit (hi, lo)
            # accumulator, then one vectorised fold of hi with the
            # precomputed 2^64 mod p_j Shoup pairs and a single
            # division sweep per target limb.
            hi = ws["hi"]
            hi[:] = 0
            down = ws["quo"]
            for comp_f, shift in zip(comps[1:], self._shifts[1:]):
                tmpu[:] = comp_f
                if shift < 64:
                    np.right_shift(tmpu, np.uint64(64 - shift), out=down)
                    np.add(hi, down, out=hi)
                    np.left_shift(tmpu, np.uint64(shift), out=tmpu)
                    np.add(lo, tmpu, out=lo)
                    hi += lo < tmpu
                else:
                    np.left_shift(tmpu, np.uint64(shift - 64), out=tmpu)
                    np.add(hi, tmpu, out=hi)
            r = hi * self._t64_w - modmath.mulhi(hi, self._t64_ws) * pq
            acc = np.mod(np.mod(lo, pq) + r, pq)
        out = []
        for j, kernel in enumerate(self._dst_kernels):
            row = acc[j]
            out.append(row.astype(np.int64)
                       if kernel.dtype == np.int64 else row.copy())
        self._release(ws)
        return out

    def down_scale(self, limbs) -> list:
        """Multiply limb ``j`` by the hoisted ``(prod src)^{-1} mod p_j``."""
        if self._down_inv is None:
            raise ValueError("source product not invertible in target basis")
        out = []
        for limb, kernel, inv, pair in zip(limbs, self._dst_kernels,
                                           self._down_inv,
                                           self._down_pairs):
            if pair is not None:
                out.append(kernel.mul_shoup(limb, *pair))
            else:
                out.append(kernel.mul_scalar(limb, inv))
        return out


@lru_cache(maxsize=PLAN_CACHE_MAXSIZE)
def _build_bconv_plan(src: tuple[int, ...], dst: tuple[int, ...],
                      backend=None) -> BConvPlan:
    return BConvPlan(src, dst, backend)


def get_bconv_plan(src_moduli, dst_moduli, backend=None) -> BConvPlan:
    """Shared :class:`BConvPlan` per (basis pair, backend) (bounded LRU).

    When the observability layer is enabled, bumps
    ``rns.bconv.plan_hit`` / ``rns.bconv.plan_miss``.
    """
    src = tuple(int(q) for q in src_moduli)
    dst = tuple(int(p) for p in dst_moduli)
    be = backend_mod.resolve(backend)
    tracer = get_tracer()
    if not tracer.enabled:
        return _build_bconv_plan(src, dst, be)
    hits_before = _build_bconv_plan.cache_info().hits
    plan = _build_bconv_plan(src, dst, be)
    if _build_bconv_plan.cache_info().hits > hits_before:
        tracer.count("rns.bconv.plan_hit")
    else:
        tracer.count("rns.bconv.plan_miss")
    return plan


def bconv_plan_cache_info():
    """``functools`` cache statistics for the BConv-plan cache."""
    return _build_bconv_plan.cache_info()


def clear_bconv_plan_cache() -> None:
    _build_bconv_plan.cache_clear()


def plan_cache_evictions() -> dict:
    """Evictions per plan cache since the last clear.

    ``functools.lru_cache`` does not expose an eviction counter, but
    every miss inserts exactly one entry, so evictions are simply
    ``misses - currsize``.  Steady-state workloads — including the
    fused ModDown+Rescale kernel, whose conversion basis pairs are
    canonicalised the same way as the sequential path's — must show
    zero here: a non-zero count means some caller is generating
    unbounded key shapes and thrashing the plan tables.
    """
    caches = {
        "ntt": _build_plan.cache_info(),
        "auto": _build_auto_plan.cache_info(),
        "crt": _crt_constants.cache_info(),
        "bconv": _build_bconv_plan.cache_info(),
    }
    return {name: max(0, info.misses - info.currsize)
            for name, info in caches.items()}


def base_convert_reference(poly: RnsPoly, target_moduli) -> RnsPoly:
    """Per-pair scalar-loop HPS conversion (the exactness oracle).

    The pre-matrix implementation: element-wise stage per source limb,
    then one scalar multiply-accumulate per (target, source) pair.  It
    only goes through :mod:`modmath`'s per-modulus kernels, so it is
    structurally independent of the matrix kernel and serves as its
    bit-exactness oracle; it is also the only path for bases with
    moduli beyond the 62-bit uint64 datapath.
    """
    if poly.form != COEFF:
        raise ValueError("base_convert expects coefficient form")
    moduli = poly.moduli
    _, q_hat, q_hat_inv = _crt_constants(moduli)
    target = tuple(int(p) for p in target_moduli)
    scaled = [modmath.mul_scalar(limb, inv, q)
              for limb, inv, q in zip(poly.limbs, q_hat_inv, moduli)]
    out_limbs = []
    for p in target:
        acc = modmath.zeros(poly.n, p)
        for y, q, hat in zip(scaled, moduli, q_hat):
            acc = modmath.add(acc, modmath.mul_scalar(
                modmath.asresidues(y, p), hat % p, p), p)
        out_limbs.append(acc)
    return RnsPoly(out_limbs, target, COEFF)


def base_convert(poly: RnsPoly, target_moduli) -> RnsPoly:
    """HPS fast approximate base conversion ``Q-basis -> target basis``.

    Computes ``y_i = x_i * (Q/q_i)^{-1} mod q_i`` (element-wise stage,
    executed by the KMU in FAST) followed by
    ``out_j = sum_i y_i * (Q/q_i mod p_j)`` (the matrix stage, executed
    by the BConvU systolic array).  The result equals
    ``x + e * Q (mod p_j)`` for a small integer ``e`` in ``[0, k)``;
    callers that need exactness (ModDown) correct for it structurally.

    Executed through the cached :class:`BConvPlan` matrix kernel;
    bases with object-path moduli fall back to the scalar-loop oracle
    (``rns.bconv.object_fallback`` counts those).  Input must be in
    coefficient form; output is in coefficient form.
    """
    if poly.form != COEFF:
        raise ValueError("base_convert expects coefficient form")
    tracer = get_tracer()
    start = perf_counter() if tracer.enabled else 0.0
    target = tuple(int(p) for p in target_moduli)
    plan = get_bconv_plan(poly.moduli, target)
    if plan.matrix_path:
        result = RnsPoly(plan.convert(poly.limbs), target, COEFF)
        if tracer.enabled:
            tracer.count("rns.bconv.matrix")
    else:
        result = base_convert_reference(poly, target)
        if tracer.enabled:
            tracer.count("rns.bconv.object_fallback")
    if tracer.enabled:
        tracer.count("rns.base_convert")
        tracer.observe("rns.base_convert_s", perf_counter() - start)
    return result


def mod_up(poly: RnsPoly, digit_indices: list[list[int]],
           full_moduli, aux_moduli) -> list[RnsPoly]:
    """Hybrid-method ModUp: split limbs into digits, extend each digit.

    ``digit_indices`` lists, per digit, the positions of its limbs in
    ``poly``.  Each digit is base-converted onto the *complement*
    moduli (the rest of the Q basis plus all auxiliary P moduli) and
    recombined with its own limbs, yielding one RnsPoly per digit over
    ``full_moduli + aux_moduli``.  Input/outputs in coefficient form.
    """
    if poly.form != COEFF:
        raise ValueError("mod_up expects coefficient form")
    get_tracer().count("rns.mod_up")
    full = tuple(int(q) for q in full_moduli)
    aux = tuple(int(p) for p in aux_moduli)
    extended = []
    for indices in digit_indices:
        digit = poly.select_limbs(indices)
        own = {poly.moduli[i] for i in indices}
        complement = tuple(q for q in full + aux if q not in own)
        converted = base_convert(digit, complement)
        limb_of = dict(zip(converted.moduli, converted.limbs))
        limb_of.update(zip(digit.moduli, digit.limbs))
        limbs = [limb_of[q] for q in full + aux]
        extended.append(RnsPoly(limbs, full + aux, COEFF))
    return extended


def mod_down(poly: RnsPoly, main_count: int) -> RnsPoly:
    """Divide by the auxiliary modulus and drop its limbs (exact-ish).

    ``poly`` lives over ``Q x P`` with the first ``main_count`` limbs
    forming Q.  Returns ``round(poly / P)`` over Q:
    ``(x - BConv_{P->Q}(x mod P)) * P^{-1} mod Q``, the standard RNS
    ModDown with error below 1 plus the BConv slack.
    """
    if poly.form != COEFF:
        raise ValueError("mod_down expects coefficient form")
    get_tracer().count("rns.mod_down")
    q_moduli = poly.moduli[:main_count]
    p_moduli = poly.moduli[main_count:]
    if not p_moduli:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    aux_part = RnsPoly(poly.limbs[main_count:], p_moduli, COEFF)
    approx = base_convert(aux_part, q_moduli)
    # The P^-1 mod q scalars (with Shoup companions) are hoisted into
    # the conversion plan — no per-call inv_mod.
    plan = get_bconv_plan(p_moduli, q_moduli)
    diffs = [modmath.sub(limb, conv, q)
             for limb, conv, q in zip(poly.limbs, approx.limbs, q_moduli)]
    return RnsPoly(plan.down_scale(diffs), q_moduli, COEFF)


def exact_rescale(poly: RnsPoly) -> RnsPoly:
    """Drop the last limb, dividing by its prime with rounding.

    This is CKKS rescaling in RNS form: for each remaining limb,
    ``(x mod q_i - x mod q_last) * q_last^{-1} mod q_i``.
    """
    if poly.form != COEFF:
        raise ValueError("exact_rescale expects coefficient form")
    if len(poly.moduli) < 2:
        raise ValueError("cannot rescale a single-limb polynomial")
    last_q = poly.moduli[-1]
    last_limb = poly.limbs[-1]
    front = poly.moduli[:-1]
    # A single-limb conversion plan: its matrix stage is exactly the
    # fold ``x mod q_i`` (HPS is exact for one source limb), and it
    # hoists the q_last^-1 mod q_i scalars across calls.
    plan = get_bconv_plan((last_q,), front)
    if plan.matrix_path:
        folded = plan.convert([last_limb])
    else:
        folded = [modmath.asresidues(last_limb, q) for q in front]
    diffs = [modmath.sub(limb, fold, q)
             for limb, fold, q in zip(poly.limbs, folded, front)]
    return RnsPoly(plan.down_scale(diffs), front, COEFF)
