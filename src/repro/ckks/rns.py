"""RNS (residue number system) polynomial machinery.

A CKKS ciphertext limb set is a polynomial of degree ``N`` whose huge
integer coefficients (mod ``Q = prod q_i``) are stored as *limbs*: one
residue vector per prime.  This module provides

* :class:`RnsPoly` — an RNS polynomial with coefficient/evaluation
  form tracking, element-wise ring ops, NTTs and automorphisms;
* fast approximate base conversion (:func:`base_convert`), the
  workhorse of ModUp/ModDown (the accelerator's BConvU);
* exact CRT composition/decomposition, used by the KLSS gadget
  decomposition and by decryption;
* :func:`mod_up` / :func:`mod_down`, the hybrid key-switching stages.

Plans (NTT tables) are cached per ``(N, q)`` so that repeated level
changes do not redo root searches.
"""

from __future__ import annotations

from functools import lru_cache
from time import perf_counter

import numpy as np

from repro.ckks import modmath
from repro.ckks.ntt import NttPlan
from repro.obs.tracer import get_tracer

COEFF = "coeff"
EVAL = "eval"

# Bound on cached NTT plans.  Both paper parameter sets together touch
# fewer than ~100 (N, q) pairs (36 + 12 primes for Set-I, 36 + 5 for
# Set-II, plus KLSS wide bases), so 256 keeps every real working set
# resident while stopping pathological callers (parameter sweeps,
# fuzzers) from growing the table without limit.  Plans are pure
# functions of (N, q): eviction only costs a rebuild, never
# correctness — tests/ckks/test_plan_cache.py pins that down.
PLAN_CACHE_MAXSIZE = 256


@lru_cache(maxsize=PLAN_CACHE_MAXSIZE)
def get_plan(ring_degree: int, modulus: int) -> NttPlan:
    """Shared NTT plan for one (N, q) pair (bounded LRU cache)."""
    tracer = get_tracer()
    if tracer.enabled:
        start = perf_counter()
        plan = NttPlan(ring_degree, modulus)
        tracer.count("rns.plan_builds")
        tracer.observe("rns.plan_build_s", perf_counter() - start)
        return plan
    return NttPlan(ring_degree, modulus)


def plan_cache_info():
    """``functools`` cache statistics for the NTT-plan cache."""
    return get_plan.cache_info()


def clear_plan_cache() -> None:
    get_plan.cache_clear()


class RnsPoly:
    """Polynomial in ``prod_i Z_{q_i}[X]/(X^N+1)``, one limb per prime.

    Attributes
    ----------
    limbs:
        List of residue vectors (one per modulus, each of length N).
    moduli:
        Tuple of the primes, aligned with ``limbs``.
    form:
        Either ``"coeff"`` or ``"eval"``; element-wise multiplication
        is only defined in evaluation form.
    """

    __slots__ = ("limbs", "moduli", "form", "n")

    def __init__(self, limbs, moduli, form: str):
        self.limbs = list(limbs)
        self.moduli = tuple(int(q) for q in moduli)
        if len(self.limbs) != len(self.moduli):
            raise ValueError("limb/modulus count mismatch")
        if form not in (COEFF, EVAL):
            raise ValueError(f"unknown form {form!r}")
        self.form = form
        self.n = len(self.limbs[0]) if self.limbs else 0
        for limb in self.limbs:
            if len(limb) != self.n:
                raise ValueError("ragged limb lengths")

    # -- constructors -------------------------------------------------
    @classmethod
    def zeros(cls, n: int, moduli, form: str = COEFF) -> "RnsPoly":
        return cls([modmath.zeros(n, q) for q in moduli], moduli, form)

    @classmethod
    def from_int_coeffs(cls, coeffs, moduli) -> "RnsPoly":
        """Reduce signed integer coefficients into every limb (coeff form)."""
        return cls([modmath.asresidues(coeffs, q) for q in moduli],
                   moduli, COEFF)

    def copy(self) -> "RnsPoly":
        return RnsPoly([limb.copy() for limb in self.limbs],
                       self.moduli, self.form)

    # -- form conversion ---------------------------------------------
    def to_eval(self) -> "RnsPoly":
        if self.form == EVAL:
            return self.copy()
        limbs = [get_plan(self.n, q).forward(limb)
                 for limb, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, EVAL)

    def to_coeff(self) -> "RnsPoly":
        if self.form == COEFF:
            return self.copy()
        limbs = [get_plan(self.n, q).inverse(limb)
                 for limb, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, COEFF)

    # -- ring operations ----------------------------------------------
    def _check_compatible(self, other: "RnsPoly") -> None:
        if self.moduli != other.moduli:
            raise ValueError("RNS bases differ")
        if self.form != other.form:
            raise ValueError("representation forms differ")

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        limbs = [modmath.add(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        self._check_compatible(other)
        limbs = [modmath.sub(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __neg__(self) -> "RnsPoly":
        limbs = [modmath.neg(a, q) for a, q in zip(self.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, (int, np.integer)):
            limbs = [modmath.mul_scalar(a, int(other), q)
                     for a, q in zip(self.limbs, self.moduli)]
            return RnsPoly(limbs, self.moduli, self.form)
        self._check_compatible(other)
        if self.form != EVAL:
            raise ValueError("polynomial product requires evaluation form")
        limbs = [modmath.mul(a, b, q) for a, b, q in
                 zip(self.limbs, other.limbs, self.moduli)]
        return RnsPoly(limbs, self.moduli, EVAL)

    __rmul__ = __mul__

    def mul_scalar_per_limb(self, scalars) -> "RnsPoly":
        """Multiply limb ``i`` by scalar ``scalars[i]`` (any form)."""
        limbs = [modmath.mul_scalar(a, int(s), q) for a, s, q in
                 zip(self.limbs, scalars, self.moduli)]
        return RnsPoly(limbs, self.moduli, self.form)

    # -- basis manipulation ---------------------------------------------
    def drop_limbs(self, keep: int) -> "RnsPoly":
        """Restrict to the first ``keep`` moduli (rescale/level drop)."""
        if keep > len(self.moduli):
            raise ValueError("cannot keep more limbs than present")
        return RnsPoly(self.limbs[:keep], self.moduli[:keep], self.form)

    def select_limbs(self, indices) -> "RnsPoly":
        """Arbitrary sub-basis selection (used by digit grouping)."""
        limbs = [self.limbs[i] for i in indices]
        moduli = [self.moduli[i] for i in indices]
        return RnsPoly(limbs, moduli, self.form)

    def concat(self, other: "RnsPoly") -> "RnsPoly":
        """Adjoin the limbs of ``other`` (bases must be disjoint)."""
        if self.form != other.form:
            raise ValueError("representation forms differ")
        if set(self.moduli) & set(other.moduli):
            raise ValueError("bases overlap")
        return RnsPoly(self.limbs + other.limbs,
                       self.moduli + other.moduli, self.form)

    # -- automorphism -----------------------------------------------------
    def automorphism(self, galois_power: int) -> "RnsPoly":
        """Apply ``X -> X^g`` with ``g = galois_power`` (odd, mod 2N).

        Implemented in coefficient form: coefficient ``i`` moves to
        position ``(i * g) mod 2N``, negated when the destination
        falls in the upper half (since ``X^N = -1``).  This is the
        functional model of the accelerator's AutoU.
        """
        if galois_power % 2 == 0:
            raise ValueError("Galois element must be odd")
        was_eval = self.form == EVAL
        poly = self.to_coeff() if was_eval else self.copy()
        n = self.n
        two_n = 2 * n
        idx = (np.arange(n, dtype=np.int64) * (galois_power % two_n)) % two_n
        dest = np.where(idx < n, idx, idx - n)
        negate = idx >= n
        out_limbs = []
        for limb, q in zip(poly.limbs, poly.moduli):
            # np.where instead of a sign multiply: mixing an int64 sign
            # array into a uint64 limb would silently promote to
            # float64 and corrupt wide residues.
            out = modmath.zeros(n, q)
            out[dest] = np.where(negate, modmath.neg(limb, q), limb)
            out_limbs.append(out)
        result = RnsPoly(out_limbs, self.moduli, COEFF)
        return result.to_eval() if was_eval else result


# -- CRT helpers ----------------------------------------------------------

@lru_cache(maxsize=None)
def _crt_constants(moduli: tuple[int, ...]):
    """Per-basis CRT constants: Q, Q/q_i, and (Q/q_i)^-1 mod q_i."""
    big_q = 1
    for q in moduli:
        big_q *= q
    q_hat = tuple(big_q // q for q in moduli)
    q_hat_inv = tuple(modmath.inv_mod(h % q, q)
                      for h, q in zip(q_hat, moduli))
    return big_q, q_hat, q_hat_inv


def product(moduli) -> int:
    """Product of a basis (the composite modulus it represents)."""
    big_q = 1
    for q in moduli:
        big_q *= int(q)
    return big_q


def compose_crt(poly: RnsPoly) -> list[int]:
    """Exact CRT recombination to centred big-integer coefficients.

    Returns Python ints in ``(-Q/2, Q/2]``.  Used by decryption,
    decoding and the KLSS gadget decomposition.
    """
    if poly.form != COEFF:
        poly = poly.to_coeff()
    get_tracer().count("rns.compose_crt")
    big_q, q_hat, q_hat_inv = _crt_constants(poly.moduli)
    half = big_q // 2
    # One vectorised big-int pass per limb, deferring the expensive
    # mod-Q reduction to a single sweep at the end (the accumulated
    # magnitude stays below len(moduli) * q_max * Q).
    acc = np.zeros(poly.n, dtype=object)
    for limb, q, hat, hat_inv in zip(poly.limbs, poly.moduli,
                                     q_hat, q_hat_inv):
        scale = hat * hat_inv % big_q
        boxed = np.empty(poly.n, dtype=object)
        boxed[:] = limb.tolist()
        acc = acc + boxed * scale
    acc = np.mod(acc, big_q)
    return [int(v) - big_q if v > half else int(v) for v in acc]


def from_big_ints(coeffs: list[int], moduli, n: int | None = None) -> RnsPoly:
    """Reduce big-integer coefficients into an RNS polynomial."""
    if n is None:
        n = len(coeffs)
    limbs = [modmath.asresidues(coeffs, q) for q in moduli]
    return RnsPoly(limbs, moduli, COEFF)


# -- fast base conversion (BConv) -----------------------------------------

def base_convert(poly: RnsPoly, target_moduli) -> RnsPoly:
    """HPS fast approximate base conversion ``Q-basis -> target basis``.

    Computes ``y_i = x_i * (Q/q_i)^{-1} mod q_i`` (element-wise stage,
    executed by the KMU in FAST) followed by
    ``out_j = sum_i y_i * (Q/q_i mod p_j)`` (the matrix stage, executed
    by the BConvU systolic array).  The result equals
    ``x + e * Q (mod p_j)`` for a small integer ``e`` in ``[0, k)``;
    callers that need exactness (ModDown) correct for it structurally.

    Input must be in coefficient form; output is in coefficient form.
    """
    if poly.form != COEFF:
        raise ValueError("base_convert expects coefficient form")
    tracer = get_tracer()
    start = perf_counter() if tracer.enabled else 0.0
    moduli = poly.moduli
    _, q_hat, q_hat_inv = _crt_constants(moduli)
    target = tuple(int(p) for p in target_moduli)
    # Element-wise stage on the source basis.
    scaled = [modmath.mul_scalar(limb, inv, q)
              for limb, inv, q in zip(poly.limbs, q_hat_inv, moduli)]
    out_limbs = []
    for p in target:
        acc = modmath.zeros(poly.n, p)
        for y, q, hat in zip(scaled, moduli, q_hat):
            acc = modmath.add(acc, modmath.mul_scalar(
                modmath.asresidues(y, p), hat % p, p), p)
        out_limbs.append(acc)
    if tracer.enabled:
        tracer.count("rns.base_convert")
        tracer.observe("rns.base_convert_s", perf_counter() - start)
    return RnsPoly(out_limbs, target, COEFF)


def mod_up(poly: RnsPoly, digit_indices: list[list[int]],
           full_moduli, aux_moduli) -> list[RnsPoly]:
    """Hybrid-method ModUp: split limbs into digits, extend each digit.

    ``digit_indices`` lists, per digit, the positions of its limbs in
    ``poly``.  Each digit is base-converted onto the *complement*
    moduli (the rest of the Q basis plus all auxiliary P moduli) and
    recombined with its own limbs, yielding one RnsPoly per digit over
    ``full_moduli + aux_moduli``.  Input/outputs in coefficient form.
    """
    if poly.form != COEFF:
        raise ValueError("mod_up expects coefficient form")
    get_tracer().count("rns.mod_up")
    full = tuple(int(q) for q in full_moduli)
    aux = tuple(int(p) for p in aux_moduli)
    extended = []
    for indices in digit_indices:
        digit = poly.select_limbs(indices)
        own = {poly.moduli[i] for i in indices}
        complement = tuple(q for q in full + aux if q not in own)
        converted = base_convert(digit, complement)
        limb_of = dict(zip(converted.moduli, converted.limbs))
        limb_of.update(zip(digit.moduli, digit.limbs))
        limbs = [limb_of[q] for q in full + aux]
        extended.append(RnsPoly(limbs, full + aux, COEFF))
    return extended


def mod_down(poly: RnsPoly, main_count: int) -> RnsPoly:
    """Divide by the auxiliary modulus and drop its limbs (exact-ish).

    ``poly`` lives over ``Q x P`` with the first ``main_count`` limbs
    forming Q.  Returns ``round(poly / P)`` over Q:
    ``(x - BConv_{P->Q}(x mod P)) * P^{-1} mod Q``, the standard RNS
    ModDown with error below 1 plus the BConv slack.
    """
    if poly.form != COEFF:
        raise ValueError("mod_down expects coefficient form")
    get_tracer().count("rns.mod_down")
    q_moduli = poly.moduli[:main_count]
    p_moduli = poly.moduli[main_count:]
    if not p_moduli:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    aux_part = RnsPoly(poly.limbs[main_count:], p_moduli, COEFF)
    approx = base_convert(aux_part, q_moduli)
    p_prod = product(p_moduli)
    out_limbs = []
    for limb, conv, q in zip(poly.limbs, approx.limbs, q_moduli):
        diff = modmath.sub(limb, conv, q)
        out_limbs.append(modmath.mul_scalar(diff, modmath.inv_mod(p_prod, q), q))
    return RnsPoly(out_limbs, q_moduli, COEFF)


def exact_rescale(poly: RnsPoly) -> RnsPoly:
    """Drop the last limb, dividing by its prime with rounding.

    This is CKKS rescaling in RNS form: for each remaining limb,
    ``(x mod q_i - x mod q_last) * q_last^{-1} mod q_i``.
    """
    if poly.form != COEFF:
        raise ValueError("exact_rescale expects coefficient form")
    if len(poly.moduli) < 2:
        raise ValueError("cannot rescale a single-limb polynomial")
    last_q = poly.moduli[-1]
    last_limb = poly.limbs[-1]
    out_limbs = []
    for limb, q in zip(poly.limbs[:-1], poly.moduli[:-1]):
        folded = modmath.asresidues(last_limb, q)
        diff = modmath.sub(limb, folded, q)
        out_limbs.append(modmath.mul_scalar(diff, modmath.inv_mod(last_q, q), q))
    return RnsPoly(out_limbs, poly.moduli[:-1], COEFF)
