"""CkksContext: the library's main entry point for encrypted compute.

A context owns the prime chains, the key material (generated lazily,
per level, mirroring the paper's Hemera evk pool), and provides every
homomorphic operation of Sec. 2.1.2: HAdd/HSub, HMult (with a
selectable key-switching method), PAdd/PMult, CMult/CAdd, HRot,
conjugation, rescaling and hoisted rotation batches.

Example
-------
>>> from repro.ckks import CkksContext, toy_params
>>> ctx = CkksContext(toy_params(), seed=1)
>>> ct = ctx.encrypt([1.0, 2.0, 3.0, 4.0] * 8)
>>> ct2 = ctx.rescale(ctx.multiply(ct, ct))
>>> ctx.decrypt(ct2)[:4].real.round(3)
array([ 1.,  4.,  9., 16.])
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.ckks import encoding, keys, modmath, primes, rns
from repro.ckks.ciphertext import Ciphertext, Plaintext
from repro.ckks.keys import HYBRID, KLSS, KeySwitchKey, SecretKey
from repro.ckks.keyswitch.hoisting import hoisted_rotations
from repro.ckks.keyswitch.hybrid import (
    _mod_down_rescale_ready,
    hybrid_decompose,
    hybrid_key_switch,
    key_mult_accumulate,
    mod_down_rescale_pair,
)
from repro.ckks.keyswitch.klss import klss_key_switch
from repro.ckks.params import CkksParams
from repro.ckks.rns import RnsPoly

# A method selector maps (operation, level, hoisting count) to a
# key-switching method name; Aether supplies one (repro.core.aether).
MethodSelector = Callable[[str, int, int], str]


def _default_selector(op: str, level: int, hoisting: int) -> str:
    return HYBRID


class CkksContext:
    """Keys, prime chains and homomorphic operations for one party."""

    def __init__(self, params: CkksParams, seed: int | None = None,
                 method_selector: MethodSelector | None = None):
        self.params = params
        self.rng = np.random.default_rng(seed)
        self.method_selector = method_selector or _default_selector
        self._build_moduli()
        self.secret_key = keys.generate_secret_key(params, self.rng)
        self.public_key = keys.generate_public_key(
            params, self.secret_key, self.q_chain, self.rng)
        self._evk_cache: dict[tuple, KeySwitchKey] = {}
        self._source_cache: dict[tuple, np.ndarray] = {}

    # -- setup ----------------------------------------------------------
    def _build_moduli(self) -> None:
        p = self.params
        n = p.ring_degree
        used: set[int] = set()
        first = primes.ntt_primes(1, p.first_prime_bits, n, exclude=used)
        used.update(first)
        scale_primes = primes.ntt_primes(p.max_level, p.prime_bits, n,
                                         exclude=used)
        used.update(scale_primes)
        specials = primes.ntt_primes(p.num_special_primes, p.prime_bits, n,
                                     exclude=used)
        used.update(specials)
        wide_count = max(p.klss_alpha_tilde, 1)
        wide = primes.ntt_primes(wide_count, p.klss_word_bits, n,
                                 exclude=used)
        self.q_chain: tuple[int, ...] = tuple(first + scale_primes)
        self.p_moduli: tuple[int, ...] = tuple(specials)
        self.t_moduli: tuple[int, ...] = tuple(wide)

    def moduli_at(self, level: int) -> tuple[int, ...]:
        """The ciphertext basis ``(q_0 .. q_level)``."""
        if not 0 <= level <= self.params.max_level:
            raise ValueError(f"level {level} out of range")
        return self.q_chain[: level + 1]

    # -- evaluation keys (the Hemera pool's contents) --------------------
    def _source_coeffs(self, target) -> np.ndarray:
        if target not in self._source_cache:
            if target == "mult":
                coeffs = self.secret_key.squared_coeffs()
            else:
                _, galois = target
                coeffs = self.secret_key.automorphism_coeffs(galois)
            self._source_cache[target] = coeffs
        return self._source_cache[target]

    def evaluation_key(self, method: str, level: int,
                       target="mult") -> KeySwitchKey:
        """Fetch (or lazily generate) a switching key.

        ``target`` is ``"mult"`` for relinearisation or
        ``("galois", g)`` for the rotation/conjugation element ``g``.
        """
        if method not in keys.METHODS:
            raise ValueError(f"unknown key-switching method {method!r}")
        cache_key = (method, level, target)
        if cache_key not in self._evk_cache:
            source = self._source_coeffs(target)
            q_moduli = self.moduli_at(level)
            if method == HYBRID:
                key = keys.generate_hybrid_key(
                    self.params, self.secret_key, source,
                    q_moduli, self.p_moduli, self.rng)
            else:
                key = keys.generate_klss_key(
                    self.params, self.secret_key, source,
                    q_moduli, self.t_moduli, self.rng)
            self._evk_cache[cache_key] = key
        return self._evk_cache[cache_key]

    def rotation_key(self, method: str, level: int,
                     steps: int) -> KeySwitchKey:
        g = encoding.rotation_galois_element(self.params.ring_degree, steps)
        return self.evaluation_key(method, level, ("galois", g))

    # -- encoding / encryption ------------------------------------------
    def encode(self, message: Sequence, level: int | None = None,
               scale: float | None = None) -> Plaintext:
        """Encode complex slots into a plaintext at ``level``."""
        p = self.params
        if level is None:
            level = p.max_level
        if scale is None:
            scale = float(2 ** p.scale_bits)
        coeffs = encoding.encode_to_coeffs(message, p.ring_degree, scale)
        poly = rns.from_big_ints(list(coeffs), self.moduli_at(level),
                                 p.ring_degree).to_eval()
        return Plaintext(poly, scale, level)

    def decode(self, plaintext: Plaintext,
               num_slots: int | None = None) -> np.ndarray:
        coeffs = rns.compose_crt(plaintext.poly.to_coeff())
        return encoding.decode_from_coeffs(
            coeffs, self.params.ring_degree, plaintext.scale, num_slots)

    def encrypt(self, message, level: int | None = None,
                scale: float | None = None) -> Ciphertext:
        """Public-key encryption of a vector (or Plaintext)."""
        if not isinstance(message, Plaintext):
            message = self.encode(message, level=self.params.max_level,
                                  scale=scale)
        pt = message
        p = self.params
        n = p.ring_degree
        moduli = self.q_chain
        v = modmath.random_ternary(n, self.rng)
        v_poly = RnsPoly.from_int_coeffs(v, moduli).to_eval()
        e0 = RnsPoly.from_int_coeffs(
            modmath.random_discrete_gaussian(n, self.rng, p.sigma),
            moduli).to_eval()
        e1 = RnsPoly.from_int_coeffs(
            modmath.random_discrete_gaussian(n, self.rng, p.sigma),
            moduli).to_eval()
        pt_full = pt.poly
        if pt.level != p.max_level:
            raise ValueError("encode at max level before encrypting")
        c0 = self.public_key.b * v_poly + e0 + pt_full
        c1 = self.public_key.a * v_poly + e1
        ct = Ciphertext(c0, c1, pt.scale, p.max_level)
        if level is not None and level < p.max_level:
            ct = self.level_down(ct, level)
        return ct

    def decrypt(self, ct: Ciphertext,
                num_slots: int | None = None) -> np.ndarray:
        """Decrypt and decode back to complex slots."""
        s = self.secret_key.as_rns(ct.moduli)
        message_poly = ct.c0 + ct.c1 * s
        pt = Plaintext(message_poly, ct.scale, ct.level)
        return self.decode(pt, num_slots)

    # -- level / scale management ----------------------------------------
    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last prime; drops one level."""
        if ct.level == 0:
            raise ValueError("cannot rescale below level 0")
        dropped = ct.moduli[-1]
        c0 = rns.exact_rescale(ct.c0.to_coeff()).to_eval()
        c1 = rns.exact_rescale(ct.c1.to_coeff()).to_eval()
        return Ciphertext(c0, c1, ct.scale / dropped, ct.level - 1)

    def level_down(self, ct: Ciphertext, target_level: int) -> Ciphertext:
        """Drop limbs without dividing (modulus switching down)."""
        if target_level > ct.level:
            raise ValueError("cannot raise level by dropping limbs")
        keep = target_level + 1
        return Ciphertext(ct.c0.drop_limbs(keep), ct.c1.drop_limbs(keep),
                          ct.scale, target_level)

    # -- arithmetic --------------------------------------------------------
    @staticmethod
    def _align(a: Ciphertext, b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        if a.level == b.level:
            return a, b
        raise ValueError(
            f"operands at different levels ({a.level} vs {b.level}); "
            "use level_down first")

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._align(a, b)
        return Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale, a.level)

    def align_for_add(self, a: Ciphertext,
                      b: Ciphertext) -> tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts to a common level and, when their
        scales differ only by rescale drift (< 1%), a common nominal
        scale, so they can be added.  Larger mismatches raise."""
        lo = min(a.level, b.level)
        a = self.level_down(a, lo)
        b = self.level_down(b, lo)
        if a.scale != b.scale:
            ratio = abs(a.scale - b.scale) / max(a.scale, b.scale)
            if ratio > 0.01:
                raise ValueError(
                    f"scales differ by {ratio:.1%}; rescale first")
            b = Ciphertext(b.c0, b.c1, a.scale, b.level)
        return a, b

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        a, b = self._align(a, b)
        return Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale, a.level)

    def negate(self, ct: Ciphertext) -> Ciphertext:
        return Ciphertext(-ct.c0, -ct.c1, ct.scale, ct.level)

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        self._check_plain(ct, pt)
        return Ciphertext(ct.c0 + pt.poly, ct.c1.copy(), ct.scale, ct.level)

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """PMult: ciphertext x plaintext; scale multiplies."""
        self._check_plain(ct, pt, match_scale=False)
        return Ciphertext(ct.c0 * pt.poly, ct.c1 * pt.poly,
                          ct.scale * pt.scale, ct.level)

    def multiply_scalar(self, ct: Ciphertext, scalar: float,
                        scale: float | None = None) -> Ciphertext:
        """CMult: multiply every slot by one constant."""
        if scale is None:
            scale = float(2 ** self.params.scale_bits)
        value = int(round(scalar * scale))
        c0 = ct.c0 * value
        c1 = ct.c1 * value
        return Ciphertext(c0, c1, ct.scale * scale, ct.level)

    def add_scalar(self, ct: Ciphertext, scalar: float) -> Ciphertext:
        """CAdd: add one constant to every slot (at the current scale)."""
        value = int(round(scalar * ct.scale))
        coeffs = [value] + [0] * (self.params.ring_degree - 1)
        poly = rns.from_big_ints(coeffs, ct.moduli,
                                 self.params.ring_degree).to_eval()
        return Ciphertext(ct.c0 + poly, ct.c1.copy(), ct.scale, ct.level)

    def _check_plain(self, ct: Ciphertext, pt: Plaintext,
                     match_scale: bool = True) -> None:
        if pt.level != ct.level:
            raise ValueError("plaintext level does not match ciphertext")
        if match_scale and abs(pt.scale - ct.scale) / ct.scale > 1e-9:
            raise ValueError("plaintext scale does not match ciphertext")

    def plain_for(self, ct: Ciphertext, message,
                  scale: float | None = None) -> Plaintext:
        """Encode a message aligned with ``ct``'s level (PMult operand)."""
        if scale is None:
            scale = float(2 ** self.params.scale_bits)
        return self.encode(message, level=ct.level, scale=scale)

    # -- multiplication & rotation (key-switching consumers) --------------
    def _resolve_method(self, method: str | None, op: str, level: int,
                        hoisting: int = 0) -> str:
        if method in keys.METHODS:
            return method
        if method not in (None, "auto"):
            raise ValueError(f"unknown method {method!r}")
        return self.method_selector(op, level, hoisting)

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 method: str | None = None) -> Ciphertext:
        """HMult with relinearisation via the chosen method."""
        a, b = self._align(a, b)
        method = self._resolve_method(method, "HMult", a.level)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        key = self.evaluation_key(method, a.level, "mult")
        delta0, delta1 = self._key_switch(d2, key, method)
        return Ciphertext(d0 + delta0, d1 + delta1,
                          a.scale * b.scale, a.level)

    def square(self, ct: Ciphertext, method: str | None = None) -> Ciphertext:
        return self.multiply(ct, ct, method=method)

    def multiply_rescale(self, a: Ciphertext, b: Ciphertext,
                         method: str | None = None,
                         rescales: int = 1) -> Ciphertext:
        """HMult immediately followed by ``rescales`` rescale(s).

        The hybrid path runs the fused ModDown+Rescale kernel
        (:func:`~repro.ckks.keyswitch.hybrid.mod_down_rescale_pair`):
        the dropped primes join the ModDown's auxiliary basis, so the
        rescale's four full-basis transforms and its base conversion
        disappear into the key-switch tail — the executable form of
        the trace optimiser's ``merge_rescale`` rewrite.  Where the
        fused kernel does not apply (KLSS, object-path moduli,
        ``rescales >= level``), falls back to ``multiply`` followed by
        ``rescale`` — same ciphertext up to the documented sub-unit
        rounding difference between ``round(round(z/P)/D)`` and
        ``round(z/(P*D))``.
        """
        if rescales < 1:
            raise ValueError("need at least one rescale to fuse")
        a, b = self._align(a, b)
        method = self._resolve_method(method, "HMult", a.level)
        if method == HYBRID and a.level >= rescales:
            key = self.evaluation_key(HYBRID, a.level, "mult")
            d2 = a.c1 * b.c1
            decomposed = hybrid_decompose(
                d2.to_coeff(), key, self.params.alpha)
            acc0, acc1 = key_mult_accumulate(decomposed, key)
            if _mod_down_rescale_ready(acc0, acc1, key.aux_count,
                                       rescales):
                d0 = a.c0 * b.c0
                d1 = a.c0 * b.c1 + a.c1 * b.c0
                c0, c1 = mod_down_rescale_pair(
                    acc0, acc1, d0, d1, key.aux_count, rescales)
                scale = a.scale * b.scale
                for q in a.moduli[a.level + 1 - rescales:a.level + 1]:
                    scale /= q
                return Ciphertext(c0, c1, scale, a.level - rescales)
        out = self.multiply(a, b, method=method)
        for _ in range(rescales):
            out = self.rescale(out)
        return out

    def _key_switch(self, poly: RnsPoly, key: KeySwitchKey, method: str):
        if method == HYBRID:
            return hybrid_key_switch(poly, key, self.params.alpha)
        return klss_key_switch(poly, key)

    def rotate(self, ct: Ciphertext, steps: int,
               method: str | None = None) -> Ciphertext:
        """HRot: cyclic left rotation of the slot vector."""
        if steps % self.params.num_slots == 0:
            return ct.copy()
        method = self._resolve_method(method, "HRot", ct.level)
        g = encoding.rotation_galois_element(self.params.ring_degree, steps)
        return self._apply_galois(ct, g, method)

    def conjugate(self, ct: Ciphertext,
                  method: str | None = None) -> Ciphertext:
        """Complex-conjugate every slot."""
        method = self._resolve_method(method, "HRot", ct.level)
        g = encoding.conjugation_galois_element(self.params.ring_degree)
        return self._apply_galois(ct, g, method)

    def _apply_galois(self, ct: Ciphertext, g: int,
                      method: str) -> Ciphertext:
        # The ciphertext polys are in evaluation form, so both
        # automorphisms are AutoPlan point gathers — no NTTs.
        key = self.evaluation_key(method, ct.level, ("galois", g))
        c0_rot = ct.c0.automorphism(g)
        c1_rot = ct.c1.automorphism(g)
        delta0, delta1 = self._key_switch(c1_rot, key, method)
        return Ciphertext(c0_rot + delta0, delta1, ct.scale, ct.level)

    def hoisted_rotate(self, ct: Ciphertext, steps: Iterable[int],
                       method: str | None = None) -> list[Ciphertext]:
        """Rotate by each step, sharing one decomposition (hoisting).

        Repeated steps are computed once and returned as copies in
        the requested order.
        """
        steps = list(steps)
        method = self._resolve_method(method, "HRot", ct.level, len(steps))
        n = self.params.ring_degree
        galois = [encoding.rotation_galois_element(n, r) for r in steps]
        unique = list(dict.fromkeys(galois))
        key_map = {g: self.evaluation_key(method, ct.level, ("galois", g))
                   for g in unique}
        rotated = dict(zip(unique, hoisted_rotations(
            ct, unique, key_map, self.params.alpha)))
        seen: set[int] = set()
        results = []
        for g in galois:
            results.append(rotated[g].copy() if g in seen else rotated[g])
            seen.add(g)
        return results

    # -- diagnostics -------------------------------------------------------
    def noise_infinity(self, ct: Ciphertext, expected) -> float:
        """Max slot error against an expected vector (for tests)."""
        got = self.decrypt(ct)
        exp = np.asarray(expected, dtype=np.complex128).ravel()
        reps = self.params.num_slots // len(exp)
        return float(np.max(np.abs(got - np.tile(exp, reps))))
