"""Plaintext and ciphertext containers.

A :class:`Ciphertext` is the pair ``(c0, c1)`` of RNS polynomials over
the level-``l`` prime chain, in evaluation form, together with its
scale.  A :class:`Plaintext` is a single RNS polynomial with a scale.
Both are immutable-by-convention: operations return new objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.rns import RnsPoly


@dataclass
class Plaintext:
    """Encoded message: one RNS polynomial plus its scale."""

    poly: RnsPoly
    scale: float
    level: int

    @property
    def moduli(self):
        return self.poly.moduli

    def copy(self) -> "Plaintext":
        return Plaintext(self.poly.copy(), self.scale, self.level)


@dataclass
class Ciphertext:
    """CKKS ciphertext ``(c0, c1)`` at some level, evaluation form.

    Decrypts (approximately) to ``c0 + c1 * s``, which encodes the
    message scaled by ``scale``.
    """

    c0: RnsPoly
    c1: RnsPoly
    scale: float
    level: int

    def __post_init__(self):
        if self.c0.moduli != self.c1.moduli:
            raise ValueError("ciphertext halves live on different bases")

    @property
    def moduli(self):
        return self.c0.moduli

    @property
    def num_limbs(self) -> int:
        return len(self.c0.moduli)

    @property
    def ring_degree(self) -> int:
        return self.c0.n

    def copy(self) -> "Ciphertext":
        return Ciphertext(self.c0.copy(), self.c1.copy(),
                          self.scale, self.level)

    def size_bytes(self) -> int:
        """In-memory footprint using packed words (paper convention)."""
        total = 0
        for q in self.moduli:
            word_bytes = (int(q).bit_length() + 7) // 8
            total += 2 * word_bytes * self.ring_degree
        return total
