"""Analytic noise-budget tracking (the error growth of Sec. 2.1.1).

CKKS correctness requires the accumulated noise to stay far below the
scale, and the final ``Delta * m`` to fit under ``q0/2``.  This module
provides the standard heuristic (canonical-embedding, high-probability
bound) estimates used to size parameter sets:

* fresh-encryption noise;
* per-operation growth for add/mult/plain-mult/rescale;
* key-switching noise for both the hybrid method (ModDown residue
  ~ beta * noise / P) and the KLSS gadget method (digit-weighted);
* a :class:`NoiseTracker` that walks an operation sequence and
  reports the remaining budget in bits.

Estimates are validated against *measured* noise from the functional
scheme in ``tests/ckks/test_noise.py`` — the estimate must bound the
measurement without being orders of magnitude loose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.ckks.params import CkksParams

# High-probability factor for rounded-Gaussian / canonical-embedding
# bounds (erfc^-1-style; 6 sigma covers ~2^-32 failure probability).
HP_FACTOR = 6.0


def _ring_expansion(n: int) -> float:
    """Expected multiplicative expansion of a ring product's noise."""
    return math.sqrt(n)


def fresh_noise(params: CkksParams) -> float:
    """Infinity-norm bound on a fresh public-key encryption's error.

    ``e0 + v*e_pk + e1*s``: three rounded Gaussians, two of them
    through ring products with sparse/ternary polynomials.
    """
    n = params.ring_degree
    sigma = params.sigma
    ternary_norm = math.sqrt(n * 2.0 / 3.0)
    sparse_norm = math.sqrt(params.hamming_weight)
    return HP_FACTOR * sigma * (1.0 + ternary_norm + sparse_norm)


def add_noise(a: float, b: float) -> float:
    return a + b


def mult_noise(a_noise: float, b_noise: float, a_mag: float,
               b_mag: float, scale: float) -> float:
    """Tensor-product noise: cross terms plus the noise product.

    Message magnitudes are in slot units; noise in absolute units at
    the common ``scale``.
    """
    return (a_mag * scale * b_noise + b_mag * scale * a_noise +
            a_noise * b_noise) / scale


def rescale_noise(noise: float, dropped_prime: int, n: int) -> float:
    """Rescaling divides noise by q and adds a rounding term ~sqrt(n)."""
    return noise / dropped_prime + math.sqrt(n)


def hybrid_keyswitch_noise(params: CkksParams, level: int) -> float:
    """ModDown residue of the hybrid switch, in absolute units.

    ``beta`` digit/key products of magnitude ``D_max * e_key`` divided
    by ``P``, plus the ModDown rounding (~sqrt(n) per limb).
    """
    n = params.ring_degree
    beta = params.beta_at(level)
    sigma = params.sigma
    # D_max / P ~ 1 when the special modulus matches the digit size
    # (the level-aware configuration); the surviving term is the
    # key error scaled by the digit count and ring expansion.
    ks = HP_FACTOR * sigma * beta * _ring_expansion(n)
    return ks + math.sqrt(n) * (level + 1)


def klss_keyswitch_noise(params: CkksParams, level: int) -> float:
    """Gadget-switch residue: digits bounded by 2^(v-1), divided by T.

    ``num_digits * 2^(v-1) * e_key * sqrt(n) / T`` — with the wide
    auxiliary modulus ``T >> 2^v * digits``, the residue is dominated
    by the final ModDown rounding, as in the hybrid case.
    """
    n = params.ring_degree
    bits_q = params.first_prime_bits + level * params.prime_bits
    num_digits = -(-(bits_q + 1) // params.klss_digit_bits)
    digit_mag = 2.0 ** (params.klss_digit_bits - 1)
    big_t = 2.0 ** (params.klss_alpha_tilde * params.klss_word_bits
                    if params.klss_alpha_tilde else params.klss_word_bits)
    raw = HP_FACTOR * params.sigma * num_digits * digit_mag * \
        _ring_expansion(n)
    return raw / big_t + math.sqrt(n) * (level + 1)


@dataclass
class NoiseTracker:
    """Walks a computation and tracks the worst-case noise bound.

    The budget at any point is ``log2(scale / noise)`` — the bits of
    message precision remaining.  Operations mirror CkksContext's.
    """

    params: CkksParams
    message_magnitude: float = 1.0
    noise: float = field(default=0.0)
    level: int = field(default=-1)
    scale: float = field(default=0.0)

    def __post_init__(self):
        if self.level < 0:
            self.level = self.params.max_level
        if self.scale == 0.0:
            self.scale = float(2 ** self.params.scale_bits)
        if self.noise == 0.0:
            self.noise = fresh_noise(self.params)

    def budget_bits(self) -> float:
        if self.noise <= 0:
            return float("inf")
        return math.log2(self.scale * self.message_magnitude /
                         self.noise)

    def add(self, other: "NoiseTracker | None" = None) -> "NoiseTracker":
        other_noise = other.noise if other else self.noise
        self.noise = add_noise(self.noise, other_noise)
        return self

    def multiply(self, other: "NoiseTracker | None" = None,
                 method: str = "hybrid") -> "NoiseTracker":
        o_noise = other.noise if other else self.noise
        o_mag = other.message_magnitude if other else \
            self.message_magnitude
        self.noise = mult_noise(self.noise, o_noise,
                                self.message_magnitude, o_mag,
                                self.scale) * self.scale
        self.scale = self.scale * self.scale / self.scale  # product scale
        self.message_magnitude *= o_mag
        ks = hybrid_keyswitch_noise(self.params, self.level) \
            if method == "hybrid" else \
            klss_keyswitch_noise(self.params, self.level)
        self.noise += ks
        return self

    def rotate(self, method: str = "hybrid") -> "NoiseTracker":
        ks = hybrid_keyswitch_noise(self.params, self.level) \
            if method == "hybrid" else \
            klss_keyswitch_noise(self.params, self.level)
        self.noise += ks
        return self

    def rescale(self, dropped_prime: int | None = None) -> "NoiseTracker":
        if self.level == 0:
            raise ValueError("no levels left to rescale")
        q = dropped_prime or 2 ** self.params.prime_bits
        self.noise = rescale_noise(self.noise, q,
                                   self.params.ring_degree)
        self.level -= 1
        return self

    def depth_capacity(self, method: str = "hybrid") -> int:
        """Squarings survivable before the budget drops below 1 bit."""
        probe = NoiseTracker(self.params,
                             message_magnitude=self.message_magnitude)
        depth = 0
        while probe.level > 0:
            probe.multiply(method=method)
            probe.rescale()
            if probe.budget_bits() < 1.0:
                break
            depth += 1
        return depth
