"""Canonical-embedding encoding between complex vectors and plaintexts.

CKKS packs a vector of ``n <= N/2`` complex numbers into one plaintext
polynomial by inverting the canonical embedding: slot ``j`` is the
polynomial's value at ``zeta^{5^j}`` where ``zeta = exp(i*pi/N)`` is a
primitive 2N-th root of unity.  The ``5^j`` ordering makes the Galois
automorphism ``X -> X^5`` act as a cyclic rotation of the slots, which
is what gives **HRot** its meaning.

The encoder works directly with the (conjugate-symmetric) inverse
Vandermonde, which is exact and simple at the scaled-down ring sizes
the functional tests use.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np


@lru_cache(maxsize=None)
def _slot_exponents(ring_degree: int, num_slots: int) -> np.ndarray:
    """Exponents ``5^j mod 2N`` addressing each slot's root."""
    two_n = 2 * ring_degree
    exps = np.empty(num_slots, dtype=np.int64)
    e = 1
    for j in range(num_slots):
        exps[j] = e
        e = (e * 5) % two_n
    return exps


@lru_cache(maxsize=None)
def _embedding_matrix(ring_degree: int, num_slots: int) -> np.ndarray:
    """Matrix E with ``E[j, k] = zeta^{e_j * k}`` (slot j, coefficient k)."""
    two_n = 2 * ring_degree
    exps = _slot_exponents(ring_degree, num_slots)
    k = np.arange(ring_degree)
    angles = 2.0j * np.pi * np.outer(exps, k) / two_n
    return np.exp(angles)


def encode_to_coeffs(message, ring_degree: int, scale: float) -> np.ndarray:
    """Encode complex slots into integer polynomial coefficients.

    ``message`` may have any length up to ``N/2``; shorter vectors are
    *repeated* to fill all slots (matching the usual sparse-packing
    convention, and keeping rotations meaningful).  Returns an object
    array of Python ints (coefficients may exceed 64 bits for large
    scales).
    """
    n_slots = ring_degree // 2
    msg = np.asarray(message, dtype=np.complex128).ravel()
    if len(msg) == 0 or len(msg) > n_slots:
        raise ValueError(f"message length must be in [1, {n_slots}]")
    if n_slots % len(msg) != 0:
        raise ValueError("message length must divide the slot count")
    full = np.tile(msg, n_slots // len(msg))
    emb = _embedding_matrix(ring_degree, n_slots)
    # c_k = (2*Delta/N) * Re( sum_j z_j * conj(zeta^{e_j k}) )
    coeffs = (2.0 * scale / ring_degree) * np.real(full @ np.conj(emb))
    rounded = np.rint(coeffs)
    return np.array([int(v) for v in rounded], dtype=object)


def decode_from_coeffs(coeffs, ring_degree: int, scale: float,
                       num_slots: int | None = None) -> np.ndarray:
    """Evaluate integer coefficients at the slot roots and unscale."""
    n_slots = ring_degree // 2
    if num_slots is None:
        num_slots = n_slots
    emb = _embedding_matrix(ring_degree, n_slots)
    values = emb @ np.asarray([float(c) for c in coeffs])
    return (values / scale)[:num_slots]


def rotation_galois_element(ring_degree: int, steps: int) -> int:
    """Galois element ``5^steps mod 2N`` rotating slots left by ``steps``."""
    two_n = 2 * ring_degree
    return pow(5, steps % (ring_degree // 2), two_n)


def conjugation_galois_element(ring_degree: int) -> int:
    """Galois element ``-1 mod 2N`` conjugating every slot."""
    return 2 * ring_degree - 1
