"""CKKS parameter sets.

Two kinds of parameter objects exist in this reproduction:

* The paper's full-size sets (Table 2): ``SET_I`` (hybrid-only,
  ``alpha = 12``) and ``SET_II`` (hybrid + KLSS, ``alpha = 5``,
  ``alpha~ = 9``), with ``N = 2^16``, ``L = 35`` and 36-bit scale
  primes.  These drive the analytic cost models, Aether, and the
  cycle simulator at the paper's scale.
* Scaled-down *toy* sets produced by :func:`toy_params`, used for the
  functional scheme: the ring is smaller and the primes are narrower
  (so the int64 fast path applies), but the structure — digit size
  ``alpha``, special-modulus count, KLSS gadget width — is preserved.
* :func:`set_ii_mini` sets, which keep Set-II's *real word lengths*
  (36-bit scale primes, 60-bit KLSS gadget/T words) on the vectorised
  wide uint64 path and shrink only the ring and chain length.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CkksParams:
    """Static CKKS configuration.

    Attributes
    ----------
    ring_degree:
        Polynomial degree ``N`` (power of two); ``N/2`` complex slots.
    max_level:
        ``L``: number of rescalings supported, so the fresh modulus
        chain has ``L + 1`` primes ``q_0 .. q_L``.
    scale_bits:
        ``log2`` of the encoding scale ``Delta``.
    prime_bits:
        Bit length of the scale primes ``q_1 .. q_L``.
    first_prime_bits:
        Bit length of ``q_0`` (larger, to absorb the final message).
    alpha:
        Hybrid-method digit size (limbs per ModUp group); the paper's
        ``alpha``.  ``beta = ceil((l+1)/alpha)`` digits at level l.
    num_special_primes:
        Limbs of the hybrid auxiliary modulus ``P`` (chosen equal to
        ``alpha`` as in the paper's Set-I/Set-II).
    klss_alpha / klss_alpha_tilde:
        Set-II KLSS grouping parameters (see paper Table 2).
    klss_digit_bits:
        Gadget decomposition width ``v`` (60 in the paper).
    klss_word_bits:
        Word length of the wide KLSS primes (60 in the paper; narrower
        in toy sets so the int64 path applies).
    hamming_weight:
        Secret-key Hamming weight (sparse ternary secret).
    sigma:
        RLWE error standard deviation.
    boot_levels:
        ``L_boot``: levels consumed by bootstrapping, leaving
        ``L_eff = max_level - boot_levels`` usable levels.
    double_rescale:
        Whether every multiplication consumes two levels (the paper's
        36-bit double-rescale configuration, from SHARP).
    name:
        Human-readable label.
    """

    ring_degree: int
    max_level: int
    scale_bits: int
    prime_bits: int
    first_prime_bits: int
    alpha: int
    num_special_primes: int
    klss_alpha: int = 0
    klss_alpha_tilde: int = 0
    klss_digit_bits: int = 60
    klss_word_bits: int = 60
    hamming_weight: int = 64
    sigma: float = 3.2
    boot_levels: int = 27
    double_rescale: bool = False
    name: str = "custom"

    def __post_init__(self):
        if self.ring_degree & (self.ring_degree - 1):
            raise ValueError("ring_degree must be a power of two")
        if self.max_level < 1:
            raise ValueError("max_level must be at least 1")
        if self.alpha < 1 or self.alpha > self.max_level + 1:
            raise ValueError("alpha out of range")

    @property
    def num_slots(self) -> int:
        """Maximum packed slot count ``n = N / 2``."""
        return self.ring_degree // 2

    @property
    def effective_level(self) -> int:
        """``L_eff``: levels left for the application after bootstrap."""
        return self.max_level - self.boot_levels

    @property
    def num_limbs_fresh(self) -> int:
        """Limbs of a fresh ciphertext (``L + 1``)."""
        return self.max_level + 1

    @property
    def levels_per_mult(self) -> int:
        """Levels consumed by one multiplication (2 with double rescale)."""
        return 2 if self.double_rescale else 1

    def limbs_at(self, level: int) -> int:
        """Limb count of a ciphertext at ``level`` (``level + 1``)."""
        if not 0 <= level <= self.max_level:
            raise ValueError(f"level {level} outside [0, {self.max_level}]")
        return level + 1

    def beta_at(self, level: int) -> int:
        """Hybrid digit count ``beta = ceil((level+1)/alpha)``."""
        return -(-self.limbs_at(level) // self.alpha)

    def with_(self, **changes) -> "CkksParams":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)


# Paper Table 2.  128-bit secure full-size sets; used analytically.
SET_I = CkksParams(
    ring_degree=1 << 16,
    max_level=35,
    scale_bits=36,
    prime_bits=36,
    first_prime_bits=60,
    alpha=12,
    num_special_primes=12,
    hamming_weight=192,
    boot_levels=27,
    double_rescale=True,
    name="Set-I (hybrid, alpha=12)",
)

SET_II = CkksParams(
    ring_degree=1 << 16,
    max_level=35,
    scale_bits=36,
    prime_bits=36,
    first_prime_bits=60,
    alpha=5,
    num_special_primes=5,
    klss_alpha=5,
    klss_alpha_tilde=9,
    klss_digit_bits=60,
    klss_word_bits=60,
    hamming_weight=192,
    boot_levels=27,
    double_rescale=True,
    name="Set-II (hybrid+KLSS, alpha=5, alpha~=9)",
)


def set_ii_mini(ring_degree: int = 4096, max_level: int = 6,
                alpha: int | None = None, hamming_weight: int = 64,
                boot_levels: int = 4,
                name: str = "Set-II-mini (36-bit, wide path)") -> CkksParams:
    """A Set-II-shaped set with the paper's *real word lengths*.

    Unlike :func:`toy_params`, the primes keep Set-II's widths — 36-bit
    scale primes, a wider first prime, 60-bit KLSS gadget digits and
    wide T-basis primes — so every limb runs on the vectorised wide
    (uint64 Barrett) path rather than the int64 toy path.  Only the
    ring degree and chain length are reduced, which keeps functional
    workloads affordable in software while exercising exactly the
    arithmetic the paper's TBM executes in its 36-bit and 60-bit
    modes.
    """
    if alpha is None:
        alpha = min(5, max_level + 1)
    return CkksParams(
        ring_degree=ring_degree,
        max_level=max_level,
        scale_bits=36,
        prime_bits=36,
        first_prime_bits=44,
        alpha=alpha,
        num_special_primes=alpha,
        klss_alpha=alpha,
        klss_alpha_tilde=3,
        klss_digit_bits=60,
        klss_word_bits=60,
        hamming_weight=hamming_weight,
        sigma=3.2,
        boot_levels=boot_levels,
        double_rescale=False,
        name=name,
    )


def toy_params(ring_degree: int = 64, max_level: int = 6,
               alpha: int = 2, prime_bits: int = 28,
               scale_bits: int = 28, num_special_primes: int | None = None,
               klss_digit_bits: int = 12, klss_word_bits: int = 30,
               hamming_weight: int = 16, boot_levels: int = 4,
               name: str = "toy") -> CkksParams:
    """A scaled-down set preserving Set-II structure on the int64 path.

    Primes stay below 31 bits so all modular arithmetic runs on the
    numpy fast path; the gadget digit width shrinks proportionally.
    """
    if num_special_primes is None:
        num_special_primes = alpha
    return CkksParams(
        ring_degree=ring_degree,
        max_level=max_level,
        scale_bits=scale_bits,
        prime_bits=prime_bits,
        first_prime_bits=min(prime_bits + 2, 30),
        alpha=alpha,
        num_special_primes=num_special_primes,
        klss_alpha=alpha,
        klss_alpha_tilde=num_special_primes,
        klss_digit_bits=klss_digit_bits,
        klss_word_bits=klss_word_bits,
        hamming_weight=hamming_weight,
        sigma=3.2,
        boot_levels=boot_levels,
        double_rescale=False,
        name=name,
    )
