"""Functional CKKS bootstrapping at toy scale (Sec. 6.2's pipeline).

The four stages the paper's benchmark executes — **ModRaise**,
**CoeffToSlot**, **EvalMod**, **SlotToCoeff** — implemented on the
functional scheme so a level-exhausted ciphertext really is refreshed
and keeps decrypting correctly:

* **ModRaise** re-reads the level-0 limb in the full prime chain,
  turning the plaintext into ``Delta*m + q0*I(X)`` for a small
  integer polynomial ``I`` (bounded by the sparse secret's weight);
* **CoeffToSlot** moves coefficients into slots with one pass of two
  homomorphic matrix products (``w = A z + B conj(z)``), the matrices
  solved numerically from the canonical embedding;
* **EvalMod** removes ``q0*I`` by evaluating a polynomial fit of
  ``(q0 / 2 pi Delta) * sin(2 pi u)`` with Paterson-Stockmeyer
  (depth ~ 2 log2 sqrt(deg)); real and imaginary coefficient parts
  are extracted by conjugation and reduced separately;
* **SlotToCoeff** applies the inverse pair ``m = C w' + D conj(w')``.

Scaled-down regime: the ring is tiny (N = 32 by default) and the base
prime ``q0`` is ~2^38 against a 2^28 working scale, so the sine
argument ``Delta*m/q0`` stays ~2^-10 — exactly the headroom structure
the full-size parameters have, at laptop cost.  The paper's full-size
bootstrap is represented by the trace generator
(:mod:`repro.workloads.bootstrap`) that the simulator executes.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import encoding, linalg
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import CkksContext
from repro.ckks.params import CkksParams, toy_params
from repro.ckks.rns import RnsPoly, compose_crt, from_big_ints


def bootstrappable_toy_params(ring_degree: int = 32,
                              max_level: int = 15) -> CkksParams:
    """A toy set with the headroom bootstrapping needs.

    ``q0`` is larger than the working scale (the paper's full-size
    sets put 60 bits against a 36-bit scale; we put 34 against 28 —
    enough headroom that the sine argument ``Delta m / q0`` stays
    small, while keeping the sine amplitude ``q0 / 2 pi Delta`` low
    so it does not amplify evaluation noise), and the secret is very
    sparse so the ModRaise overflow polynomial ``I`` stays within the
    sine fit's range.
    """
    return toy_params(
        ring_degree=ring_degree, max_level=max_level, alpha=3,
        prime_bits=28, scale_bits=28, hamming_weight=2,
        boot_levels=max_level - 2,
        name="toy-bootstrappable").with_(first_prime_bits=34)


class Bootstrapper:
    """Precomputes the linear transforms and the sine polynomial."""

    def __init__(self, ctx: CkksContext, sine_degree: int = 30,
                 i_bound: float = 1.5, method: str | None = None):
        self.ctx = ctx
        self.method = method
        self.n_slots = ctx.params.num_slots
        self.q0 = ctx.q_chain[0]
        self.delta = float(2 ** ctx.params.scale_bits)
        self.i_bound = i_bound
        self._build_linear_transforms()
        self._fit_sine(sine_degree)

    # -- precomputation ----------------------------------------------------
    def _build_linear_transforms(self) -> None:
        """Solve the CoeffToSlot / SlotToCoeff matrix pairs.

        With ``E`` the n x N embedding (slots = E c / scale for real
        coefficient vectors c), CoeffToSlot needs ``[A|B]`` such that
        ``A E + B conj(E) = [I | iI]`` and SlotToCoeff is the explicit
        inverse ``m = C w + D conj(w)`` with ``C = (E_lo - i E_hi)/2``
        and ``D = (E_lo + i E_hi)/2``.
        """
        n = self.ctx.params.ring_degree
        slots = self.n_slots
        emb = encoding._embedding_matrix(n, slots)         # n_slots x N
        stacked = np.vstack([emb, np.conj(emb)])           # N x N
        selector = np.hstack([np.eye(slots),
                              1j * np.eye(slots)])         # n x N
        solution = selector @ np.linalg.inv(stacked)
        self.cts_a = solution[:, :slots]
        self.cts_b = solution[:, slots:]
        e_lo = emb[:, :slots]
        e_hi = emb[:, slots:]
        self.stc_c = (e_lo - 1j * e_hi) / 2
        self.stc_d = (e_lo + 1j * e_hi) / 2

    def _fit_sine(self, degree: int) -> None:
        """Chebyshev fit of the scaled sine in a normalised variable.

        ``g(u) = (q0 / (2 pi Delta)) sin(2 pi u)`` over ``|u| <=
        i_bound + 0.5``; near integers ``g(I + d) ~ q0 d / Delta``,
        exactly the coefficient EvalMod must keep.  Fitting in
        ``v = u / bound`` on [-1, 1] keeps the power-basis
        coefficients conditioned (max error ~1e-7 at degree 30).
        """
        bound = self.i_bound + 0.5
        self.sine_domain = bound
        grid = np.cos(np.linspace(0, np.pi, 12 * degree))
        target = (self.q0 / (2 * np.pi * self.delta)) * \
            np.sin(2 * np.pi * grid * bound)
        self.sine_cheb = np.polynomial.chebyshev.chebfit(grid, target,
                                                         degree)
        fit = np.polynomial.chebyshev.chebval(grid, self.sine_cheb)
        self.sine_fit_error = float(np.max(np.abs(fit - target)))

    # -- stages ---------------------------------------------------------------
    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Reinterpret a level-0 ciphertext in the full prime chain."""
        if ct.level != 0:
            raise ValueError("mod_raise expects a level-0 ciphertext")
        full = self.ctx.q_chain
        n = self.ctx.params.ring_degree

        def raise_poly(poly: RnsPoly) -> RnsPoly:
            centred = compose_crt(poly.to_coeff())
            return from_big_ints(centred, full, n).to_eval()

        return Ciphertext(raise_poly(ct.c0), raise_poly(ct.c1),
                          ct.scale, self.ctx.params.max_level)

    def _matvec_pair(self, ct: Ciphertext, mat_direct: np.ndarray,
                     mat_conj: np.ndarray) -> Ciphertext:
        """``mat_direct @ slots + mat_conj @ conj(slots)`` (1 level)."""
        ctx = self.ctx
        conj = ctx.conjugate(ct, method=self.method)
        left = linalg.matvec_bsgs(ctx, mat_direct, ct,
                                  method=self.method)
        right = linalg.matvec_bsgs(ctx, mat_conj, conj,
                                   method=self.method)
        return ctx.add(*ctx.align_for_add(left, right))

    def coeff_to_slot(self, ct: Ciphertext) -> Ciphertext:
        return self._matvec_pair(ct, self.cts_a, self.cts_b)

    def slot_to_coeff(self, ct: Ciphertext) -> Ciphertext:
        return self._matvec_pair(ct, self.stc_c, self.stc_d)

    def _cmult_complex(self, ct: Ciphertext, value: complex) -> Ciphertext:
        """Multiply every slot by one complex constant (1 level)."""
        ctx = self.ctx
        pt = ctx.plain_for(ct, np.full(self.n_slots, value))
        return ctx.rescale(ctx.multiply_plain(ct, pt))

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Approximate ``w -> (Delta w) mod q0 / Delta`` per slot."""
        ctx = self.ctx
        # v = w * Delta / (q0 * bound): the sine fit's normalised
        # variable (integer part of u = v*bound is I).
        u = ctx.rescale(ctx.multiply_scalar(
            ct, self.delta / (self.q0 * self.sine_domain)))
        u_conj = ctx.conjugate(u, method=self.method)
        u_sum = ctx.add(*ctx.align_for_add(u, u_conj))       # 2 Re(u)
        u_diff = ctx.sub(*ctx.align_for_add(u, u_conj))      # 2i Im(u)
        u_re = self._cmult_complex(u_sum, 0.5)
        u_im = self._cmult_complex(u_diff, -0.5j)
        reduced_re = linalg.evaluate_chebyshev(
            ctx, u_re, self.sine_cheb, method=self.method)
        reduced_im = linalg.evaluate_chebyshev(
            ctx, u_im, self.sine_cheb, method=self.method)
        reduced_im_i = self._cmult_complex(reduced_im, 1j)
        return ctx.add(*ctx.align_for_add(reduced_re, reduced_im_i))

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Full refresh: level-0 input -> usable-level output."""
        raised = self.mod_raise(ct)
        slots = self.coeff_to_slot(raised)
        reduced = self.eval_mod(slots)
        return self.slot_to_coeff(reduced)
