"""Encrypted linear algebra on packed CKKS vectors (Sec. 2.2).

The building blocks the paper's applications are made of:

* :func:`rotate_and_sum` — log-depth reduction summing every slot;
* :func:`inner_product` — encrypted dot product against a plaintext
  vector;
* :func:`matvec_bsgs` — plaintext matrix x encrypted vector via the
  diagonal (Halevi-Shoup) method with baby-step/giant-step rotations,
  the hoisting-friendly pattern bootstrapping's DFT stages use;
* :func:`evaluate_polynomial` — Horner evaluation of a plaintext
  polynomial on a ciphertext (the non-linear-activation workaround of
  Sec. 2.2.2);
* :func:`sigmoid_coefficients` — the degree-7 least-squares sigmoid
  approximation HELR trains with.

All functions run on the *functional* scheme, so they work at the
scaled-down parameters tests use, and they emit hoisted rotation
batches where the access pattern allows it.
"""

from __future__ import annotations

import numpy as np

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.context import CkksContext


def rotate_and_sum(ctx: CkksContext, ct: Ciphertext,
                   length: int, method: str | None = None) -> Ciphertext:
    """Sum ``length`` consecutive slots into every slot (log depth).

    ``length`` must be a power of two.  After the call, slot ``i``
    holds ``sum_j x[(i + j) mod length]`` for each aligned block.
    """
    if length & (length - 1):
        raise ValueError("length must be a power of two")
    acc = ct
    step = 1
    while step < length:
        acc = ctx.add(acc, ctx.rotate(acc, step, method=method))
        step *= 2
    return acc


def inner_product(ctx: CkksContext, ct: Ciphertext, weights,
                  method: str | None = None) -> Ciphertext:
    """Dot product of an encrypted vector with plaintext ``weights``.

    The result appears (replicated) in every slot of each
    ``len(weights)``-aligned block.  Consumes one level.
    """
    weights = np.asarray(weights, dtype=np.complex128)
    pt = ctx.plain_for(ct, weights)
    prod = ctx.rescale(ctx.multiply_plain(ct, pt))
    return rotate_and_sum(ctx, prod, len(weights), method=method)


def matvec_bsgs(ctx: CkksContext, matrix: np.ndarray, ct: Ciphertext,
                baby_steps: int | None = None,
                method: str | None = None) -> Ciphertext:
    """Plaintext matrix times encrypted vector, diagonal method + BSGS.

    ``matrix`` is ``d x d`` with ``d`` a power of two dividing the
    slot count.  Rotations split into ``bs`` hoisted baby steps and
    ``d / bs`` giant steps:

        out = sum_g rot_{g*bs}( sum_b diag_{g*bs+b} (.) rot_b(ct) )

    where ``diag_k`` is the k-th generalised diagonal pre-rotated by
    ``-g*bs``.  One multiplicative level is consumed.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    d = matrix.shape[0]
    if matrix.shape != (d, d):
        raise ValueError("matrix must be square")
    if d & (d - 1):
        raise ValueError("dimension must be a power of two")
    if baby_steps is None:
        baby_steps = 1 << (max(1, d.bit_length() - 1) // 2)
    bs = min(baby_steps, d)
    gs = -(-d // bs)

    diagonals = {k: np.array([matrix[i, (i + k) % d] for i in range(d)])
                 for k in range(d)}
    # Baby rotations of the input ciphertext: one hoisted batch.  The
    # decomposition of c1 is shared, and each extra baby step costs
    # only an AutoPlan gather + fused KeyMult + ModDown — no NTTs
    # before the ModDown (see repro.ckks.keyswitch.hoisting).
    baby_rots = [ct] + ctx.hoisted_rotate(ct, list(range(1, bs)),
                                          method=method)
    result = None
    for g in range(gs):
        partial = None
        for b in range(bs):
            k = g * bs + b
            if k >= d:
                break
            # pre-rotate the diagonal so the giant rotation lands it
            diag = np.roll(diagonals[k], g * bs)
            pt = ctx.plain_for(baby_rots[b], diag)
            term = ctx.multiply_plain(baby_rots[b], pt)
            partial = term if partial is None else ctx.add(partial, term)
        if partial is None:
            continue
        rotated = ctx.rotate(partial, g * bs, method=method) \
            if g else partial
        result = rotated if result is None else ctx.add(result, rotated)
    return ctx.rescale(result)


def evaluate_polynomial(ctx: CkksContext, ct: Ciphertext,
                        coefficients, method: str | None = None
                        ) -> Ciphertext:
    """Horner evaluation of ``sum_i c_i x^i`` on a ciphertext.

    Consumes ``deg`` levels (one per Horner step); coefficients are
    plain floats.  Suitable for the small-degree activations the
    examples use; production bootstrapping uses BSGS Chebyshev
    instead (modelled in the trace generators).
    """
    coeffs = list(coefficients)
    if len(coeffs) < 2:
        raise ValueError("need at least a degree-1 polynomial")
    acc = ctx.multiply_scalar(ct, coeffs[-1])
    acc = ctx.rescale(acc)
    acc = ctx.add_scalar(acc, coeffs[-2])
    for c in reversed(coeffs[:-2]):
        operand = ctx.level_down(ct, acc.level)
        acc = ctx.rescale(ctx.multiply(acc, operand, method=method))
        acc = ctx.add_scalar(acc, c)
    return acc


def _power_basis(ctx: CkksContext, ct: Ciphertext, max_power: int,
                 method: str | None = None) -> dict:
    """Powers ct^1..ct^max_power at logarithmic depth.

    ``x^(2k)`` squares ``x^k`` and ``x^(2k+1)`` multiplies in one more
    ``x``, so power ``p`` sits at depth ``ceil(log2 p)``.  Every power
    is rescaled after its product; callers align levels on use.
    """
    powers = {1: ct}
    for p in range(2, max_power + 1):
        half = p // 2
        a = powers[half]
        b = powers[p - half]
        lo = min(a.level, b.level)
        prod = ctx.multiply(ctx.level_down(a, lo), ctx.level_down(b, lo),
                            method=method)
        powers[p] = ctx.rescale(prod)
    return powers


def evaluate_polynomial_ps(ctx: CkksContext, ct: Ciphertext,
                           coefficients, method: str | None = None
                           ) -> Ciphertext:
    """Paterson-Stockmeyer evaluation: depth ~ 2 log2(sqrt(deg)).

    Splits ``sum c_i x^i`` into ``sum_j (sum_i c_{jk+i} x^i) * y^j``
    with ``y = x^k`` and ``k ~ sqrt(deg+1)``: the baby powers and the
    giant powers both build at log depth, each giant block costs one
    more multiplication, and the blocks add together — the evaluation
    pattern bootstrapping's EvalMod uses (Sec. 6.2).
    """
    coeffs = [float(c) for c in coefficients]
    degree = len(coeffs) - 1
    if degree < 1:
        raise ValueError("need at least a degree-1 polynomial")
    k = max(1, int(np.ceil(np.sqrt(degree + 1))))
    num_blocks = -(-len(coeffs) // k)
    if num_blocks > 1:
        # one shared table covers baby powers and every giant power
        powers = _power_basis(ctx, ct, k * (num_blocks - 1),
                              method=method)
        giant_powers = {j: powers[k * j] for j in range(1, num_blocks)}
        babies = {i: powers[i] for i in range(1, max(2, k))}
    else:
        babies = _power_basis(ctx, ct, max(1, k - 1), method=method)
        giant_powers = {}

    def block_value(j):
        """sum_i coeffs[j*k + i] * x^i as a ciphertext (scalar-mult +
        adds over the baby powers), or None for an all-zero block."""
        block = coeffs[j * k:(j + 1) * k]
        floor_level = min(b.level for b in babies.values())
        acc = None
        for i, c in enumerate(block):
            if i == 0 or abs(c) < 1e-12:
                continue
            term = ctx.rescale(ctx.multiply_scalar(
                ctx.level_down(babies[i], floor_level), c))
            acc = term if acc is None else ctx.add(
                ctx.level_down(acc, term.level), term)
        if acc is not None and abs(block[0]) > 1e-12:
            acc = ctx.add_scalar(acc, block[0])
        elif acc is None and abs(block[0]) > 1e-12:
            # constant-only block: ride on a zeroed baby power
            base = ctx.rescale(ctx.multiply_scalar(
                ctx.level_down(babies[1], floor_level), 0.0))
            acc = ctx.add_scalar(base, block[0])
        return acc

    result = None
    for j in range(num_blocks):
        inner = block_value(j)
        if inner is None:
            continue
        if j == 0:
            term = inner
        else:
            y = giant_powers[j]
            lo = min(inner.level, y.level)
            term = ctx.rescale(ctx.multiply(
                ctx.level_down(inner, lo), ctx.level_down(y, lo),
                method=method))
        if result is None:
            result = term
        else:
            lo = min(result.level, term.level)
            a = ctx.level_down(result, lo)
            b = ctx.level_down(term, lo)
            # align scales before adding (rescale drift makes them
            # differ by parts in 1e3; fold the ratio into b).
            if abs(a.scale - b.scale) / a.scale > 1e-12:
                b = Ciphertext(b.c0, b.c1, a.scale, b.level)
            result = ctx.add(a, b)
    return result


def evaluate_chebyshev(ctx: CkksContext, ct: Ciphertext,
                       cheb_coefficients, method: str | None = None
                       ) -> Ciphertext:
    """Evaluate a Chebyshev series ``sum_i c_i T_i(x)`` on a ciphertext.

    The input's slot values must lie in [-1, 1].  Basis polynomials
    build by the product recurrence ``T_{a+b} = 2 T_a T_b - T_{|a-b|}``
    with binary splitting, so ``T_d`` sits at depth ``ceil(log2 d)``;
    every intermediate value stays in [-1, 1] and the series
    coefficients stay at the function's amplitude — the numerically
    stable evaluation bootstrapping's EvalMod needs (power-basis
    coefficients of an oscillatory fit reach ~1e6 and amplify
    encryption noise a million-fold).
    """
    coeffs = [float(c) for c in cheb_coefficients]
    degree = len(coeffs) - 1
    if degree < 1:
        raise ValueError("need at least a degree-1 series")
    basis: dict[int, Ciphertext] = {1: ct}

    def build(i: int) -> Ciphertext:
        if i in basis:
            return basis[i]
        a = i // 2
        b = i - a
        ta = build(a)
        tb = build(b)
        ta, tb = ctx.align_for_add(ta, tb)
        prod = ctx.rescale(ctx.multiply(ta, tb, method=method))
        doubled = Ciphertext(prod.c0 * 2, prod.c1 * 2, prod.scale,
                             prod.level)
        if a == b:
            result = ctx.add_scalar(doubled, -1.0)   # T_{2a} = 2T_a^2-1
        else:
            t_diff = build(abs(a - b))
            lhs, rhs = ctx.align_for_add(doubled, t_diff)
            result = ctx.sub(lhs, rhs)
        basis[i] = result
        return result

    for i in range(2, degree + 1):
        if abs(coeffs[i]) > 1e-12:
            build(i)
    floor_level = min(b.level for b in basis.values())
    acc = None
    for i in range(1, degree + 1):
        if abs(coeffs[i]) < 1e-12:
            continue
        term = ctx.rescale(ctx.multiply_scalar(
            ctx.level_down(basis[i], floor_level), coeffs[i]))
        if acc is None:
            acc = term
        else:
            acc = ctx.add(*ctx.align_for_add(acc, term))
    if acc is None:
        raise ValueError("series has no non-constant terms")
    if abs(coeffs[0]) > 1e-12:
        acc = ctx.add_scalar(acc, coeffs[0])
    return acc


def sigmoid_coefficients(degree: int = 7) -> np.ndarray:
    """Least-squares polynomial fit of the sigmoid on [-6, 6].

    Degree 7 at scale matches HELR's accuracy needs; smaller degrees
    are fine for the toy examples.
    """
    xs = np.linspace(-6, 6, 513)
    ys = 1.0 / (1.0 + np.exp(-xs))
    return np.polynomial.polynomial.polyfit(xs, ys, degree)


def apply_sigmoid(ctx: CkksContext, ct: Ciphertext, degree: int = 3,
                  method: str | None = None) -> Ciphertext:
    """Approximate sigmoid on every slot (consumes ``degree`` levels)."""
    return evaluate_polynomial(ctx, ct, sigmoid_coefficients(degree),
                               method=method)
