"""RNS-CKKS substrate: the FHE scheme FAST accelerates.

This subpackage is a from-scratch, functional implementation of the
RNS variant of the CKKS approximate homomorphic encryption scheme
(Cheon-Han-Kim-Kim-Song), including the two key-switching families the
FAST paper builds on:

* the *hybrid* method (ModUp -> KeyMult -> ModDown with digit size
  ``alpha``), and
* the *KLSS* gadget-decomposition method (Kim-Lee-Seo-Song).

Everything needed to run real encrypted computation lives here:
modular/NTT arithmetic, RNS base machinery, canonical-embedding
encoding, key generation, the homomorphic operations, hoisted
rotations, and a (scaled-down) bootstrapping pipeline.  The analytic
cost models that drive the accelerator study live in
:mod:`repro.ckks.keyswitch.cost`.
"""

from repro.ckks.params import (CkksParams, SET_I, SET_II, set_ii_mini,
                               toy_params)
from repro.ckks.context import CkksContext

__all__ = ["CkksParams", "CkksContext", "SET_I", "SET_II", "set_ii_mini",
           "toy_params"]
