"""RLWE security estimation for the parameter sets (Sec. 6.2).

The paper states that both Set-I and Set-II "achieve the 128-bit
security requirement".  This module checks that claim with the two
standard quick estimators:

* the **Hermite-factor** rule: an attack needs root-Hermite factor
  ``delta`` with ``log2(q) <= n * log2(delta) * 4`` (conservative
  uSVP form), and block size maps to ``delta`` via the
  Gama-Nguyen/Chen asymptotic;
* a lookup against the published **homomorphic-encryption-standard**
  table (Albrecht et al.), which lists the maximum ``log2(Q)`` per
  ring degree for 128-bit security with ternary secrets.

These are estimates, not the lattice-estimator — fine for verifying a
parameter table, not for production deployments.
"""

from __future__ import annotations

import math

from repro.ckks.params import CkksParams

# HE-standard table (ternary secret, classical, 128-bit): max log2(Q*P)
# per log2(N).  From the Homomorphic Encryption Security Standard.
HES_MAX_LOGQ_128 = {
    10: 27,
    11: 54,
    12: 109,
    13: 218,
    14: 438,
    15: 881,
    16: 1772,
    17: 3576,
}


def total_modulus_bits(params: CkksParams) -> int:
    """log2 of the largest modulus the scheme ever works under.

    Security is governed by ``Q_L * P`` (the key-switching modulus):
    every RLWE sample in the system — ciphertexts and evaluation
    keys — lives at or below it.
    """
    q_bits = params.first_prime_bits + params.max_level * params.prime_bits
    p_bits = params.num_special_primes * params.prime_bits
    return q_bits + p_bits


def hermite_security_bits(params: CkksParams) -> float:
    """Security estimate from the root-Hermite-factor rule.

    ``delta = 2^(logq / (4 n))`` is the factor an attacker must reach;
    BKZ block size ``b`` achieves ``delta(b) ~ (b/(2 pi e) *
    (pi b)^(1/b))^(1/(2(b-1)))``; core-SVP cost is ``0.292 b`` bits
    (classical sieving).
    """
    n = params.ring_degree
    logq = total_modulus_bits(params)
    delta = 2 ** (logq / (4.0 * n))
    if delta <= 1.003:
        return 256.0  # beyond the asymptotic regime: comfortably hard
    # Invert delta(b) numerically.
    lo, hi = 50, 2000
    while hi - lo > 1:
        mid = (lo + hi) // 2
        d = (mid / (2 * math.pi * math.e) *
             (math.pi * mid) ** (1.0 / mid)) ** (1.0 / (2 * (mid - 1)))
        if d > delta:
            lo = mid
        else:
            hi = mid
    return 0.292 * hi


def meets_he_standard(params: CkksParams,
                      target_bits: int = 128) -> bool:
    """Check against the published 128-bit table (ternary secrets)."""
    if target_bits != 128:
        raise ValueError("table lookup only covers the 128-bit column")
    logn = params.ring_degree.bit_length() - 1
    if logn not in HES_MAX_LOGQ_128:
        return False
    return total_modulus_bits(params) <= HES_MAX_LOGQ_128[logn]


def security_report(params: CkksParams) -> dict:
    """Both estimates plus the budget actually used."""
    logq = total_modulus_bits(params)
    logn = params.ring_degree.bit_length() - 1
    budget = HES_MAX_LOGQ_128.get(logn)
    return {
        "log2_n": logn,
        "log2_qp": logq,
        "hes_128bit_budget": budget,
        "meets_he_standard_128": meets_he_standard(params),
        "hermite_estimate_bits": hermite_security_bits(params),
    }
