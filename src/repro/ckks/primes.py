"""NTT-friendly prime generation and primitive-root search.

CKKS in RNS form needs chains of primes ``q_i = 1 (mod 2N)`` so every
limb ring ``Z_{q_i}[X]/(X^N + 1)`` supports a negacyclic NTT.  The
generator here finds such primes near a target bit length, mirroring
how FHE libraries pick *scale primes* (close to the scaling factor
``Delta`` so rescaling preserves precision) and *special primes*
(slightly larger, for the hybrid method's auxiliary modulus P and the
KLSS method's wide 60-bit-class modulus T).
"""

from __future__ import annotations

from repro.ckks import modmath


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-class integers."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # This witness set is deterministic for n < 3.3 * 10^24.
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def ntt_primes(count: int, bits: int, ring_degree: int,
               exclude: set[int] | None = None,
               descending_from_top: bool = True) -> list[int]:
    """Find ``count`` primes of ~``bits`` bits with ``p = 1 mod 2N``.

    The search walks candidates of the form ``k * 2N + 1`` downward
    from ``2^bits`` (or upward when ``descending_from_top`` is False),
    skipping anything in ``exclude``.  Distinctness is guaranteed.
    """
    if exclude is None:
        exclude = set()
    m = 2 * ring_degree
    found: list[int] = []
    if descending_from_top:
        k = ((1 << bits) - 1) // m
        step = -1
    else:
        k = ((1 << (bits - 1)) // m) + 1
        step = 1
    while len(found) < count:
        candidate = k * m + 1
        k += step
        if k <= 0:
            raise ValueError(
                f"ran out of {bits}-bit NTT primes for N={ring_degree}")
        if candidate.bit_length() != bits:
            if step == -1 and candidate.bit_length() < bits:
                raise ValueError(
                    f"fewer than {count} {bits}-bit NTT primes exist "
                    f"for N={ring_degree}")
            continue
        if candidate in exclude or not is_prime(candidate):
            continue
        found.append(candidate)
    return found


def primitive_root(modulus: int) -> int:
    """Smallest generator of the multiplicative group mod a prime."""
    order = modulus - 1
    factors = _factorize(order)
    for g in range(2, modulus):
        if all(pow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root found for {modulus}")


def root_of_unity(order: int, modulus: int) -> int:
    """A primitive ``order``-th root of unity modulo a prime.

    Requires ``order`` to divide ``modulus - 1`` (guaranteed for NTT
    primes with ``order`` up to 2N).
    """
    if (modulus - 1) % order != 0:
        raise ValueError(f"{order} does not divide {modulus}-1")
    g = primitive_root(modulus)
    root = pow(g, (modulus - 1) // order, modulus)
    # Sanity: the root must have exact order ``order``.
    if pow(root, order // 2, modulus) == 1:
        raise ValueError("root does not have the requested order")
    return root


def _factorize(n: int) -> set[int]:
    """Prime factors of n (trial division + Pollard rho for big cofactors)."""
    factors: set[int] = set()
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47):
        while n % p == 0:
            factors.add(p)
            n //= p
    if n == 1:
        return factors
    stack = [n]
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors.add(m)
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return factors


def _pollard_rho(n: int) -> int:
    """A nontrivial factor of composite odd n (Brent's cycle variant)."""
    if n % 2 == 0:
        return 2
    from math import gcd
    c = 1
    while True:
        x = y = 2
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = gcd(abs(x - y), n)
        if d != n:
            return d
        c += 1


def inv_mod(value: int, modulus: int) -> int:
    """Re-export of the scalar inverse for convenience."""
    return modmath.inv_mod(value, modulus)
