"""Key-switching: the operation FAST is built to accelerate.

Functional implementations of the hybrid and KLSS methods plus
hoisting, and the analytic modular-operation cost models that drive
Fig. 2, Fig. 3, Fig. 11(b) and the Aether decision tool.
"""

from repro.ckks.keyswitch.hybrid import (KeyMultPlan, get_key_mult_plan,
                                         hybrid_key_switch)
from repro.ckks.keyswitch.klss import klss_key_switch
from repro.ckks.keyswitch.hoisting import (hoisted_rotations,
                                           hoisted_rotations_reference)

__all__ = ["KeyMultPlan", "get_key_mult_plan", "hybrid_key_switch",
           "klss_key_switch", "hoisted_rotations",
           "hoisted_rotations_reference"]
