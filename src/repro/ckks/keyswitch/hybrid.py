"""Hybrid key-switching: ModUp -> KeyMult -> ModDown (Fig. 1a).

The input polynomial (e.g. the ``c1 * c1'`` tensor component, or the
rotated ``c1``) is split into ``beta`` digits of ``alpha`` limbs.
Each digit is extended onto the full ``Q_l * P`` basis (*ModUp*, heavy
in NTTs), multiplied element-wise with its evaluation-key pair
(*KeyMult*), and the accumulated pair is divided by ``P``
(*ModDown*).

The KeyMult stage runs through a cached :class:`KeyMultPlan` — the
software analogue of FAST's KMU, a 3x256 output-stationary systolic
array: the key's digit parts are stacked once into ``(2, d, k, N)``
uint64 tensors, and the per-digit products are *accumulated lazily*
(raw uint64 or 128-bit hi/lo split-limb sums) across all digits
before a single reduction per limb, instead of reducing — and
allocating two ``RnsPoly`` temporaries — per digit.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

import repro.backend as backend_mod
from repro.ckks import modmath, rns
from repro.ckks.keys import KeySwitchKey, hybrid_digit_indices
from repro.ckks.ntt import transform_limbs
from repro.ckks.rns import RnsPoly
from repro.obs.tracer import get_tracer


def digits_to_eval(digits: list[RnsPoly]) -> list[RnsPoly]:
    """Forward-NTT every limb of every digit in one batched call.

    The decomposed digits share one basis, so their limb stacks
    concatenate into a single ``(d * k, N)`` batched transform — one
    stage-vectorised pass instead of ``d`` separate ``to_eval`` calls.
    Digits that do not share a coefficient-form basis fall back to
    per-digit conversion (bit-identical either way).
    """
    if len(digits) <= 1:
        return [d.to_eval() for d in digits]
    moduli = digits[0].moduli
    n = digits[0].n
    if any(d.moduli != moduli or d.form != rns.COEFF or d.n != n
           for d in digits):
        return [d.to_eval() for d in digits]
    flat = [limb for d in digits for limb in d.limbs]
    evaluated = transform_limbs(flat, moduli * len(digits), n)
    k = len(moduli)
    return [RnsPoly(evaluated[j * k:(j + 1) * k], moduli, rns.EVAL)
            for j in range(len(digits))]


def hybrid_decompose(poly: RnsPoly, key: KeySwitchKey,
                     alpha: int) -> list[RnsPoly]:
    """ModUp stage: digits of ``poly`` extended to the key's basis.

    ``poly`` must be in coefficient form over the first
    ``len(key.moduli) - key.aux_count`` primes of the key basis.
    Returns the extended digits in **evaluation** form, ready for
    KeyMult (and reusable across rotations — this is what hoisting
    hoists).
    """
    q_count = len(key.moduli) - key.aux_count
    q_moduli = key.moduli[:q_count]
    p_moduli = key.moduli[q_count:]
    if poly.moduli != q_moduli:
        raise ValueError("input basis does not match the key's Q basis")
    digits = hybrid_digit_indices(q_count, alpha)
    if len(digits) != key.num_digits:
        raise ValueError(
            f"key has {key.num_digits} digits, input needs {len(digits)}")
    extended = rns.mod_up(poly, digits, q_moduli, p_moduli)
    return digits_to_eval(extended)


# -- fused KeyMult (software KMU) -----------------------------------------

class KeyMultPlan:
    """Stacked-tensor KeyMult for one :class:`KeySwitchKey`.

    Built once per key (see :func:`get_key_mult_plan`) and cached on
    the key object.  The key's ``num_digits`` RLWE pairs are stacked
    into two ``(d, k, N)`` uint64 weight tensors (``b`` and ``a``
    halves), and :meth:`accumulate` computes ``sum_j digit_j * w_j``
    with the reduction *deferred across all digits* — the
    output-stationary dataflow of FAST's KMU systolic array.  Two
    accumulation tiers, chosen from the worst-case bit budget
    ``2 * max_bits + ceil(log2 d)``:

    * ``u64`` (budget <= 64): raw wrapping-uint64 products summed
      directly, one ``np.mod`` per limb at the end.  Covers narrow
      (<= 31-bit) moduli at any realistic digit count.
    * ``hilo`` (budget <= 126): exact 128-bit products via
      :func:`repro.ckks.modmath.mul128` accumulated as a carry-tracked
      (hi, lo) split-limb pair, one :func:`~repro.ckks.modmath.
      barrett128` sweep per limb at the end.  Valid through 62-bit
      moduli (the barrett128 range proof caps the accumulator at
      ``2^126``).

    Keys whose moduli exceed the uint64 datapath (or whose digit count
    blows the 126-bit budget) get no plan; ``key_mult_accumulate``
    falls back to the per-digit reference loop for those.
    """

    __slots__ = ("moduli", "num_digits", "n", "tier", "backend", "_w",
                 "_w32", "_q_col", "_r_hi", "_r_lo", "_r_lo32",
                 "_r_hi32", "_kernels", "_arena")

    def __init__(self, key: KeySwitchKey, backend=None):
        self.moduli = key.moduli
        self.num_digits = key.num_digits
        self.n = key.parts[0][0].n
        tier = _kmu_tier(key.moduli, key.num_digits)
        if tier is None:
            raise ValueError("key does not fit the fused KeyMult budgets")
        self.tier = tier
        be = backend_mod.kernel_backend(backend)
        self.backend = be
        k = len(self.moduli)
        self._kernels = [modmath.get_kernel(q, backend=be)
                         for q in self.moduli]
        # The weight tensor is assembled host-side and crosses the
        # host->device boundary exactly once, at plan build.
        w = np.empty((2, self.num_digits, k, self.n), dtype=np.uint64)
        for j, (b_j, a_j) in enumerate(key.parts):
            for half, part in enumerate((b_j, a_j)):
                if part.form != rns.EVAL:
                    raise ValueError("key parts must be in evaluation form")
                for i, limb in enumerate(part.limbs):
                    w[half, j, i] = backend_mod.to_host(limb)
        self._w = be.from_host(w)
        self._q_col = be.from_host(
            np.array(self.moduli, dtype=np.uint64).reshape(-1, 1))
        consts = [modmath.barrett_constants(q) for q in self.moduli]
        self._r_hi = be.from_host(np.array(
            [c[0] for c in consts], dtype=np.uint64).reshape(-1, 1))
        self._r_lo = be.from_host(np.array(
            [c[1] for c in consts], dtype=np.uint64).reshape(-1, 1))
        # The hilo tier runs the split-operand 128-bit kernels: weight
        # and Barrett-ratio tables pre-split once into uint32 halves.
        self._w32 = modmath.split32(self._w) if tier == "hilo" else None
        self._r_lo32 = modmath.split32(self._r_lo)
        self._r_hi32 = modmath.split32(self._r_hi)
        self._arena = backend_mod.WorkspaceArena(be, "kmu")

    def stack(self, decomposed: list[RnsPoly]) -> np.ndarray:
        """Stack decomposed digits into one ``(d, k, N)`` uint64 tensor.

        The tensor is an arena-pooled workspace (reused across calls,
        so the steady state allocates nothing): consume it via
        :meth:`accumulate` before the next :meth:`stack`.
        """
        if len(decomposed) != self.num_digits:
            raise ValueError(
                f"key expects exactly {self.num_digits} digits, "
                f"got {len(decomposed)}")
        k = len(self.moduli)
        out = self._arena.take("stack", (self.num_digits, k, self.n))
        for j, digit in enumerate(decomposed):
            if digit.form != rns.EVAL:
                raise ValueError("decomposed digits must be in eval form")
            if digit.moduli != self.moduli:
                raise ValueError("digit basis does not match the key")
            for i, limb in enumerate(digit.limbs):
                out[j, i] = limb
        return out

    def accumulate(self, stacked: np.ndarray) -> tuple[RnsPoly, RnsPoly]:
        """``(sum_j d_j b_j, sum_j d_j a_j)`` from a stacked digit tensor.

        One lazy pass over all digits per half, a single reduction per
        limb at the end — no per-digit temporaries.  Bit-identical to
        :func:`key_mult_accumulate_reference`.
        """
        d, k, n = self.num_digits, len(self.moduli), self.n
        if stacked.shape != (d, k, n):
            raise ValueError("stacked digit tensor has the wrong shape")
        # One (2, k, N) output block per call — the returned polys own
        # their limbs as views into it; all intermediates are arena
        # scratch, so the warmed steady state allocates only this.
        res = self.backend.empty((2, k, n), np.uint64)
        arena = self._arena
        if self.tier == "u64":
            acc, prod = arena.take_many("u64", 2, (k, n))
            for half in range(2):               # b-half then a-half
                w = self._w[half]
                np.multiply(stacked[0], w[0], out=acc)
                for j in range(1, d):
                    np.multiply(stacked[j], w[j], out=prod)
                    np.add(acc, prod, out=acc)
                np.mod(acc, self._q_col, out=res[half])
        else:
            hi, lo, p_hi, p_lo = arena.take_many("hilo", 4, (k, n))
            s = arena.take_many("scratch", 8, (k, n))
            carry = arena.take("carry", (k, n), dtype=bool)
            w_lo, w_hi = self._w32
            for half in range(2):
                modmath.mul128_into(stacked[0], w_lo[half, 0],
                                    w_hi[half, 0], hi, lo, s[:4])
                for j in range(1, d):
                    modmath.mul128_into(stacked[j], w_lo[half, j],
                                        w_hi[half, j], p_hi, p_lo, s[:4])
                    np.add(lo, p_lo, out=lo)
                    np.less(lo, p_lo, out=carry)    # carry out of lo
                    np.add(hi, p_hi, out=hi)
                    np.add(hi, carry, out=hi)
                modmath.barrett128_into(
                    hi, lo, self._q_col, self._r_hi, self._r_lo32,
                    self._r_hi32, res[half], s, carry)
        out = []
        for acc in res:
            limbs = [acc[i].view(np.int64)
                     if self._kernels[i].dtype == np.int64 else acc[i]
                     for i in range(k)]
            out.append(RnsPoly(limbs, self.moduli, rns.EVAL))
        return out[0], out[1]


def _kmu_tier(moduli, num_digits: int) -> str | None:
    """Accumulation tier for a key's basis, or None when infeasible."""
    if any(modmath.width_path(q) == modmath.OBJECT for q in moduli):
        return None
    bits = max(int(q).bit_length() for q in moduli)
    budget = 2 * bits + max(0, num_digits - 1).bit_length()
    if budget <= 64:
        return "u64"
    if budget <= 126:
        return "hilo"
    return None


_NO_PLAN_YET = object()


def get_key_mult_plan(key: KeySwitchKey,
                      backend=None) -> KeyMultPlan | None:
    """Cached :class:`KeyMultPlan` for ``key`` (built on first use).

    Plans are stored on the key object itself (keys are frozen but
    carry a ``__dict__``), so their lifetime matches the key's — no
    global cache to bound or invalidate.  The per-key store is a dict
    keyed by backend :attr:`~repro.backend.base.ArrayBackend.
    cache_token`, so one key can hold device-resident weight tensors
    for several backends at once.  Returns ``None`` for keys outside
    the fused budgets.  When the observability layer is enabled, bumps
    ``keyswitch.kmu.plan_hit`` / ``plan_miss``.
    """
    be = backend_mod.resolve(backend)
    tracer = get_tracer()
    plans = getattr(key, "_kmu_plans", None)
    if plans is None:
        plans = {}
        object.__setattr__(key, "_kmu_plans", plans)
    cached = plans.get(be.cache_token, _NO_PLAN_YET)
    if cached is not _NO_PLAN_YET:
        if tracer.enabled:
            tracer.count("keyswitch.kmu.plan_hit")
        return cached
    if tracer.enabled:
        tracer.count("keyswitch.kmu.plan_miss")
    plan = (KeyMultPlan(key, backend=be)
            if _kmu_tier(key.moduli, key.num_digits) is not None else None)
    plans[be.cache_token] = plan
    return plan


def key_mult_accumulate_reference(
        decomposed: list[RnsPoly],
        key: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
    """Per-digit KeyMult loop (the bit-exactness oracle).

    The pre-plan implementation: one reduced product and running sum
    per digit, all through :class:`RnsPoly` arithmetic.  Structurally
    independent of :class:`KeyMultPlan`'s lazy accumulation, and the
    only path for keys over object-path moduli.
    """
    acc0 = acc1 = None
    for digit, (b_j, a_j) in zip(decomposed, key.parts):
        term0 = digit * b_j
        term1 = digit * a_j
        acc0 = term0 if acc0 is None else acc0 + term0
        acc1 = term1 if acc1 is None else acc1 + term1
    return acc0, acc1


def key_mult_accumulate(decomposed: list[RnsPoly],
                        key: KeySwitchKey,
                        backend=None) -> tuple[RnsPoly, RnsPoly]:
    """KeyMult stage: ``(sum d_j b_j, sum d_j a_j)`` in eval form.

    Runs the fused :class:`KeyMultPlan` when the key fits the lazy
    budgets, the reference loop otherwise.  Exactly ``key.num_digits``
    digits are required: a shorter prefix would silently drop key
    parts and compute a different (wrong) switch — callers that
    legitimately have fewer digits must pad with zeros explicitly.
    """
    if len(decomposed) != key.num_digits:
        raise ValueError(
            f"key expects exactly {key.num_digits} digits, "
            f"got {len(decomposed)}")
    tracer = get_tracer()
    plan = get_key_mult_plan(key, backend=backend)
    if plan is not None:
        if tracer.enabled:
            tracer.count("keyswitch.kmu.fused")
            tracer.count("keyswitch.kmu.tier." + plan.tier)
        return plan.accumulate(plan.stack(decomposed))
    if tracer.enabled:
        tracer.count("keyswitch.kmu.object_fallback")
    return key_mult_accumulate_reference(decomposed, key)


def mod_down_batch(
        pairs: list[tuple[RnsPoly, RnsPoly]],
        aux_count: int,
        backend=None) -> list[tuple[RnsPoly, RnsPoly]]:
    """ModDown applied to many accumulator pairs over one shared basis.

    ModDown only needs the *auxiliary* limbs in coefficient form (for
    the P -> Q base conversion); the subtraction and the ``P^{-1}``
    scaling are element-wise, so they commute with the NTT.  Every
    half therefore stays in the evaluation domain on its Q limbs: per
    half, only ``aux_count`` limbs ride the inverse transform instead
    of the full ``k``, the conversion result is forward-NTT'd, and
    the difference is taken point-wise in eval form.  Bit-identical
    to :func:`repro.ckks.rns.mod_down` per half — the NTT is an exact
    linear map mod q, so ``NTT((x - conv) * P^-1)`` equals
    ``(NTT(x) - NTT(conv)) * P^-1`` residue for residue.

    All pairs are processed together: one batched transform per
    direction, one matrix conversion and one subtract/scale sweep per
    limb, with the per-half vectors concatenated per modulus.  For a
    hoisted batch of R rotations that is 2 NTT dispatches and
    ``q_count`` element-wise sweeps total, not per rotation — the
    stage-vectorised kernels amortise their per-stage dispatch
    overhead over ``2R`` rows.

    Requires evaluation form and a matrix/down-scale path; callers
    fall back to :func:`mod_down_pair`'s coefficient pipeline
    otherwise (see :func:`_mod_down_batch_ready`).
    """
    if not pairs:
        return []
    accs = [half for pair in pairs for half in pair]
    moduli = accs[0].moduli
    if any(a.moduli != moduli for a in accs):
        raise ValueError("accumulator halves live on different bases")
    if aux_count <= 0:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    q_count = len(moduli) - aux_count
    q_moduli = moduli[:q_count]
    p_moduli = moduli[q_count:]
    n = accs[0].n
    m = len(accs)
    plan = rns.get_bconv_plan(p_moduli, q_moduli, backend=backend)
    if any(a.form != rns.EVAL for a in accs) or not (
            plan.matrix_path and plan.has_down_scale):
        raise ValueError("batch requires eval form and a matrix path")
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("keyswitch.moddown.eval_batch")
        tracer.count("keyswitch.moddown.eval_halves", m)
        tracer.count("rns.bconv.matrix")    # one batched plan.convert
    # Rows grouped by modulus so per-modulus slices stay contiguous:
    # row i * m + h is half h's limb for modulus i.
    aux_coeff = transform_limbs(
        [acc.limbs[q_count + i] for i in range(aux_count) for acc in accs],
        tuple(p for p in p_moduli for _ in range(m)), n, inverse=True,
        backend=backend)
    stacked = [np.concatenate(aux_coeff[i * m:(i + 1) * m])
               for i in range(aux_count)]
    conv = plan.convert(stacked)            # q_count rows of length m*n
    conv_eval = transform_limbs(
        [conv[i][h * n:(h + 1) * n] for i in range(q_count)
         for h in range(m)],
        tuple(q for q in q_moduli for _ in range(m)), n, backend=backend)
    diffs = []
    for i, q in enumerate(q_moduli):
        x = np.concatenate([acc.limbs[i] for acc in accs])
        c = np.concatenate(conv_eval[i * m:(i + 1) * m])
        diffs.append(modmath.sub(x, c, q))
    scaled = plan.down_scale(diffs)         # q_count rows of length m*n
    halves = [RnsPoly([scaled[i][h * n:(h + 1) * n]
                       for i in range(q_count)], q_moduli, rns.EVAL)
              for h in range(m)]
    return [(halves[2 * j], halves[2 * j + 1]) for j in range(len(pairs))]


def _mod_down_batch_ready(acc0: RnsPoly, acc1: RnsPoly,
                          aux_count: int) -> bool:
    """Whether a pair qualifies for the eval-domain batched ModDown."""
    if acc0.form != rns.EVAL or acc1.form != rns.EVAL or aux_count <= 0:
        return False
    q_count = len(acc0.moduli) - aux_count
    plan = rns.get_bconv_plan(acc0.moduli[q_count:], acc0.moduli[:q_count])
    return plan.matrix_path and plan.has_down_scale


def mod_down_pair(acc0: RnsPoly, acc1: RnsPoly,
                  aux_count: int,
                  backend=None) -> tuple[RnsPoly, RnsPoly]:
    """ModDown stage applied to both halves; returns eval form.

    Runs the eval-domain :func:`mod_down_batch` on the single pair
    when the basis qualifies; otherwise (coefficient inputs, object
    moduli, non-invertible aux product) falls back to the coefficient
    pipeline, still sharing one batched transform per direction
    between the halves.  Bit-identical either way.
    """
    if acc0.moduli != acc1.moduli:
        raise ValueError("accumulator halves live on different bases")
    if aux_count <= 0:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    if _mod_down_batch_ready(acc0, acc1, aux_count):
        return mod_down_batch([(acc0, acc1)], aux_count,
                              backend=backend)[0]
    q_count = len(acc0.moduli) - aux_count
    n = acc0.n
    down0 = rns.mod_down(acc0.to_coeff(), q_count)
    down1 = rns.mod_down(acc1.to_coeff(), q_count)
    evaluated = transform_limbs(list(down0.limbs) + list(down1.limbs),
                                down0.moduli + down1.moduli, n,
                                backend=backend)
    return (RnsPoly(evaluated[:q_count], down0.moduli, rns.EVAL),
            RnsPoly(evaluated[q_count:], down1.moduli, rns.EVAL))


FOLD_CACHE_MAXSIZE = 64


@lru_cache(maxsize=FOLD_CACHE_MAXSIZE)
def _fold_scalars(p_moduli: tuple[int, ...],
                  q_moduli: tuple[int, ...]):
    """Hoisted ``P mod q_i`` residues (with Shoup pairs) per Q limb.

    Used by the fused ModDown+Rescale to fold the tensor ``d`` parts
    into the key-switch accumulator as ``acc_i + (P mod q_i) * d_i``.
    Bounded LRU: keys are (P basis, Q basis) pairs, one entry per
    level actually exercised.  The cache is deliberately *not* keyed
    by backend: the entries are python/uint64 scalars, identical on
    every backend, and the consuming kernels wrap them as needed.
    """
    big_p = rns.product(p_moduli)
    out = []
    for q in q_moduli:
        w = big_p % q
        kernel = modmath.get_kernel(q)
        pair = kernel.shoup(w) if kernel.dtype == np.uint64 else None
        out.append((w, pair))
    return tuple(out)


def _fold_aux_into(acc: RnsPoly, d: RnsPoly, q_count: int) -> list:
    """Rows of ``Z = acc + P * d`` on the Q limbs (same form as inputs).

    ``P * d`` vanishes on the P limbs, so only the ``q_count`` Q rows
    change: ``z_i = acc_i + (P mod q_i) * d_i``.
    """
    q_moduli = acc.moduli[:q_count]
    p_moduli = acc.moduli[q_count:]
    scalars = _fold_scalars(p_moduli, q_moduli)
    rows = []
    for i, q in enumerate(q_moduli):
        w, pair = scalars[i]
        if pair is not None:
            term = modmath.get_kernel(q).mul_shoup(d.limbs[i], *pair)
        else:
            term = modmath.mul_scalar(d.limbs[i], w, q)
        rows.append(modmath.add(acc.limbs[i], term, q))
    return rows


def _mod_down_rescale_ready(acc0: RnsPoly, acc1: RnsPoly,
                            aux_count: int, drop: int) -> bool:
    """Whether the fused eval-domain ModDown+Rescale kernel applies."""
    if acc0.form != rns.EVAL or acc1.form != rns.EVAL:
        return False
    if aux_count <= 0 or drop < 1:
        return False
    q_count = len(acc0.moduli) - aux_count
    if q_count - drop < 1:
        return False
    kept = acc0.moduli[:q_count - drop]
    src = acc0.moduli[q_count - drop:]
    plan = rns.get_bconv_plan(src, kept)
    return plan.matrix_path and plan.has_down_scale


def mod_down_rescale_pair(
        acc0: RnsPoly, acc1: RnsPoly,
        d0: RnsPoly, d1: RnsPoly,
        aux_count: int, drop: int = 1,
        backend=None) -> tuple[RnsPoly, RnsPoly]:
    """Fused ModDown + ``drop`` rescales, dividing by ``P * D`` once.

    Implements the optimiser's ``merge_rescale`` rewrite as a real
    kernel.  The sequential pipeline computes
    ``y = d + round(acc / P)`` over Q_k (ModDown: aux INTT ``2p``,
    conversion NTT ``2k``) and then ``round(y / D)`` over
    ``Q_{k-drop}`` (each rescale: full INTT ``2k`` + NTT ``2(k-1)``).
    Here the divisor is applied in one step on the integer form
    ``Z = acc + P * d``: the last ``drop`` Q primes join the auxiliary
    basis (``D`` = their product), one base conversion maps
    ``Z mod (D * P)`` onto the kept primes, and a single
    ``(P * D)^{-1}`` down-scale finishes.  Per drop=1 merge that is
    ``2(p + 1)`` inverse and ``2(k - 1)`` forward limb transforms in
    place of ``2p + 2k`` plus the rescale's ``4k - 2`` — a saving of
    ``4k - 2``, exactly the micro-IR accounting.

    ``round(round(Z/P)/D)`` and ``round(Z/(P*D))`` differ only in
    rounding (each base conversion carries its own sub-unit slack), so
    the fused path is *not* bit-identical to ModDown-then-rescale —
    :func:`mod_down_rescale_reference` is the matching oracle, and the
    functional tests bound the decrypt error against the sequential
    pipeline instead.

    ``acc0``/``acc1`` are the KeyMult accumulators over ``Q_k x P``,
    ``d0``/``d1`` the tensor parts over ``Q_k`` to fold in (the
    ``d + delta`` merge of the relinearisation) — all in evaluation
    form.  Returns both halves over ``Q_{k-drop}`` in evaluation form.
    """
    if acc0.moduli != acc1.moduli:
        raise ValueError("accumulator halves live on different bases")
    q_count = len(acc0.moduli) - aux_count
    q_moduli = acc0.moduli[:q_count]
    if d0.moduli != q_moduli or d1.moduli != q_moduli:
        raise ValueError("tensor parts must live on the Q basis")
    if d0.form != rns.EVAL or d1.form != rns.EVAL:
        raise ValueError("tensor parts must be in evaluation form")
    if not _mod_down_rescale_ready(acc0, acc1, aux_count, drop):
        raise ValueError(
            "fused ModDown+Rescale needs eval form, a matrix path and "
            "1 <= drop < q_count")
    keep = q_count - drop
    kept = acc0.moduli[:keep]
    src = acc0.moduli[keep:]            # dropped q primes, then P
    n = acc0.n
    plan = rns.get_bconv_plan(src, kept, backend=backend)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("keyswitch.moddown.fused_rescale")
        tracer.count("keyswitch.moddown.fused_rescale_drop", drop)
        tracer.count("rns.bconv.matrix")
    z0 = _fold_aux_into(acc0, d0, q_count)
    z1 = _fold_aux_into(acc1, d1, q_count)
    src_count = len(src)                # drop + aux_count
    # Aux rows per half: the dropped Q rows of Z plus the P rows of
    # acc (Z == acc there).  One batched inverse transform, rows
    # grouped by modulus so per-modulus slices stay contiguous.
    aux_rows = []
    for i in range(src_count):
        for z, acc in ((z0, acc0), (z1, acc1)):
            aux_rows.append(z[keep + i] if i < drop
                            else acc.limbs[q_count + (i - drop)])
    aux_coeff = transform_limbs(
        aux_rows, tuple(q for q in src for _ in range(2)), n,
        inverse=True, backend=backend)
    stacked = [np.concatenate(aux_coeff[2 * i:2 * i + 2])
               for i in range(src_count)]
    conv = plan.convert(stacked)        # keep rows of length 2n
    conv_eval = transform_limbs(
        [conv[i][h * n:(h + 1) * n] for i in range(keep)
         for h in range(2)],
        tuple(q for q in kept for _ in range(2)), n, backend=backend)
    diffs = []
    for i, q in enumerate(kept):
        x = np.concatenate((z0[i], z1[i]))
        c = np.concatenate(conv_eval[2 * i:2 * i + 2])
        diffs.append(modmath.sub(x, c, q))
    scaled = plan.down_scale(diffs)
    return (RnsPoly([scaled[i][:n] for i in range(keep)],
                    kept, rns.EVAL),
            RnsPoly([scaled[i][n:] for i in range(keep)],
                    kept, rns.EVAL))


def mod_down_rescale_reference(
        acc: RnsPoly, d: RnsPoly,
        aux_count: int, drop: int = 1) -> RnsPoly:
    """Coefficient-domain oracle for one fused ModDown+Rescale half.

    Evaluates the same fused formula —
    ``(Z - BConv(Z mod (D*P))) * (D*P)^{-1}`` with ``Z = acc + P*d`` —
    through :class:`RnsPoly` arithmetic and the per-pair
    object-oracle conversion, structurally independent of the batched
    kernel.  Bit-identical to :func:`mod_down_rescale_pair` (the NTT
    is an exact linear map per limb).  Inputs and output in
    coefficient form.
    """
    if acc.form != rns.COEFF or d.form != rns.COEFF:
        raise ValueError("reference oracle expects coefficient form")
    q_count = len(acc.moduli) - aux_count
    if not 1 <= drop < q_count:
        raise ValueError("need 1 <= drop < q_count")
    q_moduli = acc.moduli[:q_count]
    p_moduli = acc.moduli[q_count:]
    if d.moduli != q_moduli:
        raise ValueError("tensor part must live on the Q basis")
    scalars = _fold_scalars(p_moduli, q_moduli)
    z_rows = [modmath.add(acc.limbs[i],
                          modmath.mul_scalar(d.limbs[i], scalars[i][0], q),
                          q)
              for i, q in enumerate(q_moduli)]
    keep = q_count - drop
    kept = q_moduli[:keep]
    src = acc.moduli[keep:]
    aux_part = RnsPoly(z_rows[keep:q_count] + list(acc.limbs[q_count:]),
                       src, rns.COEFF)
    approx = rns.base_convert(aux_part, kept)
    out = []
    for i, q in enumerate(kept):
        diff = modmath.sub(z_rows[i], approx.limbs[i], q)
        out.append(modmath.mul_scalar(
            diff, modmath.inv_mod(rns.product(src) % q, q), q))
    return RnsPoly(out, kept, rns.COEFF)


def hybrid_key_switch(poly: RnsPoly, key: KeySwitchKey,
                      alpha: int,
                      backend=None) -> tuple[RnsPoly, RnsPoly]:
    """Full hybrid switch of ``poly`` (coeff or eval form, Q_l basis).

    Returns ``(delta0, delta1)`` in evaluation form over ``Q_l`` such
    that ``delta0 + delta1 * s ~= poly * s_from``.
    """
    get_tracer().count("keyswitch.hybrid")
    coeff = poly.to_coeff()
    decomposed = hybrid_decompose(coeff, key, alpha)
    acc0, acc1 = key_mult_accumulate(decomposed, key, backend=backend)
    return mod_down_pair(acc0, acc1, key.aux_count, backend=backend)
