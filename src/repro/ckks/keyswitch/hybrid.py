"""Hybrid key-switching: ModUp -> KeyMult -> ModDown (Fig. 1a).

The input polynomial (e.g. the ``c1 * c1'`` tensor component, or the
rotated ``c1``) is split into ``beta`` digits of ``alpha`` limbs.
Each digit is extended onto the full ``Q_l * P`` basis (*ModUp*, heavy
in NTTs), multiplied element-wise with its evaluation-key pair
(*KeyMult*), and the accumulated pair is divided by ``P``
(*ModDown*).

The KeyMult stage runs through a cached :class:`KeyMultPlan` — the
software analogue of FAST's KMU, a 3x256 output-stationary systolic
array: the key's digit parts are stacked once into ``(2, d, k, N)``
uint64 tensors, and the per-digit products are *accumulated lazily*
(raw uint64 or 128-bit hi/lo split-limb sums) across all digits
before a single reduction per limb, instead of reducing — and
allocating two ``RnsPoly`` temporaries — per digit.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import modmath, rns
from repro.ckks.keys import KeySwitchKey, hybrid_digit_indices
from repro.ckks.ntt import transform_limbs
from repro.ckks.rns import RnsPoly
from repro.obs.tracer import get_tracer


def digits_to_eval(digits: list[RnsPoly]) -> list[RnsPoly]:
    """Forward-NTT every limb of every digit in one batched call.

    The decomposed digits share one basis, so their limb stacks
    concatenate into a single ``(d * k, N)`` batched transform — one
    stage-vectorised pass instead of ``d`` separate ``to_eval`` calls.
    Digits that do not share a coefficient-form basis fall back to
    per-digit conversion (bit-identical either way).
    """
    if len(digits) <= 1:
        return [d.to_eval() for d in digits]
    moduli = digits[0].moduli
    n = digits[0].n
    if any(d.moduli != moduli or d.form != rns.COEFF or d.n != n
           for d in digits):
        return [d.to_eval() for d in digits]
    flat = [limb for d in digits for limb in d.limbs]
    evaluated = transform_limbs(flat, moduli * len(digits), n)
    k = len(moduli)
    return [RnsPoly(evaluated[j * k:(j + 1) * k], moduli, rns.EVAL)
            for j in range(len(digits))]


def hybrid_decompose(poly: RnsPoly, key: KeySwitchKey,
                     alpha: int) -> list[RnsPoly]:
    """ModUp stage: digits of ``poly`` extended to the key's basis.

    ``poly`` must be in coefficient form over the first
    ``len(key.moduli) - key.aux_count`` primes of the key basis.
    Returns the extended digits in **evaluation** form, ready for
    KeyMult (and reusable across rotations — this is what hoisting
    hoists).
    """
    q_count = len(key.moduli) - key.aux_count
    q_moduli = key.moduli[:q_count]
    p_moduli = key.moduli[q_count:]
    if poly.moduli != q_moduli:
        raise ValueError("input basis does not match the key's Q basis")
    digits = hybrid_digit_indices(q_count, alpha)
    if len(digits) != key.num_digits:
        raise ValueError(
            f"key has {key.num_digits} digits, input needs {len(digits)}")
    extended = rns.mod_up(poly, digits, q_moduli, p_moduli)
    return digits_to_eval(extended)


# -- fused KeyMult (software KMU) -----------------------------------------

class KeyMultPlan:
    """Stacked-tensor KeyMult for one :class:`KeySwitchKey`.

    Built once per key (see :func:`get_key_mult_plan`) and cached on
    the key object.  The key's ``num_digits`` RLWE pairs are stacked
    into two ``(d, k, N)`` uint64 weight tensors (``b`` and ``a``
    halves), and :meth:`accumulate` computes ``sum_j digit_j * w_j``
    with the reduction *deferred across all digits* — the
    output-stationary dataflow of FAST's KMU systolic array.  Two
    accumulation tiers, chosen from the worst-case bit budget
    ``2 * max_bits + ceil(log2 d)``:

    * ``u64`` (budget <= 64): raw wrapping-uint64 products summed
      directly, one ``np.mod`` per limb at the end.  Covers narrow
      (<= 31-bit) moduli at any realistic digit count.
    * ``hilo`` (budget <= 126): exact 128-bit products via
      :func:`repro.ckks.modmath.mul128` accumulated as a carry-tracked
      (hi, lo) split-limb pair, one :func:`~repro.ckks.modmath.
      barrett128` sweep per limb at the end.  Valid through 62-bit
      moduli (the barrett128 range proof caps the accumulator at
      ``2^126``).

    Keys whose moduli exceed the uint64 datapath (or whose digit count
    blows the 126-bit budget) get no plan; ``key_mult_accumulate``
    falls back to the per-digit reference loop for those.
    """

    __slots__ = ("moduli", "num_digits", "n", "tier", "_w",
                 "_q_col", "_r_hi", "_r_lo", "_kernels")

    def __init__(self, key: KeySwitchKey):
        self.moduli = key.moduli
        self.num_digits = key.num_digits
        self.n = key.parts[0][0].n
        tier = _kmu_tier(key.moduli, key.num_digits)
        if tier is None:
            raise ValueError("key does not fit the fused KeyMult budgets")
        self.tier = tier
        k = len(self.moduli)
        self._kernels = [modmath.get_kernel(q) for q in self.moduli]
        self._w = np.empty((2, self.num_digits, k, self.n), dtype=np.uint64)
        for j, (b_j, a_j) in enumerate(key.parts):
            for half, part in enumerate((b_j, a_j)):
                if part.form != rns.EVAL:
                    raise ValueError("key parts must be in evaluation form")
                for i, limb in enumerate(part.limbs):
                    self._w[half, j, i] = limb
        self._q_col = np.array(self.moduli, dtype=np.uint64).reshape(-1, 1)
        consts = [modmath.barrett_constants(q) for q in self.moduli]
        self._r_hi = np.array([c[0] for c in consts],
                              dtype=np.uint64).reshape(-1, 1)
        self._r_lo = np.array([c[1] for c in consts],
                              dtype=np.uint64).reshape(-1, 1)

    def stack(self, decomposed: list[RnsPoly]) -> np.ndarray:
        """Stack decomposed digits into one ``(d, k, N)`` uint64 tensor."""
        if len(decomposed) != self.num_digits:
            raise ValueError(
                f"key expects exactly {self.num_digits} digits, "
                f"got {len(decomposed)}")
        k = len(self.moduli)
        out = np.empty((self.num_digits, k, self.n), dtype=np.uint64)
        for j, digit in enumerate(decomposed):
            if digit.form != rns.EVAL:
                raise ValueError("decomposed digits must be in eval form")
            if digit.moduli != self.moduli:
                raise ValueError("digit basis does not match the key")
            for i, limb in enumerate(digit.limbs):
                out[j, i] = limb
        return out

    def accumulate(self, stacked: np.ndarray) -> tuple[RnsPoly, RnsPoly]:
        """``(sum_j d_j b_j, sum_j d_j a_j)`` from a stacked digit tensor.

        One lazy pass over all digits per half, a single reduction per
        limb at the end — no per-digit temporaries.  Bit-identical to
        :func:`key_mult_accumulate_reference`.
        """
        d, k, n = self.num_digits, len(self.moduli), self.n
        if stacked.shape != (d, k, n):
            raise ValueError("stacked digit tensor has the wrong shape")
        halves = []
        for w in self._w:                       # b-half then a-half
            if self.tier == "u64":
                acc = stacked[0] * w[0]
                for j in range(1, d):
                    acc += stacked[j] * w[j]
                halves.append(np.mod(acc, self._q_col))
            else:
                hi, lo = modmath.mul128(stacked[0], w[0])
                for j in range(1, d):
                    p_hi, p_lo = modmath.mul128(stacked[j], w[j])
                    lo = lo + p_lo
                    hi = hi + p_hi + (lo < p_lo)    # carry out of lo
                halves.append(modmath.barrett128(
                    hi, lo, self._q_col, self._r_hi, self._r_lo))
        out = []
        for acc in halves:
            limbs = [acc[i].astype(np.int64)
                     if self._kernels[i].dtype == np.int64 else acc[i]
                     for i in range(k)]
            out.append(RnsPoly(limbs, self.moduli, rns.EVAL))
        return out[0], out[1]


def _kmu_tier(moduli, num_digits: int) -> str | None:
    """Accumulation tier for a key's basis, or None when infeasible."""
    if any(modmath.width_path(q) == modmath.OBJECT for q in moduli):
        return None
    bits = max(int(q).bit_length() for q in moduli)
    budget = 2 * bits + max(0, num_digits - 1).bit_length()
    if budget <= 64:
        return "u64"
    if budget <= 126:
        return "hilo"
    return None


_NO_PLAN_YET = object()


def get_key_mult_plan(key: KeySwitchKey) -> KeyMultPlan | None:
    """Cached :class:`KeyMultPlan` for ``key`` (built on first use).

    The plan is stored on the key object itself (keys are frozen but
    carry a ``__dict__``), so its lifetime matches the key's — no
    global cache to bound or invalidate.  Returns ``None`` for keys
    outside the fused budgets.  When the observability layer is
    enabled, bumps ``keyswitch.kmu.plan_hit`` / ``plan_miss``.
    """
    tracer = get_tracer()
    cached = getattr(key, "_kmu_plan", _NO_PLAN_YET)
    if cached is not _NO_PLAN_YET:
        if tracer.enabled:
            tracer.count("keyswitch.kmu.plan_hit")
        return cached
    if tracer.enabled:
        tracer.count("keyswitch.kmu.plan_miss")
    plan = (KeyMultPlan(key)
            if _kmu_tier(key.moduli, key.num_digits) is not None else None)
    object.__setattr__(key, "_kmu_plan", plan)
    return plan


def key_mult_accumulate_reference(
        decomposed: list[RnsPoly],
        key: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
    """Per-digit KeyMult loop (the bit-exactness oracle).

    The pre-plan implementation: one reduced product and running sum
    per digit, all through :class:`RnsPoly` arithmetic.  Structurally
    independent of :class:`KeyMultPlan`'s lazy accumulation, and the
    only path for keys over object-path moduli.
    """
    acc0 = acc1 = None
    for digit, (b_j, a_j) in zip(decomposed, key.parts):
        term0 = digit * b_j
        term1 = digit * a_j
        acc0 = term0 if acc0 is None else acc0 + term0
        acc1 = term1 if acc1 is None else acc1 + term1
    return acc0, acc1


def key_mult_accumulate(decomposed: list[RnsPoly],
                        key: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
    """KeyMult stage: ``(sum d_j b_j, sum d_j a_j)`` in eval form.

    Runs the fused :class:`KeyMultPlan` when the key fits the lazy
    budgets, the reference loop otherwise.  Exactly ``key.num_digits``
    digits are required: a shorter prefix would silently drop key
    parts and compute a different (wrong) switch — callers that
    legitimately have fewer digits must pad with zeros explicitly.
    """
    if len(decomposed) != key.num_digits:
        raise ValueError(
            f"key expects exactly {key.num_digits} digits, "
            f"got {len(decomposed)}")
    tracer = get_tracer()
    plan = get_key_mult_plan(key)
    if plan is not None:
        if tracer.enabled:
            tracer.count("keyswitch.kmu.fused")
            tracer.count("keyswitch.kmu.tier." + plan.tier)
        return plan.accumulate(plan.stack(decomposed))
    if tracer.enabled:
        tracer.count("keyswitch.kmu.object_fallback")
    return key_mult_accumulate_reference(decomposed, key)


def mod_down_batch(
        pairs: list[tuple[RnsPoly, RnsPoly]],
        aux_count: int) -> list[tuple[RnsPoly, RnsPoly]]:
    """ModDown applied to many accumulator pairs over one shared basis.

    ModDown only needs the *auxiliary* limbs in coefficient form (for
    the P -> Q base conversion); the subtraction and the ``P^{-1}``
    scaling are element-wise, so they commute with the NTT.  Every
    half therefore stays in the evaluation domain on its Q limbs: per
    half, only ``aux_count`` limbs ride the inverse transform instead
    of the full ``k``, the conversion result is forward-NTT'd, and
    the difference is taken point-wise in eval form.  Bit-identical
    to :func:`repro.ckks.rns.mod_down` per half — the NTT is an exact
    linear map mod q, so ``NTT((x - conv) * P^-1)`` equals
    ``(NTT(x) - NTT(conv)) * P^-1`` residue for residue.

    All pairs are processed together: one batched transform per
    direction, one matrix conversion and one subtract/scale sweep per
    limb, with the per-half vectors concatenated per modulus.  For a
    hoisted batch of R rotations that is 2 NTT dispatches and
    ``q_count`` element-wise sweeps total, not per rotation — the
    stage-vectorised kernels amortise their per-stage dispatch
    overhead over ``2R`` rows.

    Requires evaluation form and a matrix/down-scale path; callers
    fall back to :func:`mod_down_pair`'s coefficient pipeline
    otherwise (see :func:`_mod_down_batch_ready`).
    """
    if not pairs:
        return []
    accs = [half for pair in pairs for half in pair]
    moduli = accs[0].moduli
    if any(a.moduli != moduli for a in accs):
        raise ValueError("accumulator halves live on different bases")
    if aux_count <= 0:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    q_count = len(moduli) - aux_count
    q_moduli = moduli[:q_count]
    p_moduli = moduli[q_count:]
    n = accs[0].n
    m = len(accs)
    plan = rns.get_bconv_plan(p_moduli, q_moduli)
    if any(a.form != rns.EVAL for a in accs) or not (
            plan.matrix_path and plan.has_down_scale):
        raise ValueError("batch requires eval form and a matrix path")
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("keyswitch.moddown.eval_batch")
        tracer.count("keyswitch.moddown.eval_halves", m)
        tracer.count("rns.bconv.matrix")    # one batched plan.convert
    # Rows grouped by modulus so per-modulus slices stay contiguous:
    # row i * m + h is half h's limb for modulus i.
    aux_coeff = transform_limbs(
        [acc.limbs[q_count + i] for i in range(aux_count) for acc in accs],
        tuple(p for p in p_moduli for _ in range(m)), n, inverse=True)
    stacked = [np.concatenate(aux_coeff[i * m:(i + 1) * m])
               for i in range(aux_count)]
    conv = plan.convert(stacked)            # q_count rows of length m*n
    conv_eval = transform_limbs(
        [conv[i][h * n:(h + 1) * n] for i in range(q_count)
         for h in range(m)],
        tuple(q for q in q_moduli for _ in range(m)), n)
    diffs = []
    for i, q in enumerate(q_moduli):
        x = np.concatenate([acc.limbs[i] for acc in accs])
        c = np.concatenate(conv_eval[i * m:(i + 1) * m])
        diffs.append(modmath.sub(x, c, q))
    scaled = plan.down_scale(diffs)         # q_count rows of length m*n
    halves = [RnsPoly([scaled[i][h * n:(h + 1) * n]
                       for i in range(q_count)], q_moduli, rns.EVAL)
              for h in range(m)]
    return [(halves[2 * j], halves[2 * j + 1]) for j in range(len(pairs))]


def _mod_down_batch_ready(acc0: RnsPoly, acc1: RnsPoly,
                          aux_count: int) -> bool:
    """Whether a pair qualifies for the eval-domain batched ModDown."""
    if acc0.form != rns.EVAL or acc1.form != rns.EVAL or aux_count <= 0:
        return False
    q_count = len(acc0.moduli) - aux_count
    plan = rns.get_bconv_plan(acc0.moduli[q_count:], acc0.moduli[:q_count])
    return plan.matrix_path and plan.has_down_scale


def mod_down_pair(acc0: RnsPoly, acc1: RnsPoly,
                  aux_count: int) -> tuple[RnsPoly, RnsPoly]:
    """ModDown stage applied to both halves; returns eval form.

    Runs the eval-domain :func:`mod_down_batch` on the single pair
    when the basis qualifies; otherwise (coefficient inputs, object
    moduli, non-invertible aux product) falls back to the coefficient
    pipeline, still sharing one batched transform per direction
    between the halves.  Bit-identical either way.
    """
    if acc0.moduli != acc1.moduli:
        raise ValueError("accumulator halves live on different bases")
    if aux_count <= 0:
        raise ValueError("nothing to mod-down: no auxiliary limbs")
    if _mod_down_batch_ready(acc0, acc1, aux_count):
        return mod_down_batch([(acc0, acc1)], aux_count)[0]
    q_count = len(acc0.moduli) - aux_count
    n = acc0.n
    down0 = rns.mod_down(acc0.to_coeff(), q_count)
    down1 = rns.mod_down(acc1.to_coeff(), q_count)
    evaluated = transform_limbs(list(down0.limbs) + list(down1.limbs),
                                down0.moduli + down1.moduli, n)
    return (RnsPoly(evaluated[:q_count], down0.moduli, rns.EVAL),
            RnsPoly(evaluated[q_count:], down1.moduli, rns.EVAL))


def hybrid_key_switch(poly: RnsPoly, key: KeySwitchKey,
                      alpha: int) -> tuple[RnsPoly, RnsPoly]:
    """Full hybrid switch of ``poly`` (coeff or eval form, Q_l basis).

    Returns ``(delta0, delta1)`` in evaluation form over ``Q_l`` such
    that ``delta0 + delta1 * s ~= poly * s_from``.
    """
    get_tracer().count("keyswitch.hybrid")
    coeff = poly.to_coeff()
    decomposed = hybrid_decompose(coeff, key, alpha)
    acc0, acc1 = key_mult_accumulate(decomposed, key)
    return mod_down_pair(acc0, acc1, key.aux_count)
