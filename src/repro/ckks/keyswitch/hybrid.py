"""Hybrid key-switching: ModUp -> KeyMult -> ModDown (Fig. 1a).

The input polynomial (e.g. the ``c1 * c1'`` tensor component, or the
rotated ``c1``) is split into ``beta`` digits of ``alpha`` limbs.
Each digit is extended onto the full ``Q_l * P`` basis (*ModUp*, heavy
in NTTs), multiplied element-wise with its evaluation-key pair
(*KeyMult*), and the accumulated pair is divided by ``P``
(*ModDown*).
"""

from __future__ import annotations

from repro.ckks import rns
from repro.ckks.keys import KeySwitchKey, hybrid_digit_indices
from repro.ckks.rns import RnsPoly
from repro.obs.tracer import get_tracer


def hybrid_decompose(poly: RnsPoly, key: KeySwitchKey,
                     alpha: int) -> list[RnsPoly]:
    """ModUp stage: digits of ``poly`` extended to the key's basis.

    ``poly`` must be in coefficient form over the first
    ``len(key.moduli) - key.aux_count`` primes of the key basis.
    Returns the extended digits in **evaluation** form, ready for
    KeyMult (and reusable across rotations — this is what hoisting
    hoists).
    """
    q_count = len(key.moduli) - key.aux_count
    q_moduli = key.moduli[:q_count]
    p_moduli = key.moduli[q_count:]
    if poly.moduli != q_moduli:
        raise ValueError("input basis does not match the key's Q basis")
    digits = hybrid_digit_indices(q_count, alpha)
    if len(digits) != key.num_digits:
        raise ValueError(
            f"key has {key.num_digits} digits, input needs {len(digits)}")
    extended = rns.mod_up(poly, digits, q_moduli, p_moduli)
    return [d.to_eval() for d in extended]


def key_mult_accumulate(decomposed: list[RnsPoly],
                        key: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
    """KeyMult stage: ``(sum d_j b_j, sum d_j a_j)`` in eval form."""
    if len(decomposed) > key.num_digits:
        raise ValueError("more digits than key parts")
    acc0 = acc1 = None
    for digit, (b_j, a_j) in zip(decomposed, key.parts):
        term0 = digit * b_j
        term1 = digit * a_j
        acc0 = term0 if acc0 is None else acc0 + term0
        acc1 = term1 if acc1 is None else acc1 + term1
    return acc0, acc1


def mod_down_pair(acc0: RnsPoly, acc1: RnsPoly,
                  aux_count: int) -> tuple[RnsPoly, RnsPoly]:
    """ModDown stage applied to both halves; returns eval form."""
    q_count = len(acc0.moduli) - aux_count
    out0 = rns.mod_down(acc0.to_coeff(), q_count).to_eval()
    out1 = rns.mod_down(acc1.to_coeff(), q_count).to_eval()
    return out0, out1


def hybrid_key_switch(poly: RnsPoly, key: KeySwitchKey,
                      alpha: int) -> tuple[RnsPoly, RnsPoly]:
    """Full hybrid switch of ``poly`` (coeff or eval form, Q_l basis).

    Returns ``(delta0, delta1)`` in evaluation form over ``Q_l`` such
    that ``delta0 + delta1 * s ~= poly * s_from``.
    """
    get_tracer().count("keyswitch.hybrid")
    coeff = poly.to_coeff()
    decomposed = hybrid_decompose(coeff, key, alpha)
    acc0, acc1 = key_mult_accumulate(decomposed, key)
    return mod_down_pair(acc0, acc1, key.aux_count)
