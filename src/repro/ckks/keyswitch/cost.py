"""Analytic modular-operation cost models for key-switching.

These closed-form counts drive the paper's motivational study (Fig. 2:
hybrid vs KLSS across levels; Fig. 3a: hoisting; Fig. 3b: working-set
sizes), the bootstrap workload accounting (Fig. 11b) and — most
importantly — the Aether decision tool, which compares exactly these
quantities against evaluation-key transfer latencies.

Conventions
-----------
* Costs count **modular multiplications** (the paper's "modular
  operations"), broken down by kernel: ``ntt``, ``bconv``,
  ``keymult`` and ``elementwise`` (scaling/rescale-style muls).
* A ciphertext at level ``l`` has ``k = l + 1`` limbs.
* Wide (60-bit-class) operations count as one modular operation each;
  the *hardware* cost difference between 36-bit and 60-bit operations
  is the TBM's job and is modelled by the simulator's throughput,
  not here (this matches the paper, whose Fig. 2 counts operations).

Reconstruction notes (the KLSS internals are not fully specified in
the FAST paper):
* One input group of ``alpha`` narrow limbs plus the ``alpha~`` noise
  margin occupies ``alpha' = ceil((alpha + alpha~) * w / v)`` wide
  limbs — "positively correlated with alpha and alpha~, negatively
  with v" as the paper states.
* KeyMult is the (1 x beta) x (beta x beta~) product where ``beta~ =
  ceil((k + alpha~) / alpha~)`` output groups each hold elements of
  ``alpha'`` wide limbs (Sec. 5.4) — KLSS *increases* KeyMult work
  relative to hybrid, exactly as Sec. 3.1 observes, while slashing
  NTT work; the accumulated output data compacts to
  ``ceil((k + alpha~) * w / v)`` wide limbs before recovery.
* Recovery of narrow limbs from wide limbs is *local* (each ``v``-bit
  word splits across ``ceil(v/w)`` narrow words), not a full base
  conversion — this is what lets KLSS cut BConv work and is why
  ``v < 2w`` is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ckks.params import CkksParams

# -- calibration constants -------------------------------------------------
# Packed bytes per coefficient word.  Chosen so the paper's Fig. 3b
# anchors hold: a level-35 ciphertext is 19.7 MB (paper) and we get
# 2 * 36 limbs * 2^16 * 4.375 B = 19.7 MB.
NARROW_WORD_BYTES = 4.375   # 35-bit packed storage of 36-bit words
WIDE_WORD_BYTES = 7.5       # 60-bit words, packed (working data)
KLSS_KEY_WORD_BYTES = 8.0   # 60-bit key words stored 64-bit aligned

# Wide (60-bit) and narrow (36-bit) modular operations each count as
# one operation, exactly as the paper's Fig. 2 counts them.  With the
# structural KLSS shapes above this reproduces the paper's anchors
# with no fudge factor: KLSS is 15.1% cheaper over l in [25,35]
# (paper: 15.2%) and hybrid 20.4% cheaper over l in [5,12]
# (paper: 23.5%).
WIDE_OP_WEIGHT = 1.0
MB = float(1 << 20)


@dataclass
class KernelOps:
    """Modular-multiplication counts broken down by hardware kernel."""

    ntt: float = 0.0
    bconv: float = 0.0
    keymult: float = 0.0
    elementwise: float = 0.0

    @property
    def total(self) -> float:
        return self.ntt + self.bconv + self.keymult + self.elementwise

    def __add__(self, other: "KernelOps") -> "KernelOps":
        return KernelOps(self.ntt + other.ntt, self.bconv + other.bconv,
                         self.keymult + other.keymult,
                         self.elementwise + other.elementwise)

    def scaled(self, factor: float) -> "KernelOps":
        return KernelOps(self.ntt * factor, self.bconv * factor,
                         self.keymult * factor, self.elementwise * factor)

    def as_dict(self) -> dict[str, float]:
        return {"ntt": self.ntt, "bconv": self.bconv,
                "keymult": self.keymult, "elementwise": self.elementwise,
                "total": self.total}


def ntt_ops(ring_degree: int) -> float:
    """Modmuls for one limb's (I)NTT: butterflies + merged twisting."""
    n = ring_degree
    return (n / 2) * (n.bit_length() - 1) + n


def bconv_ops(ring_degree: int, a_in: int, b_out: int) -> float:
    """Modmuls for a base conversion ``a_in -> b_out`` limbs.

    ``N * a_in`` scaling multiplications (by ``(Q/q_i)^{-1}``) plus
    the ``N * a_in * b_out`` MAC matrix product (BConvU's job).
    """
    return ring_degree * a_in * (1 + b_out)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


# -- hybrid method ---------------------------------------------------------

@dataclass
class HybridShape:
    """Derived size parameters of a hybrid switch at one level."""

    k: int          # ciphertext limbs (level + 1)
    alpha: int      # limbs per digit
    beta: int       # number of digits
    p: int          # special-modulus limbs
    digit_sizes: list[int] = field(default_factory=list)

    @classmethod
    def at_level(cls, params: CkksParams, level: int) -> "HybridShape":
        k = level + 1
        alpha = params.alpha
        beta = _ceil_div(k, alpha)
        sizes = [min(alpha, k - j * alpha) for j in range(beta)]
        # Level-aware framework (paper ref [17]): the auxiliary modulus
        # P only needs to dominate the largest digit, so at low levels
        # fewer special limbs participate.
        p_eff = min(params.num_special_primes, max(sizes))
        return cls(k=k, alpha=alpha, beta=beta, p=p_eff, digit_sizes=sizes)


def hybrid_decompose_ops(params: CkksParams, level: int) -> KernelOps:
    """ModUp stage (hoistable): input INTT + per-digit BConv + NTT."""
    shape = HybridShape.at_level(params, level)
    n = params.ring_degree
    ops = KernelOps()
    ops.ntt += shape.k * ntt_ops(n)                      # input INTT
    for size in shape.digit_sizes:
        ext = shape.k + shape.p - size
        ops.bconv += bconv_ops(n, size, ext)
        ops.ntt += ext * ntt_ops(n)                      # extend to eval
    return ops


def hybrid_keymult_ops(params: CkksParams, level: int) -> KernelOps:
    """KeyMult stage: 2 output polys x beta digits x (k+p) limbs."""
    shape = HybridShape.at_level(params, level)
    n = params.ring_degree
    return KernelOps(keymult=2.0 * shape.beta * (shape.k + shape.p) * n)


def hybrid_moddown_ops(params: CkksParams, level: int) -> KernelOps:
    """ModDown stage for both polys: INTT(p) + BConv(p->k) + NTT(k)."""
    shape = HybridShape.at_level(params, level)
    n = params.ring_degree
    ops = KernelOps()
    ops.ntt += 2 * (shape.p + shape.k) * ntt_ops(n)
    ops.bconv += 2 * bconv_ops(n, shape.p, shape.k)
    ops.elementwise += 2.0 * shape.k * n                 # * P^{-1} scaling
    return ops


def hybrid_keyswitch_ops(params: CkksParams, level: int,
                         hoisting: int = 1) -> KernelOps:
    """Full hybrid key-switch cost for ``hoisting`` fused rotations.

    ``hoisting = 1`` is a plain HMult/HRot switch; ``hoisting = h``
    shares one decomposition across ``h`` rotations (Sec. 2.2.3).
    """
    shared = hybrid_decompose_ops(params, level)
    per_rot = hybrid_keymult_ops(params, level) + \
        hybrid_moddown_ops(params, level)
    return shared + per_rot.scaled(hoisting)


# -- KLSS method ------------------------------------------------------------

@dataclass
class KlssShape:
    """Derived size parameters of a KLSS switch at one level."""

    k: int            # narrow ciphertext limbs
    alpha: int        # narrow limbs per input group
    alpha_tilde: int  # noise-margin narrow limbs
    beta: int         # input groups
    alpha_prime: int  # wide limbs per group (incl. margin)
    beta_tilde_groups: int  # output key groups used in KeyMult
    beta_tilde: int   # compact wide-limb count of the output data
    narrow_bits: int
    wide_bits: int

    @classmethod
    def at_level(cls, params: CkksParams, level: int) -> "KlssShape":
        k = level + 1
        alpha = params.klss_alpha or params.alpha
        alpha_tilde = params.klss_alpha_tilde or params.num_special_primes
        w = params.prime_bits
        v = params.klss_word_bits
        beta = _ceil_div(k, alpha)
        alpha_prime = _ceil_div((alpha + alpha_tilde) * w, v)
        beta_tilde_groups = _ceil_div(k + alpha_tilde, alpha_tilde)
        beta_tilde = _ceil_div((k + alpha_tilde) * w, v)
        return cls(k=k, alpha=alpha, alpha_tilde=alpha_tilde, beta=beta,
                   alpha_prime=alpha_prime,
                   beta_tilde_groups=beta_tilde_groups,
                   beta_tilde=beta_tilde,
                   narrow_bits=w, wide_bits=v)

    @property
    def wide_per_narrow(self) -> int:
        """Narrow words covered by one wide word on recovery."""
        return _ceil_div(self.wide_bits, self.narrow_bits)


def klss_decompose_ops(params: CkksParams, level: int) -> KernelOps:
    """Double decomposition (hoistable): INTT + group lift + wide NTT."""
    shape = KlssShape.at_level(params, level)
    n = params.ring_degree
    ops = KernelOps()
    ops.ntt += shape.k * ntt_ops(n)                       # input INTT
    for j in range(shape.beta):
        size = min(shape.alpha, shape.k - j * shape.alpha)
        ops.bconv += WIDE_OP_WEIGHT * bconv_ops(n, size, shape.alpha_prime)
        ops.ntt += WIDE_OP_WEIGHT * shape.alpha_prime * ntt_ops(n)
    return ops


def klss_keymult_ops(params: CkksParams, level: int) -> KernelOps:
    """Vector-matrix KeyMult: (1 x beta) x (beta x beta~ groups),
    each key element carrying alpha' wide limbs (Sec. 5.4)."""
    shape = KlssShape.at_level(params, level)
    n = params.ring_degree
    return KernelOps(
        keymult=WIDE_OP_WEIGHT * 2.0 * shape.beta *
        shape.beta_tilde_groups * shape.alpha_prime * n)


def klss_recover_ops(params: CkksParams, level: int) -> KernelOps:
    """Recover Limbs + ModDown: wide INTT, local split, BConv, NTT."""
    shape = KlssShape.at_level(params, level)
    n = params.ring_degree
    ops = KernelOps()
    # Wide INTT of the accumulated pair.
    ops.ntt += WIDE_OP_WEIGHT * 2 * shape.beta_tilde * ntt_ops(n)
    # Local wide -> narrow split (per wide word, its covering narrows).
    ops.elementwise += WIDE_OP_WEIGHT * 2.0 * shape.beta_tilde * \
        shape.wide_per_narrow * n
    # ModDown over the narrow basis: BConv(alpha~ -> k) + scaling + NTT.
    ops.bconv += 2 * bconv_ops(n, shape.alpha_tilde, shape.k)
    ops.elementwise += 2.0 * shape.k * n
    ops.ntt += 2 * shape.k * ntt_ops(n)
    return ops


def klss_decompose_split(params: CkksParams,
                         level: int) -> tuple[KernelOps, KernelOps]:
    """(narrow, wide) split of the decompose stage for the hardware
    model: the input INTT runs narrow; group lift + wide NTTs wide."""
    shape = KlssShape.at_level(params, level)
    n = params.ring_degree
    narrow = KernelOps(ntt=shape.k * ntt_ops(n))
    wide = klss_decompose_ops(params, level) + narrow.scaled(-1.0)
    return narrow, wide


def klss_recover_split(params: CkksParams,
                       level: int) -> tuple[KernelOps, KernelOps]:
    """(narrow, wide) split of recover+ModDown: the wide INTT and the
    local split run wide; the ModDown BConv/scale/NTT run narrow."""
    shape = KlssShape.at_level(params, level)
    n = params.ring_degree
    wide = KernelOps(
        ntt=WIDE_OP_WEIGHT * 2 * shape.beta_tilde * ntt_ops(n),
        elementwise=WIDE_OP_WEIGHT * 2.0 * shape.beta_tilde *
        shape.wide_per_narrow * n)
    narrow = klss_recover_ops(params, level) + wide.scaled(-1.0)
    return narrow, wide


def klss_keyswitch_ops(params: CkksParams, level: int,
                       hoisting: int = 1) -> KernelOps:
    """Full KLSS key-switch cost for ``hoisting`` fused rotations."""
    shared = klss_decompose_ops(params, level)
    per_rot = klss_keymult_ops(params, level) + \
        klss_recover_ops(params, level)
    return shared + per_rot.scaled(hoisting)


# -- dispatch ----------------------------------------------------------------

def keyswitch_ops(method: str, params: CkksParams, level: int,
                  hoisting: int = 1) -> KernelOps:
    """Cost of one key-switch under ``method`` ('hybrid' or 'klss')."""
    if method == "hybrid":
        return hybrid_keyswitch_ops(params, level, hoisting)
    if method == "klss":
        return klss_keyswitch_ops(params, level, hoisting)
    raise ValueError(f"unknown key-switching method {method!r}")


def quantitative_line(hybrid_params: CkksParams, klss_params: CkksParams,
                      level: int, hoisting: int = 1) -> float:
    """The paper's 'Quantitative Line': hybrid_ops / KLSS_ops.

    Values above 1 mean KLSS is the more efficient method at this
    level (Fig. 2a right axis).
    """
    hyb = hybrid_keyswitch_ops(hybrid_params, level, hoisting).total
    kls = klss_keyswitch_ops(klss_params, level, hoisting).total
    return hyb / kls


# -- measured kernel costs (calibration injection) ---------------------------

@dataclass(frozen=True)
class MeasuredKernelCosts:
    """Micro-measured seconds per modular operation, per kernel class.

    Produced by :func:`repro.bench.calibrate.calibrate_kernel_costs`
    (``python -m repro bench --calibrate``) from timed runs of the
    *actual* software kernels — batched NTT stages, the BConv matrix
    path, the fused KeyMult plan and raw element-wise modmuls — and
    injected here to turn the analytic :class:`KernelOps` counts into
    wall-clock estimates.  Keeping the counts and the unit costs
    separate means the Fig. 2 study can be re-pinned on measured
    numbers without touching the closed-form models.
    """

    ntt: float          # seconds per NTT-butterfly modmul
    bconv: float        # seconds per BConv MAC modmul
    keymult: float      # seconds per KeyMult modmul
    elementwise: float  # seconds per element-wise modmul
    meta: tuple = ()    # provenance key-value pairs, e.g. ring degree

    def seconds(self, ops: KernelOps) -> float:
        """Wall-clock estimate for one analytic op count."""
        return (ops.ntt * self.ntt + ops.bconv * self.bconv
                + ops.keymult * self.keymult
                + ops.elementwise * self.elementwise)

    def as_dict(self) -> dict:
        return {"ntt": self.ntt, "bconv": self.bconv,
                "keymult": self.keymult,
                "elementwise": self.elementwise,
                "meta": dict(self.meta)}

    @classmethod
    def from_dict(cls, data: dict) -> "MeasuredKernelCosts":
        return cls(ntt=float(data["ntt"]), bconv=float(data["bconv"]),
                   keymult=float(data["keymult"]),
                   elementwise=float(data["elementwise"]),
                   meta=tuple(sorted(dict(data.get("meta", {})).items())))


def keyswitch_seconds(method: str, params: CkksParams, level: int,
                      costs: MeasuredKernelCosts,
                      hoisting: int = 1) -> float:
    """Measured-cost estimate of one key-switch in seconds."""
    return costs.seconds(keyswitch_ops(method, params, level, hoisting))


def measured_quantitative_line(hybrid_params: CkksParams,
                               klss_params: CkksParams, level: int,
                               costs: MeasuredKernelCosts,
                               hoisting: int = 1) -> float:
    """Fig. 2's hybrid/KLSS ratio re-pinned on measured kernel costs.

    The analytic line weights every modular operation equally; with
    measured per-kernel unit costs the ratio shifts wherever the NTT
    and BConv kernels run at different achieved rates.
    """
    hyb = keyswitch_seconds("hybrid", hybrid_params, level, costs,
                            hoisting)
    kls = keyswitch_seconds("klss", klss_params, level, costs, hoisting)
    return hyb / kls


def crossover_level(hybrid_params: CkksParams, klss_params: CkksParams,
                    costs: MeasuredKernelCosts | None = None,
                    hoisting: int = 1,
                    max_level: int | None = None) -> int | None:
    """Lowest level at which KLSS beats hybrid (Fig. 2 crossover).

    With ``costs`` the comparison uses measured seconds; without, the
    analytic operation counts.  Returns ``None`` when hybrid wins at
    every level up to ``max_level``.
    """
    top = max_level if max_level is not None else \
        min(hybrid_params.max_level, klss_params.max_level)
    for level in range(1, top + 1):
        if costs is not None:
            ratio = measured_quantitative_line(
                hybrid_params, klss_params, level, costs, hoisting)
        else:
            ratio = quantitative_line(hybrid_params, klss_params, level,
                                      hoisting)
        if ratio > 1.0:
            return level
    return None


# -- working-set / key sizes (Fig. 3b) ---------------------------------------

def ciphertext_bytes(params: CkksParams, level: int) -> float:
    """Size of one ciphertext at ``level`` (packed words)."""
    k = level + 1
    return 2.0 * k * params.ring_degree * NARROW_WORD_BYTES


def hybrid_evk_bytes(params: CkksParams, level: int) -> float:
    """One hybrid evaluation key: beta RLWE pairs over Q_l x P."""
    shape = HybridShape.at_level(params, level)
    limbs = shape.k + shape.p
    return 2.0 * shape.beta * limbs * params.ring_degree * NARROW_WORD_BYTES


def klss_evk_bytes(params: CkksParams, level: int) -> float:
    """One KLSS evaluation key: the beta x beta~-group matrix of
    RLWE pairs whose elements carry ``alpha'`` wide limbs each.

    With Set-II at level 35 this yields ~283 MB against the paper's
    295.3 MB anchor (within 5%).
    """
    shape = KlssShape.at_level(params, level)
    # Stored form is compact: the output data limbs plus one group
    # margin per row; KeyMult compute engages the redundant
    # per-group representation (beta~ groups x alpha' limbs).
    wide_limbs = shape.beta_tilde + shape.alpha_prime
    return 2.0 * shape.beta * wide_limbs * params.ring_degree * \
        KLSS_KEY_WORD_BYTES


def minks_key_bytes(params: CkksParams) -> float:
    """Compact (ARK Min-KS) stored form of one hybrid key.

    The key is kept at its single-digit base representation (``alpha``
    limbs plus the special limbs) and its remaining limbs are
    regenerated on chip, so only this much ever crosses HBM.
    """
    return hybrid_evk_bytes(params, params.alpha - 1)


def evk_bytes(method: str, params: CkksParams, level: int,
              hoisting: int = 1) -> float:
    """Total key bytes for one operation (h rotations need h keys)."""
    if method == "hybrid":
        per_key = hybrid_evk_bytes(params, level)
    elif method == "klss":
        per_key = klss_evk_bytes(params, level)
    else:
        raise ValueError(f"unknown key-switching method {method!r}")
    return per_key * max(1, hoisting)


def working_set_bytes(method: str, params: CkksParams, level: int,
                      num_ciphertexts: int = 4, hoisting: int = 1) -> float:
    """Fig. 3b: resident ciphertexts + the evaluation key(s)."""
    return (num_ciphertexts * ciphertext_bytes(params, level)
            + evk_bytes(method, params, level, hoisting))
