"""KLSS (gadget decomposition) key-switching (Fig. 1b).

The KLSS method of Kim-Lee-Seo-Song trades the hybrid method's many
narrow-limb NTTs for fewer, wider operations: the input is *doubly
decomposed* — first recombined out of its narrow RNS limbs, then cut
into wide base-``2^v`` digits (``v = 60`` at full scale) — and each
digit is key-multiplied against gadget keys over ``Q_l * T`` where
``T`` is a wide auxiliary basis.  Recovery of the original limb
structure happens implicitly when the accumulated result is reduced
on the ``Q_l * T`` basis, and a final ModDown by ``T`` removes the
gadget scaling.

Functionally this is the classic balanced-digit gadget switch; the
wide-limb grouping of the paper (``alpha'`` limbs in ``R_T``) shows up
in the cost model (:mod:`repro.ckks.keyswitch.cost`), which counts
operations exactly as the paper does.
"""

from __future__ import annotations

import numpy as np

from repro.ckks import modmath, rns
from repro.ckks.keys import KeySwitchKey
from repro.ckks.keyswitch.hybrid import (digits_to_eval,
                                         key_mult_accumulate, mod_down_pair)
from repro.ckks.rns import RnsPoly
from repro.obs.tracer import get_tracer


def balanced_digits(value: int, digit_bits: int, num_digits: int) -> list[int]:
    """Balanced base-``2^v`` digits of a (centred) integer.

    Digits lie in ``[-2^(v-1), 2^(v-1))`` and satisfy
    ``sum_j d_j 2^(v j) == value`` exactly.  Balancing halves the
    digit magnitude and therefore the switching noise.
    """
    base = 1 << digit_bits
    half = base >> 1
    digits = []
    v = int(value)
    for _ in range(num_digits):
        d = v % base
        if d >= half:
            d -= base
        digits.append(d)
        v = (v - d) >> digit_bits
    if v not in (0, -1):
        # -1 can remain for negative inputs whose sign bit exhausted
        # the digit budget; one extra digit absorbs it.
        raise ValueError("digit budget too small for value")
    if v == -1:
        digits[-1] -= base
    return digits


def _balanced_digits_columns(values: list[int], digit_bits: int,
                             num_digits: int) -> list[np.ndarray]:
    """Column-wise :func:`balanced_digits` over a coefficient vector.

    Returns ``num_digits`` object arrays, ``columns[j][i]`` being digit
    ``j`` of ``values[i]``.  Same digits as the scalar routine (the
    property tests cross-check the two) but each extraction step runs
    as a whole-vector big-int pass instead of a per-coefficient loop.
    """
    base = 1 << digit_bits
    half = base >> 1
    v = np.empty(len(values), dtype=object)
    v[:] = [int(c) for c in values]
    columns = []
    for _ in range(num_digits):
        d = np.mod(v, base)
        d = np.where(d >= half, d - base, d)
        columns.append(d)
        v = (v - d) >> digit_bits
    bad = ~((v == 0) | (v == -1))
    if bad.any():
        raise ValueError("digit budget too small for value")
    columns[-1] = np.where(v == -1, columns[-1] - base, columns[-1])
    return columns


def klss_decompose(poly: RnsPoly, key: KeySwitchKey) -> list[RnsPoly]:
    """Double decomposition: narrow limbs -> integers -> wide digits.

    Returns one small-coefficient polynomial per gadget digit,
    extended over the key's full ``Q_l * T`` basis in evaluation form
    (reusable across hoisted rotations).
    """
    q_count = len(key.moduli) - key.aux_count
    q_moduli = key.moduli[:q_count]
    if poly.moduli != q_moduli:
        raise ValueError("input basis does not match the key's Q basis")
    coeff = poly.to_coeff()
    big_coeffs = rns.compose_crt(coeff)
    columns = _balanced_digits_columns(big_coeffs, key.digit_bits,
                                       key.num_digits)
    if key.digit_bits <= 62:
        # Balanced digits stay below 1.5 * 2^digit_bits in magnitude,
        # so the whole column fits int64 and each limb reduces as one
        # vectorised pass; digits_to_eval then batches every limb of
        # *every* digit through a single stage-vectorised NTT call.
        out = []
        for col in columns:
            col64 = col.astype(np.int64)
            limbs = [modmath.asresidues(col64, q) for q in key.moduli]
            out.append(RnsPoly(limbs, key.moduli, rns.COEFF))
        return digits_to_eval(out)
    return digits_to_eval(
        [rns.from_big_ints(col.tolist(), key.moduli, poly.n)
         for col in columns])


def klss_key_switch(poly: RnsPoly, key: KeySwitchKey) -> tuple[RnsPoly, RnsPoly]:
    """Full KLSS switch; returns ``(delta0, delta1)`` over ``Q_l`` (eval).

    ``delta0 + delta1 * s ~= poly * s_from`` with gadget noise bounded
    by ``num_digits * 2^(v-1) * ||e||``, removed by the ModDown by T.
    """
    get_tracer().count("keyswitch.klss")
    decomposed = klss_decompose(poly, key)
    acc0, acc1 = key_mult_accumulate(decomposed, key)
    return mod_down_pair(acc0, acc1, key.aux_count)
