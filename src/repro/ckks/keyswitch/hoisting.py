"""Hoisting: share one decomposition across many rotations (Sec. 2.2.3).

When several rotations of the *same* ciphertext are needed (the
baby-step/giant-step linear transforms inside bootstrapping are the
canonical case), the expensive first stage of key-switching — ModUp
for the hybrid method, the double decomposition for KLSS — depends
only on ``c1``, not on the rotation amount.  Hoisting performs it
once, then per rotation applies the automorphism to the decomposed
digits (a coefficient permutation, which commutes with both
decompositions), runs KeyMult with that rotation's key, and ModDowns.

This trades evaluation-key storage (one key per rotation, all resident
simultaneously) for NTT work — exactly the tension Aether arbitrates.
"""

from __future__ import annotations

from repro.ckks.ciphertext import Ciphertext
from repro.ckks.keys import HYBRID, KLSS, KeySwitchKey
from repro.ckks.keyswitch.hybrid import (hybrid_decompose,
                                         key_mult_accumulate,
                                         mod_down_pair)
from repro.ckks.keyswitch.klss import klss_decompose


def hoisted_rotations(ct: Ciphertext, galois_elements: list[int],
                      keys: dict[int, KeySwitchKey],
                      alpha: int) -> list[Ciphertext]:
    """Rotate ``ct`` by every Galois element, decomposing ``c1`` once.

    ``keys[g]`` must be the switching key for ``s(X^g) -> s`` at the
    ciphertext's level; all keys must use the same method and basis.
    Returns the rotated ciphertexts in the order of
    ``galois_elements``.
    """
    if not galois_elements:
        return []
    methods = {keys[g].method for g in galois_elements}
    if len(methods) != 1:
        raise ValueError("hoisting requires a single key-switching method")
    method = methods.pop()
    first_key = keys[galois_elements[0]]
    c1_coeff = ct.c1.to_coeff()
    if method == HYBRID:
        decomposed = hybrid_decompose(c1_coeff, first_key, alpha)
    elif method == KLSS:
        decomposed = klss_decompose(c1_coeff, first_key)
    else:
        raise ValueError(f"unknown method {method!r}")
    results = []
    for g in galois_elements:
        key = keys[g]
        rotated_digits = [d.automorphism(g) for d in decomposed]
        acc0, acc1 = key_mult_accumulate(rotated_digits, key)
        delta0, delta1 = mod_down_pair(acc0, acc1, key.aux_count)
        c0_rot = ct.c0.automorphism(g)
        results.append(Ciphertext(c0_rot + delta0, delta1,
                                  ct.scale, ct.level))
    return results
