"""Hoisting: share one decomposition across many rotations (Sec. 2.2.3).

When several rotations of the *same* ciphertext are needed (the
baby-step/giant-step linear transforms inside bootstrapping are the
canonical case), the expensive first stage of key-switching — ModUp
for the hybrid method, the double decomposition for KLSS — depends
only on ``c1``, not on the rotation amount.  Hoisting performs it
once; each rotation then costs only an automorphism of the decomposed
digits, a KeyMult with that rotation's key, and a ModDown.

Since the digits stay in evaluation form throughout, the per-rotation
automorphism is a pure AutoPlan gather of NTT points (software AutoU)
and the KeyMult runs through the stacked lazy-reduction
:class:`~repro.ckks.keyswitch.hybrid.KeyMultPlan` (software KMU):
:func:`permute_and_accumulate`, the whole pre-ModDown stage, performs
**zero NTTs** — the per-rotation cost drops from O(digits x NTT) to
O(digits x gather + KeyMult).  The pre-plan pipeline is kept as
:func:`hoisted_rotations_reference`, the bit-exactness oracle and
bench baseline.

This trades evaluation-key storage (one key per rotation, all resident
simultaneously) for NTT work — exactly the tension Aether arbitrates.
"""

from __future__ import annotations

from repro.ckks import rns
from repro.ckks.ciphertext import Ciphertext
from repro.ckks.keys import HYBRID, KLSS, KeySwitchKey
from repro.ckks.keyswitch.hybrid import (KeyMultPlan, _mod_down_batch_ready,
                                         get_key_mult_plan,
                                         hybrid_decompose,
                                         key_mult_accumulate,
                                         key_mult_accumulate_reference,
                                         mod_down_batch, mod_down_pair)
from repro.ckks.keyswitch.klss import klss_decompose
from repro.ckks.rns import RnsPoly
from repro.obs.tracer import get_tracer


def validate_hoisting_keys(galois_elements: list[int],
                           keys: dict[int, KeySwitchKey]) -> KeySwitchKey:
    """Check every key shares one decomposition geometry; return the first.

    A hoisted batch reuses one decomposition of ``c1`` for every
    rotation, so all keys must agree on method, basis (``moduli`` /
    ``aux_count``) and digit layout (``num_digits`` / ``digit_bits``).
    Raises :class:`ValueError` naming each mismatched Galois element
    and the fields it diverges in.
    """
    reference = keys[galois_elements[0]]
    profile = reference.hoisting_profile()
    problems = []
    for g in galois_elements[1:]:
        other = keys[g].hoisting_profile()
        diverged = [name for name, value in profile.items()
                    if other[name] != value]
        if diverged:
            problems.append(f"g={g} differs in {', '.join(diverged)}")
    if problems:
        raise ValueError(
            "hoisting requires keys sharing one decomposition geometry "
            f"(reference g={galois_elements[0]}): " + "; ".join(problems))
    return reference


def _decompose(c1_coeff: RnsPoly, key: KeySwitchKey,
               alpha: int) -> list[RnsPoly]:
    if key.method == HYBRID:
        return hybrid_decompose(c1_coeff, key, alpha)
    if key.method == KLSS:
        return klss_decompose(c1_coeff, key)
    raise ValueError(f"unknown method {key.method!r}")


def permute_and_accumulate(stacked, plan: KeyMultPlan,
                           galois_power: int) -> tuple[RnsPoly, RnsPoly]:
    """Per-rotation AutoU + KMU stage on a stacked digit tensor.

    ``stacked`` is the ``(d, k, N)`` tensor from ``plan.stack`` (built
    once per hoisted batch); the automorphism is one fancy-index
    gather of evaluation slots across the whole tensor, and the fused
    plan accumulates the KeyMult.  No NTT runs anywhere in here — the
    bench's traced pass pins that down via the ``ntt.*`` counters.
    """
    auto = rns.get_auto_plan(plan.n, galois_power)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("keyswitch.hoisting.auto_gather")
    return plan.accumulate(stacked[:, :, auto.eval_perm])


def hoisted_rotations(ct: Ciphertext, galois_elements: list[int],
                      keys: dict[int, KeySwitchKey],
                      alpha: int) -> list[Ciphertext]:
    """Rotate ``ct`` by every Galois element, decomposing ``c1`` once.

    ``keys[g]`` must be the switching key for ``s(X^g) -> s`` at the
    ciphertext's level; all keys must share one method, basis and
    digit layout (:func:`validate_hoisting_keys`).  Returns the
    rotated ciphertexts in the order of ``galois_elements``.
    """
    if not galois_elements:
        return []
    reference = validate_hoisting_keys(galois_elements, keys)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("keyswitch.hoisting.batch")
        tracer.count("keyswitch.hoisting.rotations", len(galois_elements))
    decomposed = _decompose(ct.c1.to_coeff(), reference, alpha)
    plan = get_key_mult_plan(reference)
    stacked = plan.stack(decomposed) if plan is not None else None
    pairs = []
    for g in galois_elements:
        key = keys[g]
        if stacked is not None:
            # All keys share the reference geometry, so each key's
            # plan stacks digits identically and the one tensor feeds
            # them all.
            pairs.append(permute_and_accumulate(
                stacked, get_key_mult_plan(key), g))
        else:
            # Object-path moduli: no fused plan, but the per-digit
            # automorphisms are still eval-domain gathers (no NTTs
            # before ModDown even here).
            rotated_digits = [d.automorphism(g) for d in decomposed]
            pairs.append(key_mult_accumulate(rotated_digits, key))
    # One batched ModDown for the whole rotation set: its NTT and
    # subtract/scale sweeps amortise across all rotations.
    if _mod_down_batch_ready(pairs[0][0], pairs[0][1], reference.aux_count):
        deltas = mod_down_batch(pairs, reference.aux_count)
    else:
        deltas = [mod_down_pair(acc0, acc1, reference.aux_count)
                  for acc0, acc1 in pairs]
    results = []
    for g, (delta0, delta1) in zip(galois_elements, deltas):
        c0_rot = ct.c0.automorphism(g)
        results.append(Ciphertext(c0_rot + delta0, delta1,
                                  ct.scale, ct.level))
    return results


def hoisted_rotations_reference(ct: Ciphertext, galois_elements: list[int],
                                keys: dict[int, KeySwitchKey],
                                alpha: int) -> list[Ciphertext]:
    """The pre-plan hoisting pipeline (bit-exactness oracle, baseline).

    Shares the decomposition like :func:`hoisted_rotations`, but each
    rotation round-trips every digit (and ``c0``) through a full
    iNTT -> coefficient permutation -> NTT, accumulates KeyMult with
    the per-digit reference loop, and ModDowns each half separately —
    the exact dataflow this module had before the AutoPlan/KeyMultPlan
    kernels.  Results are bit-identical to :func:`hoisted_rotations`;
    the keyswitch bench section times the two against each other.
    """
    if not galois_elements:
        return []
    reference = validate_hoisting_keys(galois_elements, keys)
    decomposed = _decompose(ct.c1.to_coeff(), reference, alpha)
    q_count = len(reference.moduli) - reference.aux_count
    results = []
    for g in galois_elements:
        key = keys[g]
        rotated_digits = [d.to_coeff().automorphism(g).to_eval()
                          for d in decomposed]
        acc0, acc1 = key_mult_accumulate_reference(rotated_digits, key)
        delta0 = rns.mod_down(acc0.to_coeff(), q_count).to_eval()
        delta1 = rns.mod_down(acc1.to_coeff(), q_count).to_eval()
        c0_rot = ct.c0.to_coeff().automorphism(g).to_eval()
        results.append(Ciphertext(c0_rot + delta0, delta1,
                                  ct.scale, ct.level))
    return results
