"""``repro.obs`` — the observability layer.

A lightweight tracing/metrics subsystem threaded through the cycle
simulator (:mod:`repro.sim`), the Aether/Hemera runtime
(:mod:`repro.core`) and the CKKS hot kernels (:mod:`repro.ckks.ntt`,
:mod:`repro.ckks.rns`):

* **spans** — wall-clock regions (Aether's MCT build, one NTT call)
  and simulated-clock kernel-task events with unit/stage/op labels;
* **counters / histograms** — NTT and BConv call counts, automorphism
  paths (``rns.auto.eval`` point gathers vs ``rns.auto.coeff`` oracle,
  plus ``rns.auto.plan_hit``/``plan_miss``), fused KeyMult activity
  (``keyswitch.kmu.fused``/``object_fallback``/``plan_hit``/
  ``plan_miss`` and per-tier counts), hoisting batches
  (``keyswitch.hoisting.*``), evk-cache hits/misses, prefetch lead,
  key-stall time;
* **exporters** — a JSON snapshot (schema ``repro-obs/v1``) and a
  chrome-trace file rendering the per-unit pipeline timeline.

Disabled by default with near-zero overhead; enable per-process with
``REPRO_TRACE=1`` or programmatically::

    from repro import obs
    obs.configure(enabled=True, reset=True)
    engine.run(trace)
    obs.dump_chrome_trace("timeline.json")
"""

from repro.obs.export import (SCHEMA, snapshot, to_chrome_trace,
                              write_chrome_trace, write_json)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.tracer import (NOOP_SPAN, SIM, WALL, Span, Tracer,
                              configure, get_tracer)

__all__ = [
    "SCHEMA", "SIM", "WALL", "NOOP_SPAN",
    "Counter", "Histogram", "MetricsRegistry", "Span", "Tracer",
    "configure", "get_tracer", "snapshot", "to_chrome_trace",
    "write_chrome_trace", "write_json",
    "count", "dump_chrome_trace", "dump_json", "enabled", "event",
    "observe", "span", "reset",
]


# -- module-level conveniences delegating to the global tracer ------------

def enabled() -> bool:
    return get_tracer().enabled


def span(name: str, track: str | None = None, **labels):
    return get_tracer().span(name, track=track, **labels)


def event(name: str, start_s: float, duration_s: float, **kwargs) -> None:
    get_tracer().event(name, start_s, duration_s, **kwargs)


def count(name: str, amount: float = 1.0) -> None:
    get_tracer().count(name, amount)


def observe(name: str, value: float) -> None:
    get_tracer().observe(name, value)


def reset() -> None:
    get_tracer().reset()


def dump_json(path: str) -> None:
    """Write the global tracer's JSON snapshot to ``path``."""
    write_json(get_tracer(), path)


def dump_chrome_trace(path: str) -> None:
    """Write the global tracer's chrome-trace file to ``path``."""
    write_chrome_trace(get_tracer(), path)
