"""Exporters: JSON snapshot and chrome-trace (catapult) views.

The JSON snapshot (schema ``repro-obs/v1``) is the machine-readable
dump the bench harness embeds and tests assert against.  The chrome
trace (``chrome://tracing`` / https://ui.perfetto.dev) renders the
simulator's per-unit timeline: each hardware unit (``nttu``,
``bconvu``, ``kmu``, ``autou``, ``dsu``, ``hbm``) becomes one thread
row inside a "simulated time" process, wall-clock spans land in a
separate "wall clock" process.
"""

from __future__ import annotations

import json

from repro.obs.tracer import SIM, WALL, Span, Tracer

SCHEMA = "repro-obs/v1"

# Chrome-trace process ids per clock domain.
_PID = {WALL: 1, SIM: 2}
_PROCESS_NAMES = {1: "wall clock", 2: "simulated time"}


def snapshot(tracer: Tracer) -> dict:
    """Everything the tracer holds, as plain JSON-ready data."""
    return {
        "schema": SCHEMA,
        "enabled": tracer.enabled,
        "num_spans": len(tracer.spans),
        "dropped_events": tracer.dropped_events,
        "spans": [span.to_dict() for span in tracer.spans],
        "counters": tracer.metrics.counters(),
        "histograms": tracer.metrics.histograms(),
    }


def write_json(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot(tracer), fh, indent=1)


def _tid_map(spans: list[Span]) -> dict[tuple[str, str], int]:
    """Stable (clock, track) -> thread-id assignment, first-seen order."""
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        key = (span.clock, span.track or "main")
        if key not in tids:
            tids[key] = len(tids) + 1
    return tids


def to_chrome_trace(tracer: Tracer) -> dict:
    """The catapult JSON object format (``ph: X`` complete events)."""
    tids = _tid_map(tracer.spans)
    events: list[dict] = []
    for pid, name in _PROCESS_NAMES.items():
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name", "args": {"name": name}})
    for (clock, track), tid in tids.items():
        events.append({"ph": "M", "pid": _PID[clock], "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
    for span in tracer.spans:
        tid = tids[(span.clock, span.track or "main")]
        args = dict(span.labels)
        if span.parent_id is not None:
            args["parent"] = span.parent_id
        events.append({
            "ph": "X", "pid": _PID[span.clock], "tid": tid,
            "name": span.name,
            "ts": span.start_s * 1e6,        # microseconds
            "dur": span.duration_s * 1e6,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(tracer), fh)
