"""Span-based event tracer for the simulator and the CKKS library.

Two clock domains coexist:

* ``WALL`` spans time real execution of host code (Aether analysis,
  NTT calls, a whole ``Engine.run``) via ``time.perf_counter``;
* ``SIM`` events carry *simulated* begin/duration seconds supplied by
  the cycle simulator, one per kernel task, keyed by the hardware
  unit they ran on (``track``) — exported to chrome-trace they render
  the per-unit pipeline exactly as Fig. 10/11 reason about it.

The tracer is **disabled by default** and designed for near-zero
overhead in that state: hot loops guard on the ``enabled`` attribute
(one attribute read), ``span()`` returns a shared no-op singleton and
``count``/``observe``/``event`` early-return before touching any
registry.  Enable with ``REPRO_TRACE=1`` in the environment or
``obs.configure(enabled=True)``.

Single-threaded by design, like the simulator it instruments.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

WALL = "wall"
SIM = "sim"

# Hard cap on retained span events: a runaway traced loop degrades to
# counting dropped events instead of exhausting memory.
DEFAULT_MAX_EVENTS = 2_000_000


@dataclass
class Span:
    """One finished span/event record."""

    name: str
    start_s: float
    duration_s: float
    clock: str = WALL
    track: str | None = None
    span_id: int = 0
    parent_id: int | None = None
    labels: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        record = {"name": self.name, "start_s": self.start_s,
                  "duration_s": self.duration_s, "clock": self.clock,
                  "id": self.span_id}
        if self.track is not None:
            record["track"] = self.track
        if self.parent_id is not None:
            record["parent"] = self.parent_id
        if self.labels:
            record["labels"] = self.labels
        return record


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **labels) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """A live wall-clock span; records itself on ``__exit__``."""

    __slots__ = ("_tracer", "name", "track", "labels", "span_id",
                 "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 track: str | None, labels: dict):
        self._tracer = tracer
        self.name = name
        self.track = track
        self.labels = labels
        self.span_id = tracer._new_id()
        self.parent_id = tracer._stack[-1] if tracer._stack else None

    def set(self, **labels) -> "_ActiveSpan":
        self.labels.update(labels)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._stack.append(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        duration = time.perf_counter() - self._start
        stack = self._tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._record(Span(
            name=self.name, start_s=self._start, duration_s=duration,
            clock=WALL, track=self.track, span_id=self.span_id,
            parent_id=self.parent_id, labels=self.labels))
        return False


class Tracer:
    """Event/metric sink; one global instance serves the process."""

    def __init__(self, enabled: bool = False,
                 max_events: int = DEFAULT_MAX_EVENTS):
        self.enabled = bool(enabled)
        self.max_events = max_events
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self.dropped_events = 0
        self._stack: list[int] = []
        self._id = 0

    # -- lifecycle ----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans and metrics (keeps enabled state)."""
        self.spans.clear()
        self.metrics.reset()
        self._stack.clear()
        self.dropped_events = 0
        self._id = 0

    # -- recording ----------------------------------------------------
    def _new_id(self) -> int:
        self._id += 1
        return self._id

    def _record(self, span: Span) -> None:
        if len(self.spans) >= self.max_events:
            self.dropped_events += 1
            return
        self.spans.append(span)

    def span(self, name: str, track: str | None = None, **labels):
        """Context manager timing a wall-clock region (nestable)."""
        if not self.enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name, track, labels)

    def event(self, name: str, start_s: float, duration_s: float,
              track: str | None = None, clock: str = SIM,
              **labels) -> None:
        """Record a pre-timed event (simulated clock by default)."""
        if not self.enabled:
            return
        self._record(Span(name=name, start_s=start_s,
                          duration_s=duration_s, clock=clock, track=track,
                          span_id=self._new_id(), labels=labels))

    def count(self, name: str, amount: float = 1.0) -> None:
        if not self.enabled:
            return
        self.metrics.counter(name).add(amount)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.histogram(name).observe(value)

    # -- inspection ----------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self.metrics.counters().get(name, 0.0)

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Counters under one namespace (per-tenant attribution)."""
        return self.metrics.counters_with_prefix(prefix)

    def snapshot(self) -> dict:
        """JSON-ready dump of everything recorded so far."""
        from repro.obs import export
        return export.snapshot(self)


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "") not in ("", "0", "false")


_GLOBAL = Tracer(enabled=_env_enabled())


def get_tracer() -> Tracer:
    """The process-global tracer all instrumentation points share."""
    return _GLOBAL


def configure(enabled: bool | None = None,
              reset: bool = False) -> Tracer:
    """Adjust the global tracer; returns it for chaining."""
    if reset:
        _GLOBAL.reset()
    if enabled is not None:
        _GLOBAL.enabled = bool(enabled)
    return _GLOBAL
