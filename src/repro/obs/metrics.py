"""Counter and histogram registry for the observability layer.

Metrics are deliberately simple: a :class:`Counter` is one float, a
:class:`Histogram` keeps running summary statistics plus power-of-two
buckets (cheap, allocation-free observation).  The registry is a flat
name -> instrument map; instruments are created on first use, so
instrumented code never has to declare anything up front.

All instruments are process-local and single-threaded, matching the
simulator (the engine is a sequential event loop).
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically growing float, keyed by name."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Running summary statistics with power-of-two buckets.

    ``observe`` keeps count/sum/min/max and increments the bucket for
    ``floor(log2(value))``; non-positive values land in a dedicated
    underflow bucket.  The buckets are enough to see an order-of-
    magnitude shape (e.g. NTT wall times) without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] - 1 if value > 0 else -1075
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-ready digest of the distribution."""
        if not self.count:
            return {"count": 0, "total": 0.0, "mean": 0.0,
                    "min": None, "max": None, "buckets_pow2": {}}
        return {"count": self.count, "total": self.total,
                "mean": self.mean, "min": self.min, "max": self.max,
                "buckets_pow2": {str(e): c
                                 for e, c in sorted(self.buckets.items())}}

    def __repr__(self) -> str:
        return f"Histogram({self.name}: n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Flat name -> instrument map with create-on-first-use."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Counters under one namespace, e.g. the per-tenant serving
        attribution rooted at ``serve.tenant.<name>.``."""
        return {name: c.value
                for name, c in sorted(self._counters.items())
                if name.startswith(prefix)}

    def histograms(self) -> dict[str, dict]:
        return {name: h.summary()
                for name, h in sorted(self._histograms.items())}

    def reset(self) -> None:
        self._counters.clear()
        self._histograms.clear()
