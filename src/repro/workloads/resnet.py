"""ResNet-20 inference on one encrypted CIFAR image (Sec. 6.2).

Follows the multiplexed-parallel-convolution formulation of Lee et
al. (ICML'22), the implementation the paper cites ([25]): each of the
20 layers is a packed convolution (rotation batches + PMults + adds)
followed by a high-degree polynomial ReLU approximation (HMult
chains), with bootstrapping inserted whenever the level budget runs
out — roughly one (fully-packed) bootstrap per ReLU block at
``L_eff = 8``, which is what makes bootstrap ~87-95% of end-to-end
time (Sec. 7.2).
"""

from __future__ import annotations

from repro.ckks.params import CkksParams, SET_II
from repro.core import optrace
from repro.core.optrace import OpTrace, TraceBuilder
from repro.workloads.bootstrap import bootstrap_trace

# Reconstruction constants for the multiplexed-convolution ResNet-20.
CONV_LAYERS = 19           # 3x3 convolutions (plus the final linear)
ROTS_PER_CONV = 8          # multiplexed kernel taps (hoisted batch)
PMULTS_PER_CONV = 9        # one per tap
RELU_MULTS = 3             # minimax composite polynomial segments
BOOTSTRAPS = 38            # two thin refreshes per residual block
DOWNSAMPLE_LAYERS = 2
AVGPOOL_ROTS = 6           # final global average pooling
FC_PMULTS = 10             # final linear layer diagonals


def _conv_block(tb: TraceBuilder, level: int, params: CkksParams,
                layer: int) -> int:
    stage = "Conv"
    ct = tb.fresh_ct()
    tb.rotations(ct, level, [r + 1 for r in range(ROTS_PER_CONV)],
                 hoisted=True, stage=stage)
    for _ in range(PMULTS_PER_CONV):
        tb.pmult(ct, level, stage=stage)
        tb.add(optrace.HADD, level, ct, stage=stage)
    for _ in range(params.levels_per_mult):
        tb.rescale(ct, level, stage=stage)
    return level - params.levels_per_mult


def _relu_block(tb: TraceBuilder, level: int,
                params: CkksParams) -> int:
    stage = "ReLU"
    ct = tb.fresh_ct()
    for _ in range(RELU_MULTS):
        tb.hmult(ct, level, stage=stage)
        tb.pmult(ct, level, stage=stage)
        for _ in range(params.levels_per_mult):
            tb.rescale(ct, level, stage=stage)
        level -= params.levels_per_mult
    return level


def resnet20_trace(params: CkksParams = SET_II,
                   name: str = "resnet20") -> OpTrace:
    """The full inference trace, bootstraps interleaved on demand."""
    tb = TraceBuilder(name)
    trace = tb.build()
    level = params.effective_level
    boots_emitted = 0
    per_mult = params.levels_per_mult
    for layer in range(CONV_LAYERS):
        # Refresh whenever the next conv+relu would exhaust the level.
        needed = per_mult * (1 + RELU_MULTS)
        while level - needed < 0 and boots_emitted < BOOTSTRAPS:
            trace = trace.concat(bootstrap_trace(params, name=name),
                                 name=name)
            boots_emitted += 1
            level = params.effective_level
            tb = TraceBuilder(name)  # fresh builder appended below
        level = _conv_block(tb, level, params, layer)
        level = _relu_block(tb, level, params)
        trace = trace.concat(tb.build(), name=name)
        tb = TraceBuilder(name)
    # Remaining refresh budget: the published implementation
    # bootstraps twice per residual block (separate channels).
    while boots_emitted < BOOTSTRAPS:
        trace = trace.concat(bootstrap_trace(params, name=name), name=name)
        boots_emitted += 1
    # Final average pooling + fully connected layer.
    tail = TraceBuilder(name)
    ct = tail.fresh_ct()
    tail.rotations(ct, params.effective_level,
                   [1 << i for i in range(AVGPOOL_ROTS)], hoisted=True,
                   stage="AvgPool")
    for _ in range(FC_PMULTS):
        tail.pmult(ct, params.effective_level, stage="FC")
        tail.add(optrace.HADD, params.effective_level, ct, stage="FC")
    return trace.concat(tail.build(), name=name)
