"""HELR: homomorphic logistic-regression training (Sec. 6.2).

One HELR iteration (Han et al., AAAI'19) computes, on packed
ciphertexts: the inner products ``X * w`` (rotation-and-sum), a
degree-7 polynomial approximation of the sigmoid, the gradient
``X^T * err`` (another rotation-and-sum) and the weight update — then
refreshes the exhausted ciphertexts with a *thin* bootstrap (HELR
packs far fewer than N/2 active slots, so the DFT stages shrink).

The batch size changes how many feature ciphertexts participate:
batch 256 works on one ciphertext block, batch 1024 on four, which is
why HELR1024 iterations are more expensive (Table 5).
"""

from __future__ import annotations

from repro.ckks.params import CkksParams, SET_II
from repro.core import optrace
from repro.core.optrace import OpTrace, TraceBuilder
from repro.workloads.bootstrap import bootstrap_trace

# Reconstruction constants.
SIGMOID_MULTS = 3          # degree-7 polynomial, BSGS evaluated
FEATURE_DIM_LOG = 8        # 256 features -> log-depth rotation sums
THIN_BOOT_FRACTION_256 = 0.75
THIN_BOOT_FRACTION_1024 = 0.90


def _rotation_sum(tb: TraceBuilder, ct: int, level: int, log_len: int,
                  stage: str) -> None:
    """log-depth rotate-and-add reduction; rotations are hoistable
    pairs on the running accumulator, so they stay un-hoisted."""
    for step in range(log_len):
        tb.hrot(ct, level, 1 << step, stage=stage)
        tb.add(optrace.HADD, level, ct, stage=stage)


def helr_iteration(params: CkksParams = SET_II,
                   batch: int = 256) -> OpTrace:
    """The per-iteration application ops (without the bootstrap)."""
    if batch not in (256, 1024):
        raise ValueError("paper evaluates batch sizes 256 and 1024")
    blocks = batch // 256
    tb = TraceBuilder(f"helr{batch}-iter")
    level = params.effective_level

    for _ in range(blocks):
        x_ct = tb.fresh_ct()
        # Inner product X*w: elementwise PMult + rotation-sum.
        tb.pmult(x_ct, level, stage="Gradient")
        _rotation_sum(tb, x_ct, level, FEATURE_DIM_LOG // 2, "Gradient")
        for _ in range(params.levels_per_mult):
            tb.rescale(x_ct, level, stage="Gradient")
    level -= params.levels_per_mult

    # Sigmoid approximation (shared across blocks on the packed sums).
    sig_ct = tb.fresh_ct()
    for _ in range(SIGMOID_MULTS):
        tb.hmult(sig_ct, level, stage="Sigmoid")
        tb.pmult(sig_ct, level, stage="Sigmoid")
        for _ in range(params.levels_per_mult):
            tb.rescale(sig_ct, level, stage="Sigmoid")
        level -= params.levels_per_mult

    # Gradient X^T * err and the weight update.
    for _ in range(blocks):
        g_ct = tb.fresh_ct()
        tb.pmult(g_ct, level, stage="Update")
        _rotation_sum(tb, g_ct, level, FEATURE_DIM_LOG // 2, "Update")
    w_ct = tb.fresh_ct()
    tb.add(optrace.CMULT, level, w_ct, stage="Update")   # learning rate
    tb.add(optrace.HADD, level, w_ct, stage="Update")
    for _ in range(params.levels_per_mult):
        tb.rescale(w_ct, level, stage="Update")

    return tb.build()


def helr_trace(params: CkksParams = SET_II, batch: int = 256,
               iterations: int = 1) -> OpTrace:
    """``iterations`` full HELR iterations, each ending in a thin
    bootstrap that restores the working level."""
    fraction = THIN_BOOT_FRACTION_256 if batch == 256 \
        else THIN_BOOT_FRACTION_1024
    single = helr_iteration(params, batch).concat(
        bootstrap_trace(params, slots_fraction=fraction,
                        name=f"helr{batch}-boot"),
        name=f"helr{batch}")
    if iterations == 1:
        return single
    return single.repeated(iterations, name=f"helr{batch}x{iterations}")
