"""Workload trace generators for the paper's benchmarks (Sec. 6.2).

* :mod:`repro.workloads.bootstrap` — fully-packed CKKS bootstrapping
  (ModRaise / CoeffToSlot / EvalMod / SlotToCoeff);
* :mod:`repro.workloads.helr` — HELR logistic-regression training
  iterations (batch 256 or 1024);
* :mod:`repro.workloads.resnet` — ResNet-20 inference on an encrypted
  32x32x3 image.

Each generator emits an :class:`repro.core.optrace.OpTrace` whose
structure (operation mix, levels, hoisting groups) reconstructs the
published workload; exact op counts are documented per generator.
"""

from repro.workloads.bootstrap import bootstrap_trace
from repro.workloads.helr import helr_trace
from repro.workloads.resnet import resnet20_trace

__all__ = ["bootstrap_trace", "helr_trace", "resnet20_trace"]
