"""Fully-packed CKKS bootstrapping trace (Sec. 6.2, Table 5's anchor).

Structure follows the SHARP/ARK state-of-the-art pipeline the paper
evaluates:

* **ModRaise** lifts the exhausted ciphertext to level ``L``;
* **CoeffToSlot**: the homomorphic DFT factorised into
  ``CTS_MATRICES`` sparse matrices, each evaluated baby-step/giant-step
  with the baby rotations hoisted (one decomposition, many
  automorphisms), followed by one conjugation; every matrix consumes
  one (double-rescaled) level;
* **EvalMod**: approximate modular reduction — Chebyshev basis
  power tower + giant recombination + double-angle, all HMult-heavy;
* **SlotToCoeff**: the inverse DFT, same shape as CoeffToSlot.

With double rescaling each multiplicative stage burns two primes, so
the trace walks from level 35 down to ``L_eff = 8`` exactly as the
paper's Table 2 prescribes (``L_boot = 27``).

``slots_fraction < 1`` produces the *thin* bootstrap used inside the
HELR workloads: fewer packed slots shrink the DFT radix and thus the
rotation/diagonal counts per matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.params import CkksParams, SET_II
from repro.core import optrace
from repro.core.optrace import OpTrace, TraceBuilder

# Reconstruction constants (SHARP-style fully-packed bootstrap).
CTS_MATRICES = 3          # radix-32 factorisation of the 2^15-slot DFT
STC_MATRICES = 3
BABY_STEPS = 8            # BSGS split of each radix-32 matrix
GIANT_STEPS = 4
EVALMOD_BABY_MULTS = 3    # Chebyshev basis power tower
EVALMOD_GIANT_MULTS = 2
EVALMOD_DOUBLE_ANGLE = 2
EVALMOD_PMULTS = 14       # coefficient multiplications


@dataclass
class BootstrapShape:
    """Derived op counts, exposed for tests and documentation."""

    rotations: int
    hmults: int
    pmults: int
    levels_consumed: int


def _matrix_stage(tb: TraceBuilder, level: int, stage: str,
                  baby: int, giant: int, params: CkksParams) -> int:
    """One BSGS matrix-vector stage; returns the level after it."""
    ct = tb.fresh_ct()
    # Baby-step rotations: same input ciphertext -> one hoist group.
    if baby > 1:
        tb.rotations(ct, level, list(range(1, baby)), hoisted=True,
                     stage=stage)
    # Giant steps: accumulate baby x diagonal products, then rotate
    # each partial sum (distinct ciphertexts -> not hoistable).
    for g in range(giant):
        acc = tb.fresh_ct()
        for _ in range(baby):
            tb.pmult(acc, level, stage=stage)
            tb.add(optrace.HADD, level, acc, stage=stage)
        if g > 0:
            tb.hrot(acc, level, g * baby, stage=stage)
    # One multiplicative level consumed; double rescale = two primes.
    for _ in range(params.levels_per_mult):
        tb.rescale(ct, level, stage=stage)
    return level - params.levels_per_mult


def bootstrap_trace(params: CkksParams = SET_II,
                    slots_fraction: float = 1.0,
                    name: str = "bootstrap") -> OpTrace:
    """Generate the bootstrapping operation flow.

    ``slots_fraction`` scales the DFT work for sparsely packed
    ciphertexts (thin bootstrap); 1.0 is the fully-packed case.
    """
    if not 0 < slots_fraction <= 1:
        raise ValueError("slots_fraction must be in (0, 1]")
    baby = max(2, round(BABY_STEPS * slots_fraction))
    giant = max(2, round(GIANT_STEPS * slots_fraction))
    tb = TraceBuilder(name)
    level = params.max_level

    # -- ModRaise ---------------------------------------------------------
    raise_ct = tb.fresh_ct()
    tb.add(optrace.MOD_RAISE, level, raise_ct, stage="ModRaise")

    # -- CoeffToSlot --------------------------------------------------------
    for _ in range(CTS_MATRICES):
        level = _matrix_stage(tb, level, "CoeffToSlot", baby, giant, params)
    conj_ct = tb.fresh_ct()
    tb.add(optrace.CONJ, level, conj_ct, stage="CoeffToSlot")

    # -- EvalMod -----------------------------------------------------------
    # The EvalMod depth adapts to the parameter set's level budget:
    # whatever L_boot leaves after the six DFT matrices is spent on
    # the modular-reduction polynomial (Set-II: 7 mults = baby 3 +
    # giant 2 + double-angle 2, plus one single-prime correction).
    per_mult = params.levels_per_mult
    matrix_cost = (CTS_MATRICES + STC_MATRICES) * per_mult
    evalmod_budget = params.boot_levels - matrix_cost
    if evalmod_budget < per_mult:
        raise ValueError("boot_levels too small for the DFT stages")
    mults = evalmod_budget // per_mult
    correction = evalmod_budget - mults * per_mult
    pmults_per_mult = max(1, EVALMOD_PMULTS // max(1, mults))
    for _ in range(mults):
        ct = tb.fresh_ct()
        tb.hmult(ct, level, stage="EvalMod")
        for _ in range(pmults_per_mult):
            tb.pmult(ct, level, stage="EvalMod")
        for _ in range(per_mult):
            tb.rescale(ct, level, stage="EvalMod")
        level -= per_mult
    for _ in range(correction):
        # scale-correction rescales burn the odd remainder of L_boot
        tb.rescale(tb.fresh_ct(), level, stage="EvalMod")
        level -= 1

    # -- SlotToCoeff ----------------------------------------------------------
    for _ in range(STC_MATRICES):
        level = _matrix_stage(tb, level, "SlotToCoeff", baby, giant, params)

    trace = tb.build()
    if level != params.effective_level:
        raise AssertionError(
            f"bootstrap shape drifted: ended at level {level}, expected "
            f"L_eff={params.effective_level}")
    return trace


def bootstrap_shape(params: CkksParams = SET_II,
                    slots_fraction: float = 1.0) -> BootstrapShape:
    """Op-count summary of the generated trace (for tests/docs)."""
    trace = bootstrap_trace(params, slots_fraction)
    hist = trace.kind_histogram()
    return BootstrapShape(
        rotations=hist.get(optrace.HROT, 0) + hist.get(optrace.CONJ, 0),
        hmults=hist.get(optrace.HMULT, 0),
        pmults=hist.get(optrace.PMULT, 0),
        levels_consumed=params.boot_levels)
