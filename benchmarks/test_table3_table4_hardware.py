"""Tables 2-4: parameter sets, chip area/power, hardware comparison."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_table2_parameter_sets(once):
    rows = once(F.table2)
    emit("Table 2: parameter sets", F.format_rows(rows))
    assert rows[1]["alpha_tilde"] == 9


def test_table3_area_power(once):
    rows = once(F.table3)
    flat = [{"component": name, **vals} for name, vals in rows.items()]
    emit("Table 3: FAST component area and peak power",
         F.format_rows(flat, precision=2) +
         "\n(note: the paper's stated 337.5 W total disagrees with "
         "the sum of its own rows, 356.7 W; we match the rows)")
    assert abs(rows["Total"]["area_mm2"] - 283.75) < 6


def test_table4_hardware_comparison(once):
    rows = once(F.table4)
    emit("Table 4: hardware comparison", F.format_rows(rows, precision=1))
    fast = [r for r in rows if r["name"] == "FAST (ours)"][0]
    assert abs(fast["area_mm2"] - 283.75) < 6
