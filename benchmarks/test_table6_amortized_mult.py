"""Table 6: T_mult,a/s — amortised multiplication time per slot."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_table6_t_mult(once):
    data = once(F.table6)
    emit("Table 6: T_mult,a/s", F.format_rows(data["rows"], precision=1) +
         f"\npaper FAST60: {data['paper_fast_ns']} ns")
    ours = [r for r in data["rows"] if r["source"] == "measured"][0]
    published = [r["t_as_ns"] for r in data["rows"]
                 if r["source"] == "published"]
    assert all(ours["t_as_ns"] < p for p in published)
