"""Fig. 2: modular-op counts and the hybrid/KLSS quantitative line."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure2a_quantitative_line(once):
    rows = once(F.figure2a)
    low = np.mean([r["quantitative_line"] for r in rows
                   if 5 <= r["level"] <= 12])
    high = np.mean([r["quantitative_line"] for r in rows
                    if 25 <= r["level"] <= 35])
    sampled = [r for r in rows if r["level"] % 5 == 0]
    emit("Figure 2(a): hybrid vs KLSS modular operations",
         F.format_rows(sampled) +
         f"\nhybrid advantage l5-12:  {(1 - low) * 100:5.1f}%  "
         f"(paper: 23.5%)"
         f"\nKLSS advantage l25-35:   {(1 - 1 / high) * 100:5.1f}%  "
         f"(paper: 15.2%)")
    assert low < 1.0 < high


def test_figure2b_kernel_breakdown(once):
    rows = once(F.figure2b)
    sampled = [r for r in rows if r["level"] % 7 == 0]
    emit("Figure 2(b): per-kernel quantitative lines",
         F.format_rows(sampled))
    high = [r for r in rows if r["level"] >= 25]
    assert np.mean([r["ntt"] for r in high]) > 1.0
