"""Table 5: end-to-end workload execution times vs prior works."""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_table5_execution_times(once):
    data = once(F.table5)
    rows = []
    for name, row in data["published_ms"].items():
        rows.append({"accelerator": name, "source": "published", **{
            k: (v if v is not None else float("nan"))
            for k, v in row.items()}})
    rows.append({"accelerator": "FAST (ours, simulated)",
                 "source": "measured", **data["ours_ms"]})
    emit("Table 5: execution time (ms)", F.format_rows(rows, precision=2))
    mean_speedup = np.mean(list(data["speedup_vs_sharp"].values()))
    emit("Speedup vs SHARP",
         f"per-workload: " +
         ", ".join(f"{k}: {v:.2f}x"
                   for k, v in data["speedup_vs_sharp"].items()) +
         f"\naverage: {mean_speedup:.2f}x (paper: 1.85x average, "
         f"2.26x on bootstrapping)")
    assert 1.5 < mean_speedup < 2.6
    for workload, ms in data["ours_ms"].items():
        paper = data["published_ms"]["FAST"][workload]
        assert paper / 2 < ms < paper * 2
