"""Repo-checkout entry point for the perf-regression harness.

Equivalent to ``python -m repro bench``; this wrapper only makes
``python benchmarks/harness.py`` work straight from a clone without
installing the package (it prepends ``src/`` to ``sys.path``).
The implementation lives in :mod:`repro.bench.harness`.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.harness import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
