"""Fig. 10: OneKSW vs Hoisting vs Aether execution breakdown."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure10_policies(once):
    data = once(F.figure10)
    rows = []
    for label in ("OneKSW", "Hoisting", "Aether"):
        d = data[label]
        rows.append({"policy": label, "total_ms": d["total_ms"],
                     "speedup": d["speedup_vs_oneksw"],
                     "hybrid_ops": d["method_ops"].get("hybrid", 0),
                     "klss_ops": d["method_ops"].get("klss", 0)})
    emit("Figure 10: bootstrap under each key-switch policy",
         F.format_rows(rows) +
         f"\npaper: hoisting ~10% key-switch reduction; Aether 1.24x "
         f"(measured {data['Aether']['speedup_vs_oneksw']:.2f}x)")
    assert data["Aether"]["total_ms"] <= data["Hoisting"]["total_ms"]
    assert data["Hoisting"]["total_ms"] < data["OneKSW"]["total_ms"]
