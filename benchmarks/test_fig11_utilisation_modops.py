"""Fig. 11: unit utilisation and bootstrap modular-op composition."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure11a_utilisation(once):
    data = once(F.figure11a)
    rows = [{"workload": name, **{k: v for k, v in util.items()}}
            for name, util in data["per_workload"].items()]
    rows.append({"workload": "average", **data["average"]})
    emit("Figure 11(a): hardware unit utilisation",
         F.format_rows(rows) +
         f"\npaper averages: NTTU 66.5%, BConvU 24.3%, KMU 25.7%, "
         f"HBM 44.3%")
    avg = data["average"]
    assert avg["nttu"] > avg["bconvu"] and avg["nttu"] > avg["kmu"]


def test_figure11b_modops(once):
    data = once(F.figure11b)
    rows = [{"policy": label, **{k: v for k, v in data[label].items()}}
            for label in ("Hybrid", "KLSS", "FAST")]
    emit("Figure 11(b): bootstrap modular operations (G-ops)",
         F.format_rows(rows) +
         f"\nFAST/hybrid total: {data['fast_vs_hybrid_total']:.3f} "
         f"(paper: {data['paper_fast_vs_hybrid']:.3f})")
    assert data["fast_vs_hybrid_total"] < 1.0
