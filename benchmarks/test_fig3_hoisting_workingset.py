"""Fig. 3: hoisting impact and working-set sizes."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure3a_hoisting(once):
    rows = once(F.figure3a)
    sampled = [r for r in rows if r["level"] in (5, 15, 25, 35)]
    emit("Figure 3(a): KLSS/hybrid op ratio under hoisting h2/h4/h6",
         F.format_rows(sampled) +
         "\n(ratios grow with h at hoisting levels: KeyMult dominates)")
    for r in rows:
        if r["level"] >= 13:
            assert r["h2"] <= r["h6"]


def test_figure3b_working_set(once):
    rows = once(F.figure3b)
    sampled = [r for r in rows if r["level"] in (5, 15, 25, 35)]
    emit("Figure 3(b): working-set sizes (MB)",
         F.format_rows(sampled) +
         "\npaper anchors at l=35: ct 19.7 MB, hybrid evk 79.3 MB, "
         "KLSS evk 295.3 MB")
    top = rows[-1]
    assert abs(top["ciphertext_mb"] - 19.7) < 1.0
    assert abs(top["hybrid_evk_mb"] - 79.3) < 4.0
    assert abs(top["klss_evk_mb"] - 295.3) < 18.0
