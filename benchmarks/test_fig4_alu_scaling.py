"""Fig. 4: ALU area/power scaling across word lengths."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure4_scaling(once):
    data = once(F.figure4)
    rows = [{"bits": b,
             "modmult_area": data["modular_multiplier"][b]["area"],
             "modmult_power": data["modular_multiplier"][b]["power"],
             "mult_area": data["multiplier"][b]["area"],
             "mult_power": data["multiplier"][b]["power"]}
            for b in sorted(data["modular_multiplier"])]
    emit("Figure 4: relative ALU area/power vs word length (36-bit = 1)",
         F.format_rows(rows) +
         "\npaper anchors at 60 bit: 2.9x/2.8x (modmult), "
         "2.8x/2.7x (mult)")
    assert abs(data["modular_multiplier"][60]["area"] - 2.9) < 1e-6
