"""Ablation: the memory-system techniques FAST's numbers rest on.

The paper adopts the EKG (Sec. 5.7.2, halves key bytes) and ARK's
Min-KS key reuse (Sec. 6.1) but never isolates them; this benchmark
does, quantifying how load-bearing each is for the 1 TB/s HBM budget.
"""

from benchmarks.conftest import emit
from repro.analysis.figures import format_rows
from repro.hw.config import FAST_CONFIG, fast_variant
from repro.sim.engine import Engine
from repro.workloads import bootstrap_trace


def _run(config, trace):
    result = Engine(config).run(trace)
    return {"design": config.name,
            "latency_ms": result.total_s * 1e3,
            "key_traffic_mb": result.key_bytes / 1e6,
            "hbm_util": result.utilisation()["hbm"],
            "stall_us": result.key_stall_s * 1e6}


def test_ekg_and_minks_ablation(once):
    trace = bootstrap_trace()

    def sweep():
        return [
            _run(FAST_CONFIG, trace),
            _run(fast_variant("FAST-noEKG", use_ekg=False), trace),
            _run(fast_variant("FAST-noMinKS", use_minks=False), trace),
            _run(fast_variant("FAST-noEKG-noMinKS", use_ekg=False,
                              use_minks=False), trace),
        ]

    rows = once(sweep)
    emit("Ablation: EKG and Min-KS on bootstrap",
         format_rows(rows) +
         "\n(removing either technique multiplies key traffic; "
         "removing both makes the chip HBM-bound)")
    by = {r["design"]: r for r in rows}
    assert by["FAST"]["latency_ms"] < by["FAST-noMinKS"]["latency_ms"]
    assert by["FAST-noMinKS"]["latency_ms"] <= \
        by["FAST-noEKG-noMinKS"]["latency_ms"]
    assert by["FAST-noEKG-noMinKS"]["hbm_util"] > 0.9


def test_prefetch_window_ablation(once):
    """Aether's STEP-2 window depth governs KLSS adoption."""
    import repro.core.aether as aether_mod
    trace = bootstrap_trace()

    def sweep():
        rows = []
        original = aether_mod.PREFETCH_DEPTH
        try:
            for depth in (1, 3, 6, 12):
                aether_mod.PREFETCH_DEPTH = depth
                result = Engine().run(trace)
                rows.append({"prefetch_depth": depth,
                             "latency_ms": result.total_s * 1e3,
                             "klss_ops": result.method_ops.get("klss",
                                                               0)})
        finally:
            aether_mod.PREFETCH_DEPTH = original
        return rows

    rows = once(sweep)
    emit("Ablation: Aether STEP-2 prefetch window depth",
         format_rows(rows) +
         "\n(shallow windows reject all KLSS transfers; deep windows "
         "admit them)")
    assert rows[0]["klss_ops"] <= rows[-1]["klss_ops"]
