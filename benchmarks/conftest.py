"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's evaluation artefacts
(see DESIGN.md Sec. 4 for the index) and prints the regenerated rows
next to the paper's values, so `pytest benchmarks/ --benchmark-only -s`
reproduces the whole evaluation in one run.

Simulation benchmarks are deterministic and moderately expensive, so
they run with pedantic single-round settings via the ``once``
helper below.
"""

import pytest


@pytest.fixture()
def once(benchmark):
    """Run the benched callable exactly once per measurement round."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=3, iterations=1,
                                  warmup_rounds=0)

    return run


def emit(title: str, body: str) -> None:
    print(f"\n=== {title} ===\n{body}")
