"""Fig. 12: efficiency ablation — TBM and Aether-Hemera removal."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure12_ablation(once):
    data = once(F.figure12)
    rows = [{"design": label, **data[label]}
            for label in ("FAST", "FAST-noTBM", "36bit-ALU")]
    emit("Figure 12: gradual reduction of TBM and Aether-Hemera",
         F.format_rows(rows) +
         f"\npaper: noTBM 1.3x over 36-bit ALU; full FAST 1.45x")
    assert data["FAST"]["speedup_vs_36bit"] > \
        data["FAST-noTBM"]["speedup_vs_36bit"] >= 1.0
