"""Table 7: average power, energy and EDP per workload."""

from benchmarks.conftest import emit
from repro.analysis import figures as F

# The paper's Table 7 rows (its energy/EDP columns are internally
# inconsistent with power x latency; we report consistent values and
# compare average power, the reconcilable column).
PAPER_AVG_POWER_W = {"Bootstrap": 120, "HELR256": 118,
                     "HELR1024": 154, "ResNet-20": 160}


def test_table7_power_energy_edp(once):
    data = once(F.table7)
    rows = [{"workload": name, **vals,
             "paper_avg_w": PAPER_AVG_POWER_W[name]}
            for name, vals in data.items()]
    emit("Table 7: average power / energy / EDP",
         F.format_rows(rows, precision=4))
    for name, vals in data.items():
        assert 0.5 * PAPER_AVG_POWER_W[name] < vals["avg_power_w"] < \
            2.0 * PAPER_AVG_POWER_W[name]
