"""Fig. 13: sensitivity to scratchpad capacity and cluster count."""

from benchmarks.conftest import emit
from repro.analysis import figures as F


def test_figure13a_memory(once):
    rows = once(F.figure13a)
    emit("Figure 13(a): bootstrap vs scratchpad size",
         F.format_rows(rows) +
         "\npaper: small memories force hybrid/less hoisting (slower);"
         " beyond ~281 MB returns saturate")
    lat = {r["memory_mb"]: r["latency_ms"] for r in rows}
    assert lat[128.0] > lat[281.0]
    assert lat[512.0] <= lat[281.0] * 1.02


def test_figure13b_clusters(once):
    rows = once(F.figure13b)
    emit("Figure 13(b): bootstrap vs cluster count",
         F.format_rows(rows) +
         "\npaper: 8 clusters 1.7x faster at 1.37x area; "
         "2 clusters lose ~48%")
    by_c = {r["clusters"]: r for r in rows}
    assert by_c[8]["latency_ms"] < by_c[4]["latency_ms"]
    assert by_c[2]["latency_ms"] > by_c[4]["latency_ms"]
