"""The ``dataflow`` bench section's acceptance and regression gates.

These drive ``validate_dataflow`` / ``_compare_dataflow`` /
``dataflow_stats`` on synthetic section dicts, so every gate clause is
covered without re-running the optimiser; the real end-to-end section
is exercised by ``tests/test_cli.py::TestBenchCommand``.
"""

import copy

from repro.bench.dataflow import (
    dataflow_stats,
    validate_dataflow,
)
from repro.bench.harness import _compare_dataflow


def good_section() -> dict:
    return {
        "gate_clusters": 4,
        "workloads": {
            "HELR256": {
                "ntt_limb_calls_before": 10896,
                "ntt_limb_calls_after": 9632,
                "reduction_pct": 11.6,
                "fused_nodes": 31,
                "passes": [{"name": "sink", "rewrites": 177,
                            "limbs_removed": 0}],
                "ops_identical": True,
                "base_sim_s": 2.0e-4,
                "opt_sim_s": 2.0e-4,
                "scaled_schedules": 34,
            },
        },
        "executor": {"bit_exact": True, "optimised": True},
        "fused_rescale": {
            "sequential_max_error": 1e-6,
            "fused_max_error": 1e-6,
            "fused_kernel_calls": 3,
            "levels_match": True,
            "scales_match": True,
            "sequential_best_s": 0.03,
            "fused_best_s": 0.02,
        },
        "plan_cache_evictions": {"ntt": 0, "bconv": 0},
    }


class TestValidateDataflow:
    def test_good_section_passes(self):
        assert validate_dataflow(good_section()) == []

    def test_flags_missing_strict_drop(self):
        section = good_section()
        record = section["workloads"]["HELR256"]
        record["ntt_limb_calls_after"] = record["ntt_limb_calls_before"]
        violations = validate_dataflow(section)
        assert any("strictly drop" in v for v in violations)

    def test_flags_changed_op_list(self):
        section = good_section()
        section["workloads"]["HELR256"]["ops_identical"] = False
        assert any("op list" in v for v in validate_dataflow(section))

    def test_flags_slower_schedule(self):
        section = good_section()
        section["workloads"]["HELR256"]["opt_sim_s"] = 3.0e-4
        assert any("slower" in v for v in validate_dataflow(section))

    def test_flags_inexact_executor(self):
        section = good_section()
        section["executor"]["bit_exact"] = False
        assert any("bit-exact" in v for v in validate_dataflow(section))

    def test_flags_unoptimised_executor_trace(self):
        section = good_section()
        section["executor"]["optimised"] = False
        assert any("optimised" in v for v in validate_dataflow(section))

    def test_flags_fused_error(self):
        section = good_section()
        section["fused_rescale"]["fused_max_error"] = 1.0
        assert any("fused_max_error" in v
                   for v in validate_dataflow(section))

    def test_flags_fused_fallback(self):
        section = good_section()
        section["fused_rescale"]["fused_kernel_calls"] = 0
        assert any("never engaged" in v
                   for v in validate_dataflow(section))

    def test_flags_bookkeeping_mismatch(self):
        section = good_section()
        section["fused_rescale"]["scales_match"] = False
        assert any("bookkeeping" in v for v in validate_dataflow(section))

    def test_flags_plan_cache_evictions(self):
        section = good_section()
        section["plan_cache_evictions"]["bconv"] = 7
        violations = validate_dataflow(section)
        assert any("bconv" in v and "evictions" in v
                   for v in violations)


class TestCompareDataflow:
    def test_equal_sections_have_no_regressions(self):
        section = good_section()
        assert _compare_dataflow(section, copy.deepcopy(section),
                                 1.0) == []

    def test_ntt_growth_is_a_regression(self):
        baseline = good_section()
        current = copy.deepcopy(baseline)
        current["workloads"]["HELR256"]["ntt_limb_calls_after"] += 1
        regressions = _compare_dataflow(current, baseline, 1.0)
        assert any("lost rewrites" in r for r in regressions)

    def test_fused_wall_regression(self):
        baseline = good_section()
        current = copy.deepcopy(baseline)
        current["fused_rescale"]["fused_best_s"] *= 10.0
        regressions = _compare_dataflow(current, baseline, 1.0)
        assert any("fused_best_s" in r for r in regressions)

    def test_missing_baseline_section_is_skipped(self):
        assert _compare_dataflow(good_section(), {}, 1.0) == []


class TestDataflowStats:
    def test_compact_view(self):
        stats = dataflow_stats(good_section())
        assert stats["HELR256"]["ntt_before"] == 10896
        assert stats["HELR256"]["ntt_after"] == 9632
        assert stats["HELR256"]["passes"] == {"sink": 177}
