"""Property-based optimiser invariants over random valid traces.

Hypothesis generates random-but-valid operation traces (the same
shapes as the scheduler fuzz: mixed chains of HMult/PMult/Rescale/
HRot/hoisted groups at monotone levels) and runs the whole-trace
optimiser over each.  Four invariants must hold for *every* trace:

* op preservation — the optimised trace's op list is identical, so
  every downstream consumer sees the same program;
* monotone NTT count — the rewritten micro trace never performs more
  limb transforms than the pristine lowering, globally and per trace
  index;
* domain consistency — the rewritten micro trace still validates;
* bit-exact execution — the functional executor produces identical
  residues for the source and optimised traces.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ckks.params import SET_II
from repro.core.optrace import TraceBuilder
from repro.opt import optimise_trace
from repro.opt.lower import lower_to_micro
from repro.opt.pipeline import PassManager
from repro.sched import FunctionalExecutor

# Each example lowers and optimises a real trace; keep the count
# CI-sized and the deadline off (first-call warmup).
PROPERTY_SETTINGS = settings(max_examples=30, deadline=None)


@st.composite
def traces(draw):
    """A random valid trace: several ciphertext chains of mixed op
    kinds, monotone levels, and optional hoisted rotation groups."""
    tb = TraceBuilder("opt-property-trace")
    num_chains = draw(st.integers(min_value=1, max_value=3))
    for _ in range(num_chains):
        ct = tb.fresh_ct()
        level = draw(st.integers(min_value=4, max_value=12))
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            kind = draw(st.sampled_from(
                ["hmult", "pmult", "rescale", "hrot", "hoisted"]))
            if kind == "hmult":
                tb.hmult(ct, level)
            elif kind == "pmult":
                tb.pmult(ct, level)
            elif kind == "rescale":
                tb.rescale(ct, level)
                level = max(1, level - 1)
            elif kind == "hrot":
                tb.hrot(ct, level,
                        draw(st.integers(min_value=1, max_value=64)))
            else:
                amounts = draw(st.lists(
                    st.integers(min_value=1, max_value=128),
                    min_size=2, max_size=4, unique=True))
                tb.rotations(ct, level, amounts, hoisted=True)
    return tb.build().check()


class TestOpPreservation:
    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_op_list_identical(self, trace):
        opt = optimise_trace(trace, SET_II)
        assert list(opt.ops) == list(trace.ops)
        assert len(opt) == len(trace)
        assert opt.name == trace.name


class TestMonotoneNttCount:
    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_global_and_per_index_non_increasing(self, trace):
        opt = optimise_trace(trace, SET_II)
        assert opt.stats.ntt_after <= opt.stats.ntt_before
        for index, (after, before) in opt.ntt_factors.items():
            assert after <= before, index
            assert opt.factor_for([index]) <= 1.0

    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_micro_trace_still_validates(self, trace):
        opt = optimise_trace(trace, SET_II)
        opt.micro.validate()

    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_second_pipeline_run_finds_nothing(self, trace):
        """Re-running the pass pipeline over an optimised micro trace
        removes no further transforms: the fixed point is stable."""
        opt = optimise_trace(trace, SET_II)
        _, stats = PassManager().run(opt.micro.copy())
        assert stats.ntt_after == stats.ntt_before


class TestBitExactExecution:
    # One executor for the class: context build is the expensive part.
    executor = FunctionalExecutor()

    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_serial_execution_matches(self, trace):
        opt = optimise_trace(trace, SET_II)
        base_state = self.executor.run_serial(trace)
        opt_state = self.executor.run_serial(opt)
        assert base_state.keys() == opt_state.keys()
        for ct_id, residues in base_state.items():
            assert np.array_equal(residues, opt_state[ct_id]), ct_id


class TestLoweringAccounting:
    @PROPERTY_SETTINGS
    @given(trace=traces())
    def test_per_index_counts_sum_to_total(self, trace):
        micro = lower_to_micro(trace, SET_II)
        by_index = micro.ntt_by_index()
        assert sum(by_index.values()) == micro.ntt_limb_calls()
        assert set(by_index) == set(range(len(trace)))
