"""Unit tests for the individual dataflow-optimiser rewrite passes."""

import pytest

from repro.ckks.params import SET_II
from repro.core.optrace import TraceBuilder
from repro.opt import optimise_trace
from repro.opt.ir import (
    EWISE,
    FROM_EVAL,
    FUSED_KEYSWITCH,
    TO_EVAL,
    MicroOp,
    MicroTrace,
    conversion,
    ct_half,
)
from repro.opt.lower import lower_to_micro
from repro.opt.passes import (
    cancel_conversions,
    fuse_keyswitch,
    merge_rescale,
    sink_conversions,
)
from repro.opt.pipeline import PassManager


def lowered(build, name="unit"):
    tb = TraceBuilder(name)
    build(tb)
    return lower_to_micro(tb.build().check(), SET_II)


def run_pipeline(micro):
    return PassManager().run(micro.copy())


class TestCancelConversions:
    def test_double_rescale_chain_cancels(self):
        """Back-to-back rescales: the first rescale's restore TO_EVAL
        cancels against the second's FROM_EVAL on both halves."""
        def build(tb):
            ct = tb.fresh_ct()
            tb.rescale(ct, 8)
            tb.rescale(ct, 7)
        micro = lowered(build)
        before = micro.ntt_limb_calls()
        sink_conversions(micro)
        result = cancel_conversions(micro)
        micro.validate()
        assert result.rewrites >= 2          # one pair per half
        assert result.limbs_removed > 0
        assert micro.ntt_limb_calls() == before - result.limbs_removed

    def test_pathological_back_to_back_chain(self):
        """A long alternating FROM/TO chain on one value collapses to
        nothing in a single sweep."""
        value = ct_half(0, 0)
        ops = []
        for _ in range(6):
            ops.append(conversion(FROM_EVAL, 0, value, 8))
            ops.append(conversion(TO_EVAL, 0, value, 8))
        micro = MicroTrace(name="chain", ops=ops, trace_len=1)
        micro.validate()
        result = cancel_conversions(micro)
        assert result.rewrites == 6
        assert result.limbs_removed == 6 * 16
        assert micro.ops == []

    def test_pinned_conversions_never_cancel(self):
        value = ct_half(0, 0)
        ops = [conversion(FROM_EVAL, 0, value, 8, pinned=True),
               conversion(TO_EVAL, 0, value, 8, pinned=True)]
        micro = MicroTrace(name="pinned", ops=ops, trace_len=1)
        assert cancel_conversions(micro).rewrites == 0
        assert len(micro.ops) == 2
        assert sink_conversions(micro).rewrites == 0

    def test_mismatched_limb_counts_do_not_cancel(self):
        """A FROM at k limbs followed by a TO at k-1 limbs is a basis
        change, not a round trip."""
        value = ct_half(0, 0)
        ops = [conversion(FROM_EVAL, 0, value, 8),
               conversion(TO_EVAL, 0, value, 7)]
        micro = MicroTrace(name="mismatch", ops=ops, trace_len=1)
        assert cancel_conversions(micro).rewrites == 0
        assert len(micro.ops) == 2

    def test_sensitive_op_blocks_cancellation(self):
        value = ct_half(0, 0)
        blocker = MicroOp(kind="rescale", index=0, uses=(value,),
                          writes=(value,))
        ops = [conversion(FROM_EVAL, 0, value, 8), blocker,
               conversion(TO_EVAL, 0, value, 8)]
        micro = MicroTrace(name="blocked", ops=ops, trace_len=1)
        assert cancel_conversions(micro).rewrites == 0

    def test_transparent_op_is_crossed(self):
        value = ct_half(0, 0)
        passthrough = MicroOp(kind=EWISE, index=0, uses=(value,),
                              writes=(value,))
        ops = [conversion(FROM_EVAL, 0, value, 8), passthrough,
               conversion(TO_EVAL, 0, value, 8)]
        micro = MicroTrace(name="crossed", ops=ops, trace_len=1)
        result = cancel_conversions(micro)
        assert result.rewrites == 1
        assert micro.ops == [passthrough]


class TestSinkConversions:
    def test_sink_is_idempotent(self):
        def build(tb):
            ct = tb.fresh_ct()
            tb.pmult(ct, 9)
            tb.rescale(ct, 9)
            tb.hrot(ct, 8, 3)
        micro = lowered(build)
        sink_conversions(micro)
        micro.validate()
        assert sink_conversions(micro).rewrites == 0

    def test_noop_trace_untouched(self):
        """A conversion-free trace is a fixed point of every pass."""
        def build(tb):
            tb.pmult(tb.fresh_ct(), 9)
        micro = lowered(build)
        snapshot = [op.describe() for op in micro.ops]
        for pass_fn in (merge_rescale, sink_conversions,
                        cancel_conversions):
            result = pass_fn(micro)
            assert result.rewrites == 0, result.name
            assert result.limbs_removed == 0, result.name
        assert [op.describe() for op in micro.ops] == snapshot


class TestMergeRescale:
    def test_hmult_rescale_merges(self):
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.rescale(ct, 8)
        micro = lowered(build)
        k = next(int(op.meta["k"]) for op in micro.ops
                 if op.kind == "mod_down")
        before = micro.ntt_limb_calls()
        result = merge_rescale(micro)
        micro.validate()
        assert result.rewrites == 1
        # One merge trades the rescale's 2k INTT + 2(k-1) NTT and the
        # ModDown conversion shrinking by 2 for two extra aux INTT
        # limbs: a 4k-2 limb saving.
        assert result.limbs_removed == 4 * k - 2
        assert micro.ntt_limb_calls() == before - (4 * k - 2)

    def test_merge_updates_moddown_meta(self):
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.rescale(ct, 8)
        micro = lowered(build)
        merge_rescale(micro)
        moddown = next(op for op in micro.ops if op.kind == "mod_down")
        assert moddown.meta["drop"] == 1
        assert moddown.meta["merged_rescales"] == [1]

    def test_hoisted_moddown_not_merged(self):
        def build(tb):
            ct = tb.fresh_ct()
            tb.rotations(ct, 8, [1, 2, 4], hoisted=True)
            tb.rescale(ct, 8)
        micro = lowered(build)
        assert merge_rescale(micro).rewrites == 0

    def test_intervening_read_blocks_merge(self):
        """An op that observes the ModDown output before the rescale
        makes the intermediate visible; the merge must not fire."""
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.pmult(ct, 8)
            tb.rescale(ct, 8)
        micro = lowered(build)
        assert merge_rescale(micro).rewrites == 0

    def test_merge_targets_nearest_producer(self):
        """With a rotation between HMult and the rescale, only the
        rotation's ModDown (whose output the rescale consumes) merges;
        the HMult's stays untouched."""
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.hrot(ct, 8, 1)
            tb.rescale(ct, 8)
        micro = lowered(build)
        assert merge_rescale(micro).rewrites == 1
        drops = {op.index: op.meta.get("drop", 0)
                 for op in micro.ops if op.kind == "mod_down"}
        assert drops == {0: 0, 1: 1}


class TestFuseKeyswitch:
    def test_single_switch_fuses(self):
        def build(tb):
            tb.hmult(tb.fresh_ct(), 8)
        micro = lowered(build)
        before = micro.ntt_limb_calls()
        result = fuse_keyswitch(micro)
        micro.validate()
        assert result.rewrites == 1
        kinds = micro.counts_by_kind()
        assert kinds.get(FUSED_KEYSWITCH) == 1
        assert "mod_up" not in kinds and "key_mult" not in kinds
        assert "mod_down" not in kinds
        # Fusing groups; it never changes the transform count itself.
        assert micro.ntt_limb_calls() == before

    def test_hoisted_group_not_fused(self):
        def build(tb):
            tb.rotations(tb.fresh_ct(), 8, [1, 2], hoisted=True)
        micro = lowered(build)
        assert fuse_keyswitch(micro).rewrites == 0

    def test_fused_node_carries_member_limbs(self):
        def build(tb):
            tb.hmult(tb.fresh_ct(), 8)
        micro = lowered(build)
        total = micro.ntt_limb_calls()
        fuse_keyswitch(micro)
        fused = next(op for op in micro.ops
                     if op.kind == FUSED_KEYSWITCH)
        remaining = sum(op.limbs for op in micro.ops
                        if op is not fused)
        assert fused.limbs > 0
        assert fused.limbs + remaining == total
        assert "mod_up" in fused.meta["members"]
        assert "key_mult" in fused.meta["members"]
        assert "mod_down" in fused.meta["members"]


class TestPassManager:
    def test_empty_like_trace(self):
        micro = MicroTrace(name="empty", ops=[MicroOp(kind=EWISE,
                                                      index=0)],
                           trace_len=1)
        out, stats = PassManager().run(micro)
        assert stats.ntt_before == stats.ntt_after == 0
        assert stats.iterations >= 1
        assert len(out.ops) == 1

    def test_merge_dominates_cancel_on_hmult_rescale(self):
        """Pipeline ordering: merge claims the rescale before cancel
        can trade it for a smaller saving."""
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.rescale(ct, 8)
            tb.hrot(ct, 7, 1)
        micro = lowered(build)
        _, stats = run_pipeline(micro)
        assert stats.merged_rescales == 1

    def test_stats_passes_cover_registry(self):
        def build(tb):
            ct = tb.fresh_ct()
            tb.hmult(ct, 8)
            tb.rescale(ct, 8)
        _, stats = run_pipeline(lowered(build))
        names = {entry["name"] for entry in stats.passes}
        assert {"sink", "cancel", "merge_rescale", "fuse"} <= names


class TestOptimiseTrace:
    def test_optimised_trace_is_same_oplist(self):
        tb = TraceBuilder("wrap")
        ct = tb.fresh_ct()
        tb.hmult(ct, 8)
        tb.rescale(ct, 8)
        trace = tb.build().check()
        opt = optimise_trace(trace, SET_II)
        assert list(opt.ops) == list(trace.ops)
        assert opt.name == trace.name
        assert opt.optimised is True
        assert opt.stats.ntt_after < opt.stats.ntt_before

    def test_optimise_is_idempotent(self):
        tb = TraceBuilder("idem")
        tb.hmult(tb.fresh_ct(), 8)
        opt = optimise_trace(tb.build().check(), SET_II)
        assert optimise_trace(opt, SET_II) is opt

    def test_factor_for_unknown_indices_is_unity(self):
        tb = TraceBuilder("factors")
        tb.pmult(tb.fresh_ct(), 9)
        opt = optimise_trace(tb.build().check(), SET_II)
        assert opt.factor_for([10 ** 6]) == 1.0
        for index, (after, before) in opt.ntt_factors.items():
            assert after <= before, index
