"""End-to-end regeneration of every table/figure, with shape checks.

These are the integration tests of the whole reproduction: each test
regenerates one evaluation artefact and asserts the *paper's shape* —
who wins, roughly by how much, where crossovers fall.
"""

import numpy as np
import pytest

from repro.analysis import figures as F


class TestFigure2:
    def test_quantitative_line_crossover(self):
        rows = F.figure2a()
        low = [r["quantitative_line"] for r in rows
               if 5 <= r["level"] <= 12]
        high = [r["quantitative_line"] for r in rows
                if 25 <= r["level"] <= 35]
        assert np.mean(low) < 1.0 < np.mean(high)

    def test_costs_grow_with_level(self):
        rows = F.figure2a()
        assert rows[-1]["hybrid_mops"] > rows[0]["hybrid_mops"]
        assert rows[-1]["klss_mops"] > rows[0]["klss_mops"]

    def test_kernel_breakdown_ntt_drives_klss_advantage(self):
        rows = F.figure2b()
        high = [r for r in rows if r["level"] >= 25]
        # At high levels hybrid spends relatively more on NTT than
        # KLSS (ratio > 1), while KLSS pays more KeyMult (ratio < 1).
        assert np.mean([r["ntt"] for r in high]) > 1.0
        assert np.mean([r["keymult"] for r in high]) < 1.0


class TestFigure3:
    def test_hoisting_monotone_where_hoisting_lives(self):
        # KeyMult dominance grows with h at the mid/high levels where
        # bootstrapping actually hoists (Fig. 3a's regime); at very
        # low levels hybrid's per-rotation share flips the trend.
        for r in F.figure3a():
            if r["level"] >= 13:
                assert r["h2"] <= r["h4"] <= r["h6"], r

    def test_working_set_anchors(self):
        rows = F.figure3b()
        top = rows[-1]
        assert top["level"] == 35
        for key, anchor in F.FIGURE3B_PAPER_ANCHORS.items():
            assert top[key] == pytest.approx(anchor, rel=0.06), key

    def test_klss_evk_largest(self):
        for r in F.figure3b():
            if r["level"] >= 10:
                assert r["klss_evk_mb"] > r["hybrid_evk_mb"] > \
                    r["ciphertext_mb"]


class TestFigure4:
    def test_anchor_ratios(self):
        data = F.figure4()
        assert data["modular_multiplier"][60]["area"] == \
            pytest.approx(2.9, rel=1e-6)
        assert data["multiplier"][60]["power"] == \
            pytest.approx(2.7, rel=1e-6)

    def test_monotone_scaling(self):
        data = F.figure4()
        widths = sorted(data["multiplier"])
        areas = [data["multiplier"][w]["area"] for w in widths]
        assert areas == sorted(areas)


class TestTables2to4:
    def test_table2_sets(self):
        rows = F.table2()
        assert rows[0]["alpha"] == 12 and rows[1]["alpha"] == 5
        assert all(r["N"] == 1 << 16 and r["L"] == 35 for r in rows)
        assert all(r["L_eff"] == 8 for r in rows)

    def test_table3_total(self):
        rows = F.table3()
        assert rows["Total"]["area_mm2"] == pytest.approx(283.75,
                                                          rel=0.02)

    def test_table4_contains_fast_and_priors(self):
        names = {r["name"] for r in F.table4()}
        assert "FAST (ours)" in names
        assert "SHARP" in names and "BTS" in names


class TestTable5:
    @pytest.fixture(scope="class")
    def table5(self):
        return F.table5()

    def test_fast_beats_every_published_baseline(self, table5):
        ours = table5["ours_ms"]
        for name, row in table5["published_ms"].items():
            if name == "FAST":
                continue
            for workload, paper_ms in row.items():
                if paper_ms is not None:
                    assert ours[workload] < paper_ms, (name, workload)

    def test_within_2x_of_paper_fast(self, table5):
        ours = table5["ours_ms"]
        paper = table5["published_ms"]["FAST"]
        for workload, ms in ours.items():
            assert paper[workload] / 2 < ms < paper[workload] * 2

    def test_average_speedup_vs_sharp_band(self, table5):
        mean = np.mean(list(table5["speedup_vs_sharp"].values()))
        assert 1.5 < mean < 2.6  # paper: 1.85x

    def test_workload_ordering(self, table5):
        ours = table5["ours_ms"]
        assert ours["HELR256"] < ours["HELR1024"]
        assert ours["ResNet-20"] > 10 * ours["Bootstrap"]


class TestTable6:
    def test_fast_t_as_fastest(self):
        data = F.table6()
        ours = [r for r in data["rows"] if r["source"] == "measured"][0]
        published = [r["t_as_ns"] for r in data["rows"]
                     if r["source"] == "published"]
        assert all(ours["t_as_ns"] < p for p in published)
        assert ours["t_as_ns"] == pytest.approx(data["paper_fast_ns"],
                                                rel=0.5)


class TestTable7:
    def test_rows_and_bands(self):
        data = F.table7()
        assert set(data) == {"Bootstrap", "HELR256", "HELR1024",
                             "ResNet-20"}
        for row in data.values():
            assert 60 < row["avg_power_w"] < 250
            assert row["energy_j"] > 0
            assert row["edp_js"] == pytest.approx(
                row["energy_j"] * row["latency_ms"] / 1e3)


class TestFigure10:
    @pytest.fixture(scope="class")
    def fig10(self):
        return F.figure10()

    def test_policy_ordering(self, fig10):
        assert fig10["Aether"]["total_ms"] <= \
            fig10["Hoisting"]["total_ms"] < fig10["OneKSW"]["total_ms"]

    def test_aether_speedup_band(self, fig10):
        # paper: 1.24x
        assert 1.05 < fig10["Aether"]["speedup_vs_oneksw"] < 1.45

    def test_aether_mixes_methods(self, fig10):
        assert fig10["Aether"]["method_ops"].get("klss", 0) > 0


class TestFigure11:
    def test_utilisation_shape(self):
        data = F.figure11a()
        avg = data["average"]
        assert avg["nttu"] > avg["bconvu"]
        assert avg["nttu"] > avg["kmu"]
        assert 0 < avg["hbm"] < 1

    def test_modops_reduction(self):
        data = F.figure11b()
        # FAST's mixed execution must not exceed hybrid-only op count
        assert data["fast_vs_hybrid_total"] < 1.0


class TestFigure12:
    def test_ablation_ordering(self):
        data = F.figure12()
        assert data["FAST"]["total_ms"] < \
            data["FAST-noTBM"]["total_ms"] <= \
            data["36bit-ALU"]["total_ms"] * 1.05

    def test_speedup_bands(self):
        data = F.figure12()
        assert 1.0 < data["FAST-noTBM"]["speedup_vs_36bit"] < 1.8
        assert data["FAST"]["speedup_vs_36bit"] > \
            data["FAST-noTBM"]["speedup_vs_36bit"]


class TestFigure13:
    def test_memory_sensitivity(self):
        rows = F.figure13a(sizes_mb=(128, 281, 512))
        by_mem = {r["memory_mb"]: r["latency_ms"] for r in rows}
        # small memory hurts; huge memory saturates (paper Fig. 13a)
        assert by_mem[128] > by_mem[281]
        assert by_mem[512] <= by_mem[281] * 1.02

    def test_cluster_scaling(self):
        rows = F.figure13b(cluster_counts=(2, 4, 8))
        by_c = {r["clusters"]: r for r in rows}
        assert by_c[2]["latency_ms"] > by_c[4]["latency_ms"] > \
            by_c[8]["latency_ms"]
        assert by_c[8]["speedup_vs_4c"] > 1.2
        assert 1.2 < by_c[8]["area_vs_4c"] < 1.6  # paper: 1.37x


class TestFormatting:
    def test_format_rows(self):
        text = F.format_rows([{"a": 1.5, "b": "x"}])
        assert "a" in text and "1.500" in text

    def test_format_empty(self):
        assert F.format_rows([]) == "(no rows)"
